//! # VQ-LLM
//!
//! A Rust reproduction of *“VQ-LLM: High-performance Code Generation for
//! Vector Quantization Augmented LLM Inference”* (HPCA 2025).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`tensor`] — numeric substrate (tensors, dtypes, synthetic data).
//! * [`gpu`] — GPU performance-model substrate (occupancy, shared-memory
//!   banks, coalescing, warp shuffle, timing).
//! * [`vq`] — vector-quantization substrate (k-means, codebooks, residual
//!   quantization, bit packing, algorithm presets from the paper's Tbl. II).
//! * [`core`] — the paper's contribution: codebook cache, codebook-centric
//!   dataflow, hierarchical fusion, adaptive heuristics, and the kernel-plan
//!   code generator.
//! * [`kernels`] — fused VQ kernels plus every baseline the paper compares
//!   against (FP16 flash-decoding/attention, paged variants, VQ-GC/SC,
//!   AWQ-4, QoQ-4).
//! * [`llm`] — Llama-shaped inference substrate for end-to-end evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use vq_llm::vq::algorithms::VqAlgorithm;
//! use vq_llm::core::{ComputeOp, KernelPlanner};
//! use vq_llm::gpu::GpuSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Pick a VQ algorithm from the paper's Tbl. II and a computation.
//! let algo = VqAlgorithm::Cq2.config();
//! let op = ComputeOp::attention_decode(32, 128, 1024, 1);
//!
//! // Generate an optimized fused-kernel plan for an RTX 4090.
//! let plan = KernelPlanner::new(GpuSpec::rtx4090()).plan(&algo, &op)?;
//! println!("{}", plan.describe());
//! # Ok(())
//! # }
//! ```

pub use vqllm_core as core;
pub use vqllm_gpu as gpu;
pub use vqllm_kernels as kernels;
pub use vqllm_llm as llm;
pub use vqllm_tensor as tensor;
pub use vqllm_vq as vq;
