//! # VQ-LLM
//!
//! A Rust reproduction of *“VQ-LLM: High-performance Code Generation for
//! Vector Quantization Augmented LLM Inference”* (HPCA 2025).
//!
//! The front door is [`Session`]: a validated, cache-aware handle over the
//! whole framework (profile → codebook-cache placement → dataflow → fusion
//! → codegen → execute, paper Fig. 7) with a pluggable execution
//! [`Backend`] and a memoizing [`PlanCache`] shared by every pipeline it
//! creates.
//!
//! ## Quickstart
//!
//! ```
//! use vq_llm::{OptLevel, Session, VqAlgorithm};
//!
//! # fn main() -> Result<(), vq_llm::VqLlmError> {
//! let session = Session::builder()
//!     .gpu(vq_llm::GpuSpec::rtx4090())
//!     .weight_algo(VqAlgorithm::QuipSharp4)
//!     .kv_algo(VqAlgorithm::Cq4)
//!     .opt(OptLevel::O4)
//!     .build()?;
//!
//! // Plan an optimized fused attention kernel (memoized in the session's
//! // plan cache — a second call is a hash probe).
//! let op = session.attention_op(1024, 1);
//! let (plan, out) = session.best_kv_plan(&op)?;
//! println!("{}\n{:.1} us modelled", plan.describe(), out.us());
//!
//! // Emit the CUDA-like kernel source and project end-to-end latency.
//! let source = session.emit(&plan);
//! assert!(source.contains("__global__ void"));
//! let report = session.generate(1024, 256, 16);
//! assert!(report.total_ms() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Layers
//!
//! The low-level crates stay public for power users:
//!
//! * [`tensor`] — numeric substrate (tensors, dtypes, synthetic data).
//! * [`gpu`] — GPU performance-model substrate (occupancy, shared-memory
//!   banks, coalescing, warp shuffle, timing).
//! * [`vq`] — vector-quantization substrate (k-means, codebooks, residual
//!   quantization, bit packing, algorithm presets from the paper's Tbl. II).
//! * [`core`] — the paper's contribution: codebook cache, codebook-centric
//!   dataflow, hierarchical fusion, adaptive heuristics, the kernel-plan
//!   code generator, and the memoizing plan cache.
//! * [`kernels`] — fused VQ kernels plus every baseline the paper compares
//!   against (FP16 flash-decoding/attention, paged variants, VQ-GC/SC,
//!   AWQ-4, QoQ-4), the [`Backend`] seam, and the real host-execution
//!   kernels (`kernels::host_exec`) behind [`CpuBackend`].
//! * [`llm`] — Llama-shaped inference substrate for end-to-end evaluation.

pub mod backend;
pub mod engine;
pub mod error;
pub mod net;
pub mod session;

pub use vqllm_core as core;
pub use vqllm_gpu as gpu;
pub use vqllm_kernels as kernels;
pub use vqllm_llm as llm;
pub use vqllm_tensor as tensor;
pub use vqllm_vq as vq;

pub use backend::{Backend, BackendKind, CpuBackend, PerfModelBackend};
pub use engine::{Engine, EngineBuilder};
pub use error::{Result, VqLlmError};
pub use net::{
    AdmissionConfig, Client, DrainReport, EngineFactory, NetConfig, NetRequest, NetServer,
    RateLimitConfig, StreamEvent, SupervisorConfig, Ticket, TicketEnd, WaitError,
};
pub use session::{Session, SessionBuilder};

// The vocabulary types a `Session`/`Engine` consumer touches, re-exported
// at the top level so the quickstart needs one import line.
pub use vqllm_core::{CacheStats, ComputeOp, KernelPlan, OptLevel, PlanCache};
pub use vqllm_gpu::GpuSpec;
pub use vqllm_kernels::KernelOutput;
pub use vqllm_llm::{
    ContextHandle, ContextStats, DecodeRequest, E2eReport, KvQuantMode, LlamaConfig, Pipeline,
    ProfileConfig, QuantScheme, RejectReason, RequestHandle, RequestOutput, RequestStatus,
    ServeConfig, Server, ServerStats, SharedContext, StepReport, TenantKv,
};
pub use vqllm_vq::{VqAlgorithm, VqConfig};
