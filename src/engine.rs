//! The `Engine`: the multi-context serving entry point.
//!
//! A [`Session`](crate::Session) binds one configuration to *one* view of
//! the framework; an [`Engine`] owns the whole serving side of it — one
//! backend, one shared [`PlanCache`], and a **registry of quantized
//! contexts** ([`Engine::register_context`]), with the typed request
//! lifecycle the serving layer is built around:
//!
//! ```text
//! Engine::submit(ctx, req) -> RequestHandle
//! Engine::poll(&handle)    -> Queued | Running | Finished{tokens} | Rejected{reason}
//! Engine::step()           -> one decode step across every live context group
//! ```
//!
//! Every [`Engine::step`] re-forms the decode batch per context group:
//! slots (`max_batch`) and the bounded queue are shared engine-wide, and
//! each live group runs one shared-K-decode ragged attention pass plus
//! one batched linear through that context's canonical plans. Contexts
//! are planned from **measured** access histograms at registration
//! (closing the `ProfileSummary::default_for` placeholder), executed
//! steps feed observed histograms back, and a drifted profile invalidates
//! and replans that context's cached plans — without changing a single
//! decoded byte, since the host kernels are bitwise independent of plan
//! blocking.
//!
//! ```
//! use vq_llm::tensor::synth;
//! use vq_llm::{DecodeRequest, Engine, RequestStatus, SharedContext, VqAlgorithm};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut engine = Engine::builder()
//!     .weight_algo(VqAlgorithm::Gptvq2)
//!     .kv_algo(VqAlgorithm::Cq4)
//!     .build()?;
//! let session = engine.session_unbound();
//! let ctx = SharedContext::new(
//!     session.quantize_kv(&synth::kv_stream(320, 32, 0.85, 1), 1)?,
//!     session.quantize_kv(&synth::kv_stream(320, 32, 0.85, 2), 2)?,
//!     session.quantize_weights(&synth::correlated_channels(32, 32, 4, 0.9, 3), 3)?,
//! )?;
//! let handle = engine.register_context(ctx)?;
//! let req = DecodeRequest::new(7, vec![0.1; 32], 8, 3);
//! let ticket = engine.submit(handle, req);
//! engine.run_until_drained()?;
//! assert_eq!(engine.poll(&ticket), RequestStatus::Finished { tokens: 3 });
//! let out = engine.take_output(&ticket).expect("finished");
//! assert_eq!(out.steps.len(), 3);
//! # Ok(())
//! # }
//! ```

use crate::backend::{Backend, BackendKind, PerfModelBackend};
use crate::error::{Result, VqLlmError};
use crate::session::Session;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use vqllm_core::plan_cache::{self, CacheStats, PlanCache};
use vqllm_core::OptLevel;
use vqllm_gpu::GpuSpec;
use vqllm_llm::serve::{ContextHandle, ContextStats, MultiServer, ProfileConfig};
use vqllm_llm::{
    DecodeRequest, LlamaConfig, Pipeline, QuantScheme, RequestHandle, RequestOutput, RequestStatus,
    ServeConfig, ServerStats, SharedContext, StepReport,
};
use vqllm_vq::VqAlgorithm;

/// The configuration + substrate every view of an engine shares: device,
/// algorithms, optimization level, model shape, execution backend, and
/// the memoizing plan cache. `Session`s are thin `Arc`'d views over this.
#[derive(Debug)]
pub(crate) struct EngineShared {
    pub(crate) gpu: GpuSpec,
    /// Precomputed full-spec cache identity ([`plan_cache::gpu_identity`])
    /// so cache lookups don't re-render the spec.
    pub(crate) gpu_identity: Arc<str>,
    pub(crate) weight_algo: VqAlgorithm,
    pub(crate) kv_algo: VqAlgorithm,
    pub(crate) opt: OptLevel,
    pub(crate) model: LlamaConfig,
    pub(crate) backend: Arc<dyn Backend>,
    pub(crate) plan_cache: Arc<PlanCache>,
}

impl EngineShared {
    /// The quantization scheme this configuration runs under.
    pub(crate) fn scheme(&self) -> QuantScheme {
        QuantScheme::VqLlm {
            weight: self.weight_algo,
            kv: self.kv_algo,
            opt: self.opt,
        }
    }

    /// A pipeline sharing this configuration's device, model, plan cache,
    /// and backend.
    pub(crate) fn pipeline(&self, scheme: QuantScheme) -> Pipeline {
        Pipeline::with_cache(
            self.gpu.clone(),
            self.model,
            scheme,
            Arc::clone(&self.plan_cache),
        )
        .with_backend(Arc::clone(&self.backend))
    }
}

/// Builder for [`Engine`] (see [`Engine::builder`]).
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    gpu: GpuSpec,
    weight_algo: VqAlgorithm,
    kv_algo: VqAlgorithm,
    opt: OptLevel,
    model: LlamaConfig,
    backend: Option<Arc<dyn Backend>>,
    plan_cache: Option<Arc<PlanCache>>,
    serve: ServeConfig,
    profile: ProfileConfig,
    plan_cache_path: Option<PathBuf>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            gpu: GpuSpec::rtx4090(),
            weight_algo: VqAlgorithm::QuipSharp4,
            kv_algo: VqAlgorithm::Cq4,
            opt: OptLevel::O4,
            model: LlamaConfig::llama_7b(),
            backend: None,
            plan_cache: None,
            serve: ServeConfig::default(),
            profile: ProfileConfig::default(),
            plan_cache_path: None,
        }
    }
}

impl EngineBuilder {
    /// Target device (default: RTX 4090, the paper's primary testbed).
    pub fn gpu(mut self, gpu: GpuSpec) -> Self {
        self.gpu = gpu;
        self
    }

    /// Weight quantization algorithm (default: QuiP#-4).
    pub fn weight_algo(mut self, algo: VqAlgorithm) -> Self {
        self.weight_algo = algo;
        self
    }

    /// KV-cache quantization algorithm (default: CQ-4).
    pub fn kv_algo(mut self, algo: VqAlgorithm) -> Self {
        self.kv_algo = algo;
        self
    }

    /// Optimization level for generated kernels (default: O4, the shipped
    /// fully-adaptive configuration).
    pub fn opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self
    }

    /// Model shape for end-to-end projections and KV-window validation
    /// (default: Llama-7B).
    pub fn model(mut self, model: LlamaConfig) -> Self {
        self.model = model;
        self
    }

    /// Execution backend (default: [`PerfModelBackend`]).
    pub fn backend(mut self, backend: Arc<dyn Backend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Selects one of the shipped backends by kind.
    pub fn backend_kind(self, kind: BackendKind) -> Self {
        self.backend(kind.instantiate())
    }

    /// Shortcut for `backend_kind(BackendKind::Cpu { threads })`: real
    /// host execution with `threads` worker partitions (`0` = the
    /// machine's available parallelism).
    pub fn cpu_threads(self, threads: usize) -> Self {
        self.backend_kind(BackendKind::Cpu { threads })
    }

    /// Shares an existing plan cache (default: a fresh empty cache).
    pub fn plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// Engine-wide admission and batching limits (default: batch 8,
    /// queue 64).
    pub fn serve_config(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }

    /// Per-context profile-feedback policy (default: check every 16
    /// steps, replan at KS divergence > 0.05; use
    /// [`ProfileConfig::disabled`] to plan from synthetic defaults and
    /// never replan).
    pub fn profile_config(mut self, profile: ProfileConfig) -> Self {
        self.profile = profile;
        self
    }

    /// Persists the plan cache at `path`: if the file exists when the
    /// engine is built, its entries are loaded so registration skips the
    /// cold-start planning pass, and [`Engine::save_plan_cache`] writes
    /// the warmed cache back to the same path.
    ///
    /// One caveat: a context whose profile **drifted** before the save
    /// had its registration-keyed attention entry invalidated by the
    /// replan, and the in-memory observed histogram does not survive a
    /// restart — so re-registering that context re-plans its attention
    /// shape once (from the registration profile, the honest state after
    /// a restart). Undrifted contexts and every linear plan warm-start
    /// as pure cache hits.
    pub fn plan_cache_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.plan_cache_path = Some(path.into());
        self
    }

    /// Validates the configuration and builds the engine.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::InvalidSession`] on an invalid
    /// device/algorithm combination and [`VqLlmError::Persistence`] when a
    /// configured plan-cache file exists but cannot be read.
    pub fn build(self) -> Result<Engine> {
        let shared = build_shared(
            self.gpu,
            self.weight_algo,
            self.kv_algo,
            self.opt,
            self.model,
            self.backend,
            self.plan_cache,
        )?;
        if let Some(path) = &self.plan_cache_path {
            if path.exists() {
                shared
                    .plan_cache
                    .load_from(path)
                    .map_err(|e| VqLlmError::Persistence {
                        what: "loading the plan cache",
                        detail: format!("{}: {e}", path.display()),
                    })?;
            }
        }
        let server = MultiServer::new(shared.pipeline(shared.scheme()), self.serve, self.profile)?;
        Ok(Engine {
            shared,
            server,
            plan_cache_path: self.plan_cache_path,
        })
    }
}

/// Validates the shared configuration (one validation path for both the
/// [`Engine`] and the [`Session`](crate::Session) builders).
pub(crate) fn build_shared(
    gpu: GpuSpec,
    weight_algo: VqAlgorithm,
    kv_algo: VqAlgorithm,
    opt: OptLevel,
    model: LlamaConfig,
    backend: Option<Arc<dyn Backend>>,
    cache: Option<Arc<PlanCache>>,
) -> Result<Arc<EngineShared>> {
    if !weight_algo.is_weight_algorithm() {
        return Err(VqLlmError::InvalidSession {
            what: "weight_algo",
            detail: format!(
                "{} is a KV-cache algorithm; expected one of {:?}",
                weight_algo.name(),
                VqAlgorithm::WEIGHT.map(|a| a.name()),
            ),
        });
    }
    if kv_algo.is_weight_algorithm() {
        return Err(VqLlmError::InvalidSession {
            what: "kv_algo",
            detail: format!(
                "{} is a weight algorithm; expected one of {:?}",
                kv_algo.name(),
                VqAlgorithm::KV_CACHE.map(|a| a.name()),
            ),
        });
    }
    if gpu.num_sms == 0 || gpu.dram_bw_gbps <= 0.0 {
        return Err(VqLlmError::InvalidSession {
            what: "gpu",
            detail: format!("degenerate device description: {gpu}"),
        });
    }
    Ok(Arc::new(EngineShared {
        gpu_identity: plan_cache::gpu_identity(&gpu),
        gpu,
        weight_algo,
        kv_algo,
        opt,
        model,
        backend: backend.unwrap_or_else(|| Arc::new(PerfModelBackend)),
        plan_cache: cache.unwrap_or_default(),
    }))
}

/// A multi-context serving engine: one backend + one shared plan cache +
/// a registry of quantized contexts, driven by the typed
/// submit/poll/step lifecycle.
///
/// [`Engine::session`] hands out [`Session`] views — the single-context
/// compatibility facade — sharing this engine's backend, plan cache, and
/// configuration.
#[derive(Debug)]
pub struct Engine {
    shared: Arc<EngineShared>,
    server: MultiServer,
    plan_cache_path: Option<PathBuf>,
}

impl Engine {
    /// Starts a builder with the paper's shipped defaults (RTX 4090,
    /// QuiP#-4 weights, CQ-4 KV, O4).
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    // --- configuration accessors ---

    /// The target device.
    pub fn gpu(&self) -> &GpuSpec {
        &self.shared.gpu
    }

    /// The configured model shape.
    pub fn model(&self) -> LlamaConfig {
        self.shared.model
    }

    /// The quantization scheme the engine serves under.
    pub fn scheme(&self) -> QuantScheme {
        self.shared.scheme()
    }

    /// The execution backend.
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.shared.backend
    }

    /// The shared plan cache.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.shared.plan_cache
    }

    /// Hit/miss counters of the shared plan cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.plan_cache.stats()
    }

    /// The engine-wide admission/batching limits.
    pub fn serve_config(&self) -> ServeConfig {
        self.server.config()
    }

    /// The per-context profile-feedback policy.
    pub fn profile_config(&self) -> ProfileConfig {
        self.server.profile_config()
    }

    // --- the context registry ---

    /// Registers a quantized context: warms its canonical plans in the
    /// shared plan cache (measured access profiles under an enabled
    /// profile config) and returns the typed handle requests are tagged
    /// with.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::Pipeline`] when no launchable plan exists
    /// for the context's serving shapes.
    pub fn register_context(&mut self, ctx: SharedContext) -> Result<ContextHandle> {
        Ok(self.server.register_context(ctx)?)
    }

    /// Registered contexts.
    pub fn context_count(&self) -> usize {
        self.server.context_count()
    }

    /// The shared quantized context behind a handle.
    pub fn context(&self, handle: ContextHandle) -> Option<&SharedContext> {
        self.server.context(handle)
    }

    /// Profile-feedback counters of a registered context (steps served,
    /// tokens profiled, replans under shifted profiles).
    pub fn context_stats(&self, handle: ContextHandle) -> Option<ContextStats> {
        self.server.context_stats(handle)
    }

    /// The canonical attention plan a context's batch groups execute.
    pub fn attention_plan(&self, handle: ContextHandle) -> Option<&Arc<vqllm_core::KernelPlan>> {
        self.server.attention_plan(handle)
    }

    /// The canonical linear plan a context's batch groups execute.
    pub fn linear_plan(&self, handle: ContextHandle) -> Option<&Arc<vqllm_core::KernelPlan>> {
        self.server.linear_plan(handle)
    }

    // --- sessions ---

    /// A [`Session`] view bound to a registered context: it shares this
    /// engine's backend, plan cache, and configuration, and exposes the
    /// single-context API (`serve`, `quantize_*`, `run_*`) against that
    /// context.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::Pipeline`] with
    /// [`LlmError::UnknownContext`](vqllm_llm::LlmError::UnknownContext)
    /// when the handle was not issued by this engine.
    pub fn session(&self, handle: ContextHandle) -> Result<Session> {
        let ctx = self
            .server
            .context(handle)
            .ok_or(VqLlmError::Pipeline(vqllm_llm::LlmError::UnknownContext {
                id: handle.id(),
            }))?
            .clone();
        Ok(Session::view(Arc::clone(&self.shared), Some((handle, ctx))))
    }

    /// An unbound [`Session`] view (no context attached) sharing this
    /// engine's backend, plan cache, and configuration — the planning /
    /// quantization front end.
    pub fn session_unbound(&self) -> Session {
        Session::view(Arc::clone(&self.shared), None)
    }

    // --- the typed request lifecycle ---

    /// Submits a decode request against a registered context. **Never
    /// fails**: a refused request gets a handle whose [`Engine::poll`]
    /// reports [`RequestStatus::Rejected`] with the typed reason.
    pub fn submit(&mut self, ctx: ContextHandle, req: DecodeRequest) -> RequestHandle {
        self.server.submit(ctx, req)
    }

    /// Submits a decode request, erroring on refusal (the `Result`-shaped
    /// twin of [`Engine::submit`]).
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::Pipeline`] carrying the admission error.
    pub fn try_submit(&mut self, ctx: ContextHandle, req: DecodeRequest) -> Result<RequestHandle> {
        Ok(self.server.try_submit(ctx, req)?)
    }

    /// Where a submitted request currently is in its typed lifecycle.
    pub fn poll(&self, handle: &RequestHandle) -> RequestStatus {
        self.server.poll(handle)
    }

    /// The output of a finished request, if ready.
    pub fn output(&self, handle: &RequestHandle) -> Option<&RequestOutput> {
        self.server.output(handle)
    }

    /// Removes and returns the output of a finished request.
    pub fn take_output(&mut self, handle: &RequestHandle) -> Option<RequestOutput> {
        self.server.take_output(handle)
    }

    /// The hidden-state rows a live request has decoded so far — the
    /// streaming seam the network driver diffs after every step (see
    /// [`MultiServer::partial_output`](vqllm_llm::MultiServer::partial_output)).
    pub fn partial_output(&self, handle: &RequestHandle) -> Option<&[Vec<f32>]> {
        self.server.partial_output(handle)
    }

    /// Cancels a live request: frees its decode slot or queue entry and
    /// resolves the handle to [`RequestStatus::Rejected`] with
    /// [`RejectReason::Cancelled`](vqllm_llm::RejectReason::Cancelled).
    /// Returns `false` (and changes nothing) when the request is not live.
    pub fn cancel(&mut self, handle: &RequestHandle) -> bool {
        self.server.cancel(handle)
    }

    /// Cancels every live request in one sweep — the escalation a
    /// graceful drain applies when its deadline passes with work still in
    /// flight. Returns how many queued or running requests were
    /// cancelled; finished outputs stay collectable.
    pub fn cancel_all(&mut self) -> usize {
        self.server.cancel_all()
    }

    /// One decode step across every live context group.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::Kernel`] if a kernel rejects its inputs (the
    /// admission invariants make this unreachable under normal use).
    pub fn step(&mut self) -> Result<StepReport> {
        Ok(self.server.step()?)
    }

    /// Steps until every submitted request has finished.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Engine::step`] error.
    pub fn run_until_drained(&mut self) -> Result<Vec<StepReport>> {
        Ok(self.server.run_until_drained()?)
    }

    /// Requests waiting for a slot.
    pub fn queued(&self) -> usize {
        self.server.queued()
    }

    /// Requests currently holding a decode slot.
    pub fn running(&self) -> usize {
        self.server.running()
    }

    /// Whether no request is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.server.is_idle()
    }

    /// Cumulative scheduler counters.
    pub fn stats(&self) -> ServerStats {
        self.server.stats()
    }

    // --- plan-cache persistence ---

    /// Writes the warmed plan cache to the path configured via
    /// [`EngineBuilder::plan_cache_path`], so the next engine built with
    /// the same path skips cold-start planning. Returns the number of
    /// entries written.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::Persistence`] when no path is configured or
    /// the file cannot be written.
    pub fn save_plan_cache(&self) -> Result<usize> {
        let Some(path) = &self.plan_cache_path else {
            return Err(VqLlmError::Persistence {
                what: "saving the plan cache",
                detail: "no plan_cache_path configured on the builder".to_string(),
            });
        };
        self.save_plan_cache_to(path)
    }

    /// Writes the warmed plan cache to an explicit path.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::Persistence`] when the file cannot be
    /// written.
    pub fn save_plan_cache_to(&self, path: impl AsRef<Path>) -> Result<usize> {
        let path = path.as_ref();
        self.shared
            .plan_cache
            .save_to(path)
            .map_err(|e| VqLlmError::Persistence {
                what: "saving the plan cache",
                detail: format!("{}: {e}", path.display()),
            })
    }
}
