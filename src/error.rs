//! The workspace-wide error type.
//!
//! Every crate in the workspace keeps its own narrow error enum
//! (`CoreError`, `VqError`, `GpuError`, `KernelError`, `LlmError`,
//! `TensorError`) so low-level callers pay for exactly what they use.
//! [`VqLlmError`] is the facade's union of all of them plus the
//! [`Session`](crate::Session) builder's own validation failures, with
//! `From` impls so `?` flows every subsystem error into one type with its
//! structured context intact.

use vqllm_core::CoreError;
use vqllm_gpu::GpuError;
use vqllm_kernels::KernelError;
use vqllm_llm::LlmError;
use vqllm_tensor::TensorError;
use vqllm_vq::VqError;

/// Any failure the VQ-LLM stack can produce, with structured context.
#[derive(Debug, Clone, PartialEq)]
pub enum VqLlmError {
    /// Kernel planning failed (no launchable configuration).
    Planning(CoreError),
    /// Quantization (training, encoding, or configuration) failed.
    Quantization(VqError),
    /// The GPU performance model rejected a configuration.
    Gpu(GpuError),
    /// A kernel rejected its inputs.
    Kernel(KernelError),
    /// The end-to-end pipeline rejected its configuration.
    Pipeline(LlmError),
    /// A tensor operation failed.
    Tensor(TensorError),
    /// The [`Session`](crate::Session) builder rejected its configuration.
    InvalidSession {
        /// Which builder field was wrong.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// Plan-cache persistence (load at engine build, save on request)
    /// failed — a missing configured path, an unreadable/corrupt file, or
    /// an I/O error while writing.
    Persistence {
        /// What the engine was doing.
        what: &'static str,
        /// Path and underlying error.
        detail: String,
    },
}

impl std::fmt::Display for VqLlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VqLlmError::Planning(e) => write!(f, "planning: {e}"),
            VqLlmError::Quantization(e) => write!(f, "quantization: {e}"),
            VqLlmError::Gpu(e) => write!(f, "gpu model: {e}"),
            VqLlmError::Kernel(e) => write!(f, "kernel: {e}"),
            VqLlmError::Pipeline(e) => write!(f, "pipeline: {e}"),
            VqLlmError::Tensor(e) => write!(f, "tensor: {e}"),
            VqLlmError::InvalidSession { what, detail } => {
                write!(f, "invalid session config ({what}): {detail}")
            }
            VqLlmError::Persistence { what, detail } => {
                write!(f, "plan-cache persistence ({what}): {detail}")
            }
        }
    }
}

impl std::error::Error for VqLlmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VqLlmError::Planning(e) => Some(e),
            VqLlmError::Quantization(e) => Some(e),
            VqLlmError::Gpu(e) => Some(e),
            VqLlmError::Kernel(e) => Some(e),
            VqLlmError::Pipeline(e) => Some(e),
            VqLlmError::Tensor(e) => Some(e),
            VqLlmError::InvalidSession { .. } | VqLlmError::Persistence { .. } => None,
        }
    }
}

impl From<CoreError> for VqLlmError {
    fn from(e: CoreError) -> Self {
        VqLlmError::Planning(e)
    }
}

impl From<VqError> for VqLlmError {
    fn from(e: VqError) -> Self {
        VqLlmError::Quantization(e)
    }
}

impl From<GpuError> for VqLlmError {
    fn from(e: GpuError) -> Self {
        VqLlmError::Gpu(e)
    }
}

impl From<KernelError> for VqLlmError {
    fn from(e: KernelError) -> Self {
        match e {
            // Backend planning failures carry a full CoreError; surface
            // them as Planning so callers see the same structured context
            // regardless of which seam the planner ran behind.
            KernelError::Unplannable(core) => VqLlmError::Planning(core),
            other => VqLlmError::Kernel(other),
        }
    }
}

impl From<LlmError> for VqLlmError {
    fn from(e: LlmError) -> Self {
        match e {
            // The serving decode loop flows kernel failures through
            // `LlmError`; unwrap them so callers see the same structured
            // context as a direct kernel call (including Unplannable →
            // Planning).
            LlmError::Kernel(k) => VqLlmError::from(k),
            other => VqLlmError::Pipeline(other),
        }
    }
}

impl From<TensorError> for VqLlmError {
    fn from(e: TensorError) -> Self {
        VqLlmError::Tensor(e)
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, VqLlmError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn from_impls_preserve_context() {
        let core = CoreError::Unplannable(Box::new(vqllm_core::Unplannable {
            what: "test",
            op: vqllm_core::ComputeOp::Gemv {
                n: 1,
                k: 1,
                batch: 1,
            },
            vq: vqllm_vq::VqAlgorithm::Cq2.config(),
            opt_level: vqllm_core::OptLevel::O4,
            gpu: "test-gpu".to_string(),
            resources: vqllm_gpu::BlockResources::new(256, 255, 1 << 20),
        }));
        let e: VqLlmError = core.clone().into();
        assert_eq!(e, VqLlmError::Planning(core));
        assert!(e.to_string().contains("test-gpu"));
        assert!(e.source().is_some());

        let e: VqLlmError = VqError::InvalidConfig {
            what: "x",
            value: 0,
        }
        .into();
        assert!(matches!(e, VqLlmError::Quantization(_)));
        assert!(e.to_string().contains("quantization"));
    }

    #[test]
    fn invalid_session_has_no_source() {
        let e = VqLlmError::InvalidSession {
            what: "weight_algo",
            detail: "CQ-4 is a KV-cache algorithm".to_string(),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("weight_algo"));
    }
}
