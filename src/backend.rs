//! Pluggable execution backends (re-exported from `vqllm-kernels`).
//!
//! The [`Backend`] trait lives in [`vqllm_kernels::backend`] so both this
//! facade *and* the end-to-end [`Pipeline`](crate::Pipeline) can execute
//! through it; this module re-exports it together with the shipped
//! implementations and adds [`BackendKind`], the ergonomic selector for
//! [`SessionBuilder`](crate::SessionBuilder):
//!
//! * [`PerfModelBackend`] — the GPU performance model (the workspace's
//!   documented hardware substitution).
//! * [`CpuBackend`] — real host execution of the fused kernels
//!   ([`vqllm_kernels::host_exec`]): LUT GeMV, aggregation GeMV, streamed
//!   fused GeMM and attention decode, all directly on packed codes.

use std::sync::Arc;

pub use vqllm_kernels::backend::{Backend, CpuBackend, PerfModelBackend};

/// Which shipped backend a [`SessionBuilder`](crate::SessionBuilder)
/// should instantiate (use [`SessionBuilder::backend`] to supply a custom
/// implementation instead).
///
/// [`SessionBuilder::backend`]: crate::SessionBuilder::backend
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The GPU performance model ([`PerfModelBackend`]) — plans and
    /// estimates; functional execution flows through the modelled
    /// codebook cache.
    PerfModel,
    /// Real host execution ([`CpuBackend`]) with `threads` worker
    /// partitions on the parallel paths (`0` means auto-detect).
    ///
    /// Partitions execute on the process-wide persistent
    /// [`vqllm_kernels::host_exec::pool::WorkerPool`], spawned once at
    /// backend instantiation and shared by every backend/session in the
    /// process — kernel calls enqueue work instead of spawning threads,
    /// so parallel decode never pays per-call thread startup.
    Cpu {
        /// Worker partitions (`0` = available parallelism).
        threads: usize,
    },
}

impl BackendKind {
    /// Instantiates the selected backend.
    pub fn instantiate(self) -> Arc<dyn Backend> {
        match self {
            BackendKind::PerfModel => Arc::new(PerfModelBackend),
            BackendKind::Cpu { threads: 0 } => Arc::new(CpuBackend::auto()),
            BackendKind::Cpu { threads } => Arc::new(CpuBackend::with_threads(threads)),
        }
    }
}
