//! Pluggable execution backends.
//!
//! A [`Backend`] is everything a [`Session`](crate::Session) needs from an
//! execution substrate: planning a fused kernel, estimating a plan's
//! latency, and functionally executing a plan against real data. The
//! shipped implementation, [`PerfModelBackend`], runs on the workspace's
//! GPU performance model (the documented hardware substitution). The trait
//! is the seam where a real-GPU (CUDA/HIP) or host-SIMD backend plugs in
//! later without touching any `Session` consumer.

use crate::error::Result;
use vqllm_core::{ComputeOp, KernelPlan, KernelPlanner, OptLevel, ProfileSummary};
use vqllm_gpu::GpuSpec;
use vqllm_kernels::{vq_kernel, AccessProfile, KernelOutput};
use vqllm_tensor::Tensor2D;
use vqllm_vq::{QuantizedTensor, VqConfig};

/// An execution substrate for fused VQ kernels.
///
/// Implementations must be thread-safe: one backend instance is shared by
/// every clone of a `Session` and by the plan cache's racing planners.
pub trait Backend: std::fmt::Debug + Send + Sync {
    /// Short backend name for reports and debugging.
    fn name(&self) -> &'static str;

    /// Plans `op` under `vq` at one rung of the optimization ladder.
    ///
    /// # Errors
    ///
    /// Returns an error when no launchable configuration exists.
    fn plan_at(
        &self,
        gpu: &GpuSpec,
        vq: &VqConfig,
        op: &ComputeOp,
        level: OptLevel,
        profile: &ProfileSummary,
    ) -> Result<KernelPlan>;

    /// Plans at every rung and returns the fastest plan (the paper's
    /// adaptive "best perform version").
    ///
    /// # Errors
    ///
    /// Returns an error when no rung yields a launchable configuration.
    fn best_plan(
        &self,
        gpu: &GpuSpec,
        vq: &VqConfig,
        op: &ComputeOp,
        profile: &AccessProfile,
    ) -> Result<(KernelPlan, KernelOutput)>;

    /// Latency/counter estimate for an existing plan.
    fn estimate(&self, gpu: &GpuSpec, plan: &KernelPlan, profile: &AccessProfile) -> KernelOutput;

    /// Functionally executes a fused GeMM: `A × dequant(Wq)`.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches.
    fn run_gemm(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        a: &Tensor2D,
        wq: &QuantizedTensor,
    ) -> Result<(Tensor2D, KernelOutput)>;

    /// Functionally executes a fused GeMV: `xᵀ × dequant(Wq)`.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches.
    fn run_gemv(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        x: &[f32],
        wq: &QuantizedTensor,
    ) -> Result<(Vec<f32>, KernelOutput)>;

    /// Functionally executes one head of fused attention decode over
    /// quantized K/V caches.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches.
    fn run_attention_head(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        q: &[f32],
        kq: &QuantizedTensor,
        vq: &QuantizedTensor,
    ) -> Result<(Vec<f32>, KernelOutput)>;
}

/// The GPU performance-model backend (the workspace's documented hardware
/// substitution): plans with [`KernelPlanner`], estimates with the
/// roofline timing model, and executes functionally on the host while
/// tallying modelled memory behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfModelBackend;

impl PerfModelBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        PerfModelBackend
    }
}

impl Backend for PerfModelBackend {
    fn name(&self) -> &'static str {
        "perf-model"
    }

    fn plan_at(
        &self,
        gpu: &GpuSpec,
        vq: &VqConfig,
        op: &ComputeOp,
        level: OptLevel,
        profile: &ProfileSummary,
    ) -> Result<KernelPlan> {
        Ok(KernelPlanner::new(gpu.clone()).plan_at(vq, op, level, profile)?)
    }

    fn best_plan(
        &self,
        gpu: &GpuSpec,
        vq: &VqConfig,
        op: &ComputeOp,
        profile: &AccessProfile,
    ) -> Result<(KernelPlan, KernelOutput)> {
        Ok(vq_kernel::best_plan(gpu, vq, op, profile)?)
    }

    fn estimate(&self, gpu: &GpuSpec, plan: &KernelPlan, profile: &AccessProfile) -> KernelOutput {
        vq_kernel::estimate(gpu, plan, profile)
    }

    fn run_gemm(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        a: &Tensor2D,
        wq: &QuantizedTensor,
    ) -> Result<(Tensor2D, KernelOutput)> {
        Ok(vq_kernel::run_gemm(gpu, plan, a, wq)?)
    }

    fn run_gemv(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        x: &[f32],
        wq: &QuantizedTensor,
    ) -> Result<(Vec<f32>, KernelOutput)> {
        Ok(vq_kernel::run_gemv(gpu, plan, x, wq)?)
    }

    fn run_attention_head(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        q: &[f32],
        kq: &QuantizedTensor,
        vq: &QuantizedTensor,
    ) -> Result<(Vec<f32>, KernelOutput)> {
        Ok(vq_kernel::run_attention_head(gpu, plan, q, kq, vq)?)
    }
}
