//! The TCP front end: a line-protocol server over `std::net` that
//! exposes a driven engine to remote clients.
//!
//! Threading model (all plain `std` threads, no async runtime):
//!
//! * one **accept** thread owns the `TcpListener` and spawns a pair of
//!   threads per connection (refusing accepts past
//!   [`NetConfig::max_connections`] with a typed `conn_rejected` frame);
//! * each connection's **reader** thread parses one frame per line
//!   ([`proto::parse_frame`], capped at [`NetConfig::line_length_cap`]
//!   bytes) and acts on the shared [`Client`] — submit into the fair
//!   queue, poll, cancel, stats, ping;
//! * each connection's **writer** thread drains a **bounded**
//!   [`FrameQueue`] of pre-rendered frames. The driver thread pushes
//!   streaming events into that queue through the request's
//!   [`StreamSink`], and the reader pushes verb replies; the queue
//!   serializes them, so a client sees `hello`, then `accepted`, then
//!   `token`s in decode order, then `done`.
//!
//! # Load behavior
//!
//! The writer queue is where backpressure lives. A client that stops
//! reading while the driver streams at full tilt would, with an
//! unbounded channel, buffer frames without limit — one stalled
//! consumer could take the process down. Instead the queue holds at
//! most [`NetConfig::writer_queue_cap`] frames with two watermarks:
//!
//! * at the **hard** cap a push from the driver cannot be absorbed and
//!   the connection is evicted immediately;
//! * continuously above the **soft** watermark (half the cap) for
//!   longer than [`NetConfig::slow_reader_grace`], the connection is
//!   evicted by the reader's poll tick.
//!
//! Eviction never blocks the driver and never drops a frame for a
//! healthy connection: frames queued before a normal close are flushed,
//! only an evicted (or errored) connection's queue is discarded. The
//! reader cancels the connection's in-flight tickets on every exit path
//! — eviction, EOF, read error, idle timeout — so decode slots free up
//! as soon as their consumer is gone.
//!
//! Shutdown is cooperative: readers use a short socket read timeout to
//! observe the stop flag, the accept thread is woken by a loopback
//! connection, and the driver resolves every in-flight ticket as
//! cancelled ([`DriverHandle::shutdown`]). [`NetServer::drain`] is the
//! graceful variant: new work is rejected (typed `draining`), in-flight
//! requests finish and flush, and only the deadline escalates to
//! cancellation.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use vqllm_llm::serve::ContextHandle;
use vqllm_llm::DecodeRequest;

use crate::engine::Engine;
use crate::net::admission::{AdmissionConfig, NetRequest};
use crate::net::driver::{
    self, Client, DrainReport, DriverHandle, EngineFactory, HandleTable, StreamEvent,
    SupervisorConfig, Ticket,
};
use crate::net::metrics::{DisconnectReason, Metrics};
use crate::net::proto::{self, ClientFrame};

/// How long a connection reader blocks before re-checking the stop
/// flag, idle clock, and slow-reader grace.
const READ_POLL: Duration = Duration::from_millis(50);

/// Send timeout on connection writers: bounds how long a final flush to
/// a non-reading peer can stall a connection's teardown.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Connection-lifecycle limits of the TCP front end (the knobs that are
/// about sockets rather than scheduling — scheduling policy lives in
/// [`AdmissionConfig`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Concurrent connections accepted; past this, an accept is answered
    /// with a `conn_rejected` frame and closed.
    pub max_connections: usize,
    /// Disconnect a connection that has not sent a complete frame for
    /// this long (`ping` counts as activity; `None` disables reaping).
    pub idle_timeout: Option<Duration>,
    /// Longest request line accepted, in bytes; a longer line gets a
    /// typed `error` frame and a disconnect instead of unbounded
    /// buffering.
    pub line_length_cap: usize,
    /// Hard bound on frames queued to one connection's writer; a push
    /// that would exceed it evicts the connection.
    pub writer_queue_cap: usize,
    /// How long a connection may hold its writer queue above the soft
    /// watermark (half of [`NetConfig::writer_queue_cap`]) before it is
    /// evicted as a slow reader.
    pub slow_reader_grace: Duration,
    /// When set, the server emits a `ping` frame after this long without
    /// sending anything else (lets clients distinguish an idle server
    /// from a dead one).
    pub keepalive_interval: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 256,
            idle_timeout: Some(Duration::from_secs(300)),
            line_length_cap: 1 << 20,
            writer_queue_cap: 256,
            slow_reader_grace: Duration::from_secs(2),
            keepalive_interval: None,
        }
    }
}

/// The bounded per-connection frame queue between producers (driver
/// sink, reader replies) and the connection's writer thread.
///
/// Pushes never block: a push that would pass the hard cap reports
/// [`PushOutcome::Overflow`] and the caller evicts the connection. The
/// soft watermark starts a grace clock instead, so a reader that is
/// merely behind gets [`NetConfig::slow_reader_grace`] to catch up.
struct FrameQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    /// Hard cap (eviction on the push that would exceed it).
    cap: usize,
    /// Soft watermark (grace clock starts here).
    soft: usize,
}

struct QueueState {
    frames: VecDeque<String>,
    /// No more pushes; the writer drains what is queued, then exits.
    closed: bool,
    /// Discard everything and exit now (the eviction path).
    aborted: bool,
    /// When the depth first crossed the soft watermark (cleared when it
    /// sinks back below).
    over_soft_since: Option<Instant>,
    /// Deepest the queue has been.
    peak: usize,
}

/// What happened to a [`FrameQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PushOutcome {
    /// Queued (or silently dropped because the queue already closed —
    /// nothing is listening).
    Ok,
    /// The push would exceed the hard cap: evict the connection.
    Overflow,
}

impl FrameQueue {
    fn new(cap: usize) -> FrameQueue {
        let cap = cap.max(2);
        FrameQueue {
            state: Mutex::new(QueueState {
                frames: VecDeque::new(),
                closed: false,
                aborted: false,
                over_soft_since: None,
                peak: 0,
            }),
            cv: Condvar::new(),
            cap,
            soft: (cap / 2).max(1),
        }
    }

    /// Queues one frame; never blocks. Returns the depth after the push
    /// alongside the outcome so callers can feed the peak-depth gauge.
    fn push(&self, frame: String) -> (PushOutcome, usize) {
        let mut s = super::lock_recover(&self.state);
        if s.closed || s.aborted {
            return (PushOutcome::Ok, s.frames.len());
        }
        if s.frames.len() >= self.cap {
            return (PushOutcome::Overflow, s.frames.len());
        }
        s.frames.push_back(frame);
        let depth = s.frames.len();
        s.peak = s.peak.max(depth);
        if depth >= self.soft {
            s.over_soft_since.get_or_insert_with(Instant::now);
        }
        drop(s);
        self.cv.notify_one();
        (PushOutcome::Ok, depth)
    }

    /// The writer thread's blocking pop: `None` when the queue is done
    /// (closed and drained, or aborted).
    fn pop_blocking(&self) -> Option<String> {
        let mut s = super::lock_recover(&self.state);
        loop {
            if s.aborted {
                return None;
            }
            if let Some(frame) = s.frames.pop_front() {
                if s.frames.len() < self.soft {
                    s.over_soft_since = None;
                }
                return Some(frame);
            }
            if s.closed {
                return None;
            }
            s = self
                .cv
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Whether the queue has sat at or above the soft watermark for
    /// longer than `grace` (the reader's poll-tick eviction check).
    fn slow_expired(&self, grace: Duration) -> bool {
        let s = super::lock_recover(&self.state);
        matches!(s.over_soft_since, Some(t) if t.elapsed() > grace)
    }

    /// No more pushes; queued frames still flush (the normal-close
    /// path).
    fn close(&self) {
        let mut s = super::lock_recover(&self.state);
        s.closed = true;
        drop(s);
        self.cv.notify_all();
    }

    /// Discard everything, exit now (the eviction path — the client is
    /// not reading, so the queued frames have no consumer).
    fn abort(&self) {
        let mut s = super::lock_recover(&self.state);
        s.aborted = true;
        s.frames.clear();
        drop(s);
        self.cv.notify_all();
    }

    /// Deepest the queue has been.
    fn peak(&self) -> usize {
        super::lock_recover(&self.state).peak
    }
}

/// Everything the driver sink, reader, and writer share about one
/// connection.
struct Conn {
    queue: FrameQueue,
    /// A clone of the socket used only for `shutdown` — waking the
    /// reader and unblocking a writer mid-`write_all` from any thread.
    sock: TcpStream,
    /// The first close reason wins; later ones are ignored.
    closing: Mutex<Option<DisconnectReason>>,
    /// Tickets submitted over this connection (cancelled on exit).
    tickets: Mutex<HashMap<u64, Ticket>>,
}

impl Conn {
    /// Records the close reason (first caller wins), discards the
    /// writer queue, and shuts the socket down so the reader and writer
    /// wake immediately. Safe from any thread, including the driver's.
    fn evict(&self, reason: DisconnectReason) {
        let mut c = super::lock_recover(&self.closing);
        if c.is_none() {
            *c = Some(reason);
        }
        drop(c);
        self.queue.abort();
        let _ = self.sock.shutdown(Shutdown::Both);
    }

    /// The recorded close reason, if any path set one.
    fn close_reason(&self) -> Option<DisconnectReason> {
        *super::lock_recover(&self.closing)
    }
}

/// What the accept loop hands every connection thread.
struct ConnCtx {
    client: Client,
    /// Live context handles by protocol index — shared with the driver
    /// supervisor, which republishes fresh handles after an engine
    /// rebuild (so connections survive a driver restart).
    contexts: Arc<HandleTable>,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    cfg: NetConfig,
    metrics: Arc<Metrics>,
    started: Instant,
}

/// A serving engine bound to a TCP address.
///
/// Construction takes ownership of a configured [`Engine`] (contexts
/// already registered — the handles, in order, become the protocol's
/// `ctx` indices), spawns the driver thread, and starts accepting
/// connections. [`NetServer::shutdown`] (or drop) stops everything;
/// [`NetServer::drain`] is the graceful variant.
pub struct NetServer {
    addr: SocketAddr,
    client: Client,
    driver: Option<DriverHandle>,
    stop: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Binds `addr` with default [`NetConfig`] limits. See
    /// [`NetServer::bind_with`].
    ///
    /// # Errors
    ///
    /// Returns the `TcpListener` bind error.
    pub fn bind(
        engine: Engine,
        contexts: Vec<ContextHandle>,
        cfg: AdmissionConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<NetServer> {
        NetServer::bind_with(engine, contexts, cfg, NetConfig::default(), addr)
    }

    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// serving `engine` over the line protocol. `contexts` maps the
    /// protocol's `ctx` index to registered context handles; `net`
    /// bounds the connection lifecycle (limits, timeouts, writer
    /// queues).
    ///
    /// # Errors
    ///
    /// Returns the `TcpListener` bind error.
    pub fn bind_with(
        engine: Engine,
        contexts: Vec<ContextHandle>,
        cfg: AdmissionConfig,
        net: NetConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let (client, driver) = driver::spawn(engine, cfg);
        let contexts = Arc::new(HandleTable::new(contexts));
        NetServer::serve_parts(listener, client, driver, contexts, net)
    }

    /// Binds `addr` and serves behind a **supervised** driver: the
    /// factory builds the engine (and re-registers its contexts), and a
    /// driver death mid-service resolves in-flight work as typed
    /// `driver_restarted`, rebuilds the engine through the factory, and
    /// keeps serving on the same sockets — see
    /// [`driver::spawn_supervised`].
    ///
    /// # Errors
    ///
    /// Returns the `TcpListener` bind error, or the factory's error
    /// (as `io::ErrorKind::Other`) if the initial engine build fails.
    pub fn bind_supervised(
        factory: EngineFactory,
        cfg: AdmissionConfig,
        sup: SupervisorConfig,
        net: NetConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let (client, driver, contexts) = driver::spawn_supervised(factory, cfg, sup)
            .map_err(|e| std::io::Error::other(format!("building the engine: {e}")))?;
        NetServer::serve_parts(listener, client, driver, contexts, net)
    }

    /// The common tail of every constructor: wires the accept loop over
    /// an already-bound listener and an already-spawned driver.
    fn serve_parts(
        listener: TcpListener,
        client: Client,
        driver: DriverHandle,
        contexts: Arc<HandleTable>,
        net: NetConfig,
    ) -> std::io::Result<NetServer> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let ctx = Arc::new(ConnCtx {
            client: client.clone(),
            contexts,
            stop: Arc::clone(&stop),
            draining: Arc::clone(&draining),
            metrics: client.metrics_shared(),
            cfg: net,
            started: Instant::now(),
        });
        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::new(AtomicUsize::new(0));
            thread::Builder::new()
                .name("vq-llm-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(mut stream) = conn else { continue };
                        if ctx.draining.load(Ordering::Acquire) {
                            // Draining: answer with a typed rejection
                            // rather than silently refusing the dial.
                            let line = proto::conn_rejected_frame(
                                "draining",
                                "server draining, not accepting connections",
                                1_000,
                            );
                            let _ = writeln!(stream, "{line}");
                            continue;
                        }
                        // Plain capacity gate: the counter publishes no
                        // other data, so relaxed is enough (the check/add
                        // pair is racy regardless of ordering; the limit
                        // is a soft cap, not an exact one).
                        if conns.load(Ordering::Relaxed) >= ctx.cfg.max_connections.max(1) {
                            let line = proto::conn_rejected_frame(
                                "connection_limit",
                                "connection limit reached",
                                100,
                            );
                            let _ = writeln!(stream, "{line}");
                            continue;
                        }
                        conns.fetch_add(1, Ordering::Relaxed);
                        let ctx = Arc::clone(&ctx);
                        let conns = Arc::clone(&conns);
                        let _ =
                            thread::Builder::new()
                                .name("vq-llm-conn".into())
                                .spawn(move || {
                                    serve_connection(stream, ctx);
                                    conns.fetch_sub(1, Ordering::Relaxed);
                                });
                    }
                })
                .expect("spawn accept thread")
        };
        Ok(NetServer {
            addr,
            client,
            driver: Some(driver),
            stop,
            draining,
            accept: Some(accept),
        })
    }

    /// The bound address (with the OS-assigned port when bound to
    /// port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The in-process client handle to the same driver the socket
    /// clients reach — for embedding a server and local submissions in
    /// one process.
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// Stops accepting, stops the driver (unresolved tickets resolve as
    /// cancelled), and joins the accept thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Gracefully drains the server within `deadline`:
    ///
    /// 1. new connections and new submissions are rejected with typed
    ///    `draining` frames carrying a `retry_after_ms`;
    /// 2. requests already in flight decode to completion and their
    ///    frames flush to their clients (streamed bytes stay bitwise
    ///    identical to a solo decode — draining changes *when* the
    ///    server stops, never what it was computing);
    /// 3. whatever is still unfinished at the deadline is cancelled.
    ///
    /// Returns what happened to the in-flight work, then tears the
    /// sockets down like [`NetServer::shutdown`].
    pub fn drain(mut self, deadline: Duration) -> DrainReport {
        // Pairs with the accept loop's `Acquire` load: once observed,
        // new dials see the typed `draining` rejection.
        self.draining.store(true, Ordering::Release);
        let report = match self.driver.take() {
            Some(driver) => driver.drain(deadline),
            None => DrainReport {
                completed: 0,
                cancelled: 0,
            },
        };
        self.shutdown_inner();
        report
    }

    fn shutdown_inner(&mut self) {
        // Pairs with the `Acquire` loads in the accept loop and the
        // per-connection read loops; the loopback dial below makes the
        // accept loop re-check it promptly.
        self.stop.store(true, Ordering::Release);
        // Wake the accept loop with a throwaway loopback connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.accept.take() {
            let _ = join.join();
        }
        if let Some(driver) = self.driver.take() {
            driver.shutdown();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// How one attempt to read a capped line ended.
enum LineRead {
    /// A complete line (without the newline).
    Line(String),
    /// Clean EOF.
    Eof,
    /// The read timed out ([`READ_POLL`]); partial data stays buffered.
    TimedOut,
    /// The line exceeded [`NetConfig::line_length_cap`].
    TooLong,
    /// Socket error (including a local `shutdown` by the eviction
    /// path).
    Err,
}

/// Reads one newline-terminated line without ever buffering more than
/// `cap` bytes, via `fill_buf`/`consume` — the defense against a client
/// streaming an endless line.
fn read_capped_line(reader: &mut BufReader<TcpStream>, buf: &mut Vec<u8>, cap: usize) -> LineRead {
    loop {
        let available = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return LineRead::TimedOut;
            }
            Err(_) => return LineRead::Err,
        };
        if available.is_empty() {
            return if buf.is_empty() {
                LineRead::Eof
            } else {
                // Trailing bytes with no newline: treat like EOF (the
                // peer cannot complete the frame anymore).
                LineRead::Eof
            };
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > cap {
                    return LineRead::TooLong;
                }
                buf.extend_from_slice(available.get(..pos).unwrap_or_default());
                reader.consume(pos + 1);
                let line = String::from_utf8_lossy(buf).into_owned();
                buf.clear();
                return LineRead::Line(line);
            }
            None => {
                let n = available.len();
                if buf.len() + n > cap {
                    return LineRead::TooLong;
                }
                buf.extend_from_slice(available);
                reader.consume(n);
            }
        }
    }
}

/// One connection: reader loop here, writer thread alongside, bounded
/// queue between every producer and the socket.
fn serve_connection(stream: TcpStream, ctx: Arc<ConnCtx>) {
    ctx.metrics.connection_opened();
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let (Ok(write_half), Ok(shutdown_half)) = (stream.try_clone(), stream.try_clone()) else {
        ctx.metrics.connection_closed(DisconnectReason::Error);
        return;
    };
    let conn = Arc::new(Conn {
        queue: FrameQueue::new(ctx.cfg.writer_queue_cap),
        sock: shutdown_half,
        closing: Mutex::new(None),
        tickets: Mutex::new(HashMap::new()),
    });

    // The protocol handshake: the first frame a client ever sees names
    // the protocol version and the server's line cap.
    push_frame(
        &conn,
        &ctx.metrics,
        proto::hello_frame(ctx.cfg.line_length_cap),
    );

    let writer = {
        let conn = Arc::clone(&conn);
        thread::Builder::new()
            .name("vq-llm-conn-writer".into())
            .spawn(move || {
                let mut w = write_half;
                while let Some(line) = conn.queue.pop_blocking() {
                    if w.write_all(line.as_bytes()).is_err() || w.write_all(b"\n").is_err() {
                        conn.evict(DisconnectReason::Error);
                        break;
                    }
                    let _ = w.flush();
                }
            })
    };
    let Ok(writer) = writer else {
        // Thread exhaustion: this connection cannot be served. Drop it
        // instead of taking the whole server down with a panic.
        let _ = conn.sock.shutdown(Shutdown::Both);
        ctx.metrics.connection_closed(DisconnectReason::Error);
        return;
    };

    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    let mut last_frame = Instant::now();
    let mut last_sent_ping = Instant::now();
    // (reason, flush): whether queued frames still have a consumer worth
    // flushing to (a reader we are politely disconnecting) or not (a
    // peer that vanished or stopped reading).
    let (exit_reason, flush) = loop {
        // A reason recorded by another thread (driver overflow eviction,
        // writer error) ends the loop even while reads still succeed.
        if let Some(reason) = conn.close_reason() {
            break (reason, false);
        }
        match read_capped_line(&mut reader, &mut buf, ctx.cfg.line_length_cap) {
            LineRead::Line(line) => {
                last_frame = Instant::now();
                let line = line.trim().to_string();
                if !line.is_empty() {
                    handle_line(&line, &ctx, &conn);
                }
            }
            LineRead::Eof => break (DisconnectReason::Eof, true),
            LineRead::Err => {
                break (
                    conn.close_reason().unwrap_or(DisconnectReason::Error),
                    false,
                )
            }
            LineRead::TooLong => {
                push_frame(
                    &conn,
                    &ctx.metrics,
                    proto::error_frame(&format!(
                        "line exceeds cap of {} bytes; disconnecting",
                        ctx.cfg.line_length_cap
                    )),
                );
                break (DisconnectReason::Error, true);
            }
            LineRead::TimedOut => {
                if ctx.stop.load(Ordering::Acquire) {
                    break (DisconnectReason::Eof, true);
                }
                if conn.queue.slow_expired(ctx.cfg.slow_reader_grace) {
                    break (DisconnectReason::SlowReader, false);
                }
                if let Some(idle) = ctx.cfg.idle_timeout {
                    if last_frame.elapsed() > idle {
                        push_frame(
                            &conn,
                            &ctx.metrics,
                            proto::error_frame("idle timeout; disconnecting"),
                        );
                        break (DisconnectReason::Idle, true);
                    }
                }
                if let Some(interval) = ctx.cfg.keepalive_interval {
                    if last_sent_ping.elapsed() > interval {
                        last_sent_ping = Instant::now();
                        push_frame(&conn, &ctx.metrics, proto::ping_frame());
                    }
                }
            }
        }
    };

    let reason = conn.close_reason().unwrap_or(exit_reason);
    // Free the engine's slots: every ticket this connection still owns
    // is cancelled (a resolved ticket's cancel is a no-op).
    let tickets: Vec<Ticket> = super::lock_recover(&conn.tickets)
        .drain()
        .map(|(_, t)| t)
        .collect();
    for t in &tickets {
        ctx.client.cancel(t);
    }
    if flush && conn.close_reason().is_none() {
        // Polite close: what was already queued (farewell frames
        // included) still flushes to the peer before the socket closes.
        // The writer's send timeout bounds how long a non-reading peer
        // can stall the flush.
        conn.queue.close();
        let _ = writer.join();
        let _ = conn.sock.shutdown(Shutdown::Both);
    } else {
        // The peer vanished or was evicted: nothing is reading. Shut
        // the socket first so a writer blocked mid-`write_all` wakes.
        conn.queue.abort();
        let _ = conn.sock.shutdown(Shutdown::Both);
        let _ = writer.join();
    }
    ctx.metrics.observe_writer_depth(conn.queue.peak() as u64);
    ctx.metrics.connection_closed(reason);
}

/// Pushes one frame into the connection's queue, recording depth into
/// the peak gauge and evicting the connection on overflow. Used from
/// the reader *and* the driver sink — neither ever blocks.
fn push_frame(conn: &Conn, metrics: &Metrics, frame: String) {
    let (outcome, depth) = conn.queue.push(frame);
    metrics.observe_writer_depth(depth as u64);
    if outcome == PushOutcome::Overflow {
        conn.evict(DisconnectReason::SlowReader);
    }
}

/// Parses and executes one request line, pushing replies (and, for
/// submits, wiring the streaming sink) into the writer queue.
fn handle_line(line: &str, ctx: &Arc<ConnCtx>, conn: &Arc<Conn>) {
    let frame = match proto::parse_frame(line) {
        Ok(f) => f,
        Err(msg) => {
            push_frame(conn, &ctx.metrics, proto::error_frame(&msg));
            return;
        }
    };
    match frame {
        ClientFrame::Submit {
            ctx: ctx_idx,
            tenant,
            query,
            context_len,
            gen_tokens,
            priority,
            deadline_ms,
            stream,
        } => {
            let Some(handle) = ctx.contexts.get(ctx_idx) else {
                push_frame(
                    conn,
                    &ctx.metrics,
                    proto::error_frame(&format!(
                        "unknown ctx index {ctx_idx} (have {})",
                        ctx.contexts.len()
                    )),
                );
                return;
            };
            let mut net = NetRequest::new(
                handle,
                DecodeRequest::new(tenant, query, context_len, gen_tokens),
            )
            .priority(priority);
            if let Some(ms) = deadline_ms {
                net = net.deadline_ms(ms);
            }
            // Every submission streams its lifecycle events; the sink
            // drops per-token frames unless the client asked for them.
            // The sink runs on the driver thread, so it must never
            // block: push_frame evicts on overflow instead.
            let sink_conn = Arc::clone(conn);
            let sink_metrics = Arc::clone(&ctx.metrics);
            let ticket = ctx.client.submit_streaming(
                net,
                Box::new(move |ev: StreamEvent| {
                    if !stream && matches!(ev, StreamEvent::Token { .. }) {
                        return;
                    }
                    push_frame(&sink_conn, &sink_metrics, proto::event_frame(&ev));
                }),
            );
            super::lock_recover(&conn.tickets).insert(ticket.id(), ticket);
        }
        ClientFrame::Poll { id } => {
            let reply = {
                let tickets = super::lock_recover(&conn.tickets);
                match tickets.get(&id) {
                    Some(ticket) => {
                        // A DriverDown wait maps through poll() to a
                        // typed `internal` rejection; Timeout just means
                        // the ticket is still pending.
                        let status = ctx.client.poll(ticket);
                        let end = ctx.client.wait_timeout(ticket, Duration::ZERO).ok();
                        proto::status_frame(id, &status, end.as_ref())
                    }
                    None => proto::status_frame(id, &vqllm_llm::RequestStatus::Unknown, None),
                }
            };
            push_frame(conn, &ctx.metrics, reply);
        }
        ClientFrame::Cancel { id } => {
            let ticket = super::lock_recover(&conn.tickets).get(&id).cloned();
            if let Some(ticket) = ticket {
                ctx.client.cancel(&ticket);
            }
            // The terminal `rejected` event arrives through the sink.
        }
        ClientFrame::Ping => {
            push_frame(conn, &ctx.metrics, proto::pong_frame());
        }
        ClientFrame::Stats => {
            let uptime_ms = ctx.started.elapsed().as_millis().min(u64::MAX as u128) as u64;
            let reply = match ctx.client.stats() {
                Some(stats) => proto::stats_frame(&stats, &ctx.client.metrics(), uptime_ms),
                None => proto::error_frame("driver stopped"),
            };
            push_frame(conn, &ctx.metrics, reply);
        }
    }
}

/// Convenience constructor used by the examples and tests: binds the
/// engine to a loopback address with an OS-assigned port and default
/// [`NetConfig`] limits.
pub fn loopback(
    engine: Engine,
    contexts: Vec<ContextHandle>,
    cfg: AdmissionConfig,
) -> std::io::Result<NetServer> {
    NetServer::bind(engine, contexts, cfg, ("127.0.0.1", 0))
}

/// [`loopback`] with explicit [`NetConfig`] limits (what the load
/// harness and the disconnect tests use).
pub fn loopback_with(
    engine: Engine,
    contexts: Vec<ContextHandle>,
    cfg: AdmissionConfig,
    net: NetConfig,
) -> std::io::Result<NetServer> {
    NetServer::bind_with(engine, contexts, cfg, net, ("127.0.0.1", 0))
}

/// [`loopback_with`] behind a supervised driver (what the chaos harness
/// uses to force and survive driver kills).
pub fn loopback_supervised(
    factory: EngineFactory,
    cfg: AdmissionConfig,
    sup: SupervisorConfig,
    net: NetConfig,
) -> std::io::Result<NetServer> {
    NetServer::bind_supervised(factory, cfg, sup, net, ("127.0.0.1", 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_queue_flushes_on_close_but_not_on_abort() {
        let q = FrameQueue::new(8);
        assert_eq!(q.push("a".into()).0, PushOutcome::Ok);
        assert_eq!(q.push("b".into()).0, PushOutcome::Ok);
        q.close();
        assert_eq!(
            q.push("late".into()).0,
            PushOutcome::Ok,
            "dropped, not queued"
        );
        assert_eq!(q.pop_blocking().as_deref(), Some("a"));
        assert_eq!(q.pop_blocking().as_deref(), Some("b"));
        assert!(q.pop_blocking().is_none(), "closed and drained");

        let q = FrameQueue::new(8);
        q.push("a".into());
        q.abort();
        assert!(q.pop_blocking().is_none(), "aborted queues discard");
        assert_eq!(q.peak(), 1);
    }

    #[test]
    fn frame_queue_overflows_at_the_hard_cap() {
        let q = FrameQueue::new(2);
        assert_eq!(q.push("a".into()).0, PushOutcome::Ok);
        assert_eq!(q.push("b".into()).0, PushOutcome::Ok);
        assert_eq!(q.push("c".into()).0, PushOutcome::Overflow);
        // Overflow does not enqueue; depth stays at the cap.
        assert_eq!(q.peak(), 2);
        assert_eq!(q.pop_blocking().as_deref(), Some("a"));
        assert_eq!(q.push("c".into()).0, PushOutcome::Ok, "room again");
    }

    #[test]
    fn frame_queue_grace_clock_tracks_the_soft_watermark() {
        let q = FrameQueue::new(4); // soft watermark = 2
        q.push("a".into());
        assert!(!q.slow_expired(Duration::ZERO), "below soft");
        q.push("b".into());
        std::thread::sleep(Duration::from_millis(5));
        assert!(q.slow_expired(Duration::ZERO), "over soft past grace");
        assert!(!q.slow_expired(Duration::from_secs(60)), "grace not up");
        // Draining below the soft watermark clears the clock.
        q.pop_blocking();
        assert!(!q.slow_expired(Duration::ZERO));
    }
}
