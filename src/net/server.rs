//! The TCP front end: a line-protocol server over `std::net` that
//! exposes a driven engine to remote clients.
//!
//! Threading model (all plain `std` threads, no async runtime):
//!
//! * one **accept** thread owns the `TcpListener` and spawns a pair of
//!   threads per connection;
//! * each connection's **reader** thread parses one frame per line
//!   ([`proto::parse_frame`]) and acts on the shared [`Client`] — submit
//!   into the fair queue, poll, cancel, stats;
//! * each connection's **writer** thread drains an mpsc channel of
//!   pre-rendered frames. The driver thread pushes streaming events into
//!   that channel through the request's [`StreamSink`], and the reader
//!   pushes verb replies; the channel serializes them, so a client sees
//!   `accepted`, then `token`s in decode order, then `done`.
//!
//! Shutdown is cooperative: readers use a short socket read timeout to
//! observe the stop flag, the accept thread is woken by a loopback
//! connection, and the driver resolves every in-flight ticket as
//! cancelled ([`DriverHandle::shutdown`]).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use vqllm_llm::serve::ContextHandle;
use vqllm_llm::DecodeRequest;

use crate::engine::Engine;
use crate::net::admission::{AdmissionConfig, NetRequest};
use crate::net::driver::{self, Client, DriverHandle, StreamEvent, Ticket};
use crate::net::proto::{self, ClientFrame};

/// How long a connection reader blocks before re-checking the stop flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// A serving engine bound to a TCP address.
///
/// Construction takes ownership of a configured [`Engine`] (contexts
/// already registered — the handles, in order, become the protocol's
/// `ctx` indices), spawns the driver thread, and starts accepting
/// connections. [`NetServer::shutdown`] (or drop) stops everything.
pub struct NetServer {
    addr: SocketAddr,
    client: Client,
    driver: Option<DriverHandle>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// serving `engine` over the line protocol. `contexts` maps the
    /// protocol's `ctx` index to registered context handles.
    ///
    /// # Errors
    ///
    /// Returns the `TcpListener` bind error.
    pub fn bind(
        engine: Engine,
        contexts: Vec<ContextHandle>,
        cfg: AdmissionConfig,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (client, driver) = driver::spawn(engine, cfg);
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let client = client.clone();
            let stop = Arc::clone(&stop);
            let contexts = Arc::new(contexts);
            thread::Builder::new()
                .name("vq-llm-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let client = client.clone();
                        let stop = Arc::clone(&stop);
                        let contexts = Arc::clone(&contexts);
                        let _ =
                            thread::Builder::new()
                                .name("vq-llm-conn".into())
                                .spawn(move || {
                                    serve_connection(stream, client, contexts, stop);
                                });
                    }
                })
                .expect("spawn accept thread")
        };
        Ok(NetServer {
            addr,
            client,
            driver: Some(driver),
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (with the OS-assigned port when bound to
    /// port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The in-process client handle to the same driver the socket
    /// clients reach — for embedding a server and local submissions in
    /// one process.
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// Stops accepting, stops the driver (unresolved tickets resolve as
    /// cancelled), and joins the accept thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway loopback connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.accept.take() {
            let _ = join.join();
        }
        if let Some(driver) = self.driver.take() {
            driver.shutdown();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One connection: reader loop here, writer thread alongside.
fn serve_connection(
    stream: TcpStream,
    client: Client,
    contexts: Arc<Vec<ContextHandle>>,
    stop: Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (out_tx, out_rx) = mpsc::channel::<String>();
    let writer = thread::Builder::new()
        .name("vq-llm-conn-writer".into())
        .spawn(move || {
            let mut w = write_half;
            while let Ok(line) = out_rx.recv() {
                if w.write_all(line.as_bytes()).is_err() || w.write_all(b"\n").is_err() {
                    break;
                }
                let _ = w.flush();
            }
        })
        .expect("spawn connection writer");

    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    let mut tickets: HashMap<u64, Ticket> = HashMap::new();
    loop {
        match reader.read_line(&mut buf) {
            Ok(0) => break, // client hung up
            Ok(_) => {
                let line = std::mem::take(&mut buf);
                let line = line.trim();
                if !line.is_empty() {
                    handle_line(line, &client, &contexts, &out_tx, &mut tickets);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Partial data (if any) stays accumulated in `buf`.
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    drop(out_tx);
    let _ = writer.join();
}

/// Parses and executes one request line, pushing replies (and, for
/// submits, wiring the streaming sink) into the writer channel.
fn handle_line(
    line: &str,
    client: &Client,
    contexts: &Arc<Vec<ContextHandle>>,
    out_tx: &mpsc::Sender<String>,
    tickets: &mut HashMap<u64, Ticket>,
) {
    let frame = match proto::parse_frame(line) {
        Ok(f) => f,
        Err(msg) => {
            let _ = out_tx.send(proto::error_frame(&msg));
            return;
        }
    };
    match frame {
        ClientFrame::Submit {
            ctx,
            tenant,
            query,
            context_len,
            gen_tokens,
            priority,
            deadline_ms,
            stream,
        } => {
            let Some(&handle) = contexts.get(ctx) else {
                let _ = out_tx.send(proto::error_frame(&format!(
                    "unknown ctx index {ctx} (have {})",
                    contexts.len()
                )));
                return;
            };
            let mut net = NetRequest::new(
                handle,
                DecodeRequest::new(tenant, query, context_len, gen_tokens),
            )
            .priority(priority);
            if let Some(ms) = deadline_ms {
                net = net.deadline_ms(ms);
            }
            // Every submission streams its lifecycle events; the sink
            // drops per-token frames unless the client asked for them.
            let sink_tx = out_tx.clone();
            let ticket = client.submit_streaming(
                net,
                Box::new(move |ev: StreamEvent| {
                    if !stream && matches!(ev, StreamEvent::Token { .. }) {
                        return;
                    }
                    let _ = sink_tx.send(proto::event_frame(&ev));
                }),
            );
            tickets.insert(ticket.id(), ticket);
        }
        ClientFrame::Poll { id } => {
            let reply = match tickets.get(&id) {
                Some(ticket) => {
                    let status = client.poll(ticket);
                    let end = client.wait_timeout(ticket, Duration::ZERO);
                    proto::status_frame(id, &status, end.as_ref())
                }
                None => proto::status_frame(id, &vqllm_llm::RequestStatus::Unknown, None),
            };
            let _ = out_tx.send(reply);
        }
        ClientFrame::Cancel { id } => {
            if let Some(ticket) = tickets.get(&id) {
                client.cancel(ticket);
            }
            // The terminal `rejected` event arrives through the sink.
        }
        ClientFrame::Stats => {
            let reply = match client.stats() {
                Some(stats) => proto::stats_frame(&stats, &client.metrics()),
                None => proto::error_frame("driver stopped"),
            };
            let _ = out_tx.send(reply);
        }
    }
}

/// Convenience constructor used by the examples and tests: binds the
/// engine to a loopback address with an OS-assigned port.
pub fn loopback(
    engine: Engine,
    contexts: Vec<ContextHandle>,
    cfg: AdmissionConfig,
) -> std::io::Result<NetServer> {
    NetServer::bind(engine, contexts, cfg, ("127.0.0.1", 0))
}
