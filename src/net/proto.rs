//! The newline-delimited JSON line protocol: frame vocabulary, parser,
//! and emitters.
//!
//! One JSON object per line, both directions. Client → server frames
//! carry a `"verb"`; server → client frames carry an `"event"`. The
//! full frame reference lives in the README's "Serving over the
//! network" section; in short:
//!
//! ```text
//! -> {"verb":"submit","ctx":0,"tenant":7,"query":[...],"context_len":8,
//!     "gen_tokens":3,"priority":1,"deadline_ms":250,"stream":true}
//! <- {"event":"accepted","id":1}
//! <- {"event":"token","id":1,"index":0,"value":[...]}      (stream:true)
//! <- {"event":"done","id":1,"tokens":3}
//! -> {"verb":"poll","id":1}
//! <- {"event":"status","id":1,"state":"finished","tokens":3,"steps":[...]}
//! -> {"verb":"cancel","id":1}
//! -> {"verb":"stats"}
//! <- {"event":"stats","server":{...},"metrics":{...}}
//! ```
//!
//! Token values are `f32`s encoded in shortest-round-trip decimal form
//! ([`json::push_f32`]), so a streamed row is **bitwise identical** to
//! the row a local `Session` would decode — `tests/net_serving.rs` pins
//! that through a real socket.

use vqllm_llm::{RejectReason, RequestStatus};

use crate::net::driver::{DriverStats, StreamEvent, TicketEnd};
use crate::net::json::{self, Json};
use crate::net::metrics::{MetricsSnapshot, RejectKind};

/// The line protocol's version, announced in the `hello` frame every
/// connection receives first. Bump on wire-incompatible changes.
pub const PROTO_VERSION: u64 = 1;

/// A parsed client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Submit a decode request against registered context index `ctx`.
    Submit {
        /// Index of the context in the server's registration order.
        ctx: usize,
        /// Caller-supplied tenant tag (fairness lane).
        tenant: u64,
        /// The initial query row.
        query: Vec<f32>,
        /// Tokens of the shared context attended at the first step.
        context_len: usize,
        /// Decode steps requested.
        gen_tokens: usize,
        /// Priority class (default 0).
        priority: u8,
        /// Optional completion deadline, ms from submission.
        deadline_ms: Option<u64>,
        /// Whether to stream `token` events as rows decode.
        stream: bool,
    },
    /// Query a submitted request's status.
    Poll {
        /// The id from the `accepted` event.
        id: u64,
    },
    /// Cancel a queued or running request.
    Cancel {
        /// The id from the `accepted` event.
        id: u64,
    },
    /// Keepalive probe; the server answers with a `pong` frame and the
    /// probe counts as activity for the idle-timeout clock.
    Ping,
    /// Fetch scheduler counters and the metrics snapshot.
    Stats,
}

/// Parses one request line. Errors are human-readable strings the
/// server echoes back in an `error` event.
pub fn parse_frame(line: &str) -> Result<ClientFrame, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let verb = v
        .get("verb")
        .and_then(Json::as_str)
        .ok_or("missing \"verb\"")?;
    match verb {
        "submit" => {
            let query = v
                .get("query")
                .and_then(Json::as_f32s)
                .ok_or("submit needs \"query\": [numbers]")?;
            Ok(ClientFrame::Submit {
                ctx: v.get("ctx").and_then(Json::as_usize).unwrap_or(0),
                tenant: v.get("tenant").and_then(Json::as_u64).unwrap_or(0),
                query,
                context_len: v
                    .get("context_len")
                    .and_then(Json::as_usize)
                    .ok_or("submit needs \"context_len\"")?,
                gen_tokens: v
                    .get("gen_tokens")
                    .and_then(Json::as_usize)
                    .ok_or("submit needs \"gen_tokens\"")?,
                priority: v
                    .get("priority")
                    .and_then(Json::as_u64)
                    .map_or(0, |p| p.min(u8::MAX as u64) as u8),
                deadline_ms: v.get("deadline_ms").and_then(Json::as_u64),
                stream: v.get("stream").and_then(Json::as_bool).unwrap_or(false),
            })
        }
        "poll" => Ok(ClientFrame::Poll {
            id: v
                .get("id")
                .and_then(Json::as_u64)
                .ok_or("poll needs \"id\"")?,
        }),
        "cancel" => Ok(ClientFrame::Cancel {
            id: v
                .get("id")
                .and_then(Json::as_u64)
                .ok_or("cancel needs \"id\"")?,
        }),
        "ping" => Ok(ClientFrame::Ping),
        "stats" => Ok(ClientFrame::Stats),
        other => Err(format!("unknown verb {other:?}")),
    }
}

/// Renders a submit frame (the client side of the protocol; also what
/// the examples and tests send).
#[allow(clippy::too_many_arguments)]
pub fn submit_line(
    ctx: usize,
    tenant: u64,
    query: &[f32],
    context_len: usize,
    gen_tokens: usize,
    priority: u8,
    deadline_ms: Option<u64>,
    stream: bool,
) -> String {
    let mut s = format!("{{\"verb\":\"submit\",\"ctx\":{ctx},\"tenant\":{tenant},\"query\":[");
    for (i, q) in query.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        json::push_f32(*q, &mut s);
    }
    s.push_str(&format!(
        "],\"context_len\":{context_len},\"gen_tokens\":{gen_tokens},\"priority\":{priority}"
    ));
    if let Some(ms) = deadline_ms {
        s.push_str(&format!(",\"deadline_ms\":{ms}"));
    }
    s.push_str(&format!(",\"stream\":{stream}}}"));
    s
}

/// Every rejection code this protocol can put on the wire, in
/// counter-array order. This is the protocol-side registry `vqllm-lint`
/// cross-checks against `RejectKind::code` and the per-reason metrics
/// counters: a code added to one place but not the others is a lint
/// error, and `codes_cover_every_kind` below pins the mapping at run
/// time too.
pub const REJECT_WIRE_CODES: &[&str] = &[
    "queue_full",
    "invalid",
    "kv_capacity",
    "unknown_context",
    "cancelled",
    "deadline",
    "rate_limited",
    "draining",
    "internal",
    "driver_restarted",
];

/// The wire code of a rejection reason (`queue_full`, `deadline`, ...).
pub fn reason_code(reason: &RejectReason) -> &'static str {
    RejectKind::of(reason).code()
}

fn push_reason(reason: &RejectReason, retry_after_ms: u64, out: &mut String) {
    out.push_str(",\"reason\":");
    json::push_escaped(reason_code(reason), out);
    out.push_str(&format!(",\"retry_after_ms\":{retry_after_ms}"));
    out.push_str(",\"detail\":");
    json::push_escaped(&reason.to_string(), out);
}

fn push_rows(key: &str, rows: &[Vec<f32>], out: &mut String) {
    out.push(',');
    json::push_escaped(key, out);
    out.push_str(":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::push_f32(*v, out);
        }
        out.push(']');
    }
    out.push(']');
}

/// Renders a driver [`StreamEvent`] as one server → client line
/// (without the trailing newline).
pub fn event_frame(ev: &StreamEvent) -> String {
    match ev {
        StreamEvent::Accepted { id } => format!("{{\"event\":\"accepted\",\"id\":{id}}}"),
        StreamEvent::Token { id, index, value } => {
            let mut s = format!("{{\"event\":\"token\",\"id\":{id},\"index\":{index},\"value\":[");
            for (j, v) in value.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                json::push_f32(*v, &mut s);
            }
            s.push_str("]}");
            s
        }
        StreamEvent::Done { id, tokens } => {
            format!("{{\"event\":\"done\",\"id\":{id},\"tokens\":{tokens}}}")
        }
        StreamEvent::Rejected {
            id,
            reason,
            retry_after_ms,
        } => {
            let mut s = format!("{{\"event\":\"rejected\",\"id\":{id}");
            push_reason(reason, *retry_after_ms, &mut s);
            s.push('}');
            s
        }
    }
}

/// Renders a `status` reply for the `poll` verb. A finished request's
/// reply carries its decoded rows (`steps`), taken from the resolved
/// ticket.
pub fn status_frame(id: u64, status: &RequestStatus, end: Option<&TicketEnd>) -> String {
    let mut s = format!("{{\"event\":\"status\",\"id\":{id},\"state\":");
    match status {
        RequestStatus::Queued => s.push_str("\"queued\""),
        RequestStatus::Running => s.push_str("\"running\""),
        RequestStatus::Finished { tokens } => {
            s.push_str(&format!("\"finished\",\"tokens\":{tokens}"));
            if let Some(TicketEnd::Finished(out)) = end {
                push_rows("steps", &out.steps, &mut s);
            }
        }
        RequestStatus::Rejected { reason } => {
            s.push_str("\"rejected\"");
            let retry = match end {
                Some(TicketEnd::Rejected { retry_after_ms, .. }) => *retry_after_ms,
                _ => reason.retry_hint_ms().unwrap_or(0),
            };
            push_reason(reason, retry, &mut s);
        }
        RequestStatus::Unknown => s.push_str("\"unknown\""),
    }
    s.push('}');
    s
}

/// The `hello` handshake frame — the first frame every connection
/// receives: the protocol version plus the server's request-line cap.
pub fn hello_frame(line_length_cap: usize) -> String {
    format!(
        "{{\"event\":\"hello\",\"proto\":{PROTO_VERSION},\"line_length_cap\":{line_length_cap}}}"
    )
}

/// A server-initiated keepalive probe.
pub fn ping_frame() -> String {
    "{\"event\":\"ping\"}".to_string()
}

/// The reply to a client `ping` verb.
pub fn pong_frame() -> String {
    "{\"event\":\"pong\"}".to_string()
}

/// The typed frame an over-limit (or draining) accept is answered with
/// before the socket closes.
pub fn conn_rejected_frame(reason: &str, detail: &str, retry_after_ms: u64) -> String {
    let mut s = String::from("{\"event\":\"conn_rejected\",\"reason\":");
    json::push_escaped(reason, &mut s);
    s.push_str(&format!(",\"retry_after_ms\":{retry_after_ms},\"detail\":"));
    json::push_escaped(detail, &mut s);
    s.push('}');
    s
}

/// Renders the `stats` reply: scheduler counters plus the metrics
/// snapshot, each as a nested object, under a protocol/uptime header.
pub fn stats_frame(stats: &DriverStats, metrics: &MetricsSnapshot, uptime_ms: u64) -> String {
    let s = &stats.server;
    format!(
        "{{\"event\":\"stats\",\"proto\":{PROTO_VERSION},\"uptime_ms\":{uptime_ms},\
         \"draining\":{},\"server\":{{\
         \"submitted\":{},\"rejected\":{},\"rejected_queue_full\":{},\
         \"rejected_invalid\":{},\"rejected_kv_capacity\":{},\
         \"rejected_unknown_context\":{},\"cancelled\":{},\
         \"completed\":{},\"steps\":{},\"decoded_tokens\":{},\"quarantined\":{},\
         \"front_queued\":{},\"engine_queued\":{},\"running\":{},\
         \"inflight_tokens\":{}}},\
         \"metrics\":{}}}",
        stats.draining,
        s.submitted,
        s.rejected,
        s.rejected_queue_full,
        s.rejected_invalid,
        s.rejected_kv_capacity,
        s.rejected_unknown_context,
        s.cancelled,
        s.completed,
        s.steps,
        s.decoded_tokens,
        s.quarantined,
        stats.front_queued,
        stats.engine_queued,
        stats.running,
        stats.inflight_tokens,
        metrics.to_json(),
    )
}

/// Renders a protocol `error` event (unparsable frame, unknown context
/// index, ...).
pub fn error_frame(message: &str) -> String {
    let mut s = String::from("{\"event\":\"error\",\"message\":");
    json::push_escaped(message, &mut s);
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_cover_every_kind() {
        // The static registry must match what RejectKind actually emits,
        // one to one and in order.
        let emitted: Vec<&str> = RejectKind::ALL.iter().map(|k| k.code()).collect();
        assert_eq!(REJECT_WIRE_CODES, emitted.as_slice());
    }

    #[test]
    fn submit_line_round_trips_through_the_parser() {
        let line = submit_line(2, 7, &[0.5, -1.25], 8, 3, 1, Some(250), true);
        let frame = parse_frame(&line).expect("parses");
        assert_eq!(
            frame,
            ClientFrame::Submit {
                ctx: 2,
                tenant: 7,
                query: vec![0.5, -1.25],
                context_len: 8,
                gen_tokens: 3,
                priority: 1,
                deadline_ms: Some(250),
                stream: true,
            }
        );
    }

    #[test]
    fn submit_defaults_are_applied() {
        let frame = parse_frame(r#"{"verb":"submit","query":[1],"context_len":4,"gen_tokens":2}"#)
            .expect("parses");
        assert_eq!(
            frame,
            ClientFrame::Submit {
                ctx: 0,
                tenant: 0,
                query: vec![1.0],
                context_len: 4,
                gen_tokens: 2,
                priority: 0,
                deadline_ms: None,
                stream: false,
            }
        );
    }

    #[test]
    fn malformed_frames_report_what_is_missing() {
        assert!(parse_frame("not json").is_err());
        assert!(parse_frame(r#"{"verb":"warp"}"#)
            .unwrap_err()
            .contains("unknown verb"));
        assert!(parse_frame(r#"{"verb":"submit","query":[1]}"#)
            .unwrap_err()
            .contains("context_len"));
        assert!(parse_frame(r#"{"verb":"poll"}"#)
            .unwrap_err()
            .contains("id"));
    }

    #[test]
    fn event_frames_are_valid_json() {
        use crate::net::json;
        let frames = [
            event_frame(&StreamEvent::Accepted { id: 3 }),
            event_frame(&StreamEvent::Token {
                id: 3,
                index: 0,
                value: vec![0.1, -2.5],
            }),
            event_frame(&StreamEvent::Done { id: 3, tokens: 2 }),
            event_frame(&StreamEvent::Rejected {
                id: 4,
                reason: RejectReason::Deadline { retry_after_ms: 9 },
                retry_after_ms: 9,
            }),
            error_frame("bad frame: \"quoted\""),
        ];
        for f in &frames {
            let v = json::parse(f).unwrap_or_else(|e| panic!("invalid frame {f}: {e}"));
            assert!(v.get("event").is_some(), "{f}");
        }
        assert!(frames[3].contains("\"retry_after_ms\":9"));
        assert!(frames[3].contains("\"reason\":\"deadline\""));
    }

    #[test]
    fn status_frame_carries_finished_rows() {
        use vqllm_llm::RequestOutput;
        let out = RequestOutput {
            id: 1,
            tenant: 7,
            steps: vec![vec![1.5, -0.25]],
            kv_quant_us: 0.0,
            submitted_step: 0,
            finished_step: 1,
            kv_nmse: 0.0,
            kv_bytes: 0,
        };
        let f = status_frame(
            5,
            &RequestStatus::Finished { tokens: 1 },
            Some(&TicketEnd::Finished(out)),
        );
        let v = crate::net::json::parse(&f).expect("valid");
        assert_eq!(v.get("state").and_then(Json::as_str), Some("finished"));
        let steps = v.get("steps").expect("steps");
        match steps {
            Json::Arr(rows) => assert_eq!(rows[0].as_f32s(), Some(vec![1.5, -0.25])),
            other => panic!("steps not an array: {other:?}"),
        }
    }
}
