//! Minimal JSON for the line protocol.
//!
//! The vendored `serde` is derive-only (the traits are markers — see
//! `vendor/README.md`), so the network layer carries its own tiny JSON
//! value type, parser, and writer. It supports exactly what the protocol
//! needs: objects, arrays, finite numbers, strings with the standard
//! escapes, booleans, and `null`.
//!
//! **Float exactness.** Token values are `f32`s and the loopback test
//! pins *bitwise* equality through the protocol, so the encoding must
//! round-trip every finite `f32` exactly. Numbers are written with Rust's
//! shortest-round-trip `Display` (an `f32` widened to `f64` is exact, and
//! the shortest decimal form of that `f64` re-parses to the identical
//! `f64`, which narrows back to the identical `f32`). The unit tests
//! sweep random bit patterns to pin this.

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve insertion order and are scanned
/// linearly — protocol frames are small.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also how non-finite floats are written).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// An array of numbers narrowed to `f32` (the query/token row shape).
    pub fn as_f32s(&self) -> Option<Vec<f32>> {
        match self {
            Json::Arr(items) => items.iter().map(|v| v.as_f64().map(|n| n as f32)).collect(),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What was expected.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value, requiring it to span the whole input (modulo
/// surrounding whitespace) — exactly one frame per line.
pub fn parse(s: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters after the value"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.i, msg }
    }

    fn ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self
            .b
            .get(self.i..)
            .unwrap_or_default()
            .starts_with(word.as_bytes())
        {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':', "expected ':' after object key")?;
            self.ws();
            let val = self.value()?;
            fields.push((key, val));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // BMP only (no surrogate pairs); the protocol
                            // never emits them.
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.i += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through verbatim.
                    let start = self.i;
                    self.i += 1;
                    while matches!(self.b.get(self.i), Some(c) if (c & 0xC0) == 0x80) {
                        self.i += 1;
                    }
                    let s = std::str::from_utf8(self.b.get(start..self.i).unwrap_or_default())
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while matches!(
            self.b.get(self.i),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        // The scanned token is pure ASCII, so from_utf8 cannot fail;
        // an empty fallback just reports "invalid number" below.
        let s = std::str::from_utf8(self.b.get(start..self.i).unwrap_or_default()).unwrap_or("");
        let n: f64 = s.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

/// Appends the JSON encoding of `v` to `out`.
pub fn write(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => push_f64(*n, out),
        Json::Str(s) => push_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_escaped(k, out);
                out.push(':');
                write(val, out);
            }
            out.push('}');
        }
    }
}

/// The JSON encoding of `v` as a fresh string.
pub fn to_string(v: &Json) -> String {
    let mut s = String::new();
    write(v, &mut s);
    s
}

/// Appends a number using shortest-round-trip `Display`; non-finite
/// values (unrepresentable in JSON) are written as `null`.
pub fn push_f64(n: f64, out: &mut String) {
    if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null");
    }
}

/// Appends an `f32` exactly (shortest decimal form that re-parses to the
/// identical bits); non-finite values become `null`.
pub fn push_f32(v: f32, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn push_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_protocol_shaped_frame() {
        let v = parse(
            r#"{"verb":"submit","ctx":0,"tenant":7,"query":[0.5,-1.25e2],"gen_tokens":3,"stream":true,"note":"a\"b\\c\nd"}"#,
        )
        .expect("parse");
        assert_eq!(v.get("verb").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("tenant").and_then(Json::as_u64), Some(7));
        assert_eq!(
            v.get("query").and_then(Json::as_f32s),
            Some(vec![0.5, -125.0])
        );
        assert_eq!(v.get("stream").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("note").and_then(Json::as_str), Some("a\"b\\c\nd"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips_through_the_writer() {
        let src = r#"{"a":[1,2.5,null,true,false],"b":{"c":"x y"},"d":-0.125}"#;
        let v = parse(src).expect("parse");
        assert_eq!(to_string(&v), src);
    }

    #[test]
    fn rejects_malformed_frames() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "[1,]",
            "{\"a\":1} extra",
            "\"unterminated",
            "nul",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn f32_round_trip_is_bitwise_exact() {
        // Sweep pseudo-random bit patterns: every finite f32 must survive
        // value -> shortest decimal -> f64 parse -> f32 narrow exactly.
        let mut x = 0x2545F491u32;
        let mut tested = 0;
        while tested < 20_000 {
            // xorshift32
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            let v = f32::from_bits(x);
            if !v.is_finite() {
                continue;
            }
            tested += 1;
            let mut s = String::new();
            push_f32(v, &mut s);
            let back = parse(&s).expect("number parses").as_f64().expect("number") as f32;
            assert_eq!(
                back.to_bits(),
                v.to_bits(),
                "f32 {v:?} (bits {x:#x}) did not round-trip via {s:?}"
            );
        }
        // The usual suspects, explicitly.
        for v in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            f32::MIN,
            f32::MAX,
            f32::MIN_POSITIVE,
            f32::EPSILON,
            1.0e-40, // subnormal
            0.1,
            std::f32::consts::PI,
        ] {
            let mut s = String::new();
            push_f32(v, &mut s);
            let back = parse(&s).expect("parses").as_f64().expect("number") as f32;
            assert_eq!(back.to_bits(), v.to_bits(), "{v:?} via {s:?}");
        }
    }

    #[test]
    fn non_finite_floats_write_as_null() {
        let mut s = String::new();
        push_f32(f32::NAN, &mut s);
        assert_eq!(s, "null");
        let mut s = String::new();
        push_f64(f64::INFINITY, &mut s);
        assert_eq!(s, "null");
    }
}
