//! The serving metrics subsystem: lock-cheap counters and histograms the
//! driver updates on its hot path, snapshot-able from any thread in the
//! same JSON style as `BENCH_serving.json` so CI can gate tail latency.
//!
//! Design constraints, in order:
//!
//! 1. **Recording must be cheap** — one step records one latency sample,
//!    one queue-depth sample, and a few counter bumps. [`Histogram`] is a
//!    fixed array of relaxed atomics bucketed by power of two, so a record
//!    is two atomic adds and never takes a lock; reject/admit counters are
//!    plain atomics. Only the per-tenant token map takes a (short) mutex,
//!    and only when a step actually decoded tokens.
//! 2. **Snapshots must not stop the world** — [`Metrics::snapshot`] reads
//!    the atomics without pausing the driver; a snapshot is internally
//!    consistent to within one in-flight step, which is all a metrics
//!    poll needs.
//! 3. **Quantiles are bucketed** — p50/p99 from a power-of-two histogram
//!    are upper bucket bounds (at most 2× the true value). That is the
//!    right trade for an always-on server metric; exact percentiles for
//!    CI gates come from [`percentile`] over raw samples (what
//!    `serve_bench` records).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Instant;
use vqllm_llm::RejectReason;

use crate::net::json;

/// Power-of-two bucket count: values are `µs` (or depths) up to `2^63`.
const BUCKETS: usize = 64;

/// A lock-free log2-bucketed histogram over non-negative integer samples
/// (microseconds, queue depths). Recording is two relaxed atomic adds;
/// quantiles are read as upper bucket bounds (within 2× of exact).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index of a sample: `0` holds 0, `i` holds `(2^(i-1), 2^i]`.
    fn bucket(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - (v - 1).leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Upper bound of bucket `i` (the conservative quantile readout).
    fn bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i.min(63)
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        if let Some(bucket) = self.buckets.get(Self::bucket(v)) {
            bucket.fetch_add(1, Relaxed);
        }
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Relaxed) as f64 / n as f64
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) as an upper bucket bound — within
    /// 2× of the exact order statistic. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Relaxed);
            if seen >= rank {
                return Self::bound(i);
            }
        }
        self.max()
    }
}

/// Exact percentile over raw samples: sorts a copy and reads the
/// ceil-rank order statistic (the `BENCH_serving.json` CI-gate path).
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q.clamp(0.0, 1.0) * s.len() as f64).ceil() as usize).clamp(1, s.len());
    s.get(rank - 1).copied().unwrap_or(0.0)
}

/// Stable index of a rejection reason in the per-reason counter array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectKind {
    /// Bounded queue at capacity.
    QueueFull,
    /// Malformed/unservable request.
    Invalid,
    /// Would outgrow the KV window.
    KvCapacity,
    /// Handle not issued by this engine.
    UnknownContext,
    /// Cancelled after admission.
    Cancelled,
    /// Deadline projected unmeetable.
    Deadline,
    /// Tenant token budget exhausted for the window.
    RateLimited,
    /// Server draining, not admitting.
    Draining,
    /// Quarantined by the fault-containment layer (contained panic,
    /// forced mid-decode failure, or watchdog shed).
    Internal,
    /// Dropped across a supervised driver restart; retryable.
    DriverRestarted,
}

impl RejectKind {
    /// All kinds, in counter-array order.
    pub const ALL: [RejectKind; 10] = [
        RejectKind::QueueFull,
        RejectKind::Invalid,
        RejectKind::KvCapacity,
        RejectKind::UnknownContext,
        RejectKind::Cancelled,
        RejectKind::Deadline,
        RejectKind::RateLimited,
        RejectKind::Draining,
        RejectKind::Internal,
        RejectKind::DriverRestarted,
    ];

    /// Classifies a typed rejection.
    pub fn of(reason: &RejectReason) -> RejectKind {
        match reason {
            RejectReason::QueueFull { .. } => RejectKind::QueueFull,
            RejectReason::Invalid { .. } => RejectKind::Invalid,
            RejectReason::KvCapacity { .. } => RejectKind::KvCapacity,
            RejectReason::UnknownContext { .. } => RejectKind::UnknownContext,
            RejectReason::Cancelled => RejectKind::Cancelled,
            RejectReason::Deadline { .. } => RejectKind::Deadline,
            RejectReason::RateLimited { .. } => RejectKind::RateLimited,
            RejectReason::Draining { .. } => RejectKind::Draining,
            RejectReason::Internal { .. } => RejectKind::Internal,
            RejectReason::DriverRestarted { .. } => RejectKind::DriverRestarted,
        }
    }

    /// The protocol wire code (also the metrics JSON key suffix).
    pub fn code(&self) -> &'static str {
        match self {
            RejectKind::QueueFull => "queue_full",
            RejectKind::Invalid => "invalid",
            RejectKind::KvCapacity => "kv_capacity",
            RejectKind::UnknownContext => "unknown_context",
            RejectKind::Cancelled => "cancelled",
            RejectKind::Deadline => "deadline",
            RejectKind::RateLimited => "rate_limited",
            RejectKind::Draining => "draining",
            RejectKind::Internal => "internal",
            RejectKind::DriverRestarted => "driver_restarted",
        }
    }
}

/// Why a connection was closed, as the per-reason disconnect counters
/// track it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisconnectReason {
    /// Evicted: the writer queue stayed over its watermark past the
    /// configured grace (or hit its hard cap) — the reader was too slow.
    SlowReader,
    /// Reaped: no frames received for longer than the idle timeout.
    Idle,
    /// The client closed the connection (clean EOF).
    Eof,
    /// A socket error, an over-long line, or another protocol violation.
    Error,
}

impl DisconnectReason {
    /// All reasons, in counter-array order.
    pub const ALL: [DisconnectReason; 4] = [
        DisconnectReason::SlowReader,
        DisconnectReason::Idle,
        DisconnectReason::Eof,
        DisconnectReason::Error,
    ];

    /// The metrics JSON key suffix (`disconnects_<code>`).
    pub fn code(&self) -> &'static str {
        match self {
            DisconnectReason::SlowReader => "slow_reader",
            DisconnectReason::Idle => "idle",
            DisconnectReason::Eof => "eof",
            DisconnectReason::Error => "error",
        }
    }
}

/// The driver's live metrics surface. Shared (`Arc`) between the driver
/// thread (writes) and any snapshot reader; everything except the
/// per-tenant map is atomic.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Wall time of each engine step, µs.
    pub step_latency: Histogram,
    /// Requests waiting (front-end + engine queue) sampled before each
    /// step.
    pub queue_depth: Histogram,
    decoded_tokens: AtomicU64,
    admitted: AtomicU64,
    rejected: [AtomicU64; RejectKind::ALL.len()],
    /// tenant -> decoded tokens.
    tenants: Mutex<Vec<(u64, u64)>>,
    /// Connections currently open (gauge).
    active_connections: AtomicU64,
    /// Connections ever accepted (counter).
    connections_total: AtomicU64,
    /// Per-reason connection closes.
    disconnects: [AtomicU64; DisconnectReason::ALL.len()],
    /// Deepest any connection's writer queue has ever been.
    writer_queue_peak: AtomicU64,
    /// Supervised driver restarts (engine rebuilds after a driver death).
    restarts: AtomicU64,
    /// Requests quarantined by the fault-containment layer.
    quarantined: AtomicU64,
    /// Running groups shed by the step watchdog.
    watchdog_sheds: AtomicU64,
    /// Times the breaker tripped (halving `max_batch` for a cooldown).
    breaker_trips: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh metrics; the tokens/s denominator starts now.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            step_latency: Histogram::new(),
            queue_depth: Histogram::new(),
            decoded_tokens: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: [const { AtomicU64::new(0) }; RejectKind::ALL.len()],
            tenants: Mutex::new(Vec::new()),
            active_connections: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            disconnects: [const { AtomicU64::new(0) }; DisconnectReason::ALL.len()],
            writer_queue_peak: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            watchdog_sheds: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
        }
    }

    /// Counts a supervised driver restart.
    pub fn record_restart(&self) {
        self.restarts.fetch_add(1, Relaxed);
    }

    /// Supervised driver restarts so far.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Relaxed)
    }

    /// Counts requests quarantined by the containment layer.
    pub fn record_quarantined(&self, n: u64) {
        self.quarantined.fetch_add(n, Relaxed);
    }

    /// Requests quarantined so far.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Relaxed)
    }

    /// Counts a watchdog shed of the running group.
    pub fn record_watchdog_shed(&self) {
        self.watchdog_sheds.fetch_add(1, Relaxed);
    }

    /// Counts a breaker trip.
    pub fn record_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Relaxed);
    }

    /// Counts a connection entering service (bumps the gauge and the
    /// lifetime total).
    pub fn connection_opened(&self) {
        self.active_connections.fetch_add(1, Relaxed);
        self.connections_total.fetch_add(1, Relaxed);
    }

    /// Counts a connection leaving service, tagged with why.
    pub fn connection_closed(&self, reason: DisconnectReason) {
        self.active_connections.fetch_sub(1, Relaxed);
        // `reason as usize` == its slot in ALL (pinned by
        // `enum_order_matches_all` below), and the array is sized by
        // ALL, so the lookup cannot miss.
        if let Some(counter) = self.disconnects.get(reason as usize) {
            counter.fetch_add(1, Relaxed);
        }
    }

    /// Connections currently open.
    pub fn active_connections(&self) -> u64 {
        self.active_connections.load(Relaxed)
    }

    /// Folds one observed writer-queue depth into the peak.
    pub fn observe_writer_depth(&self, depth: u64) {
        self.writer_queue_peak.fetch_max(depth, Relaxed);
    }

    /// Deepest writer queue observed across all connections.
    pub fn writer_queue_peak(&self) -> u64 {
        self.writer_queue_peak.load(Relaxed)
    }

    /// Records one engine step: wall time, batch decoded, and the queue
    /// depth observed just before the step.
    pub fn record_step(&self, us: u64, batch: usize, queue_depth: usize) {
        self.step_latency.record(us);
        self.queue_depth.record(queue_depth as u64);
        self.decoded_tokens.fetch_add(batch as u64, Relaxed);
    }

    /// Counts an admitted request.
    pub fn record_admitted(&self) {
        self.admitted.fetch_add(1, Relaxed);
    }

    /// Counts a typed rejection (including cancellations).
    pub fn record_rejection(&self, reason: &RejectReason) {
        let kind = RejectKind::of(reason);
        // `kind as usize` == its slot in ALL (pinned by
        // `enum_order_matches_all` below), and the array is sized by
        // ALL, so the lookup cannot miss.
        if let Some(counter) = self.rejected.get(kind as usize) {
            counter.fetch_add(1, Relaxed);
        }
    }

    /// Adds decoded tokens to a tenant's account.
    pub fn add_tenant_tokens(&self, tenant: u64, tokens: u64) {
        if tokens == 0 {
            return;
        }
        let mut map = super::lock_recover(&self.tenants);
        match map.iter_mut().find(|(t, _)| *t == tenant) {
            Some((_, n)) => *n += tokens,
            None => map.push((tenant, tokens)),
        }
    }

    /// A consistent-enough point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let uptime_s = self.started.elapsed().as_secs_f64().max(1e-9);
        let decoded = self.decoded_tokens.load(Relaxed);
        let mut tenants: Vec<TenantRate> = {
            let map = super::lock_recover(&self.tenants);
            map.iter()
                .map(|&(tenant, tokens)| TenantRate {
                    tenant,
                    tokens,
                    tokens_per_s: tokens as f64 / uptime_s,
                })
                .collect()
        };
        tenants.sort_by_key(|t| t.tenant);
        MetricsSnapshot {
            uptime_s,
            steps: self.step_latency.count(),
            decoded_tokens: decoded,
            tokens_per_s: decoded as f64 / uptime_s,
            step_latency_p50_us: self.step_latency.quantile(0.50),
            step_latency_p99_us: self.step_latency.quantile(0.99),
            step_latency_mean_us: self.step_latency.mean(),
            step_latency_max_us: self.step_latency.max(),
            queue_depth_p50: self.queue_depth.quantile(0.50),
            queue_depth_max: self.queue_depth.max(),
            admitted: self.admitted.load(Relaxed),
            rejected: RejectKind::ALL
                .iter()
                .zip(self.rejected.iter())
                .map(|(k, c)| (k.code(), c.load(Relaxed)))
                .collect(),
            active_connections: self.active_connections.load(Relaxed),
            connections_total: self.connections_total.load(Relaxed),
            disconnects: DisconnectReason::ALL
                .iter()
                .zip(self.disconnects.iter())
                .map(|(r, c)| (r.code(), c.load(Relaxed)))
                .collect(),
            writer_queue_peak: self.writer_queue_peak.load(Relaxed),
            restarts: self.restarts.load(Relaxed),
            quarantined: self.quarantined.load(Relaxed),
            watchdog_sheds: self.watchdog_sheds.load(Relaxed),
            breaker_trips: self.breaker_trips.load(Relaxed),
            tenants,
        }
    }
}

/// One tenant's decode account in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantRate {
    /// The tenant tag.
    pub tenant: u64,
    /// Tokens decoded for this tenant.
    pub tokens: u64,
    /// Tokens/s over the metrics' uptime (includes idle time).
    pub tokens_per_s: f64,
}

/// A point-in-time copy of the driver metrics, JSON-able in the
/// `BENCH_serving.json` flat style.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Seconds since the metrics were created.
    pub uptime_s: f64,
    /// Engine steps recorded.
    pub steps: u64,
    /// Tokens decoded across all tenants.
    pub decoded_tokens: u64,
    /// Aggregate tokens/s over uptime (includes idle time).
    pub tokens_per_s: f64,
    /// Median step wall time (bucketed upper bound), µs.
    pub step_latency_p50_us: u64,
    /// 99th-percentile step wall time (bucketed upper bound), µs.
    pub step_latency_p99_us: u64,
    /// Mean step wall time, µs.
    pub step_latency_mean_us: f64,
    /// Worst step wall time, µs.
    pub step_latency_max_us: u64,
    /// Median queue depth sampled before each step.
    pub queue_depth_p50: u64,
    /// Worst queue depth sampled.
    pub queue_depth_max: u64,
    /// Requests admitted by the front end.
    pub admitted: u64,
    /// Per-reason rejection counts, `(wire code, count)`.
    pub rejected: Vec<(&'static str, u64)>,
    /// Connections currently open.
    pub active_connections: u64,
    /// Connections ever accepted into service.
    pub connections_total: u64,
    /// Per-reason disconnect counts, `(code, count)`.
    pub disconnects: Vec<(&'static str, u64)>,
    /// Deepest writer queue observed across all connections.
    pub writer_queue_peak: u64,
    /// Supervised driver restarts.
    pub restarts: u64,
    /// Requests quarantined by the fault-containment layer.
    pub quarantined: u64,
    /// Running groups shed by the step watchdog.
    pub watchdog_sheds: u64,
    /// Breaker trips (temporary `max_batch` halvings).
    pub breaker_trips: u64,
    /// Per-tenant decode accounts, sorted by tenant.
    pub tenants: Vec<TenantRate>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as one flat JSON object (the
    /// `BENCH_serving.json` style: scalar fields at the top level,
    /// `rejected_<reason>` counters inlined, tenants as an array of small
    /// objects).
    pub fn to_json(&self) -> String {
        let mut o = String::from("{");
        let push_num = |o: &mut String, k: &str, v: f64, first: bool| {
            if !first {
                o.push(',');
            }
            json::push_escaped(k, o);
            o.push(':');
            json::push_f64(v, o);
        };
        push_num(&mut o, "uptime_s", round3(self.uptime_s), true);
        push_num(&mut o, "steps", self.steps as f64, false);
        push_num(&mut o, "decoded_tokens", self.decoded_tokens as f64, false);
        push_num(&mut o, "tokens_per_s", round3(self.tokens_per_s), false);
        push_num(
            &mut o,
            "step_latency_p50_us",
            self.step_latency_p50_us as f64,
            false,
        );
        push_num(
            &mut o,
            "step_latency_p99_us",
            self.step_latency_p99_us as f64,
            false,
        );
        push_num(
            &mut o,
            "step_latency_mean_us",
            round3(self.step_latency_mean_us),
            false,
        );
        push_num(
            &mut o,
            "step_latency_max_us",
            self.step_latency_max_us as f64,
            false,
        );
        push_num(
            &mut o,
            "queue_depth_p50",
            self.queue_depth_p50 as f64,
            false,
        );
        push_num(
            &mut o,
            "queue_depth_max",
            self.queue_depth_max as f64,
            false,
        );
        push_num(&mut o, "admitted", self.admitted as f64, false);
        for (code, n) in &self.rejected {
            push_num(&mut o, &format!("rejected_{code}"), *n as f64, false);
        }
        push_num(
            &mut o,
            "active_connections",
            self.active_connections as f64,
            false,
        );
        push_num(
            &mut o,
            "connections_total",
            self.connections_total as f64,
            false,
        );
        for (code, n) in &self.disconnects {
            push_num(&mut o, &format!("disconnects_{code}"), *n as f64, false);
        }
        push_num(
            &mut o,
            "writer_queue_peak",
            self.writer_queue_peak as f64,
            false,
        );
        push_num(&mut o, "restarts", self.restarts as f64, false);
        push_num(&mut o, "quarantined", self.quarantined as f64, false);
        push_num(&mut o, "watchdog_sheds", self.watchdog_sheds as f64, false);
        push_num(&mut o, "breaker_trips", self.breaker_trips as f64, false);
        o.push_str(",\"tenants\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!(
                "{{\"tenant\":{},\"tokens\":{},\"tokens_per_s\":{}}}",
                t.tenant,
                t.tokens,
                round3(t.tokens_per_s)
            ));
        }
        o.push_str("]}");
        o
    }
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_order_matches_all() {
        // The counter arrays are indexed with `kind as usize`; that is
        // only correct while ALL lists variants in declaration order.
        for (i, k) in RejectKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i, "RejectKind::ALL out of declaration order");
        }
        for (i, r) in DisconnectReason::ALL.iter().enumerate() {
            assert_eq!(
                *r as usize, i,
                "DisconnectReason::ALL out of declaration order"
            );
        }
    }

    #[test]
    fn histogram_quantiles_are_bucketed_upper_bounds() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 100, 100, 100, 100, 100, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), 5000);
        // p50 falls in the 100s bucket (65, 128] -> bound 128.
        assert_eq!(h.quantile(0.5), 128);
        // p99 -> the 5000 sample's bucket (4096, 8192].
        assert_eq!(h.quantile(0.99), 8192);
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        h.record(0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn exact_percentile_matches_order_statistics() {
        let s: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&s, 0.50), 50.0);
        assert_eq!(percentile(&s, 0.99), 99.0);
        assert_eq!(percentile(&s, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn connection_counters_track_opens_closes_and_queue_peak() {
        let m = Metrics::new();
        m.connection_opened();
        m.connection_opened();
        m.observe_writer_depth(3);
        m.observe_writer_depth(17);
        m.observe_writer_depth(5);
        m.connection_closed(DisconnectReason::SlowReader);
        assert_eq!(m.active_connections(), 1);
        assert_eq!(m.writer_queue_peak(), 17);
        let snap = m.snapshot();
        assert_eq!(snap.active_connections, 1);
        assert_eq!(snap.connections_total, 2);
        assert_eq!(snap.writer_queue_peak, 17);
        assert_eq!(
            snap.disconnects.iter().find(|(c, _)| *c == "slow_reader"),
            Some(&("slow_reader", 1))
        );
        let j = crate::net::json::parse(&snap.to_json()).expect("valid JSON");
        assert_eq!(
            j.get("disconnects_slow_reader").and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(
            j.get("active_connections").and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(
            j.get("writer_queue_peak").and_then(|v| v.as_u64()),
            Some(17)
        );
    }

    #[test]
    fn rate_limited_and_draining_rejections_have_counters() {
        let m = Metrics::new();
        m.record_rejection(&RejectReason::RateLimited { retry_after_ms: 5 });
        m.record_rejection(&RejectReason::Draining { retry_after_ms: 9 });
        let snap = m.snapshot();
        assert_eq!(
            snap.rejected.iter().find(|(c, _)| *c == "rate_limited"),
            Some(&("rate_limited", 1))
        );
        assert_eq!(
            snap.rejected.iter().find(|(c, _)| *c == "draining"),
            Some(&("draining", 1))
        );
    }

    #[test]
    fn snapshot_json_is_parseable_and_flat() {
        let m = Metrics::new();
        m.record_step(250, 8, 3);
        m.record_step(300, 8, 2);
        m.record_admitted();
        m.record_rejection(&RejectReason::Deadline { retry_after_ms: 7 });
        m.add_tenant_tokens(3, 16);
        let snap = m.snapshot();
        let j = crate::net::json::parse(&snap.to_json()).expect("valid JSON");
        assert_eq!(
            j.get("decoded_tokens").and_then(|v| v.as_u64()),
            Some(16),
            "{j:?}"
        );
        assert_eq!(j.get("rejected_deadline").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(j.get("admitted").and_then(|v| v.as_u64()), Some(1));
        assert!(j.get("step_latency_p99_us").is_some());
        let tenants = j.get("tenants").expect("tenants array");
        match tenants {
            crate::net::json::Json::Arr(a) => {
                assert_eq!(a.len(), 1);
                assert_eq!(a[0].get("tokens").and_then(|v| v.as_u64()), Some(16));
            }
            other => panic!("tenants not an array: {other:?}"),
        }
    }
}
