//! `vq_llm::net` — the network serving front end.
//!
//! Everything below the engine is synchronous and deterministic; this
//! module is the seam that turns it into a multi-tenant service without
//! giving that determinism up:
//!
//! ```text
//!  TCP clients ──lines──> [server]  per-conn reader/writer threads
//!                            │ submit/poll/cancel/stats
//!                            v
//!                        [driver]   one thread owns the Engine
//!                            │        ├─ admission: weighted fair queue
//!                            │        │   + SLO deadline admission
//!                            │        ├─ metrics: step latency, queue
//!                            │        │   depth, rejections, tenants
//!                            │        └─ streaming: per-step partial-
//!                            │            output diffs -> token events
//!                            v
//!                         Engine::submit / step / poll / take_output
//! ```
//!
//! * [`driver`] — the engine-owning thread and its thread-safe
//!   [`Client`] handle: tickets, blocking/deadline waits, streaming
//!   sinks.
//! * [`admission`] — the front-end policy: per-tenant weighted fair
//!   queueing (stride scheduling, priority classes) and deadline/SLO
//!   admission with computed `retry_after_ms`.
//! * [`metrics`] — lock-cheap histograms and counters
//!   (p50/p99 step latency, queue depth, per-reason rejections,
//!   per-tenant tokens/s), JSON-snapshotable.
//! * [`proto`] — the newline-delimited JSON frame vocabulary
//!   (`submit`/`poll`/`cancel`/`stats` in; `accepted`/`token`/`done`/
//!   `rejected`/`status`/`stats`/`error` out).
//! * [`server`] — the `std::net::TcpListener` front end tying it
//!   together.
//! * [`json`] — the hand-rolled JSON layer (the vendored `serde` is
//!   derive-only) with bitwise-exact `f32` round-trips.
//!
//! The decode bytes a remote client receives are **bitwise identical**
//! to a solo in-process `Session` drain of the same request —
//! `tests/net_serving.rs` pins that end to end through a real socket.

pub mod admission;
pub mod driver;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod server;

pub use admission::{
    Admission, AdmissionConfig, AdmitReject, NetRequest, Pending, RateLimitConfig, RateLimiter,
};
pub use driver::{
    spawn as spawn_driver, spawn_supervised, Client, DrainReport, DriverHandle, DriverStats,
    EngineFactory, HandleTable, StreamEvent, StreamSink, SupervisorConfig, Ticket, TicketEnd,
    WaitError,
};
pub use metrics::{
    percentile, DisconnectReason, Histogram, Metrics, MetricsSnapshot, RejectKind, TenantRate,
};
pub use proto::{ClientFrame, PROTO_VERSION};
pub use server::{loopback, loopback_supervised, loopback_with, NetConfig, NetServer};

/// Locks a mutex, recovering from poisoning instead of panicking.
///
/// Every mutex in this module guards state that is updated in
/// self-consistent single steps (whole-entry map inserts, queue
/// push/pop, flag flips) with no panicking code inside the critical
/// section, so a poisoned guard cannot expose torn invariants — but a
/// panicking *sibling* thread (e.g. a contained kernel panic unwinding
/// through a scope) must not take the serving path down with it, which
/// is exactly what `.lock().unwrap()` would do.
pub(crate) fn lock_recover<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
