//! The engine driver: a dedicated thread that owns an [`Engine`] and
//! steps it whenever work is pending, behind a thread-safe [`Client`]
//! handle.
//!
//! The engine's API is deliberately synchronous and single-threaded —
//! `submit`/`step`/`poll` on one `&mut Engine` — which keeps the
//! scheduler deterministic and testable. The driver is the seam that
//! turns it into a service:
//!
//! * **one owner** — the driver thread holds the `Engine`; everything
//!   else talks to it through an mpsc command channel, so there is no
//!   lock around the scheduler and no step ever waits on a client;
//! * **work-conserving, never spinning** — the loop blocks on the
//!   channel when the engine is idle and drains commands between steps
//!   when it is not; a submit wakes it by virtue of the channel recv;
//! * **fairness in front, FIFO behind** — submissions enter the
//!   [`Admission`] fair queue (weighted stride scheduling + deadline
//!   admission) and are forwarded to the engine only while a decode slot
//!   is free, so the engine's own FIFO never holds more than a batch and
//!   cannot reorder the fairness decisions;
//! * **completion without polling** — every submission returns a
//!   [`Ticket`] holding a private wait cell the driver resolves when the
//!   request finishes or is rejected; [`Client::wait`] and
//!   [`Client::wait_timeout`] block on that cell directly, no driver
//!   round-trip;
//! * **streaming** — a [`StreamSink`] submitted with the request is
//!   called *from the driver thread* after every step with the newly
//!   decoded rows ([`StreamEvent::Token`]), so frame order is exactly
//!   decode order: `Accepted`, then one `Token` per decoded row, then
//!   `Done` (or `Rejected` at any point before completion);
//! * **measured admission** — every step's wall time feeds the shared
//!   [`Metrics`], and the admission deadline math prices new arrivals at
//!   the measured mean step latency (falling back to the configured
//!   prior while cold).
//!
//! Determinism note: the decode bytes themselves stay bitwise identical
//! to a solo drain — the driver only decides *when* requests enter the
//! engine, and the scheduler is numerically invisible (`tests/serving.rs`
//! pins that; `tests/net_serving.rs` re-pins it through a TCP socket).

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use vqllm_core::failpoint;
use vqllm_llm::{
    ContextHandle, RejectReason, RequestHandle, RequestOutput, RequestStatus, ServerStats,
};

use crate::engine::Engine;
use crate::net::admission::{Admission, AdmissionConfig, NetRequest};
use crate::net::lock_recover;
use crate::net::metrics::{Metrics, MetricsSnapshot};

/// How a driven request ends: the terminal state a [`Ticket`]'s wait
/// resolves to.
#[derive(Debug, Clone, PartialEq)]
pub enum TicketEnd {
    /// All requested tokens decoded; the full output is attached (for
    /// streamed requests the rows were also delivered incrementally).
    Finished(RequestOutput),
    /// Refused — at admission, at forwarding, or by cancellation.
    Rejected {
        /// The typed reason.
        reason: RejectReason,
        /// Computed backoff when retrying could help; `0` when it cannot
        /// (invalid request, cancelled, driver stopped).
        retry_after_ms: u64,
    },
}

impl TicketEnd {
    /// The finished output, if this end is a completion.
    pub fn into_output(self) -> Option<RequestOutput> {
        match self {
            TicketEnd::Finished(out) => Some(out),
            TicketEnd::Rejected { .. } => None,
        }
    }
}

/// What the driver pushes through a [`StreamSink`], in guaranteed order:
/// `Accepted`, then `Token` per decoded row (ascending `index`), then
/// exactly one terminal `Done` or `Rejected`.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// The request passed admission and entered the fair queue.
    Accepted {
        /// The ticket id.
        id: u64,
    },
    /// One newly decoded hidden-state row.
    Token {
        /// The ticket id.
        id: u64,
        /// Zero-based decode step of this row.
        index: usize,
        /// The row (`head_dim` wide), bitwise as the engine produced it.
        value: Vec<f32>,
    },
    /// All rows decoded.
    Done {
        /// The ticket id.
        id: u64,
        /// Total rows decoded.
        tokens: usize,
    },
    /// The request will produce no further events.
    Rejected {
        /// The ticket id.
        id: u64,
        /// The typed reason.
        reason: RejectReason,
        /// Computed backoff (0 when retrying cannot help).
        retry_after_ms: u64,
    },
}

/// A per-request event callback, invoked from the driver thread.
pub type StreamSink = Box<dyn FnMut(StreamEvent) + Send + 'static>;

/// Why a wait returned without the ticket resolving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// The deadline passed with the ticket still pending (retry the
    /// wait; the ticket stays live).
    Timeout,
    /// The driver thread died and was not (or could not be) restarted:
    /// the ticket will never resolve. Distinct from a rejection — the
    /// engine's state at the time of death is unknown.
    DriverDown,
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::Timeout => write!(f, "wait timed out; ticket still pending"),
            WaitError::DriverDown => write!(f, "driver down; ticket will never resolve"),
        }
    }
}

/// A wait cell's lifecycle: pending until the driver resolves it, or
/// marked down by the supervisor's final sweep when the driver dies for
/// good (so no waiter ever blocks forever on a dead thread).
#[derive(Debug, Clone)]
enum CellState {
    Pending,
    Done(TicketEnd),
    DriverDown,
}

/// The one-shot completion cell a ticket blocks on.
#[derive(Debug)]
struct WaitCell {
    state: Mutex<CellState>,
    cv: Condvar,
}

impl WaitCell {
    fn new() -> WaitCell {
        WaitCell {
            state: Mutex::new(CellState::Pending),
            cv: Condvar::new(),
        }
    }

    /// First terminal transition wins; later resolves (and a sweep after
    /// a resolve) are no-ops.
    fn resolve(&self, end: TicketEnd) {
        let mut s = lock_recover(&self.state);
        if matches!(*s, CellState::Pending) {
            *s = CellState::Done(end);
            self.cv.notify_all();
        }
    }

    /// Marks a still-pending cell as orphaned by a dead driver.
    fn mark_down(&self) {
        let mut s = lock_recover(&self.state);
        if matches!(*s, CellState::Pending) {
            *s = CellState::DriverDown;
            self.cv.notify_all();
        }
    }

    fn peek(&self) -> CellState {
        lock_recover(&self.state).clone()
    }

    fn wait(&self) -> Result<TicketEnd, WaitError> {
        let mut s = lock_recover(&self.state);
        loop {
            match &*s {
                CellState::Done(end) => return Ok(end.clone()),
                CellState::DriverDown => return Err(WaitError::DriverDown),
                CellState::Pending => {
                    s = self
                        .cv
                        .wait(s)
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                }
            }
        }
    }

    fn wait_timeout(&self, dur: Duration) -> Result<TicketEnd, WaitError> {
        let deadline = Instant::now() + dur;
        let mut s = lock_recover(&self.state);
        loop {
            match &*s {
                CellState::Done(end) => return Ok(end.clone()),
                CellState::DriverDown => return Err(WaitError::DriverDown),
                CellState::Pending => {}
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(WaitError::Timeout);
            }
            let (guard, _) = self
                .cv
                .wait_timeout(s, left)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            s = guard;
        }
    }
}

/// Every pending wait cell, keyed by ticket id — shared between clients
/// (insert at submit, *before* the command is sent) and the driver
/// (remove at resolution). Whatever is still in the table when the
/// driver thread exits gets swept to [`CellState::DriverDown`], which is
/// what makes [`Client::wait`] hang-proof against driver death.
#[derive(Debug, Default)]
struct CellTable {
    inner: Mutex<CellTableInner>,
}

#[derive(Debug, Default)]
struct CellTableInner {
    /// Latched true by the sweep: nothing will ever resolve a cell again.
    down: bool,
    cells: HashMap<u64, Arc<WaitCell>>,
}

impl CellTable {
    /// Tracks a pending cell. Returns `false` (without tracking) when
    /// the driver is already gone for good — the submit must resolve the
    /// cell itself, because no sweep will run again.
    fn insert(&self, id: u64, cell: &Arc<WaitCell>) -> bool {
        let mut t = lock_recover(&self.inner);
        if t.down {
            return false;
        }
        t.cells.insert(id, Arc::clone(cell));
        true
    }

    fn remove(&self, id: u64) {
        lock_recover(&self.inner).cells.remove(&id);
    }

    /// Marks every still-tracked cell as orphaned and latches the table
    /// down (the driver-thread exit path, clean or not — resolved
    /// tickets were already removed). Inserts racing this sweep either
    /// land before the drain (and get marked here) or observe the latch
    /// and resolve themselves.
    fn sweep_down(&self) {
        let cells: Vec<Arc<WaitCell>> = {
            let mut t = lock_recover(&self.inner);
            t.down = true;
            t.cells.drain().map(|(_, c)| c).collect()
        };
        for cell in cells {
            cell.mark_down();
        }
    }
}

/// A submitted request's handle: the driver-assigned id plus the wait
/// cell its completion resolves. Waiting never round-trips through the
/// driver, so a resolved ticket is observable even after the driver
/// stopped.
#[derive(Debug, Clone)]
pub struct Ticket {
    id: u64,
    cell: Arc<WaitCell>,
}

impl Ticket {
    /// The driver-assigned id (what the line protocol's `poll`/`cancel`
    /// verbs reference).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Where a request currently queues, as the driver tracks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// In the front-end fair queue.
    Queued,
    /// Handed to the engine (holding or about to hold a decode slot).
    Running,
}

struct SubmitCmd {
    id: u64,
    net: NetRequest,
    sink: Option<StreamSink>,
    cell: Arc<WaitCell>,
}

enum Cmd {
    Submit(Box<SubmitCmd>),
    Cancel { id: u64 },
    Stats { reply: Sender<DriverStats> },
    Drain(DrainJob),
    Shutdown,
}

/// An in-progress graceful drain: reject new work, finish what's in
/// flight, escalate to cancel-everything at the deadline.
struct DrainJob {
    deadline: Instant,
    reply: Sender<DrainReport>,
    /// In-flight requests that ran to completion since the drain began.
    completed: usize,
}

/// What a graceful drain accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests in flight at drain start that ran to completion.
    pub completed: usize,
    /// Requests cancelled at the deadline (0 for a clean drain).
    pub cancelled: usize,
}

/// A point-in-time view of the serving stack's queues (the `stats`
/// verb's payload, next to the metrics snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct DriverStats {
    /// The engine scheduler's cumulative counters.
    pub server: ServerStats,
    /// Requests waiting in the front-end fair queue.
    pub front_queued: usize,
    /// Requests waiting in the engine's (intentionally shallow) FIFO.
    pub engine_queued: usize,
    /// Requests holding a decode slot.
    pub running: usize,
    /// Tokens still owed by requests handed to the engine (the SLO
    /// backlog term; exactly 0 when the driver is idle).
    pub inflight_tokens: u64,
    /// Whether the driver is refusing new work pending shutdown.
    pub draining: bool,
}

/// The thread-safe handle to a driven engine. Cheap to clone; every
/// clone talks to the same driver thread.
#[derive(Clone)]
pub struct Client {
    tx: Sender<Cmd>,
    metrics: Arc<Metrics>,
    phases: Arc<Mutex<HashMap<u64, Phase>>>,
    cells: Arc<CellTable>,
    next_id: Arc<AtomicU64>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Submits a request; never blocks and never fails. A refused
    /// request's ticket resolves to [`TicketEnd::Rejected`] (immediately,
    /// when the driver has stopped).
    pub fn submit(&self, net: NetRequest) -> Ticket {
        self.submit_inner(net, None)
    }

    /// Submits a request with a streaming sink: the driver calls it with
    /// every [`StreamEvent`] in decode order, from the driver thread.
    pub fn submit_streaming(&self, net: NetRequest, sink: StreamSink) -> Ticket {
        self.submit_inner(net, Some(sink))
    }

    fn submit_inner(&self, net: NetRequest, sink: Option<StreamSink>) -> Ticket {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::new(WaitCell::new());
        let ticket = Ticket {
            id,
            cell: Arc::clone(&cell),
        };
        // Register the cell before the command is sent: if the driver
        // dies while the command is in flight, the exit sweep finds the
        // cell and marks it DriverDown instead of leaving the waiter
        // stuck. When the table is already latched down (driver gone for
        // good) no sweep will run again, so resolve the refusal here and
        // skip the send entirely.
        if !self.cells.insert(id, &cell) {
            let reason = RejectReason::Invalid {
                what: "driver stopped",
            };
            if let Some(mut s) = sink {
                s(StreamEvent::Rejected {
                    id,
                    reason,
                    retry_after_ms: 0,
                });
            }
            cell.resolve(TicketEnd::Rejected {
                reason,
                retry_after_ms: 0,
            });
            return ticket;
        }
        let cmd = Cmd::Submit(Box::new(SubmitCmd {
            id,
            net,
            sink,
            cell,
        }));
        if let Err(mpsc::SendError(Cmd::Submit(mut boxed))) = self.tx.send(cmd) {
            let reason = RejectReason::Invalid {
                what: "driver stopped",
            };
            if let Some(s) = boxed.sink.as_mut() {
                s(StreamEvent::Rejected {
                    id,
                    reason,
                    retry_after_ms: 0,
                });
            }
            boxed.cell.resolve(TicketEnd::Rejected {
                reason,
                retry_after_ms: 0,
            });
            self.cells.remove(id);
        }
        ticket
    }

    /// Where the ticket currently is: `Queued` (front-end fair queue, or
    /// still in flight to the driver), `Running` (handed to the engine),
    /// `Finished`, or `Rejected`.
    pub fn poll(&self, ticket: &Ticket) -> RequestStatus {
        match ticket.cell.peek() {
            CellState::Done(TicketEnd::Finished(out)) => RequestStatus::Finished {
                tokens: out.steps.len(),
            },
            CellState::Done(TicketEnd::Rejected { reason, .. }) => {
                RequestStatus::Rejected { reason }
            }
            CellState::DriverDown => RequestStatus::Rejected {
                reason: RejectReason::Internal {
                    what: "driver down",
                },
            },
            CellState::Pending => match lock_recover(&self.phases).get(&ticket.id) {
                Some(Phase::Running) => RequestStatus::Running,
                _ => RequestStatus::Queued,
            },
        }
    }

    /// Blocks until the ticket resolves.
    ///
    /// # Errors
    ///
    /// Returns [`WaitError::DriverDown`] (never `Timeout`) if the driver
    /// thread died without resolving the ticket — the wait unblocks
    /// instead of hanging forever.
    pub fn wait(&self, ticket: &Ticket) -> Result<TicketEnd, WaitError> {
        ticket.cell.wait()
    }

    /// Blocks until the ticket resolves or the deadline passes.
    ///
    /// # Errors
    ///
    /// Returns [`WaitError::Timeout`] when the deadline passes with the
    /// ticket still pending, [`WaitError::DriverDown`] when the driver
    /// thread died without resolving it.
    pub fn wait_timeout(&self, ticket: &Ticket, dur: Duration) -> Result<TicketEnd, WaitError> {
        ticket.cell.wait_timeout(dur)
    }

    /// Requests cancellation: a queued or running request frees its
    /// entry/slot and the ticket resolves to
    /// [`RejectReason::Cancelled`]; a ticket that already resolved is
    /// unaffected.
    pub fn cancel(&self, ticket: &Ticket) {
        let _ = self.tx.send(Cmd::Cancel { id: ticket.id });
    }

    /// Queue/scheduler counters, fetched from the driver thread (`None`
    /// when the driver has stopped).
    pub fn stats(&self) -> Option<DriverStats> {
        let (tx, rx) = mpsc::channel();
        self.tx.send(Cmd::Stats { reply: tx }).ok()?;
        rx.recv().ok()
    }

    /// A point-in-time copy of the driver's metrics (lock-free reads; no
    /// driver round-trip).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The live metrics the driver records into — shared with the
    /// server's connection plumbing so connection gauges land in the
    /// same snapshot.
    pub(crate) fn metrics_shared(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }
}

/// The handle that owns the driver thread: keep it alive for as long as
/// the engine should serve, then [`DriverHandle::shutdown`].
#[derive(Debug)]
pub struct DriverHandle {
    tx: Sender<Cmd>,
    join: Option<JoinHandle<()>>,
}

impl DriverHandle {
    /// Stops the driver: every unresolved ticket resolves to
    /// [`RejectReason::Cancelled`] and the thread exits. Idempotent with
    /// respect to a driver that already stopped.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Cmd::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// Gracefully drains the driver, blocking until it exits: new
    /// submissions are rejected as [`RejectReason::Draining`] (with a
    /// computed retry-after), in-flight requests run to completion, and
    /// anything still unfinished at `deadline` is cancelled. Returns
    /// what happened to the in-flight work.
    pub fn drain(mut self, deadline: Duration) -> DrainReport {
        let (reply, rx) = mpsc::channel();
        let sent = self
            .tx
            .send(Cmd::Drain(DrainJob {
                deadline: Instant::now() + deadline,
                reply,
                completed: 0,
            }))
            .is_ok();
        let report = if sent {
            rx.recv().unwrap_or(DrainReport {
                completed: 0,
                cancelled: 0,
            })
        } else {
            // The driver already stopped: nothing was in flight.
            DrainReport {
                completed: 0,
                cancelled: 0,
            }
        };
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        report
    }
}

impl Drop for DriverHandle {
    fn drop(&mut self) {
        let _ = self.tx.send(Cmd::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Rebuilds the engine (and re-registers its contexts) after a driver
/// death: the supervisor's warm-restart recipe. The handles come back in
/// protocol `ctx`-index order; a persisted plan cache makes the rebuild
/// skip cold-start planning.
pub type EngineFactory =
    Box<dyn FnMut() -> Result<(Engine, Vec<ContextHandle>), String> + Send + 'static>;

/// The live context-handle table: the supervisor republishes fresh
/// handles here after an engine rebuild, and the protocol layer maps
/// `ctx` indices through it on every submit — so connections keep
/// working across a restart without re-dialing.
#[derive(Debug, Default)]
pub struct HandleTable {
    handles: Mutex<Vec<ContextHandle>>,
}

impl HandleTable {
    /// A table holding `handles` in protocol `ctx`-index order.
    pub fn new(handles: Vec<ContextHandle>) -> HandleTable {
        HandleTable {
            handles: Mutex::new(handles),
        }
    }

    /// The handle at protocol index `idx`, if registered.
    pub fn get(&self, idx: usize) -> Option<ContextHandle> {
        lock_recover(&self.handles).get(idx).copied()
    }

    /// Registered handles.
    pub fn len(&self) -> usize {
        lock_recover(&self.handles).len()
    }

    /// Whether no context is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replaces the whole table (the post-restart republish).
    fn publish(&self, handles: Vec<ContextHandle>) {
        *lock_recover(&self.handles) = handles;
    }
}

/// Restart limits of a supervised driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Engine rebuilds attempted over the driver's lifetime before the
    /// supervisor gives up (remaining waiters then observe
    /// [`WaitError::DriverDown`]). Bounds a crash loop.
    pub max_restarts: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig { max_restarts: 3 }
    }
}

/// Spawns the driver thread for a (pre-configured, contexts already
/// registered) engine and returns the client handle plus the thread's
/// owner.
///
/// Unsupervised: if the driver thread panics, every unresolved ticket's
/// wait returns [`WaitError::DriverDown`] and the driver stays down. Use
/// [`spawn_supervised`] for restart-on-death.
pub fn spawn(engine: Engine, cfg: AdmissionConfig) -> (Client, DriverHandle) {
    spawn_inner(engine, cfg, None)
}

/// Spawns a **supervised** driver: the factory builds the initial engine
/// (and is kept for rebuilds), and when the driver thread dies — a panic
/// escaping a step, a wedged engine, an injected fault — the supervisor,
/// in the same thread:
///
/// 1. resolves every live ticket as
///    [`RejectReason::DriverRestarted`] with a retry computed from the
///    measured step latency and the backlog at death;
/// 2. rebuilds the engine through the factory (a persisted plan cache
///    makes this a warm start) and republishes the fresh context handles
///    into the returned [`HandleTable`];
/// 3. re-opens admission with a clean queue and continues serving —
///    [`Metrics::restarts`] counts each recovery.
///
/// After [`SupervisorConfig::max_restarts`] rebuilds (or a factory
/// error), the thread exits and remaining waiters observe
/// [`WaitError::DriverDown`].
///
/// # Errors
///
/// Returns the factory's error if the *initial* engine build fails.
pub fn spawn_supervised(
    mut factory: EngineFactory,
    cfg: AdmissionConfig,
    sup: SupervisorConfig,
) -> Result<(Client, DriverHandle, Arc<HandleTable>), String> {
    let (engine, contexts) = factory()?;
    let handles = Arc::new(HandleTable::new(contexts));
    let (client, driver) = spawn_inner(engine, cfg, Some((factory, sup, Arc::clone(&handles))));
    Ok((client, driver, handles))
}

/// Best-effort panic payload message (panics carry `&str` or `String`
/// in practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn spawn_inner(
    engine: Engine,
    cfg: AdmissionConfig,
    supervisor: Option<(EngineFactory, SupervisorConfig, Arc<HandleTable>)>,
) -> (Client, DriverHandle) {
    let (tx, rx) = mpsc::channel();
    let metrics = Arc::new(Metrics::new());
    let phases = Arc::new(Mutex::new(HashMap::new()));
    let cells = Arc::new(CellTable::default());
    let max_batch = engine.serve_config().max_batch;
    let admission = Admission::new(cfg, max_batch);
    let state = DriverState {
        engine,
        admission,
        rx,
        metrics: Arc::clone(&metrics),
        phases: Arc::clone(&phases),
        cells: Arc::clone(&cells),
        tickets: HashMap::new(),
        inflight_tokens: 0,
        started: Instant::now(),
        drain: None,
        steps_done: 0,
        breaker_until: 0,
    };
    let join = thread::Builder::new()
        .name("vq-llm-driver".into())
        .spawn(move || {
            let mut state = state;
            let mut supervisor = supervisor;
            let mut restarts_left = supervisor.as_ref().map_or(0, |(_, s, _)| s.max_restarts);
            loop {
                match panic::catch_unwind(AssertUnwindSafe(|| state.run_inner())) {
                    Ok(()) => break, // clean shutdown/drain exit
                    Err(payload) => {
                        let cause = panic_message(payload.as_ref());
                        let restarted = match supervisor.as_mut() {
                            Some((factory, _, handles)) if restarts_left > 0 => {
                                restarts_left -= 1;
                                state.restart(factory, handles, &cause)
                            }
                            _ => false,
                        };
                        if !restarted {
                            break;
                        }
                    }
                }
            }
            // Clean or not, nothing resolves tickets after this point:
            // whatever is still tracked (a submit that raced the exit, a
            // ticket orphaned by an unsupervised death) unblocks as
            // DriverDown instead of hanging its waiter.
            state.cells.sweep_down();
        })
        .expect("spawn driver thread");
    let client = Client {
        tx: tx.clone(),
        metrics,
        phases,
        cells,
        next_id: Arc::new(AtomicU64::new(1)),
    };
    (
        client,
        DriverHandle {
            tx,
            join: Some(join),
        },
    )
}

/// One live ticket's driver-side record, from admission to resolution.
struct TicketRec {
    cell: Arc<WaitCell>,
    sink: Option<StreamSink>,
    tenant: u64,
    gen_tokens: usize,
    /// Engine handle once forwarded.
    handle: Option<RequestHandle>,
    /// Rows already observed/streamed.
    streamed: usize,
}

struct DriverState {
    engine: Engine,
    admission: Admission,
    rx: Receiver<Cmd>,
    metrics: Arc<Metrics>,
    phases: Arc<Mutex<HashMap<u64, Phase>>>,
    cells: Arc<CellTable>,
    tickets: HashMap<u64, TicketRec>,
    /// Tokens still owed by requests handed to the engine (grows by
    /// `gen_tokens` at forward, shrinks per streamed/finished row and by
    /// the unstreamed remainder on cancel) — the engine-side term of the
    /// SLO backlog. Exactly 0 whenever the driver is idle.
    inflight_tokens: u64,
    /// The driver's monotonic clock origin (positions rate-limit
    /// windows).
    started: Instant,
    /// `Some` while a graceful drain is in progress.
    drain: Option<DrainJob>,
    /// Steps executed (the breaker's cooldown clock; survives restarts).
    steps_done: u64,
    /// While `steps_done` is below this, the breaker halves the
    /// effective `max_batch` in [`DriverState::forward`].
    breaker_until: u64,
}

impl DriverState {
    fn idle(&self) -> bool {
        self.engine.is_idle() && self.admission.is_empty()
    }

    /// Subtracts owed tokens with an underflow guard: the cancel/finish
    /// race must never wrap the backlog counter (a wrapped counter would
    /// poison every deadline-admission decision until restart).
    fn charge_down(&mut self, n: u64) {
        debug_assert!(
            self.inflight_tokens >= n,
            "inflight_tokens underflow: {} - {n}",
            self.inflight_tokens
        );
        self.inflight_tokens = self.inflight_tokens.saturating_sub(n);
    }

    /// Milliseconds since the driver started (the rate-limit clock).
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    /// Checks an in-progress drain: `Some` with the final report exactly
    /// when the drain just completed — cleanly (everything in flight
    /// finished) or by deadline escalation (the rest cancelled).
    fn drain_progress(&mut self) -> Option<DrainReport> {
        let (deadline, completed) = match self.drain.as_ref() {
            Some(job) => (job.deadline, job.completed),
            None => return None,
        };
        if self.idle() {
            return Some(DrainReport {
                completed,
                cancelled: 0,
            });
        }
        if Instant::now() >= deadline {
            let cancelled = self.escalate_drain();
            return Some(DrainReport {
                completed,
                cancelled,
            });
        }
        None
    }

    /// The drain deadline passed with work still in flight: cancel every
    /// live ticket (queued or holding a slot) and zero the backlog.
    fn escalate_drain(&mut self) -> usize {
        let ids: Vec<u64> = self.tickets.keys().copied().collect();
        let cancelled = ids.len();
        self.engine.cancel_all();
        for id in ids {
            self.admission.cancel(id);
            self.metrics.record_rejection(&RejectReason::Cancelled);
            self.resolve(id, RejectReason::Cancelled);
        }
        self.inflight_tokens = 0;
        cancelled
    }

    /// Rejects every command still sitting in the channel on exit, so a
    /// submit that raced the shutdown resolves instead of hanging its
    /// waiter.
    fn flush_channel(&mut self) {
        while let Ok(cmd) = self.rx.try_recv() {
            match cmd {
                Cmd::Submit(mut boxed) => {
                    let reason = RejectReason::Invalid {
                        what: "driver stopped",
                    };
                    if let Some(s) = boxed.sink.as_mut() {
                        s(StreamEvent::Rejected {
                            id: boxed.id,
                            reason,
                            retry_after_ms: 0,
                        });
                    }
                    boxed.cell.resolve(TicketEnd::Rejected {
                        reason,
                        retry_after_ms: 0,
                    });
                    self.cells.remove(boxed.id);
                }
                Cmd::Drain(job) => {
                    let _ = job.reply.send(DrainReport {
                        completed: 0,
                        cancelled: 0,
                    });
                }
                // Dropping the reply makes Client::stats return None.
                Cmd::Stats { .. } | Cmd::Cancel { .. } | Cmd::Shutdown => {}
            }
        }
    }

    /// One supervised incarnation of the drive loop. Returns on clean
    /// shutdown/drain; panics (deliberately un-caught here) when the
    /// engine is suspect — the supervisor frame in [`spawn_inner`]
    /// catches that and decides between restart and death.
    fn run_inner(&mut self) {
        loop {
            if let Some(report) = self.drain_progress() {
                if let Some(job) = self.drain.take() {
                    let _ = job.reply.send(report);
                }
                self.flush_channel();
                return;
            }
            if self.idle() {
                debug_assert!(self.tickets.is_empty(), "idle driver with live tickets");
                debug_assert_eq!(self.inflight_tokens, 0, "idle driver owes tokens");
                // Nothing to decode: park on the channel.
                match self.rx.recv() {
                    Ok(Cmd::Shutdown) | Err(_) => return self.shutdown_now(),
                    Ok(cmd) => self.handle_cmd(cmd),
                }
                // A drain request against an idle driver completes on the
                // next loop iteration without ever blocking again.
                continue;
            }
            // Drain whatever arrived while stepping.
            loop {
                match self.rx.try_recv() {
                    Ok(Cmd::Shutdown) => return self.shutdown_now(),
                    Ok(cmd) => self.handle_cmd(cmd),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        if self.idle() {
                            return;
                        }
                        break;
                    }
                }
            }
            self.forward();
            if !self.engine.is_idle() {
                // Fault-injection site for the supervisor path: a panic
                // (or error) here kills this incarnation of the driver
                // exactly as a wedged/corrupt engine would.
                if let Some(msg) = failpoint::fire("net.driver.step") {
                    panic!("failpoint net.driver.step: {msg}");
                }
                let depth = self.admission.len() + self.engine.queued();
                let t0 = Instant::now();
                match self.engine.step() {
                    Ok(report) => {
                        let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
                        self.metrics.record_step(us, report.batch, depth);
                        self.steps_done += 1;
                        if !report.quarantined.is_empty() {
                            // The engine's containment layer tombstoned
                            // these mid-step; after_step observes them as
                            // typed rejections and settles their tokens.
                            self.metrics
                                .record_quarantined(report.quarantined.len() as u64);
                        }
                        // inflight_tokens is settled per ticket inside
                        // after_step (streamed rows, finish tails, cancel
                        // remainders) — exact even when a cancel lands in
                        // the same step a request finishes.
                        self.after_step();
                        let timeout = self.step_timeout_us();
                        if us > timeout {
                            self.shed_running(us, timeout);
                        }
                    }
                    Err(e) => {
                        // The admission invariants make step errors
                        // unreachable in normal use, so the engine state
                        // is suspect. Escalate to the supervisor, which
                        // rebuilds the engine (or, unsupervised, sweeps
                        // every waiter to DriverDown).
                        panic!("engine step failed: {e}");
                    }
                }
            }
        }
    }

    fn handle_cmd(&mut self, cmd: Cmd) {
        match cmd {
            Cmd::Submit(boxed) => self.handle_submit(*boxed),
            Cmd::Cancel { id } => self.handle_cancel(id),
            Cmd::Stats { reply } => {
                let _ = reply.send(DriverStats {
                    server: self.engine.stats(),
                    front_queued: self.admission.len(),
                    engine_queued: self.engine.queued(),
                    running: self.engine.running(),
                    inflight_tokens: self.inflight_tokens,
                    draining: self.drain.is_some(),
                });
            }
            Cmd::Drain(job) => {
                if self.drain.is_some() {
                    // A second concurrent drain cannot track the first's
                    // progress; report it empty rather than deadlock it.
                    let _ = job.reply.send(DrainReport {
                        completed: 0,
                        cancelled: 0,
                    });
                } else {
                    self.drain = Some(job);
                }
            }
            Cmd::Shutdown => {
                // The recv loops intercept Shutdown before dispatch;
                // tolerate a stray one as a no-op rather than killing
                // this incarnation of the driver.
                debug_assert!(false, "shutdown is handled by the loop");
            }
        }
    }

    fn handle_submit(&mut self, cmd: SubmitCmd) {
        let SubmitCmd {
            id,
            net,
            mut sink,
            cell,
        } = cmd;
        let measured =
            (self.metrics.step_latency.count() > 0).then(|| self.metrics.step_latency.mean());
        if self.drain.is_some() {
            // Draining: nothing new is admitted; suggest coming back once
            // the present backlog has decoded (the drain's natural end).
            let est = self.admission.estimator(measured);
            let backlog = self.admission.pending_tokens() + self.inflight_tokens;
            let retry_after_ms = (est.queue_drain_ms(backlog.max(1)).ceil() as u64).max(1);
            let reason = RejectReason::Draining { retry_after_ms };
            self.metrics.record_rejection(&reason);
            // Resolve before the sink fires: once a terminal frame is on
            // the wire, a `poll` round-trip must see the terminal state.
            cell.resolve(TicketEnd::Rejected {
                reason,
                retry_after_ms,
            });
            self.cells.remove(id);
            if let Some(s) = sink.as_mut() {
                s(StreamEvent::Rejected {
                    id,
                    reason,
                    retry_after_ms,
                });
            }
            return;
        }
        let tenant = net.req.tenant;
        let gen_tokens = net.req.gen_tokens;
        let now_ms = self.now_ms();
        match self
            .admission
            .admit(id, net, self.inflight_tokens, measured, now_ms)
        {
            Ok(()) => {
                self.metrics.record_admitted();
                lock_recover(&self.phases).insert(id, Phase::Queued);
                if let Some(s) = sink.as_mut() {
                    s(StreamEvent::Accepted { id });
                }
                self.tickets.insert(
                    id,
                    TicketRec {
                        cell,
                        sink,
                        tenant,
                        gen_tokens,
                        handle: None,
                        streamed: 0,
                    },
                );
            }
            Err(rej) => {
                self.metrics.record_rejection(&rej.reason);
                cell.resolve(TicketEnd::Rejected {
                    reason: rej.reason,
                    retry_after_ms: rej.retry_after_ms,
                });
                self.cells.remove(id);
                if let Some(s) = sink.as_mut() {
                    s(StreamEvent::Rejected {
                        id,
                        reason: rej.reason,
                        retry_after_ms: rej.retry_after_ms,
                    });
                }
            }
        }
    }

    fn handle_cancel(&mut self, id: u64) {
        if self.admission.cancel(id).is_some() {
            // Still in the fair queue: never reached the engine.
            self.metrics.record_rejection(&RejectReason::Cancelled);
            self.resolve(id, RejectReason::Cancelled);
            return;
        }
        let Some((handle, owed)) = self.tickets.get(&id).and_then(|r| {
            r.handle
                .map(|h| (h, r.gen_tokens.saturating_sub(r.streamed) as u64))
        }) else {
            return; // already resolved (or never existed)
        };
        if self.engine.cancel(&handle) {
            self.charge_down(owed);
            self.metrics.record_rejection(&RejectReason::Cancelled);
            self.resolve(id, RejectReason::Cancelled);
        }
    }

    /// Resolves a ticket to a rejection, emitting the terminal sink
    /// event.
    fn resolve(&mut self, id: u64, reason: RejectReason) {
        lock_recover(&self.phases).remove(&id);
        if let Some(mut rec) = self.tickets.remove(&id) {
            let retry_after_ms = reason.retry_hint_ms().unwrap_or(0);
            // Resolve before the sink fires: once the terminal frame is
            // on the wire, a `poll` round-trip must see the terminal
            // state, never a stale `queued`.
            rec.cell.resolve(TicketEnd::Rejected {
                reason,
                retry_after_ms,
            });
            self.cells.remove(id);
            if let Some(s) = rec.sink.as_mut() {
                s(StreamEvent::Rejected {
                    id,
                    reason,
                    retry_after_ms,
                });
            }
        }
    }

    /// Moves fair-queue requests into the engine while a decode slot is
    /// free. The engine queue therefore never holds more than one
    /// batch's worth of requests, so the engine's FIFO cannot reorder
    /// the fair queue's grants.
    fn forward(&mut self) {
        let mut max_batch = self.engine.serve_config().max_batch;
        if self.steps_done < self.breaker_until {
            // Breaker tripped: run at half batch until the cooldown
            // expires, so whatever wedged the last oversized step gets
            // headroom instead of an immediate repeat.
            max_batch = (max_batch / 2).max(1);
        }
        while self.engine.running() + self.engine.queued() < max_batch {
            let Some(p) = self.admission.pop() else { break };
            let gen = p.net.req.gen_tokens as u64;
            let handle = self.engine.submit(p.net.ctx, p.net.req);
            if let RequestStatus::Rejected { reason } = self.engine.poll(&handle) {
                // The engine refused what admission let through (bad
                // query shape, unknown context, KV overflow): surface
                // the typed reason on the ticket.
                self.metrics.record_rejection(&reason);
                self.resolve(p.id, reason);
                continue;
            }
            self.inflight_tokens += gen;
            if let Some(rec) = self.tickets.get_mut(&p.id) {
                rec.handle = Some(handle);
                lock_recover(&self.phases).insert(p.id, Phase::Running);
            } else {
                // The ticket record vanished (cannot happen outside a
                // cancel race): don't decode for nobody.
                self.engine.cancel(&handle);
                self.charge_down(gen);
            }
        }
    }

    /// Streams newly decoded rows and resolves finished requests, in
    /// ticket-id order (stable across runs).
    fn after_step(&mut self) {
        let mut live: Vec<(u64, RequestHandle)> = self
            .tickets
            .iter()
            .filter_map(|(&id, r)| r.handle.map(|h| (id, h)))
            .collect();
        live.sort_unstable_by_key(|&(id, _)| id);
        for (id, handle) in live {
            let streamed = match self.tickets.get(&id) {
                Some(rec) => rec.streamed,
                None => continue,
            };
            let new_rows: Vec<Vec<f32>> = self
                .engine
                .partial_output(&handle)
                .map(|rows| rows.get(streamed..).unwrap_or_default().to_vec())
                .unwrap_or_default();
            if let Some(rec) = self.tickets.get_mut(&id).filter(|_| !new_rows.is_empty()) {
                for (k, row) in new_rows.iter().enumerate() {
                    if let Some(s) = rec.sink.as_mut() {
                        s(StreamEvent::Token {
                            id,
                            index: streamed + k,
                            value: row.clone(),
                        });
                    }
                }
                rec.streamed += new_rows.len();
                let tenant = rec.tenant;
                self.metrics
                    .add_tenant_tokens(tenant, new_rows.len() as u64);
                self.charge_down(new_rows.len() as u64);
            }
            match self.engine.poll(&handle) {
                RequestStatus::Finished { .. } => {
                    let Some(out) = self.engine.take_output(&handle) else {
                        // poll said Finished, so the output must exist; if
                        // the engine disagrees, fail the ticket rather
                        // than wedge its waiter.
                        let reason = RejectReason::Internal {
                            what: "finished output missing",
                        };
                        if let Some(rec) = self.tickets.get(&id) {
                            let owed = rec.gen_tokens.saturating_sub(rec.streamed) as u64;
                            self.charge_down(owed);
                        }
                        self.metrics.record_rejection(&reason);
                        self.resolve(id, reason);
                        continue;
                    };
                    lock_recover(&self.phases).remove(&id);
                    let Some(mut rec) = self.tickets.remove(&id) else {
                        continue;
                    };
                    // Rows decoded in the finishing step are no longer
                    // visible via partial_output; deliver them from the
                    // collected output.
                    let tail = out.steps.get(rec.streamed..).unwrap_or_default();
                    if !tail.is_empty() {
                        for (k, row) in tail.iter().enumerate() {
                            if let Some(s) = rec.sink.as_mut() {
                                s(StreamEvent::Token {
                                    id,
                                    index: rec.streamed + k,
                                    value: row.clone(),
                                });
                            }
                        }
                        self.metrics
                            .add_tenant_tokens(rec.tenant, tail.len() as u64);
                    }
                    self.charge_down(tail.len() as u64);
                    // Resolve before the sink fires: a client that polls
                    // right after reading `done` must see `finished`.
                    let tokens = out.steps.len();
                    rec.cell.resolve(TicketEnd::Finished(out));
                    self.cells.remove(id);
                    if let Some(s) = rec.sink.as_mut() {
                        s(StreamEvent::Done { id, tokens });
                    }
                    if let Some(job) = self.drain.as_mut() {
                        job.completed += 1;
                    }
                }
                RequestStatus::Rejected { reason } => {
                    // Reachable only through external cancellation paths;
                    // keep the ticket's contract either way. The rows this
                    // ticket never decoded come off the backlog with it.
                    let owed = self
                        .tickets
                        .get(&id)
                        .map(|rec| rec.gen_tokens.saturating_sub(rec.streamed) as u64)
                        .unwrap_or(0);
                    self.charge_down(owed);
                    self.metrics.record_rejection(&reason);
                    self.resolve(id, reason);
                }
                _ => {}
            }
        }
    }

    /// The step timeout the watchdog sheds against: the explicit
    /// override when configured, otherwise a multiple of the measured
    /// p99 step latency (the configured prior while cold), floored so
    /// scheduling jitter on fast steps never trips it.
    fn step_timeout_us(&self) -> u64 {
        let cfg = self.admission.config();
        if let Some(t) = cfg.step_timeout_us {
            return t.max(1);
        }
        let p99 = if self.metrics.step_latency.count() > 0 {
            self.metrics.step_latency.quantile(0.99) as f64
        } else {
            cfg.default_step_us
        };
        ((p99 * cfg.watchdog_multiplier) as u64).max(cfg.watchdog_floor_us)
    }

    /// The step watchdog fired: a step took `us` against a budget of
    /// `timeout` µs. Steps are synchronous, so the overrun is detected
    /// at the boundary — the running group is shed with typed
    /// rejections (finished work already completed in `after_step`),
    /// and the breaker halves the effective batch for a cooldown so a
    /// pathological batch shape cannot wedge the service twice in a row.
    fn shed_running(&mut self, us: u64, timeout: u64) {
        let reason = RejectReason::Internal {
            what: "watchdog: step exceeded timeout, running group shed",
        };
        let live: Vec<(u64, RequestHandle, u64)> = self
            .tickets
            .iter()
            .filter_map(|(&id, r)| {
                r.handle
                    .map(|h| (id, h, r.gen_tokens.saturating_sub(r.streamed) as u64))
            })
            .collect();
        for (id, handle, owed) in live {
            if self.engine.cancel(&handle) {
                self.charge_down(owed);
                self.metrics.record_rejection(&reason);
                self.resolve(id, reason);
            }
        }
        self.metrics.record_watchdog_shed();
        let cooldown = self.admission.config().breaker_cooldown_steps;
        if cooldown > 0 {
            self.breaker_until = self.steps_done + cooldown;
            self.metrics.record_breaker_trip();
        }
        eprintln!(
            "vq-llm driver watchdog: step took {us} µs (budget {timeout} µs), running group shed"
        );
    }

    /// The warm-restart path the supervisor frame runs after this
    /// driver incarnation panicked: resolve everything live as
    /// [`RejectReason::DriverRestarted`], rebuild the engine through
    /// the factory, republish the fresh context handles, and re-open
    /// admission. Returns `false` (driver stays down) if the rebuild
    /// fails.
    fn restart(&mut self, factory: &mut EngineFactory, handles: &HandleTable, cause: &str) -> bool {
        // Price the retry hint from what the service knew at death: the
        // measured step latency over the backlog that just evaporated.
        let measured =
            (self.metrics.step_latency.count() > 0).then(|| self.metrics.step_latency.mean());
        let est = self.admission.estimator(measured);
        let backlog = (self.admission.pending_tokens() + self.inflight_tokens).max(1);
        let retry_after_ms = (est.queue_drain_ms(backlog).ceil() as u64).max(1);
        let reason = RejectReason::DriverRestarted { retry_after_ms };
        // Rebuild and republish BEFORE resolving tickets: a waiter
        // unblocked by `driver_restarted` may immediately re-fetch a
        // context handle, and must never observe the dead engine's. (If
        // the rebuild fails, the tickets stay pending and the exit sweep
        // marks them DriverDown — no false restart promise.)
        let (engine, contexts) = match factory() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("vq-llm driver: engine rebuild failed, staying down: {e}");
                return false;
            }
        };
        let max_batch = engine.serve_config().max_batch;
        let cfg = self.admission.config().clone();
        self.engine = engine;
        self.admission = Admission::new(cfg, max_batch);
        handles.publish(contexts);
        let ids: Vec<u64> = self.tickets.keys().copied().collect();
        let dropped = ids.len();
        for id in ids {
            self.metrics.record_rejection(&reason);
            self.resolve(id, reason);
        }
        lock_recover(&self.phases).clear();
        self.inflight_tokens = 0;
        // A drain preempted by the death still gets its report: what
        // finished before the crash counts, the rest was dropped.
        if let Some(job) = self.drain.take() {
            let _ = job.reply.send(DrainReport {
                completed: job.completed,
                cancelled: dropped,
            });
        }
        self.metrics.record_restart();
        eprintln!(
            "vq-llm driver: restarted after panic ({cause}); {dropped} in-flight request(s) \
             resolved driver_restarted"
        );
        true
    }

    /// Resolves every unresolved ticket as cancelled and drops the
    /// engine (the shutdown path). A drain that shutdown preempted still
    /// gets its report, counting the preempted remainder as cancelled.
    fn shutdown_now(&mut self) {
        let ids: Vec<u64> = self.tickets.keys().copied().collect();
        let cancelled = ids.len();
        for id in ids {
            self.metrics.record_rejection(&RejectReason::Cancelled);
            self.resolve(id, RejectReason::Cancelled);
        }
        lock_recover(&self.phases).clear();
        self.inflight_tokens = 0;
        if let Some(job) = self.drain.take() {
            let _ = job.reply.send(DrainReport {
                completed: job.completed,
                cancelled,
            });
        }
        self.flush_channel();
    }
}
