//! The engine driver: a dedicated thread that owns an [`Engine`] and
//! steps it whenever work is pending, behind a thread-safe [`Client`]
//! handle.
//!
//! The engine's API is deliberately synchronous and single-threaded —
//! `submit`/`step`/`poll` on one `&mut Engine` — which keeps the
//! scheduler deterministic and testable. The driver is the seam that
//! turns it into a service:
//!
//! * **one owner** — the driver thread holds the `Engine`; everything
//!   else talks to it through an mpsc command channel, so there is no
//!   lock around the scheduler and no step ever waits on a client;
//! * **work-conserving, never spinning** — the loop blocks on the
//!   channel when the engine is idle and drains commands between steps
//!   when it is not; a submit wakes it by virtue of the channel recv;
//! * **fairness in front, FIFO behind** — submissions enter the
//!   [`Admission`] fair queue (weighted stride scheduling + deadline
//!   admission) and are forwarded to the engine only while a decode slot
//!   is free, so the engine's own FIFO never holds more than a batch and
//!   cannot reorder the fairness decisions;
//! * **completion without polling** — every submission returns a
//!   [`Ticket`] holding a private wait cell the driver resolves when the
//!   request finishes or is rejected; [`Client::wait`] and
//!   [`Client::wait_timeout`] block on that cell directly, no driver
//!   round-trip;
//! * **streaming** — a [`StreamSink`] submitted with the request is
//!   called *from the driver thread* after every step with the newly
//!   decoded rows ([`StreamEvent::Token`]), so frame order is exactly
//!   decode order: `Accepted`, then one `Token` per decoded row, then
//!   `Done` (or `Rejected` at any point before completion);
//! * **measured admission** — every step's wall time feeds the shared
//!   [`Metrics`], and the admission deadline math prices new arrivals at
//!   the measured mean step latency (falling back to the configured
//!   prior while cold).
//!
//! Determinism note: the decode bytes themselves stay bitwise identical
//! to a solo drain — the driver only decides *when* requests enter the
//! engine, and the scheduler is numerically invisible (`tests/serving.rs`
//! pins that; `tests/net_serving.rs` re-pins it through a TCP socket).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use vqllm_llm::{RejectReason, RequestHandle, RequestOutput, RequestStatus, ServerStats};

use crate::engine::Engine;
use crate::net::admission::{Admission, AdmissionConfig, NetRequest};
use crate::net::metrics::{Metrics, MetricsSnapshot};

/// How a driven request ends: the terminal state a [`Ticket`]'s wait
/// resolves to.
#[derive(Debug, Clone, PartialEq)]
pub enum TicketEnd {
    /// All requested tokens decoded; the full output is attached (for
    /// streamed requests the rows were also delivered incrementally).
    Finished(RequestOutput),
    /// Refused — at admission, at forwarding, or by cancellation.
    Rejected {
        /// The typed reason.
        reason: RejectReason,
        /// Computed backoff when retrying could help; `0` when it cannot
        /// (invalid request, cancelled, driver stopped).
        retry_after_ms: u64,
    },
}

impl TicketEnd {
    /// The finished output, if this end is a completion.
    pub fn into_output(self) -> Option<RequestOutput> {
        match self {
            TicketEnd::Finished(out) => Some(out),
            TicketEnd::Rejected { .. } => None,
        }
    }
}

/// What the driver pushes through a [`StreamSink`], in guaranteed order:
/// `Accepted`, then `Token` per decoded row (ascending `index`), then
/// exactly one terminal `Done` or `Rejected`.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// The request passed admission and entered the fair queue.
    Accepted {
        /// The ticket id.
        id: u64,
    },
    /// One newly decoded hidden-state row.
    Token {
        /// The ticket id.
        id: u64,
        /// Zero-based decode step of this row.
        index: usize,
        /// The row (`head_dim` wide), bitwise as the engine produced it.
        value: Vec<f32>,
    },
    /// All rows decoded.
    Done {
        /// The ticket id.
        id: u64,
        /// Total rows decoded.
        tokens: usize,
    },
    /// The request will produce no further events.
    Rejected {
        /// The ticket id.
        id: u64,
        /// The typed reason.
        reason: RejectReason,
        /// Computed backoff (0 when retrying cannot help).
        retry_after_ms: u64,
    },
}

/// A per-request event callback, invoked from the driver thread.
pub type StreamSink = Box<dyn FnMut(StreamEvent) + Send + 'static>;

/// The one-shot completion cell a ticket blocks on.
#[derive(Debug)]
struct WaitCell {
    state: Mutex<Option<TicketEnd>>,
    cv: Condvar,
}

impl WaitCell {
    fn new() -> WaitCell {
        WaitCell {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn resolve(&self, end: TicketEnd) {
        let mut s = self.state.lock().expect("wait cell lock");
        if s.is_none() {
            *s = Some(end);
            self.cv.notify_all();
        }
    }

    fn peek(&self) -> Option<TicketEnd> {
        self.state.lock().expect("wait cell lock").clone()
    }

    fn wait(&self) -> TicketEnd {
        let mut s = self.state.lock().expect("wait cell lock");
        loop {
            if let Some(end) = s.as_ref() {
                return end.clone();
            }
            s = self.cv.wait(s).expect("wait cell lock");
        }
    }

    fn wait_timeout(&self, dur: Duration) -> Option<TicketEnd> {
        let deadline = Instant::now() + dur;
        let mut s = self.state.lock().expect("wait cell lock");
        loop {
            if let Some(end) = s.as_ref() {
                return Some(end.clone());
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, _) = self.cv.wait_timeout(s, left).expect("wait cell lock");
            s = guard;
        }
    }
}

/// A submitted request's handle: the driver-assigned id plus the wait
/// cell its completion resolves. Waiting never round-trips through the
/// driver, so a resolved ticket is observable even after the driver
/// stopped.
#[derive(Debug, Clone)]
pub struct Ticket {
    id: u64,
    cell: Arc<WaitCell>,
}

impl Ticket {
    /// The driver-assigned id (what the line protocol's `poll`/`cancel`
    /// verbs reference).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Where a request currently queues, as the driver tracks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// In the front-end fair queue.
    Queued,
    /// Handed to the engine (holding or about to hold a decode slot).
    Running,
}

struct SubmitCmd {
    id: u64,
    net: NetRequest,
    sink: Option<StreamSink>,
    cell: Arc<WaitCell>,
}

enum Cmd {
    Submit(Box<SubmitCmd>),
    Cancel { id: u64 },
    Stats { reply: Sender<DriverStats> },
    Drain(DrainJob),
    Shutdown,
}

/// An in-progress graceful drain: reject new work, finish what's in
/// flight, escalate to cancel-everything at the deadline.
struct DrainJob {
    deadline: Instant,
    reply: Sender<DrainReport>,
    /// In-flight requests that ran to completion since the drain began.
    completed: usize,
}

/// What a graceful drain accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests in flight at drain start that ran to completion.
    pub completed: usize,
    /// Requests cancelled at the deadline (0 for a clean drain).
    pub cancelled: usize,
}

/// A point-in-time view of the serving stack's queues (the `stats`
/// verb's payload, next to the metrics snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct DriverStats {
    /// The engine scheduler's cumulative counters.
    pub server: ServerStats,
    /// Requests waiting in the front-end fair queue.
    pub front_queued: usize,
    /// Requests waiting in the engine's (intentionally shallow) FIFO.
    pub engine_queued: usize,
    /// Requests holding a decode slot.
    pub running: usize,
    /// Tokens still owed by requests handed to the engine (the SLO
    /// backlog term; exactly 0 when the driver is idle).
    pub inflight_tokens: u64,
    /// Whether the driver is refusing new work pending shutdown.
    pub draining: bool,
}

/// The thread-safe handle to a driven engine. Cheap to clone; every
/// clone talks to the same driver thread.
#[derive(Clone)]
pub struct Client {
    tx: Sender<Cmd>,
    metrics: Arc<Metrics>,
    phases: Arc<Mutex<HashMap<u64, Phase>>>,
    next_id: Arc<AtomicU64>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Submits a request; never blocks and never fails. A refused
    /// request's ticket resolves to [`TicketEnd::Rejected`] (immediately,
    /// when the driver has stopped).
    pub fn submit(&self, net: NetRequest) -> Ticket {
        self.submit_inner(net, None)
    }

    /// Submits a request with a streaming sink: the driver calls it with
    /// every [`StreamEvent`] in decode order, from the driver thread.
    pub fn submit_streaming(&self, net: NetRequest, sink: StreamSink) -> Ticket {
        self.submit_inner(net, Some(sink))
    }

    fn submit_inner(&self, net: NetRequest, sink: Option<StreamSink>) -> Ticket {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::new(WaitCell::new());
        let ticket = Ticket {
            id,
            cell: Arc::clone(&cell),
        };
        let cmd = Cmd::Submit(Box::new(SubmitCmd {
            id,
            net,
            sink,
            cell,
        }));
        if let Err(mpsc::SendError(Cmd::Submit(mut boxed))) = self.tx.send(cmd) {
            let reason = RejectReason::Invalid {
                what: "driver stopped",
            };
            if let Some(s) = boxed.sink.as_mut() {
                s(StreamEvent::Rejected {
                    id,
                    reason,
                    retry_after_ms: 0,
                });
            }
            boxed.cell.resolve(TicketEnd::Rejected {
                reason,
                retry_after_ms: 0,
            });
        }
        ticket
    }

    /// Where the ticket currently is: `Queued` (front-end fair queue, or
    /// still in flight to the driver), `Running` (handed to the engine),
    /// `Finished`, or `Rejected`.
    pub fn poll(&self, ticket: &Ticket) -> RequestStatus {
        match ticket.cell.peek() {
            Some(TicketEnd::Finished(out)) => RequestStatus::Finished {
                tokens: out.steps.len(),
            },
            Some(TicketEnd::Rejected { reason, .. }) => RequestStatus::Rejected { reason },
            None => match self.phases.lock().expect("phase map lock").get(&ticket.id) {
                Some(Phase::Running) => RequestStatus::Running,
                _ => RequestStatus::Queued,
            },
        }
    }

    /// Blocks until the ticket resolves.
    pub fn wait(&self, ticket: &Ticket) -> TicketEnd {
        ticket.cell.wait()
    }

    /// Blocks until the ticket resolves or the deadline passes.
    pub fn wait_timeout(&self, ticket: &Ticket, dur: Duration) -> Option<TicketEnd> {
        ticket.cell.wait_timeout(dur)
    }

    /// Requests cancellation: a queued or running request frees its
    /// entry/slot and the ticket resolves to
    /// [`RejectReason::Cancelled`]; a ticket that already resolved is
    /// unaffected.
    pub fn cancel(&self, ticket: &Ticket) {
        let _ = self.tx.send(Cmd::Cancel { id: ticket.id });
    }

    /// Queue/scheduler counters, fetched from the driver thread (`None`
    /// when the driver has stopped).
    pub fn stats(&self) -> Option<DriverStats> {
        let (tx, rx) = mpsc::channel();
        self.tx.send(Cmd::Stats { reply: tx }).ok()?;
        rx.recv().ok()
    }

    /// A point-in-time copy of the driver's metrics (lock-free reads; no
    /// driver round-trip).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The live metrics the driver records into — shared with the
    /// server's connection plumbing so connection gauges land in the
    /// same snapshot.
    pub(crate) fn metrics_shared(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }
}

/// The handle that owns the driver thread: keep it alive for as long as
/// the engine should serve, then [`DriverHandle::shutdown`].
#[derive(Debug)]
pub struct DriverHandle {
    tx: Sender<Cmd>,
    join: Option<JoinHandle<()>>,
}

impl DriverHandle {
    /// Stops the driver: every unresolved ticket resolves to
    /// [`RejectReason::Cancelled`] and the thread exits. Idempotent with
    /// respect to a driver that already stopped.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(Cmd::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// Gracefully drains the driver, blocking until it exits: new
    /// submissions are rejected as [`RejectReason::Draining`] (with a
    /// computed retry-after), in-flight requests run to completion, and
    /// anything still unfinished at `deadline` is cancelled. Returns
    /// what happened to the in-flight work.
    pub fn drain(mut self, deadline: Duration) -> DrainReport {
        let (reply, rx) = mpsc::channel();
        let sent = self
            .tx
            .send(Cmd::Drain(DrainJob {
                deadline: Instant::now() + deadline,
                reply,
                completed: 0,
            }))
            .is_ok();
        let report = if sent {
            rx.recv().unwrap_or(DrainReport {
                completed: 0,
                cancelled: 0,
            })
        } else {
            // The driver already stopped: nothing was in flight.
            DrainReport {
                completed: 0,
                cancelled: 0,
            }
        };
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        report
    }
}

impl Drop for DriverHandle {
    fn drop(&mut self) {
        let _ = self.tx.send(Cmd::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Spawns the driver thread for a (pre-configured, contexts already
/// registered) engine and returns the client handle plus the thread's
/// owner.
pub fn spawn(engine: Engine, cfg: AdmissionConfig) -> (Client, DriverHandle) {
    let (tx, rx) = mpsc::channel();
    let metrics = Arc::new(Metrics::new());
    let phases = Arc::new(Mutex::new(HashMap::new()));
    let max_batch = engine.serve_config().max_batch;
    let admission = Admission::new(cfg, max_batch);
    let state = DriverState {
        engine,
        admission,
        rx,
        metrics: Arc::clone(&metrics),
        phases: Arc::clone(&phases),
        tickets: HashMap::new(),
        inflight_tokens: 0,
        started: Instant::now(),
        drain: None,
    };
    let join = thread::Builder::new()
        .name("vq-llm-driver".into())
        .spawn(move || state.run())
        .expect("spawn driver thread");
    let client = Client {
        tx: tx.clone(),
        metrics,
        phases,
        next_id: Arc::new(AtomicU64::new(1)),
    };
    (
        client,
        DriverHandle {
            tx,
            join: Some(join),
        },
    )
}

/// One live ticket's driver-side record, from admission to resolution.
struct TicketRec {
    cell: Arc<WaitCell>,
    sink: Option<StreamSink>,
    tenant: u64,
    gen_tokens: usize,
    /// Engine handle once forwarded.
    handle: Option<RequestHandle>,
    /// Rows already observed/streamed.
    streamed: usize,
}

struct DriverState {
    engine: Engine,
    admission: Admission,
    rx: Receiver<Cmd>,
    metrics: Arc<Metrics>,
    phases: Arc<Mutex<HashMap<u64, Phase>>>,
    tickets: HashMap<u64, TicketRec>,
    /// Tokens still owed by requests handed to the engine (grows by
    /// `gen_tokens` at forward, shrinks per streamed/finished row and by
    /// the unstreamed remainder on cancel) — the engine-side term of the
    /// SLO backlog. Exactly 0 whenever the driver is idle.
    inflight_tokens: u64,
    /// The driver's monotonic clock origin (positions rate-limit
    /// windows).
    started: Instant,
    /// `Some` while a graceful drain is in progress.
    drain: Option<DrainJob>,
}

impl DriverState {
    fn idle(&self) -> bool {
        self.engine.is_idle() && self.admission.is_empty()
    }

    /// Subtracts owed tokens with an underflow guard: the cancel/finish
    /// race must never wrap the backlog counter (a wrapped counter would
    /// poison every deadline-admission decision until restart).
    fn charge_down(&mut self, n: u64) {
        debug_assert!(
            self.inflight_tokens >= n,
            "inflight_tokens underflow: {} - {n}",
            self.inflight_tokens
        );
        self.inflight_tokens = self.inflight_tokens.saturating_sub(n);
    }

    /// Milliseconds since the driver started (the rate-limit clock).
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    /// Checks an in-progress drain: `Some` with the final report exactly
    /// when the drain just completed — cleanly (everything in flight
    /// finished) or by deadline escalation (the rest cancelled).
    fn drain_progress(&mut self) -> Option<DrainReport> {
        let (deadline, completed) = match self.drain.as_ref() {
            Some(job) => (job.deadline, job.completed),
            None => return None,
        };
        if self.idle() {
            return Some(DrainReport {
                completed,
                cancelled: 0,
            });
        }
        if Instant::now() >= deadline {
            let cancelled = self.escalate_drain();
            return Some(DrainReport {
                completed,
                cancelled,
            });
        }
        None
    }

    /// The drain deadline passed with work still in flight: cancel every
    /// live ticket (queued or holding a slot) and zero the backlog.
    fn escalate_drain(&mut self) -> usize {
        let ids: Vec<u64> = self.tickets.keys().copied().collect();
        let cancelled = ids.len();
        self.engine.cancel_all();
        for id in ids {
            self.admission.cancel(id);
            self.metrics.record_rejection(&RejectReason::Cancelled);
            self.resolve(id, RejectReason::Cancelled);
        }
        self.inflight_tokens = 0;
        cancelled
    }

    /// Rejects every command still sitting in the channel on exit, so a
    /// submit that raced the shutdown resolves instead of hanging its
    /// waiter.
    fn flush_channel(&mut self) {
        while let Ok(cmd) = self.rx.try_recv() {
            match cmd {
                Cmd::Submit(mut boxed) => {
                    let reason = RejectReason::Invalid {
                        what: "driver stopped",
                    };
                    if let Some(s) = boxed.sink.as_mut() {
                        s(StreamEvent::Rejected {
                            id: boxed.id,
                            reason,
                            retry_after_ms: 0,
                        });
                    }
                    boxed.cell.resolve(TicketEnd::Rejected {
                        reason,
                        retry_after_ms: 0,
                    });
                }
                Cmd::Drain(job) => {
                    let _ = job.reply.send(DrainReport {
                        completed: 0,
                        cancelled: 0,
                    });
                }
                // Dropping the reply makes Client::stats return None.
                Cmd::Stats { .. } | Cmd::Cancel { .. } | Cmd::Shutdown => {}
            }
        }
    }

    fn run(mut self) {
        loop {
            if let Some(report) = self.drain_progress() {
                let job = self.drain.take().expect("drain job present");
                let _ = job.reply.send(report);
                self.flush_channel();
                return;
            }
            if self.idle() {
                debug_assert!(self.tickets.is_empty(), "idle driver with live tickets");
                debug_assert_eq!(self.inflight_tokens, 0, "idle driver owes tokens");
                // Nothing to decode: park on the channel.
                match self.rx.recv() {
                    Ok(Cmd::Shutdown) | Err(_) => return self.shutdown_now(),
                    Ok(cmd) => self.handle_cmd(cmd),
                }
                // A drain request against an idle driver completes on the
                // next loop iteration without ever blocking again.
                continue;
            }
            // Drain whatever arrived while stepping.
            loop {
                match self.rx.try_recv() {
                    Ok(Cmd::Shutdown) => return self.shutdown_now(),
                    Ok(cmd) => self.handle_cmd(cmd),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        if self.idle() {
                            return;
                        }
                        break;
                    }
                }
            }
            self.forward();
            if !self.engine.is_idle() {
                let depth = self.admission.len() + self.engine.queued();
                let t0 = Instant::now();
                match self.engine.step() {
                    Ok(report) => {
                        let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
                        self.metrics.record_step(us, report.batch, depth);
                        // inflight_tokens is settled per ticket inside
                        // after_step (streamed rows, finish tails, cancel
                        // remainders) — exact even when a cancel lands in
                        // the same step a request finishes.
                        self.after_step();
                    }
                    Err(_) => {
                        // The admission invariants make step errors
                        // unreachable in normal use; if one happens the
                        // engine state is suspect, so fail every ticket
                        // loudly and stop driving.
                        self.fail_all("engine step failed");
                        return;
                    }
                }
            }
        }
    }

    fn handle_cmd(&mut self, cmd: Cmd) {
        match cmd {
            Cmd::Submit(boxed) => self.handle_submit(*boxed),
            Cmd::Cancel { id } => self.handle_cancel(id),
            Cmd::Stats { reply } => {
                let _ = reply.send(DriverStats {
                    server: self.engine.stats(),
                    front_queued: self.admission.len(),
                    engine_queued: self.engine.queued(),
                    running: self.engine.running(),
                    inflight_tokens: self.inflight_tokens,
                    draining: self.drain.is_some(),
                });
            }
            Cmd::Drain(job) => {
                if self.drain.is_some() {
                    // A second concurrent drain cannot track the first's
                    // progress; report it empty rather than deadlock it.
                    let _ = job.reply.send(DrainReport {
                        completed: 0,
                        cancelled: 0,
                    });
                } else {
                    self.drain = Some(job);
                }
            }
            Cmd::Shutdown => unreachable!("shutdown is handled by the loop"),
        }
    }

    fn handle_submit(&mut self, cmd: SubmitCmd) {
        let SubmitCmd {
            id,
            net,
            mut sink,
            cell,
        } = cmd;
        let measured =
            (self.metrics.step_latency.count() > 0).then(|| self.metrics.step_latency.mean());
        if self.drain.is_some() {
            // Draining: nothing new is admitted; suggest coming back once
            // the present backlog has decoded (the drain's natural end).
            let est = self.admission.estimator(measured);
            let backlog = self.admission.pending_tokens() + self.inflight_tokens;
            let retry_after_ms = (est.queue_drain_ms(backlog.max(1)).ceil() as u64).max(1);
            let reason = RejectReason::Draining { retry_after_ms };
            self.metrics.record_rejection(&reason);
            // Resolve before the sink fires: once a terminal frame is on
            // the wire, a `poll` round-trip must see the terminal state.
            cell.resolve(TicketEnd::Rejected {
                reason,
                retry_after_ms,
            });
            if let Some(s) = sink.as_mut() {
                s(StreamEvent::Rejected {
                    id,
                    reason,
                    retry_after_ms,
                });
            }
            return;
        }
        let tenant = net.req.tenant;
        let gen_tokens = net.req.gen_tokens;
        let now_ms = self.now_ms();
        match self
            .admission
            .admit(id, net, self.inflight_tokens, measured, now_ms)
        {
            Ok(()) => {
                self.metrics.record_admitted();
                self.phases
                    .lock()
                    .expect("phase map lock")
                    .insert(id, Phase::Queued);
                if let Some(s) = sink.as_mut() {
                    s(StreamEvent::Accepted { id });
                }
                self.tickets.insert(
                    id,
                    TicketRec {
                        cell,
                        sink,
                        tenant,
                        gen_tokens,
                        handle: None,
                        streamed: 0,
                    },
                );
            }
            Err(rej) => {
                self.metrics.record_rejection(&rej.reason);
                cell.resolve(TicketEnd::Rejected {
                    reason: rej.reason,
                    retry_after_ms: rej.retry_after_ms,
                });
                if let Some(s) = sink.as_mut() {
                    s(StreamEvent::Rejected {
                        id,
                        reason: rej.reason,
                        retry_after_ms: rej.retry_after_ms,
                    });
                }
            }
        }
    }

    fn handle_cancel(&mut self, id: u64) {
        if self.admission.cancel(id).is_some() {
            // Still in the fair queue: never reached the engine.
            self.metrics.record_rejection(&RejectReason::Cancelled);
            self.resolve(id, RejectReason::Cancelled);
            return;
        }
        let Some((handle, owed)) = self.tickets.get(&id).and_then(|r| {
            r.handle
                .map(|h| (h, r.gen_tokens.saturating_sub(r.streamed) as u64))
        }) else {
            return; // already resolved (or never existed)
        };
        if self.engine.cancel(&handle) {
            self.charge_down(owed);
            self.metrics.record_rejection(&RejectReason::Cancelled);
            self.resolve(id, RejectReason::Cancelled);
        }
    }

    /// Resolves a ticket to a rejection, emitting the terminal sink
    /// event.
    fn resolve(&mut self, id: u64, reason: RejectReason) {
        self.phases.lock().expect("phase map lock").remove(&id);
        if let Some(mut rec) = self.tickets.remove(&id) {
            let retry_after_ms = reason.retry_hint_ms().unwrap_or(0);
            // Resolve before the sink fires: once the terminal frame is
            // on the wire, a `poll` round-trip must see the terminal
            // state, never a stale `queued`.
            rec.cell.resolve(TicketEnd::Rejected {
                reason,
                retry_after_ms,
            });
            if let Some(s) = rec.sink.as_mut() {
                s(StreamEvent::Rejected {
                    id,
                    reason,
                    retry_after_ms,
                });
            }
        }
    }

    /// Moves fair-queue requests into the engine while a decode slot is
    /// free. The engine queue therefore never holds more than one
    /// batch's worth of requests, so the engine's FIFO cannot reorder
    /// the fair queue's grants.
    fn forward(&mut self) {
        let max_batch = self.engine.serve_config().max_batch;
        while self.engine.running() + self.engine.queued() < max_batch {
            let Some(p) = self.admission.pop() else { break };
            let gen = p.net.req.gen_tokens as u64;
            let handle = self.engine.submit(p.net.ctx, p.net.req);
            if let RequestStatus::Rejected { reason } = self.engine.poll(&handle) {
                // The engine refused what admission let through (bad
                // query shape, unknown context, KV overflow): surface
                // the typed reason on the ticket.
                self.metrics.record_rejection(&reason);
                self.resolve(p.id, reason);
                continue;
            }
            self.inflight_tokens += gen;
            if let Some(rec) = self.tickets.get_mut(&p.id) {
                rec.handle = Some(handle);
                self.phases
                    .lock()
                    .expect("phase map lock")
                    .insert(p.id, Phase::Running);
            } else {
                // The ticket record vanished (cannot happen outside a
                // cancel race): don't decode for nobody.
                self.engine.cancel(&handle);
                self.charge_down(gen);
            }
        }
    }

    /// Streams newly decoded rows and resolves finished requests, in
    /// ticket-id order (stable across runs).
    fn after_step(&mut self) {
        let mut live: Vec<(u64, RequestHandle)> = self
            .tickets
            .iter()
            .filter_map(|(&id, r)| r.handle.map(|h| (id, h)))
            .collect();
        live.sort_unstable_by_key(|&(id, _)| id);
        for (id, handle) in live {
            let streamed = self.tickets[&id].streamed;
            let new_rows: Vec<Vec<f32>> = self
                .engine
                .partial_output(&handle)
                .map(|rows| rows[streamed.min(rows.len())..].to_vec())
                .unwrap_or_default();
            if !new_rows.is_empty() {
                let rec = self.tickets.get_mut(&id).expect("live ticket");
                for (k, row) in new_rows.iter().enumerate() {
                    if let Some(s) = rec.sink.as_mut() {
                        s(StreamEvent::Token {
                            id,
                            index: streamed + k,
                            value: row.clone(),
                        });
                    }
                }
                rec.streamed += new_rows.len();
                let tenant = rec.tenant;
                self.metrics
                    .add_tenant_tokens(tenant, new_rows.len() as u64);
                self.charge_down(new_rows.len() as u64);
            }
            match self.engine.poll(&handle) {
                RequestStatus::Finished { .. } => {
                    let out = self.engine.take_output(&handle).expect("finished output");
                    self.phases.lock().expect("phase map lock").remove(&id);
                    let mut rec = self.tickets.remove(&id).expect("live ticket");
                    // Rows decoded in the finishing step are no longer
                    // visible via partial_output; deliver them from the
                    // collected output.
                    let tail = &out.steps[rec.streamed.min(out.steps.len())..];
                    if !tail.is_empty() {
                        for (k, row) in tail.iter().enumerate() {
                            if let Some(s) = rec.sink.as_mut() {
                                s(StreamEvent::Token {
                                    id,
                                    index: rec.streamed + k,
                                    value: row.clone(),
                                });
                            }
                        }
                        self.metrics
                            .add_tenant_tokens(rec.tenant, tail.len() as u64);
                    }
                    self.charge_down(tail.len() as u64);
                    // Resolve before the sink fires: a client that polls
                    // right after reading `done` must see `finished`.
                    let tokens = out.steps.len();
                    rec.cell.resolve(TicketEnd::Finished(out));
                    if let Some(s) = rec.sink.as_mut() {
                        s(StreamEvent::Done { id, tokens });
                    }
                    if let Some(job) = self.drain.as_mut() {
                        job.completed += 1;
                    }
                }
                RequestStatus::Rejected { reason } => {
                    // Reachable only through external cancellation paths;
                    // keep the ticket's contract either way. The rows this
                    // ticket never decoded come off the backlog with it.
                    let rec = &self.tickets[&id];
                    let owed = rec.gen_tokens.saturating_sub(rec.streamed) as u64;
                    self.charge_down(owed);
                    self.metrics.record_rejection(&reason);
                    self.resolve(id, reason);
                }
                _ => {}
            }
        }
    }

    /// Fails every unresolved ticket with an `Invalid` reason (the
    /// driver-is-broken path).
    fn fail_all(&mut self, what: &'static str) {
        let ids: Vec<u64> = self.tickets.keys().copied().collect();
        for id in ids {
            self.resolve(id, RejectReason::Invalid { what });
        }
        self.phases.lock().expect("phase map lock").clear();
    }

    /// Resolves every unresolved ticket as cancelled and drops the
    /// engine (the shutdown path). A drain that shutdown preempted still
    /// gets its report, counting the preempted remainder as cancelled.
    fn shutdown_now(&mut self) {
        let ids: Vec<u64> = self.tickets.keys().copied().collect();
        let cancelled = ids.len();
        for id in ids {
            self.metrics.record_rejection(&RejectReason::Cancelled);
            self.resolve(id, RejectReason::Cancelled);
        }
        self.phases.lock().expect("phase map lock").clear();
        self.inflight_tokens = 0;
        if let Some(job) = self.drain.take() {
            let _ = job.reply.send(DrainReport {
                completed: job.completed,
                cancelled,
            });
        }
        self.flush_channel();
    }
}
