//! The front-end admission layer: weighted fair queueing plus SLO-aware
//! deadline admission, sitting between the network protocol and the
//! engine's FIFO.
//!
//! The engine queue stays strict FIFO (and nearly empty — the driver only
//! forwards when a decode slot is about to be free), so *this* queue is
//! where multi-tenant policy lives:
//!
//! * ordering comes from [`FairQueue`] — stride-scheduled weighted
//!   fairness within a priority class, strict preemption across classes;
//! * admission is bounded ([`AdmissionConfig::max_pending`]) and
//!   deadline-aware: a request whose projected completion (via
//!   [`SloEstimator`], priced at the measured step latency) misses its
//!   deadline is rejected *now* with a computed
//!   [`retry_after_ms`](AdmitReject::retry_after_ms) rather than admitted
//!   to fail later, and a full queue also reports when to come back
//!   instead of a bare `QueueFull`.
//!
//! Everything is pure data structure — the driver supplies the measured
//! step latency and the engine's in-flight token count — so the policy is
//! deterministic and unit-testable without threads or clocks.

use std::collections::VecDeque;

use vqllm_llm::serve::{FairQueue, SloEstimator};
use vqllm_llm::{ContextHandle, DecodeRequest, RejectReason};

/// Fairness and SLO limits of the network front end.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Largest number of requests waiting in the fair queue; beyond this,
    /// submissions are rejected with a computed retry-after.
    pub max_pending: usize,
    /// Weight for tenants without an explicit entry in
    /// [`AdmissionConfig::weights`].
    pub default_weight: u32,
    /// Explicit per-tenant `(tenant, weight)` scheduling weights: a
    /// weight-2 tenant is granted two decode slots for every one a
    /// weight-1 tenant gets when both are backlogged.
    pub weights: Vec<(u64, u32)>,
    /// Step-latency prior (µs) used for deadline math until the metrics
    /// have measured real steps.
    pub default_step_us: f64,
    /// Optional per-tenant token budgets per sliding window, layered on
    /// top of the fairness weights: weights decide *who goes first* among
    /// admitted work, budgets decide *how much* a tenant may admit at
    /// all.
    pub rate_limit: Option<RateLimitConfig>,
    /// Explicit step-watchdog budget in µs: a step that takes longer has
    /// its running group shed with typed `internal` rejections and trips
    /// the breaker. `None` derives the budget from the measured p99 step
    /// latency ([`AdmissionConfig::watchdog_multiplier`] ×, floored at
    /// [`AdmissionConfig::watchdog_floor_us`]).
    pub step_timeout_us: Option<u64>,
    /// Multiplier over the measured p99 step latency when no explicit
    /// [`AdmissionConfig::step_timeout_us`] is set.
    pub watchdog_multiplier: f64,
    /// Lower bound on the derived watchdog budget, µs — keeps scheduling
    /// jitter on micro-steps from shedding healthy work.
    pub watchdog_floor_us: u64,
    /// Steps the breaker halves the effective `max_batch` for after a
    /// watchdog shed (`0` disables the breaker).
    pub breaker_cooldown_steps: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_pending: 256,
            default_weight: 1,
            weights: Vec::new(),
            default_step_us: 200.0,
            rate_limit: None,
            step_timeout_us: None,
            watchdog_multiplier: 8.0,
            watchdog_floor_us: 50_000,
            breaker_cooldown_steps: 32,
        }
    }
}

/// Per-tenant token budgets over a sliding window.
///
/// A request is charged its `gen_tokens` at admission (cancelling later
/// does not refund the charge — the policy bounds *admitted* work).
/// When a charge would push the tenant's total over its budget inside
/// the window, the request is rejected as
/// [`RejectReason::RateLimited`] with `retry_after_ms` set to when
/// enough of the window will have slid for the same request to fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RateLimitConfig {
    /// Sliding-window length in milliseconds.
    pub window_ms: u64,
    /// Token budget per window for tenants without an explicit entry in
    /// [`RateLimitConfig::budgets`] (`u64::MAX` = unlimited).
    pub default_budget: u64,
    /// Explicit per-tenant `(tenant, tokens-per-window)` budgets.
    pub budgets: Vec<(u64, u64)>,
}

impl Default for RateLimitConfig {
    fn default() -> Self {
        RateLimitConfig {
            window_ms: 1_000,
            default_budget: u64::MAX,
            budgets: Vec::new(),
        }
    }
}

impl RateLimitConfig {
    /// The budget applying to `tenant`.
    pub fn budget(&self, tenant: u64) -> u64 {
        self.budgets
            .iter()
            .find(|(t, _)| *t == tenant)
            .map_or(self.default_budget, |&(_, b)| b)
    }
}

/// Hard cap on tracked tenant ledgers. One-shot tenants (charge once,
/// never return) would otherwise leave a `(tenant, charges)` entry behind
/// forever — the per-tenant prune only runs on that tenant's *next*
/// submit. Past the cap, the stalest ledger is evicted.
const MAX_LEDGERS: usize = 4096;

/// The sliding-window charge ledger backing [`RateLimitConfig`]. Pure
/// data structure: the caller supplies a monotonic `now_ms`, so the
/// policy is deterministic and testable without clocks.
///
/// Memory is bounded two ways: every charge globally **sweeps** ledgers
/// whose newest entry has slid fully out of the window (so a burst of
/// one-shot tenants cannot grow the table without bound), and a hard
/// [`MAX_LEDGERS`] cap evicts the stalest ledger if distinct *active*
/// tenants somehow exceed it.
#[derive(Debug, Default)]
pub struct RateLimiter {
    /// tenant -> charges still inside the window, oldest first.
    ledgers: Vec<(u64, VecDeque<(u64, u64)>)>,
}

impl RateLimiter {
    /// An empty ledger.
    pub fn new() -> RateLimiter {
        RateLimiter::default()
    }

    /// Tenants with a tracked ledger (bounded by [`MAX_LEDGERS`]).
    pub fn tracked_tenants(&self) -> usize {
        self.ledgers.len()
    }

    /// Drops every ledger whose charges have all slid out of the window
    /// ending at `now_ms`, then enforces [`MAX_LEDGERS`] by evicting the
    /// ledger with the oldest newest-charge. Evicting an *active* ledger
    /// forgets spent budget (fail-open), which is the right failure mode
    /// for an overload guard.
    fn sweep(&mut self, window_ms: u64, now_ms: u64) {
        self.ledgers.retain(|(_, l)| match l.back() {
            Some(&(t, _)) => now_ms.saturating_sub(t) < window_ms,
            None => false,
        });
        while self.ledgers.len() > MAX_LEDGERS {
            self.evict_stalest();
        }
    }

    /// Evicts the ledger whose newest charge is oldest.
    fn evict_stalest(&mut self) {
        if let Some(i) = self
            .ledgers
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, l))| l.back().map_or(0, |&(t, _)| t))
            .map(|(i, _)| i)
        {
            self.ledgers.swap_remove(i);
        }
    }

    /// Charges `tokens` to `tenant` at `now_ms`, or reports how many
    /// milliseconds to wait for the charge to fit the budget.
    ///
    /// A request larger than the whole budget can never fit; it reports
    /// one full window as its (honest, if hopeless) backoff.
    pub fn try_charge(
        &mut self,
        cfg: &RateLimitConfig,
        tenant: u64,
        tokens: u64,
        now_ms: u64,
    ) -> Result<(), u64> {
        let budget = cfg.budget(tenant);
        if tokens > budget {
            return Err(cfg.window_ms.max(1));
        }
        // Global sweep: one-shot tenants are pruned by *any* tenant's
        // charge, not only their own next submit.
        self.sweep(cfg.window_ms, now_ms);
        // Hold the cap across the insert a previously-unseen tenant is
        // about to make.
        if self.ledgers.len() >= MAX_LEDGERS && !self.ledgers.iter().any(|(t, _)| *t == tenant) {
            self.evict_stalest();
        }
        if !self.ledgers.iter().any(|(t, _)| *t == tenant) {
            self.ledgers.push((tenant, VecDeque::new()));
        }
        let Some((_, ledger)) = self.ledgers.iter_mut().find(|(t, _)| *t == tenant) else {
            // Unreachable (the tenant was inserted just above); admit
            // rather than panic if it ever isn't.
            return Ok(());
        };
        // Slide the window: drop charges older than window_ms.
        while let Some(&(t, _)) = ledger.front() {
            if now_ms.saturating_sub(t) >= cfg.window_ms {
                ledger.pop_front();
            } else {
                break;
            }
        }
        let spent: u64 = ledger.iter().map(|&(_, n)| n).sum();
        if spent + tokens > budget {
            // Walk the ledger oldest-first until enough has expired for
            // the new charge to fit; the retry is when that happens.
            let mut freed = 0u64;
            for &(t, n) in ledger.iter() {
                freed += n;
                if spent - freed + tokens <= budget {
                    let expires = t + cfg.window_ms;
                    return Err(expires.saturating_sub(now_ms).max(1));
                }
            }
            return Err(cfg.window_ms.max(1));
        }
        ledger.push_back((now_ms, tokens));
        Ok(())
    }

    /// Tokens currently charged to `tenant` inside the window ending at
    /// `now_ms`.
    pub fn spent(&self, tenant: u64, window_ms: u64, now_ms: u64) -> u64 {
        self.ledgers
            .iter()
            .find(|(t, _)| *t == tenant)
            .map_or(0, |(_, l)| {
                l.iter()
                    .filter(|&&(t, _)| now_ms.saturating_sub(t) < window_ms)
                    .map(|&(_, n)| n)
                    .sum()
            })
    }
}

/// One request as the network front end carries it: the engine-facing
/// decode request plus the scheduling envelope (context, priority class,
/// optional deadline).
#[derive(Debug, Clone, PartialEq)]
pub struct NetRequest {
    /// The registered context to decode against.
    pub ctx: ContextHandle,
    /// The decode work itself (tenant tag, query row, positions).
    pub req: DecodeRequest,
    /// Priority class (higher is served strictly first); fairness applies
    /// within a class.
    pub priority: u8,
    /// Optional completion deadline in milliseconds from submission; when
    /// set, admission projects completion time and rejects unmeetable
    /// requests immediately.
    pub deadline_ms: Option<u64>,
}

impl NetRequest {
    /// A request with default priority and no deadline.
    pub fn new(ctx: ContextHandle, req: DecodeRequest) -> NetRequest {
        NetRequest {
            ctx,
            req,
            priority: 0,
            deadline_ms: None,
        }
    }

    /// Sets the priority class.
    pub fn priority(mut self, priority: u8) -> NetRequest {
        self.priority = priority;
        self
    }

    /// Sets a completion deadline (milliseconds from submission).
    pub fn deadline_ms(mut self, ms: u64) -> NetRequest {
        self.deadline_ms = Some(ms);
        self
    }
}

/// A typed front-end rejection: the reason plus a backoff the caller can
/// act on (always at least 1 ms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmitReject {
    /// The typed reason (also what `poll` reports for the handle).
    pub reason: RejectReason,
    /// Computed backoff after which a retry could succeed.
    pub retry_after_ms: u64,
}

/// A request waiting in the fair queue, tagged with its driver ticket id.
#[derive(Debug)]
pub struct Pending {
    /// The driver's ticket id (what `cancel` and completion resolve).
    pub id: u64,
    /// The queued request.
    pub net: NetRequest,
}

/// The admission state machine: a bounded [`FairQueue`] of [`Pending`]
/// requests with an exact count of queued-but-not-forwarded tokens (the
/// SLO estimator's backlog input).
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    queue: FairQueue<Pending>,
    /// Sum of `gen_tokens` across the queue (kept exact by push/pop/
    /// cancel).
    pending_tokens: u64,
    /// Decode slots per engine step, for the drain model.
    max_batch: usize,
    /// Sliding-window charge ledger (empty when rate limits are off).
    limiter: RateLimiter,
}

impl Admission {
    /// An empty admission queue for an engine of `max_batch` decode slots.
    pub fn new(cfg: AdmissionConfig, max_batch: usize) -> Admission {
        let mut queue = FairQueue::new(cfg.default_weight);
        for &(tenant, weight) in &cfg.weights {
            queue.set_weight(tenant, weight);
        }
        Admission {
            cfg,
            queue,
            pending_tokens: 0,
            max_batch: max_batch.max(1),
            limiter: RateLimiter::new(),
        }
    }

    /// The configured limits.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Requests waiting in the fair queue.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the fair queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Tokens of queued (not yet forwarded) work.
    pub fn pending_tokens(&self) -> u64 {
        self.pending_tokens
    }

    /// The estimator currently pricing admission: the measured step
    /// latency when available, the configured prior before that.
    pub fn estimator(&self, measured_step_us: Option<f64>) -> SloEstimator {
        SloEstimator::new(
            measured_step_us.unwrap_or(self.cfg.default_step_us),
            self.max_batch,
        )
    }

    /// Admits `net` (tagged with driver ticket `id`) into the fair queue,
    /// or rejects it with a typed reason and a computed retry-after.
    ///
    /// `engine_tokens` is the engine-side backlog (tokens still owed by
    /// running + forwarded requests); `measured_step_us` is the metrics'
    /// current mean step latency, if any steps have run; `now_ms` is a
    /// monotonic millisecond clock (the driver's uptime) that positions
    /// the rate-limit window.
    pub fn admit(
        &mut self,
        id: u64,
        net: NetRequest,
        engine_tokens: u64,
        measured_step_us: Option<f64>,
        now_ms: u64,
    ) -> Result<(), AdmitReject> {
        let est = self.estimator(measured_step_us);
        let tokens_ahead = self.pending_tokens + engine_tokens;
        if self.queue.len() >= self.cfg.max_pending {
            // Full queue: come back once one average queued request's
            // worth of backlog has drained.
            let avg = self.pending_tokens / self.queue.len().max(1) as u64;
            let retry = (est.queue_drain_ms(avg.max(1)).ceil() as u64).max(1);
            return Err(AdmitReject {
                reason: RejectReason::QueueFull {
                    max_queue: self.cfg.max_pending,
                },
                retry_after_ms: retry,
            });
        }
        if let Some(deadline_ms) = net.deadline_ms {
            if let Err(retry_after_ms) = est.admit(tokens_ahead, net.req.gen_tokens, deadline_ms) {
                return Err(AdmitReject {
                    reason: RejectReason::Deadline { retry_after_ms },
                    retry_after_ms,
                });
            }
        }
        // The budget check runs last so only otherwise-admittable
        // requests spend window budget.
        if let Some(rl) = &self.cfg.rate_limit {
            if let Err(retry_after_ms) =
                self.limiter
                    .try_charge(rl, net.req.tenant, net.req.gen_tokens as u64, now_ms)
            {
                return Err(AdmitReject {
                    reason: RejectReason::RateLimited { retry_after_ms },
                    retry_after_ms,
                });
            }
        }
        self.pending_tokens += net.req.gen_tokens as u64;
        let (tenant, priority) = (net.req.tenant, net.priority);
        self.queue.push(tenant, priority, Pending { id, net });
        Ok(())
    }

    /// Dequeues the next request in fair-scheduling order.
    pub fn pop(&mut self) -> Option<Pending> {
        let p = self.queue.pop()?;
        self.pending_tokens -= p.net.req.gen_tokens as u64;
        Some(p)
    }

    /// Removes a queued request by ticket id (the cancellation path).
    pub fn cancel(&mut self, id: u64) -> Option<Pending> {
        let p = self.queue.remove_where(|p| p.id == id)?;
        self.pending_tokens -= p.net.req.gen_tokens as u64;
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqllm_llm::DecodeRequest;

    fn req(tenant: u64, gen_tokens: usize) -> NetRequest {
        NetRequest::new(
            ContextHandle::detached(0),
            DecodeRequest::new(tenant, vec![0.0; 8], 4, gen_tokens),
        )
    }

    #[test]
    fn admits_in_weighted_fair_order() {
        let cfg = AdmissionConfig {
            weights: vec![(1, 2)],
            ..AdmissionConfig::default()
        };
        let mut adm = Admission::new(cfg, 8);
        for i in 0..6 {
            adm.admit(i, req(1, 4), 0, None, 0).expect("admit");
            adm.admit(100 + i, req(2, 4), 0, None, 0).expect("admit");
        }
        assert_eq!(adm.pending_tokens(), 48);
        let order: Vec<u64> = (0..9)
            .map(|_| adm.pop().expect("queued").net.req.tenant)
            .collect();
        let ones = order.iter().filter(|&&t| t == 1).count();
        assert_eq!(ones, 6, "weight-2 tenant takes 6 of the first 9 grants");
    }

    #[test]
    fn impossible_deadline_rejects_with_retry_after() {
        let mut adm = Admission::new(AdmissionConfig::default(), 8);
        // 200 µs prior × 32 steps = 6.4 ms > 0 ms deadline.
        let err = adm
            .admit(1, req(1, 32).deadline_ms(0), 0, None, 0)
            .expect_err("unmeetable");
        assert!(matches!(err.reason, RejectReason::Deadline { .. }));
        assert!(err.retry_after_ms >= 1);
        assert!(adm.is_empty(), "rejected requests never enter the queue");
        // The same request with a generous deadline admits.
        adm.admit(2, req(1, 32).deadline_ms(10_000), 0, None, 0)
            .expect("meetable");
    }

    #[test]
    fn full_queue_rejects_with_computed_backoff() {
        let cfg = AdmissionConfig {
            max_pending: 2,
            ..AdmissionConfig::default()
        };
        let mut adm = Admission::new(cfg, 8);
        adm.admit(1, req(1, 16), 0, None, 0).expect("admit");
        adm.admit(2, req(1, 16), 0, None, 0).expect("admit");
        let err = adm.admit(3, req(1, 16), 0, None, 0).expect_err("full");
        assert!(matches!(
            err.reason,
            RejectReason::QueueFull { max_queue: 2 }
        ));
        assert!(err.retry_after_ms >= 1);
    }

    #[test]
    fn cancel_removes_exactly_one_and_rebalances_tokens() {
        let mut adm = Admission::new(AdmissionConfig::default(), 8);
        adm.admit(1, req(1, 10), 0, None, 0).expect("admit");
        adm.admit(2, req(1, 20), 0, None, 0).expect("admit");
        assert_eq!(adm.pending_tokens(), 30);
        let cancelled = adm.cancel(1).expect("queued");
        assert_eq!(cancelled.id, 1);
        assert_eq!(adm.pending_tokens(), 20);
        assert!(adm.cancel(1).is_none(), "already removed");
        assert_eq!(adm.pop().expect("remaining").id, 2);
    }

    #[test]
    fn rate_limit_charges_slide_out_of_the_window() {
        let cfg = RateLimitConfig {
            window_ms: 100,
            default_budget: 10,
            budgets: vec![(7, 4)],
        };
        let mut rl = RateLimiter::new();
        // Tenant 7's explicit budget is 4 tokens / 100 ms.
        rl.try_charge(&cfg, 7, 3, 0).expect("3 of 4 fits");
        assert_eq!(rl.spent(7, 100, 0), 3);
        let retry = rl.try_charge(&cfg, 7, 2, 10).expect_err("3+2 > 4");
        // The charge at t=0 expires at t=100, so from t=10 wait 90 ms.
        assert_eq!(retry, 90);
        rl.try_charge(&cfg, 7, 1, 10).expect("3+1 fits exactly");
        // At t=100 the first charge has slid out: 1 remains, 3 fits.
        rl.try_charge(&cfg, 7, 3, 100).expect("window slid");
        assert_eq!(rl.spent(7, 100, 100), 4);
        // Other tenants use the default budget, independently.
        rl.try_charge(&cfg, 8, 10, 100).expect("default budget");
        // A request larger than the whole budget reports a full window.
        assert_eq!(rl.try_charge(&cfg, 7, 5, 200), Err(100));
    }

    #[test]
    fn one_shot_tenant_burst_does_not_grow_the_ledger_unboundedly() {
        let cfg = RateLimitConfig {
            window_ms: 100,
            default_budget: 10,
            budgets: Vec::new(),
        };
        let mut rl = RateLimiter::new();
        // 50 000 one-shot tenants, each charging once and never
        // returning, spread over time so every earlier charge has slid
        // fully out of the window by the time a later tenant arrives.
        for i in 0..50_000u64 {
            let now = i * 200; // 2 windows apart
            rl.try_charge(&cfg, i, 1, now).expect("within budget");
            assert!(
                rl.tracked_tenants() <= 2,
                "expired one-shot ledgers must be swept, got {} at tenant {i}",
                rl.tracked_tenants()
            );
        }
        // Even same-instant bursts (nothing expired yet) stay capped.
        let mut rl = RateLimiter::new();
        for i in 0..(super::MAX_LEDGERS as u64 + 500) {
            rl.try_charge(&cfg, 1_000_000 + i, 1, 10_000_000)
                .expect("ok");
        }
        assert!(
            rl.tracked_tenants() <= super::MAX_LEDGERS,
            "hard cap must bound same-window tenant bursts, got {}",
            rl.tracked_tenants()
        );
        // An active tenant's in-window charges survive the sweep.
        let mut rl = RateLimiter::new();
        rl.try_charge(&cfg, 7, 9, 0).expect("admit");
        rl.try_charge(&cfg, 8, 1, 50)
            .expect("sweeps tenant nothing");
        assert_eq!(rl.spent(7, 100, 50), 9, "in-window charges survive");
        rl.try_charge(&cfg, 7, 2, 60)
            .expect_err("budget still counted");
    }

    #[test]
    fn rate_limited_tenant_rejects_typed_while_others_admit() {
        let cfg = AdmissionConfig {
            rate_limit: Some(RateLimitConfig {
                window_ms: 60_000,
                default_budget: u64::MAX,
                budgets: vec![(1, 8)],
            }),
            ..AdmissionConfig::default()
        };
        let mut adm = Admission::new(cfg, 8);
        adm.admit(1, req(1, 8), 0, None, 0).expect("budget fits");
        let err = adm
            .admit(2, req(1, 1), 0, None, 5)
            .expect_err("over budget");
        match err.reason {
            RejectReason::RateLimited { retry_after_ms } => {
                assert_eq!(retry_after_ms, err.retry_after_ms);
                assert!(retry_after_ms >= 1);
            }
            other => panic!("expected RateLimited, got {other:?}"),
        }
        // The unlimited tenant is unaffected.
        adm.admit(3, req(2, 64), 0, None, 5)
            .expect("unlimited tenant");
        assert_eq!(adm.len(), 2);
    }

    #[test]
    fn rejected_charges_do_not_spend_budget() {
        let cfg = AdmissionConfig {
            max_pending: 1,
            rate_limit: Some(RateLimitConfig {
                window_ms: 60_000,
                default_budget: 8,
                budgets: Vec::new(),
            }),
            ..AdmissionConfig::default()
        };
        let mut adm = Admission::new(cfg, 8);
        adm.admit(1, req(1, 8), 0, None, 0).expect("admit");
        // Queue-full rejection happens before the budget check, so the
        // failed admit must not charge the window.
        let err = adm.admit(2, req(2, 8), 0, None, 0).expect_err("full");
        assert!(matches!(err.reason, RejectReason::QueueFull { .. }));
        adm.pop().expect("drain");
        adm.admit(3, req(2, 8), 0, None, 0)
            .expect("tenant 2 budget untouched by the queue-full rejection");
    }

    #[test]
    fn engine_backlog_tightens_the_deadline_check() {
        let mut adm = Admission::new(AdmissionConfig::default(), 1);
        // 1 token/step at 1000 µs/step: 10 engine tokens ahead = 10 ms.
        let measured = Some(1000.0);
        adm.admit(1, req(1, 5).deadline_ms(20), 10, measured, 0)
            .expect("15 ms projected fits 20 ms");
        let err = adm
            .admit(2, req(1, 5).deadline_ms(12), 15, measured, 0)
            .expect_err("25 ms projected misses 12 ms");
        assert!(matches!(err.reason, RejectReason::Deadline { .. }));
    }
}
