//! The `Session` facade: one ergonomic, cache-aware view of the engine.
//!
//! The paper's framework is a single coherent pipeline — profile →
//! codebook-cache placement → dataflow → fusion → codegen → execute
//! (Fig. 7) — and [`Session`] exposes it as one object instead of a
//! hand-stitched tuple of `KernelPlanner` + `vq_kernel` + `Pipeline` +
//! raw `GpuSpec`s:
//!
//! * a **builder** validates the device / algorithm / optimization-level
//!   combination once, up front;
//! * a pluggable [`Backend`](crate::Backend) supplies planning,
//!   estimation, and functional execution (the performance model today; a
//!   real-GPU backend later);
//! * a shared, memoizing [`PlanCache`] makes repeated planning requests —
//!   the serving hot path — a hash probe instead of re-running Alg. 2, and
//!   is inherited by every [`Pipeline`] the session creates.
//!
//! Since the engine redesign a `Session` is a **thin view** over the same
//! shared state an [`Engine`](crate::Engine) owns (device + algorithms +
//! backend + plan cache), optionally **bound to one registered context**
//! ([`Engine::session`](crate::Engine::session)) — the single-context
//! compatibility facade over the multi-context serving API. A standalone
//! `Session::builder()` still works exactly as before for planning,
//! quantization, and single-context serving.
//!
//! ```
//! use vq_llm::{OptLevel, Session, VqAlgorithm};
//!
//! # fn main() -> Result<(), vq_llm::VqLlmError> {
//! let session = Session::builder()
//!     .gpu(vq_llm::GpuSpec::rtx4090())
//!     .weight_algo(VqAlgorithm::QuipSharp4)
//!     .kv_algo(VqAlgorithm::Cq4)
//!     .opt(OptLevel::O4)
//!     .build()?;
//! let op = session.attention_op(1024, 1);
//! let (plan, out) = session.best_kv_plan(&op)?;
//! println!("{} -> {:.1} us", plan.describe(), out.us());
//! # Ok(())
//! # }
//! ```

use crate::backend::{Backend, BackendKind};
use crate::engine::{build_shared, EngineShared};
use crate::error::{Result, VqLlmError};
use std::sync::Arc;
use vqllm_core::plan_cache::{CacheStats, PlanCache, PlanKey, PlanRequest};
use vqllm_core::{codegen, ComputeOp, KernelPlan, OptLevel, ProfileSummary};
use vqllm_gpu::GpuSpec;
use vqllm_kernels::{AccessProfile, KernelOutput};
use vqllm_llm::serve::ContextHandle;
use vqllm_llm::{
    E2eReport, LlamaConfig, Pipeline, QuantScheme, ServeConfig, Server, SharedContext,
};
use vqllm_tensor::Tensor2D;
use vqllm_vq::{QuantizedTensor, VqAlgorithm, VqConfig, VqQuantizer};

/// Builder for [`Session`] (see [`Session::builder`]).
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    gpu: GpuSpec,
    weight_algo: VqAlgorithm,
    kv_algo: VqAlgorithm,
    opt: OptLevel,
    model: LlamaConfig,
    backend: Option<Arc<dyn Backend>>,
    plan_cache: Option<Arc<PlanCache>>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            gpu: GpuSpec::rtx4090(),
            weight_algo: VqAlgorithm::QuipSharp4,
            kv_algo: VqAlgorithm::Cq4,
            opt: OptLevel::O4,
            model: LlamaConfig::llama_7b(),
            backend: None,
            plan_cache: None,
        }
    }
}

impl SessionBuilder {
    /// Target device (default: RTX 4090, the paper's primary testbed).
    pub fn gpu(mut self, gpu: GpuSpec) -> Self {
        self.gpu = gpu;
        self
    }

    /// Weight quantization algorithm (default: QuiP#-4).
    pub fn weight_algo(mut self, algo: VqAlgorithm) -> Self {
        self.weight_algo = algo;
        self
    }

    /// KV-cache quantization algorithm (default: CQ-4).
    pub fn kv_algo(mut self, algo: VqAlgorithm) -> Self {
        self.kv_algo = algo;
        self
    }

    /// Optimization level for generated kernels (default: O4, the shipped
    /// fully-adaptive configuration).
    pub fn opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self
    }

    /// Model shape for end-to-end projections (default: Llama-7B).
    pub fn model(mut self, model: LlamaConfig) -> Self {
        self.model = model;
        self
    }

    /// Execution backend (default: [`PerfModelBackend`]).
    ///
    /// [`PerfModelBackend`]: crate::PerfModelBackend
    pub fn backend(mut self, backend: Arc<dyn Backend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Selects one of the shipped backends by kind — e.g.
    /// `BackendKind::Cpu { threads: 0 }` for real host execution sized to
    /// the machine.
    pub fn backend_kind(self, kind: BackendKind) -> Self {
        self.backend(kind.instantiate())
    }

    /// Shortcut for `backend_kind(BackendKind::Cpu { threads })`: real
    /// host execution with `threads` worker partitions (`0` = the
    /// machine's available parallelism). Instantiation warms the shared
    /// persistent worker pool, so the session's first parallel kernel
    /// call pays no thread spawns.
    pub fn cpu_threads(self, threads: usize) -> Self {
        self.backend_kind(BackendKind::Cpu { threads })
    }

    /// Shares an existing plan cache (default: a fresh empty cache). Lets
    /// several sessions — e.g. one per tenant on the same device — reuse
    /// each other's plans.
    pub fn plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// Validates the configuration and builds the session.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::InvalidSession`] when the weight algorithm is
    /// not a weight quantizer, the KV algorithm is not a KV-cache
    /// quantizer, or the device description is degenerate.
    pub fn build(self) -> Result<Session> {
        let shared = build_shared(
            self.gpu,
            self.weight_algo,
            self.kv_algo,
            self.opt,
            self.model,
            self.backend,
            self.plan_cache,
        )?;
        Ok(Session::view(shared, None))
    }
}

/// A configured VQ-LLM view: device + algorithms + optimization level +
/// backend + shared plan cache, optionally bound to one registered
/// context (see [`Engine::session`](crate::Engine::session)).
///
/// Cloning is cheap (everything is behind one `Arc`), so a server can
/// hand one clone to every worker thread.
#[derive(Debug, Clone)]
pub struct Session {
    shared: Arc<EngineShared>,
    /// The engine context this view is bound to, if any.
    bound: Option<(ContextHandle, SharedContext)>,
}

impl Session {
    /// Starts a builder with the paper's shipped defaults (RTX 4090,
    /// QuiP#-4 weights, CQ-4 KV, O4).
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// Internal constructor: a view over shared engine state.
    pub(crate) fn view(
        shared: Arc<EngineShared>,
        bound: Option<(ContextHandle, SharedContext)>,
    ) -> Session {
        Session { shared, bound }
    }

    // --- accessors ---

    /// The target device.
    pub fn gpu(&self) -> &GpuSpec {
        &self.shared.gpu
    }

    /// The configured weight algorithm.
    pub fn weight_algo(&self) -> VqAlgorithm {
        self.shared.weight_algo
    }

    /// The configured KV-cache algorithm.
    pub fn kv_algo(&self) -> VqAlgorithm {
        self.shared.kv_algo
    }

    /// The configured optimization level.
    pub fn opt_level(&self) -> OptLevel {
        self.shared.opt
    }

    /// The configured model shape.
    pub fn model(&self) -> LlamaConfig {
        self.shared.model
    }

    /// The execution backend.
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.shared.backend
    }

    /// The shared plan cache.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.shared.plan_cache
    }

    /// Hit/miss counters of the shared plan cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.plan_cache.stats()
    }

    /// The engine context handle this view is bound to, if it came from
    /// [`Engine::session`](crate::Engine::session).
    pub fn context_handle(&self) -> Option<ContextHandle> {
        self.bound.as_ref().map(|(h, _)| *h)
    }

    /// The registered context this view is bound to, if any.
    pub fn bound_context(&self) -> Option<&SharedContext> {
        self.bound.as_ref().map(|(_, ctx)| ctx)
    }

    /// The quantization scheme this session's pipeline runs under.
    pub fn scheme(&self) -> QuantScheme {
        self.shared.scheme()
    }

    /// Attention-decode op at this session's model shape.
    pub fn attention_op(&self, seq: usize, batch: usize) -> ComputeOp {
        let m = &self.shared.model;
        ComputeOp::attention_decode(m.heads, m.head_dim, seq, batch)
    }

    // --- planning (memoized) ---

    /// Plans `op` under `vq` at the session's optimization level. Repeated
    /// calls with the same key return the same `Arc` from the cache.
    ///
    /// `O4` — the shipped fully-adaptive configuration — resolves to the
    /// adaptive best plan across the whole ladder, exactly as the
    /// end-to-end [`Pipeline`] does, so `plan`/`generate` agree on which
    /// kernel runs (and share one cache entry). Use [`Session::plan_at`]
    /// to pin the literal O4 rung instead.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::Planning`] when no launchable configuration
    /// exists.
    pub fn plan(&self, vq: &VqConfig, op: &ComputeOp) -> Result<Arc<KernelPlan>> {
        if self.shared.opt == OptLevel::O4 {
            // Plan only — skip best_plan()'s per-call latency estimate.
            self.cached_best_plan(vq, op, &AccessProfile::default_for(vq))
        } else {
            self.plan_at(vq, op, self.shared.opt)
        }
    }

    /// Plans at an explicit rung of the optimization ladder (memoized).
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::Planning`] when no launchable configuration
    /// exists at that rung.
    pub fn plan_at(
        &self,
        vq: &VqConfig,
        op: &ComputeOp,
        level: OptLevel,
    ) -> Result<Arc<KernelPlan>> {
        let summary = ProfileSummary::default_for(vq);
        let key = PlanKey::with_identity(
            Arc::clone(&self.shared.gpu_identity),
            vq,
            op,
            PlanRequest::At(level),
            &summary,
        );
        self.shared.plan_cache.get_or_try_insert_with(key, || {
            self.shared
                .backend
                .plan_at(&self.shared.gpu, vq, op, level, &summary)
                .map_err(VqLlmError::from)
        })
    }

    /// Adaptive best plan across the ladder plus its latency estimate
    /// (memoized; the estimate is recomputed from the cached plan).
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError`] when no rung yields a launchable plan.
    pub fn best_plan(
        &self,
        vq: &VqConfig,
        op: &ComputeOp,
    ) -> Result<(Arc<KernelPlan>, KernelOutput)> {
        let profile = AccessProfile::default_for(vq);
        let plan = self.cached_best_plan(vq, op, &profile)?;
        let out = self
            .shared
            .backend
            .estimate(&self.shared.gpu, &plan, &profile);
        Ok((plan, out))
    }

    /// Memoized adaptive-best plan lookup under `profile` (the profile's
    /// fingerprint is part of the key: different distributions must not
    /// alias to one cached rung decision).
    fn cached_best_plan(
        &self,
        vq: &VqConfig,
        op: &ComputeOp,
        profile: &AccessProfile,
    ) -> Result<Arc<KernelPlan>> {
        let key = PlanKey::best(
            Arc::clone(&self.shared.gpu_identity),
            vq,
            op,
            profile.fingerprint(),
        );
        self.shared.plan_cache.get_or_try_insert_with(key, || {
            self.shared
                .backend
                .best_plan(&self.shared.gpu, vq, op, profile)
                .map(|(plan, _)| plan)
                .map_err(VqLlmError::from)
        })
    }

    /// [`Session::plan`] for the configured weight algorithm.
    ///
    /// # Errors
    ///
    /// See [`Session::plan`].
    pub fn weight_plan(&self, op: &ComputeOp) -> Result<Arc<KernelPlan>> {
        self.plan(&self.shared.weight_algo.config(), op)
    }

    /// [`Session::plan`] for the configured KV-cache algorithm.
    ///
    /// # Errors
    ///
    /// See [`Session::plan`].
    pub fn kv_plan(&self, op: &ComputeOp) -> Result<Arc<KernelPlan>> {
        self.plan(&self.shared.kv_algo.config(), op)
    }

    /// [`Session::best_plan`] for the configured weight algorithm.
    ///
    /// # Errors
    ///
    /// See [`Session::best_plan`].
    pub fn best_weight_plan(&self, op: &ComputeOp) -> Result<(Arc<KernelPlan>, KernelOutput)> {
        self.best_plan(&self.shared.weight_algo.config(), op)
    }

    /// [`Session::best_plan`] for the configured KV-cache algorithm.
    ///
    /// # Errors
    ///
    /// See [`Session::best_plan`].
    pub fn best_kv_plan(&self, op: &ComputeOp) -> Result<(Arc<KernelPlan>, KernelOutput)> {
        self.best_plan(&self.shared.kv_algo.config(), op)
    }

    // --- estimation & codegen ---

    /// Latency/counter estimate for a plan under a default access profile.
    pub fn estimate(&self, plan: &KernelPlan) -> KernelOutput {
        let profile = AccessProfile::default_for(&plan.vq);
        self.shared
            .backend
            .estimate(&self.shared.gpu, plan, &profile)
    }

    /// Latency/counter estimate under an explicit access profile.
    pub fn estimate_with(&self, plan: &KernelPlan, profile: &AccessProfile) -> KernelOutput {
        self.shared
            .backend
            .estimate(&self.shared.gpu, plan, profile)
    }

    /// Emits the CUDA-like source a GPU backend would compile for `plan`.
    pub fn emit(&self, plan: &KernelPlan) -> String {
        codegen::emit(plan)
    }

    // --- quantization ---

    /// Quantizes a weight tensor with the session's weight algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::Quantization`] on shape/config mismatches.
    pub fn quantize_weights(&self, w: &Tensor2D, seed: u64) -> Result<QuantizedTensor> {
        Ok(VqQuantizer::new(self.shared.weight_algo.config()).quantize(w, seed)?)
    }

    /// Quantizes a K or V cache tensor with the session's KV algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::Quantization`] on shape/config mismatches.
    pub fn quantize_kv(&self, kv: &Tensor2D, seed: u64) -> Result<QuantizedTensor> {
        Ok(VqQuantizer::new(self.shared.kv_algo.config()).quantize(kv, seed)?)
    }

    // --- functional execution ---

    /// Functionally executes a fused GeMM through the backend.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::Kernel`] on shape mismatches.
    pub fn run_gemm(
        &self,
        plan: &KernelPlan,
        a: &Tensor2D,
        wq: &QuantizedTensor,
    ) -> Result<(Tensor2D, KernelOutput)> {
        Ok(self
            .shared
            .backend
            .run_gemm(&self.shared.gpu, plan, a, wq)?)
    }

    /// Functionally executes a fused GeMV through the backend.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::Kernel`] on shape mismatches.
    pub fn run_gemv(
        &self,
        plan: &KernelPlan,
        x: &[f32],
        wq: &QuantizedTensor,
    ) -> Result<(Vec<f32>, KernelOutput)> {
        Ok(self
            .shared
            .backend
            .run_gemv(&self.shared.gpu, plan, x, wq)?)
    }

    /// Functionally executes one fused attention-decode head through the
    /// backend.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::Kernel`] on shape mismatches.
    pub fn run_attention_head(
        &self,
        plan: &KernelPlan,
        q: &[f32],
        kq: &QuantizedTensor,
        vq: &QuantizedTensor,
    ) -> Result<(Vec<f32>, KernelOutput)> {
        Ok(self
            .shared
            .backend
            .run_attention_head(&self.shared.gpu, plan, q, kq, vq)?)
    }

    /// Functionally executes one attention head for a batch of decode
    /// queries (`qs` is `batch × head_dim`, one row per in-flight
    /// sequence) over shared quantized K/V caches — the serving-layer
    /// shape. On a `CpuBackend` this is the fused batched kernel (one
    /// packed-code decode for the whole batch + the panel-blocked GeMM
    /// value pass); other backends fall back to a per-query loop.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::Kernel`] on shape mismatches or an empty
    /// batch.
    pub fn run_attention_batch(
        &self,
        plan: &KernelPlan,
        qs: &Tensor2D,
        kq: &QuantizedTensor,
        vq: &QuantizedTensor,
    ) -> Result<(Tensor2D, KernelOutput)> {
        Ok(self
            .shared
            .backend
            .run_attention_batch(&self.shared.gpu, plan, qs, kq, vq)?)
    }

    /// Ragged batched attention decode: query `b` of `qs` attends only the
    /// first `lens[b]` cached tokens of the shared quantized K/V — the
    /// continuous-batching shape, where co-scheduled tenants sit at
    /// different positions in one cache. On a `CpuBackend` the K-decode is
    /// still shared across the whole batch.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::Kernel`] on shape mismatches, an empty batch,
    /// or a length outside `1..=seq`.
    pub fn run_attention_ragged(
        &self,
        plan: &KernelPlan,
        qs: &Tensor2D,
        lens: &[usize],
        kq: &QuantizedTensor,
        vq: &QuantizedTensor,
    ) -> Result<(Tensor2D, KernelOutput)> {
        Ok(self
            .shared
            .backend
            .run_attention_ragged(&self.shared.gpu, plan, qs, lens, kq, vq)?)
    }

    // --- end-to-end ---

    /// An end-to-end pipeline under an explicit scheme (FP16 / qServe /
    /// VQ-LLM), sharing this session's device, model, plan cache, **and
    /// backend**. The pipeline's latency projection itself is modelled
    /// (both shipped backends plan and estimate with the device model, so
    /// `generate` reports identical numbers); the backend matters for the
    /// functional `run_*` execution paths.
    pub fn pipeline(&self, scheme: QuantScheme) -> Pipeline {
        self.shared.pipeline(scheme)
    }

    /// Full generation run (prefill + decode) under this session's VQ-LLM
    /// scheme.
    pub fn generate(&self, prompt: usize, gen_tokens: usize, batch: usize) -> E2eReport {
        self.pipeline(self.scheme())
            .generate(prompt, gen_tokens, batch)
    }

    // --- serving ---

    /// A batched request [`Server`] over this session: tenants submitted
    /// through [`Server::submit`] share `ctx`'s quantized context, this
    /// session's backend, and its plan cache, while each owns its KV
    /// position; every [`Server::step`] re-forms the decode batch
    /// (continuous batching) and runs one shared-K-decode attention pass
    /// plus one batched linear for all live requests.
    ///
    /// For decode batches spanning **multiple** contexts, use
    /// [`Engine`](crate::Engine) instead.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::Pipeline`] on a degenerate config or when no
    /// launchable plan exists for the serving shapes.
    pub fn serve(&self, ctx: SharedContext, config: ServeConfig) -> Result<Server> {
        Ok(Server::new(self.pipeline(self.scheme()), ctx, config)?)
    }

    /// [`Session::serve`] against the context this view is bound to.
    ///
    /// # Errors
    ///
    /// Returns [`VqLlmError::InvalidSession`] when the session is not
    /// bound to a context, otherwise as [`Session::serve`].
    pub fn serve_bound(&self, config: ServeConfig) -> Result<Server> {
        let Some((_, ctx)) = &self.bound else {
            return Err(VqLlmError::InvalidSession {
                what: "context",
                detail: "session is not bound to an engine context; use \
                         Engine::session(handle) or Session::serve(ctx, config)"
                    .to_string(),
            });
        };
        self.serve(ctx.clone(), config)
    }
}
