//! Property-based tests for the VQ-LLM core framework.

use proptest::prelude::*;
use vqllm_core::dataflow::optimal_split_factor;
use vqllm_core::fusion::{choose_fusion, num_shuffles, reg_fusion, FusionLevel, ThreadMapping};
use vqllm_core::{CachePlacement, ComputeOp, KernelPlanner, OptLevel, ProfileSummary};
use vqllm_gpu::{GpuSpec, Warp, WARP_SIZE};
use vqllm_vq::VqAlgorithm;

proptest! {
    /// The split-factor optimum is a discrete minimum of the total-traffic
    /// function within its clamp range.
    #[test]
    fn split_factor_is_discrete_minimum(
        cb in 1.0e4f64..1.0e9,
        out in 1.0e2f64..1.0e7,
        max_split in 2usize..256,
    ) {
        let s = optimal_split_factor(cb, out, max_split);
        prop_assert!(s >= 1 && s <= max_split);
        let total = |s: f64| cb / s + s * out;
        if s > 1 {
            prop_assert!(total(s as f64) <= total((s - 1) as f64) + 1e-6);
        }
        if s < max_split {
            prop_assert!(total(s as f64) <= total((s + 1) as f64) + 1e-6);
        }
    }

    /// Shuffle counts are consistent with the fusion decision everywhere.
    #[test]
    fn fusion_decision_consistent(v_log in 0u32..5, l_log in 0u32..3) {
        let v = 1usize << v_log;
        let l = 1usize << l_log;
        let n = num_shuffles(v, l);
        match choose_fusion(v, l) {
            FusionLevel::Register { shuffles } => {
                prop_assert_eq!(shuffles, n);
                prop_assert!(n < vqllm_core::SHUFFLE_THRESHOLD);
            }
            FusionLevel::Shared => prop_assert!(n >= vqllm_core::SHUFFLE_THRESHOLD),
        }
    }

    /// Thread mapping is always a permutation with uniform mini-warps for
    /// canonical associations.
    #[test]
    fn thread_mapping_is_permutation(v_log in 0u32..5, l_log in 0u32..2) {
        let v = 1usize << v_log;
        let l = (1usize << l_log).min(v);
        let tm = ThreadMapping::canonical(v, l);
        let mut seen = [false; WARP_SIZE];
        for &lane in &tm.new_duty {
            prop_assert!(!seen[lane], "duplicate lane");
            seen[lane] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        let m = v / l;
        for mw in &tm.mini_warps {
            prop_assert_eq!(mw.len(), m.min(WARP_SIZE));
        }
    }

    /// Register fusion is an involution when applied twice (each shfl_xor
    /// round is its own inverse, applied in any order over disjoint pairs).
    #[test]
    fn reg_fusion_twice_restores(vals in proptest::collection::vec(-10.0f32..10.0, WARP_SIZE * 4)) {
        let mut w = Warp::new(4);
        for lane in 0..WARP_SIZE {
            for r in 0..4 {
                w.set(lane, r, vals[lane * 4 + r]);
            }
        }
        let before = w.snapshot();
        reg_fusion(&mut w, 3).unwrap();
        // Applying the same masks again undoes the transpose.
        reg_fusion(&mut w, 3).unwrap();
        prop_assert_eq!(w.snapshot(), before);
    }

    /// Placement levels partition: every id maps to exactly one level and
    /// boundaries are respected.
    #[test]
    fn placement_levels_partition(n_reg in 0usize..64, extra in 0usize..192, id in 0usize..256) {
        let p = CachePlacement { n_reg, n_shared: n_reg + extra };
        let level = p.level_of(id);
        use vqllm_core::CacheLevel::*;
        match level {
            Register => prop_assert!(id < n_reg),
            Shared => prop_assert!(id >= n_reg && id < n_reg + extra),
            Global => prop_assert!(id >= n_reg + extra),
        }
    }

    /// Every plan at every level for every preset is launchable, and the
    /// block never exceeds device limits.
    #[test]
    fn plans_respect_device_limits(
        algo_idx in 0usize..5,
        level_idx in 0usize..6,
        seq in prop::sample::select(vec![256usize, 1024, 4096]),
        batch in prop::sample::select(vec![1usize, 8, 16]),
    ) {
        let algo = VqAlgorithm::ALL[algo_idx];
        let level = OptLevel::ALL[level_idx];
        let vq = algo.config();
        let op = if algo.is_weight_algorithm() {
            ComputeOp::Gemv { n: 11008, k: 4096, batch }
        } else {
            ComputeOp::attention_decode(32, 128, seq, batch)
        };
        let gpu = GpuSpec::rtx4090();
        let plan = KernelPlanner::new(gpu.clone())
            .plan_at(&vq, &op, level, &ProfileSummary::default_for(&vq))
            .unwrap();
        let block = plan.block_resources();
        prop_assert!(block.smem_bytes <= gpu.max_smem_per_block);
        prop_assert!(block.threads <= gpu.max_threads_per_sm);
        prop_assert!(plan.grid_blocks() >= 1);
        // The placement boundaries stay within the stored entry count.
        prop_assert!(plan.placement.n_reg <= plan.placement.n_shared);
        prop_assert!(plan.placement.n_shared <= vq.stored_entries());
    }

    /// Higher optimization levels never increase the Global→Shared codebook
    /// traffic prediction.
    #[test]
    fn ladder_never_increases_codebook_traffic(
        algo_idx in 0usize..5,
        seq in prop::sample::select(vec![1024usize, 4096]),
    ) {
        let algo = VqAlgorithm::ALL[algo_idx];
        let vq = algo.config();
        let op = if algo.is_weight_algorithm() {
            ComputeOp::Gemv { n: 11008, k: 4096, batch: 1 }
        } else {
            ComputeOp::attention_decode(32, 128, seq, 1)
        };
        let planner = KernelPlanner::new(GpuSpec::rtx4090());
        let prof = ProfileSummary::default_for(&vq);
        let o2 = planner.plan_at(&vq, &op, OptLevel::O2, &prof).unwrap();
        let o3 = planner.plan_at(&vq, &op, OptLevel::O3, &prof).unwrap();
        prop_assert!(
            o3.dataflow.codebook_traffic_bytes <= o2.dataflow.codebook_traffic_bytes + 1.0
        );
    }
}
