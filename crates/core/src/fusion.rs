//! Codebook-centric hierarchical fusion (paper §VI-B, Alg. 1).
//!
//! Default fusion moves dequantized data through shared memory when its
//! layout does not match what the computation consumes (Fig. 6's V-cache
//! round-trip). Register-level fusion instead rearranges the data in place
//! with warp shuffles — but only pays off while the shuffle count is small:
//! profiling puts one shared-memory round-trip at ≈5× the cost of a
//! register access + shuffle, so the engine fuses in registers when fewer
//! than five shuffles suffice and falls back to shared memory otherwise.
//!
//! The shuffle count for a vector size `v` and a required per-thread layout
//! of `l` elements is `v/l − 1` (Fig. 12: `v = 8`, `l = 2` → mini-warps of
//! 4 lanes, 3 `shfl_xor` rounds).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vqllm_gpu::warp::{Warp, WARP_SIZE};

/// Shared-memory round-trip ≈ 5× register+shuffle (profiled constant the
/// paper uses as the fusion threshold).
pub const SHUFFLE_THRESHOLD: usize = 5;

/// Where the dequantize→compute hand-off happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FusionLevel {
    /// Registers, via `shuffles` warp-shuffle rounds.
    Register {
        /// `shfl_xor` rounds per dequantized fragment.
        shuffles: usize,
    },
    /// Shared memory (the default fusion), with a store+load round-trip.
    Shared,
}

/// Shuffle rounds needed to convert a `vector_size` dequantization layout
/// into a `required_layout` compute layout (0 when they already match).
pub fn num_shuffles(vector_size: usize, required_layout: usize) -> usize {
    assert!(vector_size > 0 && required_layout > 0);
    (vector_size / required_layout.min(vector_size)).saturating_sub(1)
}

/// The adaptive fusion choice (paper §VI-B "Adaptivity").
pub fn choose_fusion(vector_size: usize, required_layout: usize) -> FusionLevel {
    let n = num_shuffles(vector_size, required_layout);
    if n == 0 {
        // Layouts already agree: register fusion with no shuffling.
        FusionLevel::Register { shuffles: 0 }
    } else if n < SHUFFLE_THRESHOLD {
        FusionLevel::Register { shuffles: n }
    } else {
        FusionLevel::Shared
    }
}

/// The dequant→compute association of one element within a warp tile
/// (Alg. 1's input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementAssoc {
    /// Lane that dequantizes the element.
    pub dequant_tid: usize,
    /// Lane that consumes it in the computation.
    pub compute_tid: usize,
}

/// The offline thread remapping of Alg. 1: mini-warps plus the permutation
/// of dequantization duties that confines all exchanges to each mini-warp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadMapping {
    /// Groups of lanes whose data only moves within the group.
    pub mini_warps: Vec<Vec<usize>>,
    /// `new_duty[new_lane] = old_lane` whose dequantization work the lane
    /// takes over (Alg. 1 lines 10-11).
    pub new_duty: Vec<usize>,
}

impl ThreadMapping {
    /// Runs Alg. 1 (lines 1-11) over the element association list.
    ///
    /// Lanes whose dequantized data feeds the same set of compute lanes are
    /// grouped into a mini-warp (lines 4-9); mini-warps are then laid out
    /// contiguously so the exchange masks stay below the mini-warp size
    /// (lines 10-11).
    ///
    /// # Panics
    ///
    /// Panics if the association references lanes ≥ 32.
    pub fn from_association(assoc: &[ElementAssoc]) -> Self {
        // dequant lane -> sorted set of compute lanes needing its data.
        let mut needs: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for e in assoc {
            assert!(e.dequant_tid < WARP_SIZE && e.compute_tid < WARP_SIZE);
            let v = needs.entry(e.dequant_tid).or_default();
            if !v.contains(&e.compute_tid) {
                v.push(e.compute_tid);
            }
        }
        for v in needs.values_mut() {
            v.sort_unstable();
        }

        // Group dequant lanes by identical compute-lane sets (lines 5-9).
        let mut groups: BTreeMap<Vec<usize>, Vec<usize>> = BTreeMap::new();
        for (lane, key) in needs {
            groups.entry(key).or_default().push(lane);
        }

        let mini_warps: Vec<Vec<usize>> = groups.into_values().collect();
        // Remap duties: mini-warp k occupies lanes [k·m, (k+1)·m).
        let mut new_duty = Vec::with_capacity(WARP_SIZE);
        for mw in &mini_warps {
            new_duty.extend(mw.iter().copied());
        }
        ThreadMapping {
            mini_warps,
            new_duty,
        }
    }

    /// The canonical association for a fused GeMM warp tile: a warp
    /// dequantizes `32 × vector_size` consecutive elements (each lane one
    /// sub-vector) and the computation consumes `required_layout`-element
    /// fragments round-robin across lanes (the `mma` operand layout of
    /// Fig. 12).
    pub fn canonical(vector_size: usize, required_layout: usize) -> Self {
        let assoc: Vec<ElementAssoc> = (0..WARP_SIZE * vector_size)
            .map(|e| ElementAssoc {
                dequant_tid: e / vector_size,
                compute_tid: (e / required_layout) % WARP_SIZE,
            })
            .collect();
        Self::from_association(&assoc)
    }

    /// Size of each mini-warp (they are uniform for the canonical
    /// association).
    pub fn mini_warp_size(&self) -> usize {
        self.mini_warps.first().map_or(1, Vec::len)
    }
}

/// Executes register-level fusion on a warp (Alg. 1 lines 12-15): rounds
/// `1..=shuffles` of the indexed xor exchange. After this, each lane's
/// register file holds the compute-ordered fragments.
///
/// # Errors
///
/// Propagates [`vqllm_gpu::GpuError`] for invalid masks (shuffles ≥ 32).
pub fn reg_fusion(warp: &mut Warp, shuffles: usize) -> vqllm_gpu::Result<()> {
    for mask in 1..=shuffles {
        warp.shfl_xor_indexed(mask)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_counts_match_table_v() {
        // Tbl. V "#Shuffle" row: QuiP#/AQLM (v=8): GeMM 3, GeMV 7;
        // GPTVQ (v=4): GeMM 1, GeMV 3; CQ-2 (v=4): attention 3.
        assert_eq!(num_shuffles(8, 2), 3);
        assert_eq!(num_shuffles(8, 1), 7);
        assert_eq!(num_shuffles(4, 2), 1);
        assert_eq!(num_shuffles(4, 1), 3);
        assert_eq!(num_shuffles(2, 1), 1);
        assert_eq!(num_shuffles(2, 2), 0);
    }

    #[test]
    fn fusion_choice_uses_the_five_x_threshold() {
        // 3 shuffles < 5 → register fusion (GeMM with v=8).
        assert_eq!(choose_fusion(8, 2), FusionLevel::Register { shuffles: 3 });
        // 7 shuffles ≥ 5 → shared fusion (GeMV with v=8, §VII-C's O4
        // regression case).
        assert_eq!(choose_fusion(8, 1), FusionLevel::Shared);
        // Matching layouts need nothing.
        assert_eq!(choose_fusion(2, 2), FusionLevel::Register { shuffles: 0 });
    }

    #[test]
    fn canonical_mapping_forms_uniform_mini_warps() {
        let tm = ThreadMapping::canonical(8, 2);
        assert_eq!(tm.mini_warps.len(), 8);
        for mw in &tm.mini_warps {
            assert_eq!(mw.len(), 4, "v/l = 4 lanes per mini-warp");
        }
        // Every lane appears exactly once in the new duty permutation.
        let mut seen = [false; WARP_SIZE];
        for &l in &tm.new_duty {
            assert!(!seen[l]);
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn paper_example_mini_warp_grouping() {
        // Fig. 12's pathology: with the naive association, lanes 0, 8, 16,
        // 24 all feed compute lanes {0,1,2,3} — Alg. 1 must group them.
        let tm = ThreadMapping::canonical(8, 2);
        let mw0 = tm
            .mini_warps
            .iter()
            .find(|mw| mw.contains(&0))
            .expect("lane 0 is somewhere");
        assert_eq!(mw0, &vec![0, 8, 16, 24]);
    }

    #[test]
    fn matching_layout_is_identity() {
        let tm = ThreadMapping::canonical(2, 2);
        assert_eq!(tm.mini_warps.len(), 32);
        assert_eq!(tm.mini_warp_size(), 1);
    }

    #[test]
    fn reg_fusion_transposes_mini_warps() {
        // After remapping, each mini-warp of m lanes holds m fragments per
        // lane; reg_fusion must transpose them (validated against the
        // direct index formula).
        let m = 4;
        let mut w = Warp::new(m);
        for lane in 0..WARP_SIZE {
            for r in 0..m {
                w.set(lane, r, (lane * 100 + r) as f32);
            }
        }
        reg_fusion(&mut w, m - 1).unwrap();
        for lane in 0..WARP_SIZE {
            let base = lane & !(m - 1);
            for r in 0..m {
                assert_eq!(w.get(lane, r), ((base + r) * 100 + (lane & (m - 1))) as f32);
            }
        }
        assert_eq!(w.shuffles_issued(), m - 1);
    }

    #[test]
    fn zero_shuffles_is_a_noop() {
        let mut w = Warp::new(2);
        w.set(3, 1, 9.0);
        let before = w.snapshot();
        reg_fusion(&mut w, 0).unwrap();
        assert_eq!(w.snapshot(), before);
    }
}
