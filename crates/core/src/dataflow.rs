//! Codebook-centric dataflow (paper §VI-A).
//!
//! The baseline dataflow parallelizes along whatever axis the FP16 kernel
//! liked (tokens for FlashDecoding, output tiles for GeMM). When codebooks
//! enter the picture, blocks that are parallel along a *non-switch* axis
//! all traverse the same codebooks, duplicating Global→Shared traffic
//! (paper Fig. 5). Re-orienting the partitioning along the codebook-switch
//! axes removes the duplication but — wherever a switch axis is also a
//! reduce axis (Tbl. III's coloured cells) — requires a global reduction of
//! partials.
//!
//! The *split factor* trades the two traffics:
//!
//! ```text
//! Traffic_reduce   = split × output_bytes
//! Traffic_codebook = baseline_codebook_traffic / split
//! ```
//!
//! Both are monotone in opposite directions, so the optimum is their
//! crossing: `split* = sqrt(baseline_codebook_traffic / output_bytes)`
//! (the paper invokes the mean value theorem for the same conclusion).

use crate::ops::{AttnOperand, ComputeOp};
use serde::{Deserialize, Serialize};
use vqllm_vq::config::VqConfig;

/// The planned dataflow for one fused kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataflowPlan {
    /// Degree of parallelization along the codebook-switch axes.
    pub split_factor: usize,
    /// Whether partial results need a global reduction
    /// (`switch ∩ reduce ≠ ∅`).
    pub needs_global_reduce: bool,
    /// Predicted Global→Shared codebook bytes under this plan.
    pub codebook_traffic_bytes: f64,
    /// Predicted global-reduction bytes under this plan.
    pub reduce_traffic_bytes: f64,
    /// Extra whole-computation passes forced by splitting along the
    /// residual axis (QuiP#/AQLM on GeMM/GeMV: each residual level
    /// recomputes the full product — §VII-C's "redundant computations").
    pub redundant_compute_factor: f64,
}

/// The optimal split factor for the traffic-balance equation, clamped to
/// `[1, max_split]`.
pub fn optimal_split_factor(
    baseline_codebook_traffic: f64,
    output_bytes: f64,
    max_split: usize,
) -> usize {
    if output_bytes <= 0.0 || baseline_codebook_traffic <= 0.0 {
        return 1;
    }
    let max_split = max_split.max(1);
    let s = (baseline_codebook_traffic / output_bytes).sqrt();
    // The continuous optimum may round to the wrong discrete neighbour;
    // compare both bracketing integers.
    let lo = (s.floor() as usize).clamp(1, max_split);
    let hi = (lo + 1).min(max_split);
    let total = |s: usize| baseline_codebook_traffic / s as f64 + s as f64 * output_bytes;
    if total(hi) < total(lo) {
        hi
    } else {
        lo
    }
}

/// Plans the codebook-centric dataflow for `op` under `vq`.
///
/// `baseline_codebook_traffic` is the duplicated Global→Shared codebook
/// traffic of the baseline (SC) dataflow; `max_split` bounds the
/// parallelization (usually the extent of the switch axes).
pub fn plan_dataflow(
    op: &ComputeOp,
    vq: &VqConfig,
    operand: Option<AttnOperand>,
    baseline_codebook_traffic: f64,
    max_split: usize,
) -> DataflowPlan {
    let output_bytes = (op.output_elems() * 2) as f64;
    let needs_global_reduce = !op.global_reduce_axes(vq.scope, operand).is_empty();

    let split_factor = if needs_global_reduce {
        optimal_split_factor(baseline_codebook_traffic, output_bytes, max_split)
    } else {
        // No reduction cost: push to the maximum useful split.
        max_split.max(1)
    };

    let codebook_traffic_bytes = baseline_codebook_traffic / split_factor as f64;
    let reduce_traffic_bytes = if needs_global_reduce {
        split_factor as f64 * output_bytes
    } else {
        0.0
    };

    // Splitting along the residual axis replays the computation once per
    // residual level (the dequantized operand distributes over the product:
    // W·x = Σ_r E_r·x), so FLOPs scale with the residual count.
    let splits_residual_axis = matches!(
        (op, vq.scope),
        (
            ComputeOp::Gemm { .. } | ComputeOp::Gemv { .. },
            vqllm_vq::config::CodebookScope::PerTensor
        )
    ) && vq.residuals > 1;
    let redundant_compute_factor = if splits_residual_axis {
        vq.residuals as f64
    } else {
        1.0
    };

    DataflowPlan {
        split_factor,
        needs_global_reduce,
        codebook_traffic_bytes,
        reduce_traffic_bytes,
        redundant_compute_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqllm_vq::algorithms::VqAlgorithm;

    #[test]
    fn optimum_balances_the_two_traffics() {
        // cb = 1 MB, output = 16 KB → s* = sqrt(64) = 8.
        let s = optimal_split_factor(1_048_576.0, 16_384.0, 1024);
        assert_eq!(s, 8);
        // At the optimum the two traffics are equal.
        let cb = 1_048_576.0 / s as f64;
        let red = s as f64 * 16_384.0;
        assert_eq!(cb, red);
    }

    #[test]
    fn split_is_clamped() {
        assert_eq!(optimal_split_factor(1e12, 1.0, 16), 16);
        assert_eq!(optimal_split_factor(1.0, 1e12, 16), 1);
        assert_eq!(optimal_split_factor(0.0, 0.0, 16), 1);
    }

    #[test]
    fn optimum_is_a_local_minimum_of_total_traffic() {
        let cb = 3.2e7;
        let out = 8192.0;
        let s = optimal_split_factor(cb, out, 4096);
        let total = |s: f64| cb / s + s * out;
        assert!(total(s as f64) <= total((s + 1) as f64) + 1e-6);
        if s > 1 {
            assert!(total(s as f64) <= total((s - 1) as f64) + 1e-6);
        }
    }

    #[test]
    fn gemm_with_per_tensor_books_pays_redundant_compute() {
        // QuiP#-4 / AQLM-3 split the residual axis → compute replays per
        // residual (the §VII-C regression).
        let op = ComputeOp::Gemm {
            m: 4096,
            n: 4096,
            k: 4096,
        };
        let quip = VqAlgorithm::QuipSharp4.config();
        let plan = plan_dataflow(&op, &quip, None, 1e6, 64);
        assert!(plan.needs_global_reduce);
        assert_eq!(plan.redundant_compute_factor, 2.0);
    }

    #[test]
    fn gptvq_gemm_splits_without_redundancy() {
        let op = ComputeOp::Gemm {
            m: 4096,
            n: 4096,
            k: 4096,
        };
        let gptvq = VqAlgorithm::Gptvq2.config();
        let plan = plan_dataflow(&op, &gptvq, None, 1e6, 64);
        assert!(plan.needs_global_reduce, "M is switched and reduced");
        assert_eq!(plan.redundant_compute_factor, 1.0);
    }

    #[test]
    fn v_cache_needs_no_global_reduce() {
        let op = ComputeOp::attention_decode(32, 128, 1024, 1);
        let cq2 = VqAlgorithm::Cq2.config();
        let plan = plan_dataflow(&op, &cq2, Some(AttnOperand::VCache), 1e6, 32);
        assert!(!plan.needs_global_reduce);
        assert_eq!(plan.split_factor, 32, "free parallelism is maxed");
        assert_eq!(plan.reduce_traffic_bytes, 0.0);
    }

    #[test]
    fn k_cache_reduces_and_splits_adaptively() {
        let op = ComputeOp::attention_decode(32, 128, 1024, 1);
        let cq2 = VqAlgorithm::Cq2.config();
        let plan = plan_dataflow(&op, &cq2, Some(AttnOperand::KCache), 4e6, 32);
        assert!(plan.needs_global_reduce);
        assert!(plan.split_factor >= 1 && plan.split_factor <= 32);
        // Codebook traffic shrinks by exactly the split factor.
        assert!((plan.codebook_traffic_bytes * plan.split_factor as f64 - 4e6).abs() < 1.0);
    }

    #[test]
    fn bigger_output_pulls_split_down() {
        let small_out = ComputeOp::Gemv {
            n: 4096,
            k: 4096,
            batch: 1,
        };
        let big_out = ComputeOp::Gemm {
            m: 4096,
            n: 4096,
            k: 4096,
        };
        let aqlm = VqAlgorithm::Aqlm3.config();
        let s_small = plan_dataflow(&small_out, &aqlm, None, 1e8, 4096).split_factor;
        let s_big = plan_dataflow(&big_out, &aqlm, None, 1e8, 4096).split_factor;
        assert!(s_small > s_big, "GeMV {s_small} vs GeMM {s_big}");
    }
}
