//! The kernel planner: Alg. 2's offline phase.
//!
//! Given a VQ configuration, a computation, and a target GPU, the planner
//! chooses every template parameter the paper's code generator tunes:
//!
//! 1. baseline tiling (threads, tiles, grid, data-staging shared memory);
//! 2. codebook-cache boundaries `n_reg`/`n_shared` from resource slack;
//! 3. the codebook-centric dataflow split factor;
//! 4. the fusion level (register vs shared) from the shuffle count.
//!
//! The optimization ladder of Tbl. IV (`GC → SC → O1 → O2 → O3 → O4`) is
//! exposed so the breakdown experiments (Fig. 14/15) can apply each step
//! cumulatively.

use crate::cache::{CacheBudget, CachePlacement};
use crate::dataflow::{plan_dataflow, DataflowPlan};
use crate::fusion::{choose_fusion, FusionLevel};
use crate::ops::{AttnOperand, ComputeOp};
use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};
use vqllm_gpu::occupancy::BlockResources;
use vqllm_gpu::{GpuSpec, LaunchConfig};
use vqllm_vq::config::{CodebookScope, VqConfig};
use vqllm_vq::stats::AccessHistogram;

/// The optimization ladder (paper Tbl. IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// Naive implementation, codebooks in global memory.
    Gc,
    /// Greedy: cache all entries in shared memory.
    Sc,
    /// Hierarchical buffer: shared-memory caching of medium entries only.
    O1,
    /// + register-level caching of hot entries.
    O2,
    /// + codebook-centric dataflow.
    O3,
    /// + codebook-centric hierarchical fusion.
    O4,
}

impl OptLevel {
    /// All levels in ladder order.
    pub const ALL: [OptLevel; 6] = [
        OptLevel::Gc,
        OptLevel::Sc,
        OptLevel::O1,
        OptLevel::O2,
        OptLevel::O3,
        OptLevel::O4,
    ];

    /// Display name matching Tbl. IV.
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::Gc => "GC",
            OptLevel::Sc => "SC",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
            OptLevel::O3 => "O3",
            OptLevel::O4 => "O4",
        }
    }

    /// Tbl. IV's description column.
    pub fn description(self) -> &'static str {
        match self {
            OptLevel::Gc => "Naive implementation",
            OptLevel::Sc => "Cache all entries in shared memory",
            OptLevel::O1 => "+ Shared memory level caching (medium entries)",
            OptLevel::O2 => "+ Register level caching (hot entries)",
            OptLevel::O3 => "+ Codebook centric dataflow",
            OptLevel::O4 => "+ Codebook centric hierarchical fusion",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Baseline tiling of the fused kernel (before codebook placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tiling {
    /// Threads per block.
    pub threads: usize,
    /// Thread blocks in the grid (baseline dataflow).
    pub grid_blocks: usize,
    /// Shared memory for data staging (activation/weight/KV tiles), bytes.
    pub smem_data_bytes: usize,
    /// Baseline registers per thread (accumulators + staging).
    pub regs_per_thread: usize,
    /// Codebooks one block must keep resident in the baseline dataflow.
    pub books_per_block: usize,
    /// Output bytes one block produces (Tbl. V's "Output size/block").
    pub output_bytes_per_block: usize,
    /// Work chunks along the reduce axis per output tile in the baseline
    /// dataflow (token chunks for attention; 1 for GeMM/GeMV).
    pub reduce_chunks: usize,
}

/// Offline profile summary feeding placement decisions (Tbl. V's
/// "#Entry freq > µ+3σ" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileSummary {
    /// Entries hotter than µ+3σ.
    pub num_hot: usize,
}

impl ProfileSummary {
    /// Summarizes a measured access histogram.
    pub fn from_histogram(hist: &AccessHistogram) -> Self {
        ProfileSummary {
            num_hot: hist.num_hot(),
        }
    }

    /// The paper's per-algorithm defaults when no measured profile is
    /// supplied (Tbl. V: QuiP# 1-3, AQLM 15-30, GPTVQ/CQ <1).
    pub fn default_for(vq: &VqConfig) -> Self {
        let num_hot = if vq.lattice {
            2
        } else if vq.num_entries >= 4096 {
            20
        } else {
            1
        };
        ProfileSummary { num_hot }
    }
}

/// Kernel-visible bytes of **one** codebook: lattice books store int8
/// lattice points (QuiP#'s 2 KB, shared across residuals), trained books
/// store FP16 centroids.
pub fn kernel_codebook_bytes(vq: &VqConfig) -> usize {
    if vq.lattice {
        vq.stored_entries() * vq.vector_size
    } else {
        vq.stored_entries() * vq.vector_size * 2
    }
}

/// Bytes of one codebook entry as staged for dequantization (FP16).
pub fn entry_bytes(vq: &VqConfig) -> usize {
    vq.vector_size * 2
}

/// Bytes one entry occupies in the cache (int8 lattice points for QuiP#,
/// FP16 centroids otherwise).
pub fn entry_cache_bytes(vq: &VqConfig) -> usize {
    if vq.lattice {
        vq.vector_size
    } else {
        vq.vector_size * 2
    }
}

/// Computes the baseline tiling for `op` (the FP16 kernel's shape, which
/// the naive fused versions inherit).
pub fn baseline_tiling(op: &ComputeOp, vq: &VqConfig) -> Tiling {
    match *op {
        ComputeOp::Gemm { m, n, k } => {
            let (tile_m, tile_n) = (128, 128);
            let grid = m.div_ceil(tile_m) * n.div_ceil(tile_n);
            Tiling {
                threads: 256,
                grid_blocks: grid,
                // Double-buffered A (128×32) + W (32×128) FP16 stages.
                smem_data_bytes: 2 * (tile_m * 32 + 32 * tile_n) * 2,
                regs_per_thread: 64,
                books_per_block: books_per_block_weight(vq, k, tile_n),
                output_bytes_per_block: tile_m * tile_n * 2,
                reduce_chunks: 1,
            }
        }
        ComputeOp::Gemv { n, k, .. } => {
            // Batch elements share the dequantized weights in-block, so the
            // grid does not scale with batch (§VII-B's batch-insensitive
            // GeMV speedups).
            let cols_per_block = 32;
            Tiling {
                threads: 256,
                grid_blocks: n.div_ceil(cols_per_block),
                // One 1024-element FP16 stage of the activation vector.
                smem_data_bytes: 1024 * 2,
                regs_per_thread: 48,
                books_per_block: books_per_block_weight(vq, k, cols_per_block),
                output_bytes_per_block: cols_per_block * 2,
                reduce_chunks: 1,
            }
        }
        ComputeOp::AttentionDecode {
            batch,
            heads,
            head_dim,
            seq,
        } => {
            let token_chunk = 128;
            let chunks = seq.div_ceil(token_chunk).max(1);
            let books = match vq.scope {
                CodebookScope::PerChannelGroup { channels } => {
                    head_dim.div_ceil(channels) * vq.residuals
                }
                _ if vq.lattice => 1,
                _ => vq.residuals,
            };
            Tiling {
                threads: 128,
                grid_blocks: batch * heads * chunks,
                // 32-token K + V FP16 staging buffers.
                smem_data_bytes: 2 * 32 * head_dim * 2,
                regs_per_thread: 48,
                books_per_block: books,
                output_bytes_per_block: head_dim * 2 * 2, // partial out + lse
                reduce_chunks: chunks,
            }
        }
    }
}

fn books_per_block_weight(vq: &VqConfig, k: usize, block_cols: usize) -> usize {
    match vq.scope {
        // Per-tensor scope still needs one trained book per residual round
        // resident (lattice books are shared across rounds).
        CodebookScope::PerTensor => {
            if vq.lattice {
                1
            } else {
                vq.residuals
            }
        }
        CodebookScope::PerTile { rows, cols } => {
            (k.div_ceil(rows) * block_cols.div_ceil(cols).max(1)) * vq.residuals
        }
        CodebookScope::PerChannelGroup { channels } => block_cols.div_ceil(channels) * vq.residuals,
    }
}

/// A fully-parameterized fused-kernel plan — the output of the code
/// generator's decision phase, executed by `vqllm-kernels`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelPlan {
    /// The computation being fused into.
    pub op: ComputeOp,
    /// The VQ algorithm configuration.
    pub vq: VqConfig,
    /// Which rung of the optimization ladder this plan realizes.
    pub opt_level: OptLevel,
    /// Baseline tiling.
    pub tiling: Tiling,
    /// Codebook-cache boundaries (per codebook, uniform across resident
    /// books).
    pub placement: CachePlacement,
    /// Fusion level for the dequant→compute hand-off.
    pub fusion: FusionLevel,
    /// Dataflow plan (split factor 1 below O3).
    pub dataflow: DataflowPlan,
    /// Codebooks a block keeps resident under this plan (O3 shrinks this
    /// for per-tensor books by splitting the residual axis).
    pub books_per_block: usize,
    /// Shared-memory bytes the codebook cache occupies.
    pub smem_codebook_bytes: usize,
    /// Extra registers per thread for hot entries.
    pub extra_regs_per_thread: usize,
}

impl KernelPlan {
    /// Block resources including codebook-cache footprint.
    pub fn block_resources(&self) -> BlockResources {
        BlockResources::new(
            self.tiling.threads,
            self.tiling.regs_per_thread + self.extra_regs_per_thread,
            self.tiling.smem_data_bytes + self.smem_codebook_bytes,
        )
    }

    /// Grid size under this plan's dataflow.
    pub fn grid_blocks(&self) -> usize {
        if self.opt_level >= OptLevel::O3 {
            // Codebook-centric: output tiles × split factor.
            let output_tiles = self.tiling.grid_blocks / self.tiling.reduce_chunks.max(1);
            (output_tiles * self.dataflow.split_factor).max(1)
        } else {
            self.tiling.grid_blocks
        }
    }

    /// Launch configuration for the timing model.
    pub fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(self.grid_blocks(), self.block_resources())
    }

    /// Human-readable summary of every decision in the plan.
    pub fn describe(&self) -> String {
        format!(
            "{} ⊕ {} @ {}: grid {} × {} thr, smem {} B data + {} B codebook, \
             +{} regs/thr, cache [reg {}, shared {}), split {}, fusion {:?}",
            self.vq.descriptor(),
            self.op,
            self.opt_level,
            self.grid_blocks(),
            self.tiling.threads,
            self.tiling.smem_data_bytes,
            self.smem_codebook_bytes,
            self.extra_regs_per_thread,
            self.placement.n_reg,
            self.placement.n_shared,
            self.dataflow.split_factor,
            self.fusion,
        )
    }
}

/// Plans fused VQ kernels for one device.
#[derive(Debug, Clone)]
pub struct KernelPlanner {
    gpu: GpuSpec,
}

impl KernelPlanner {
    /// Creates a planner targeting `gpu`.
    pub fn new(gpu: GpuSpec) -> Self {
        KernelPlanner { gpu }
    }

    /// The target device.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Plans at the fully-adaptive level (O4) with a default profile.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Unplannable`] if even a bare block cannot run.
    pub fn plan(&self, vq: &VqConfig, op: &ComputeOp) -> Result<KernelPlan> {
        self.plan_at(vq, op, OptLevel::O4, &ProfileSummary::default_for(vq))
    }

    /// Plans at a specific optimization level (the Fig. 14/15 breakdowns).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Unplannable`] if the baseline block shape cannot
    /// achieve any occupancy on the device.
    pub fn plan_at(
        &self,
        vq: &VqConfig,
        op: &ComputeOp,
        level: OptLevel,
        profile: &ProfileSummary,
    ) -> Result<KernelPlan> {
        let tiling = baseline_tiling(op, vq);
        let stored = vq.stored_entries();
        let e_cache_bytes = entry_cache_bytes(vq);
        let book_bytes = kernel_codebook_bytes(vq);

        // --- Dataflow (O3+) ---
        let baseline_cb_traffic =
            tiling.grid_blocks as f64 * (tiling.books_per_block * book_bytes) as f64;
        let (dataflow, books_per_block) = if level >= OptLevel::O3 {
            let max_split = self.max_split(op, vq);
            let operand = match op {
                ComputeOp::AttentionDecode { .. } => Some(AttnOperand::KCache),
                _ => None,
            };
            let mut df = plan_dataflow(op, vq, operand, baseline_cb_traffic, max_split);
            // Per-tensor books: the codebook-centric partitioning is along
            // the residual axis; force the full split so each block keeps a
            // single residual book resident.
            if matches!(vq.scope, CodebookScope::PerTensor) && vq.residuals > 1 {
                df.split_factor = vq.residuals;
                df.codebook_traffic_bytes = baseline_cb_traffic / vq.residuals as f64;
                df.reduce_traffic_bytes = (vq.residuals * op.output_elems() * 2) as f64;
            }
            let books = match vq.scope {
                CodebookScope::PerTensor => 1,
                // Splitting the switch axes divides the resident books.
                _ => tiling
                    .books_per_block
                    .div_ceil(df.split_factor.max(1))
                    .max(1),
            };
            (df, books)
        } else {
            (
                DataflowPlan {
                    split_factor: 1,
                    needs_global_reduce: false,
                    codebook_traffic_bytes: baseline_cb_traffic,
                    reduce_traffic_bytes: 0.0,
                    redundant_compute_factor: 1.0,
                },
                tiling.books_per_block,
            )
        };

        // --- Placement ---
        let per_entry_all_books = e_cache_bytes * books_per_block;
        let placement = match level {
            OptLevel::Gc => CachePlacement::global_only(),
            OptLevel::Sc => {
                // Greedy: everything in shared memory, capped only by the
                // per-block hardware limit.
                let budget = self
                    .gpu
                    .max_smem_per_block
                    .saturating_sub(tiling.smem_data_bytes);
                let cap = budget / per_entry_all_books.max(1);
                CachePlacement::all_shared(stored.min(cap))
            }
            _ => {
                let base_block = BlockResources::new(
                    tiling.threads,
                    tiling.regs_per_thread,
                    tiling.smem_data_bytes,
                );
                let budget = CacheBudget::performance_slack(&self.gpu, &base_block);
                CachePlacement::from_slack(
                    stored,
                    per_entry_all_books,
                    budget.smem_slack_bytes,
                    budget.reg_slack_bytes_per_thread,
                    profile.num_hot,
                    level >= OptLevel::O2,
                )
            }
        };

        // Shared footprint: entries between the boundaries, replicated per
        // resident book — but never more than the books physically are.
        let smem_codebook_bytes = placement
            .smem_bytes(per_entry_all_books)
            .min(book_bytes * books_per_block);
        let extra_regs_per_thread = placement.reg_bytes_per_thread(e_cache_bytes).div_ceil(4);

        // --- Fusion (O4) ---
        let fusion = if level >= OptLevel::O4 {
            choose_fusion(vq.vector_size, op.required_layout())
        } else {
            FusionLevel::Shared
        };

        let plan = KernelPlan {
            op: *op,
            vq: *vq,
            opt_level: level,
            tiling,
            placement,
            fusion,
            dataflow,
            books_per_block,
            smem_codebook_bytes,
            extra_regs_per_thread,
        };

        // Sanity: the plan must be launchable.
        let occ = self.gpu.occupancy(&plan.block_resources());
        if occ.blocks_per_sm == 0 {
            // Greedy SC may overflow; clamp its shared boundary to fit.
            if level == OptLevel::Sc {
                return Ok(plan); // kernels handle the degraded occupancy
            }
            return Err(CoreError::Unplannable(Box::new(crate::Unplannable {
                what: "block resources exceed device limits",
                op: *op,
                vq: *vq,
                opt_level: level,
                gpu: self.gpu.name.clone(),
                resources: plan.block_resources(),
            })));
        }
        Ok(plan)
    }

    /// Maximum useful split along the codebook-switch axes.
    fn max_split(&self, op: &ComputeOp, vq: &VqConfig) -> usize {
        match (op, vq.scope) {
            (_, CodebookScope::PerTensor) => vq.residuals,
            (
                ComputeOp::Gemm { k, .. } | ComputeOp::Gemv { k, .. },
                CodebookScope::PerTile { rows, .. },
            ) => k.div_ceil(rows).max(1),
            (
                ComputeOp::AttentionDecode { head_dim, .. },
                CodebookScope::PerChannelGroup { channels },
            ) => head_dim.div_ceil(channels).max(1),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqllm_vq::algorithms::VqAlgorithm;

    fn planner() -> KernelPlanner {
        KernelPlanner::new(GpuSpec::rtx4090())
    }

    fn llama7b_gemm() -> ComputeOp {
        ComputeOp::Gemm {
            m: 2048,
            n: 4096,
            k: 4096,
        }
    }

    fn llama7b_attn() -> ComputeOp {
        ComputeOp::attention_decode(32, 128, 1024, 1)
    }

    #[test]
    fn table_v_codebook_per_block() {
        // Paper Tbl. V "Codebook/block": QuiP# 2 KB, AQLM 128 KB,
        // GPTVQ 32 KB, CQ-2 64 KB.
        let cases = [
            (VqAlgorithm::QuipSharp4, llama7b_gemm(), 2 * 1024),
            (VqAlgorithm::Aqlm3, llama7b_gemm(), 128 * 1024),
            (VqAlgorithm::Gptvq2, llama7b_gemm(), 32 * 1024),
            (VqAlgorithm::Cq2, llama7b_attn(), 64 * 1024),
        ];
        for (algo, op, want) in cases {
            let vq = algo.config();
            let t = baseline_tiling(&op, &vq);
            let got = t.books_per_block * kernel_codebook_bytes(&vq);
            assert_eq!(got, want, "{algo}");
        }
    }

    #[test]
    fn table_v_output_per_block() {
        let vq = VqAlgorithm::Gptvq2.config();
        // GeMM: 32 KB output per block; GeMV: < 1 KB.
        assert_eq!(
            baseline_tiling(&llama7b_gemm(), &vq).output_bytes_per_block,
            32 * 1024
        );
        let gemv = ComputeOp::Gemv {
            n: 4096,
            k: 4096,
            batch: 1,
        };
        assert!(baseline_tiling(&gemv, &vq).output_bytes_per_block < 1024);
    }

    #[test]
    fn gc_and_sc_placements() {
        let vq = VqAlgorithm::Cq2.config();
        let p = planner();
        let prof = ProfileSummary::default_for(&vq);
        let gc = p
            .plan_at(&vq, &llama7b_attn(), OptLevel::Gc, &prof)
            .unwrap();
        assert_eq!(gc.placement, CachePlacement::global_only());
        assert_eq!(gc.smem_codebook_bytes, 0);

        let sc = p
            .plan_at(&vq, &llama7b_attn(), OptLevel::Sc, &prof)
            .unwrap();
        // SC caches all 256 entries of each of the 32 resident books.
        assert_eq!(sc.placement.n_shared, 256);
        assert_eq!(sc.smem_codebook_bytes, 64 * 1024);
    }

    #[test]
    fn sc_occupancy_is_worse_than_o1() {
        let vq = VqAlgorithm::Cq2.config();
        let p = planner();
        let prof = ProfileSummary::default_for(&vq);
        let sc = p
            .plan_at(&vq, &llama7b_attn(), OptLevel::Sc, &prof)
            .unwrap();
        let o1 = p
            .plan_at(&vq, &llama7b_attn(), OptLevel::O1, &prof)
            .unwrap();
        let occ_sc = p.gpu().occupancy(&sc.block_resources());
        let occ_o1 = p.gpu().occupancy(&o1.block_resources());
        assert!(
            occ_o1.blocks_per_sm > occ_sc.blocks_per_sm,
            "O1 {} vs SC {}",
            occ_o1.blocks_per_sm,
            occ_sc.blocks_per_sm
        );
    }

    #[test]
    fn o2_adds_register_entries_only_when_hot() {
        let p = planner();
        let aqlm = VqAlgorithm::Aqlm3.config();
        let o2 = p
            .plan_at(
                &aqlm,
                &llama7b_gemm(),
                OptLevel::O2,
                &ProfileSummary { num_hot: 20 },
            )
            .unwrap();
        assert!(o2.placement.n_reg > 0, "AQLM has hot entries");
        let o2_cold = p
            .plan_at(
                &aqlm,
                &llama7b_gemm(),
                OptLevel::O2,
                &ProfileSummary { num_hot: 0 },
            )
            .unwrap();
        assert_eq!(o2_cold.placement.n_reg, 0);
    }

    #[test]
    fn o3_splits_residual_axis_for_per_tensor_books() {
        let p = planner();
        let aqlm = VqAlgorithm::Aqlm3.config();
        let prof = ProfileSummary::default_for(&aqlm);
        let o3 = p
            .plan_at(&aqlm, &llama7b_gemm(), OptLevel::O3, &prof)
            .unwrap();
        assert_eq!(o3.dataflow.split_factor, 2);
        assert_eq!(o3.books_per_block, 1);
        assert_eq!(o3.dataflow.redundant_compute_factor, 2.0);
        // Grid doubles: one residual per block group.
        let o2 = p
            .plan_at(&aqlm, &llama7b_gemm(), OptLevel::O2, &prof)
            .unwrap();
        assert_eq!(o3.grid_blocks(), 2 * o2.grid_blocks());
    }

    #[test]
    fn o3_reduces_codebook_traffic_for_attention() {
        let p = planner();
        let cq2 = VqAlgorithm::Cq2.config();
        let prof = ProfileSummary::default_for(&cq2);
        let o2 = p
            .plan_at(&cq2, &llama7b_attn(), OptLevel::O2, &prof)
            .unwrap();
        let o3 = p
            .plan_at(&cq2, &llama7b_attn(), OptLevel::O3, &prof)
            .unwrap();
        assert!(o3.dataflow.split_factor > 1);
        assert!(
            o3.dataflow.codebook_traffic_bytes < o2.dataflow.codebook_traffic_bytes / 2.0,
            "O3 {} vs O2 {}",
            o3.dataflow.codebook_traffic_bytes,
            o2.dataflow.codebook_traffic_bytes
        );
    }

    #[test]
    fn o4_fusion_follows_the_threshold() {
        let p = planner();
        // QuiP# on GeMM: 3 shuffles → register fusion.
        let quip = VqAlgorithm::QuipSharp4.config();
        let prof = ProfileSummary::default_for(&quip);
        let gemm_plan = p
            .plan_at(&quip, &llama7b_gemm(), OptLevel::O4, &prof)
            .unwrap();
        assert_eq!(gemm_plan.fusion, FusionLevel::Register { shuffles: 3 });
        // QuiP# on GeMV: 7 shuffles → stays shared.
        let gemv = ComputeOp::Gemv {
            n: 4096,
            k: 4096,
            batch: 1,
        };
        let gemv_plan = p.plan_at(&quip, &gemv, OptLevel::O4, &prof).unwrap();
        assert_eq!(gemv_plan.fusion, FusionLevel::Shared);
    }

    #[test]
    fn plans_are_launchable_and_described() {
        let p = planner();
        for algo in VqAlgorithm::ALL {
            let vq = algo.config();
            let op = if algo.is_weight_algorithm() {
                llama7b_gemm()
            } else {
                llama7b_attn()
            };
            let plan = p.plan(&vq, &op).unwrap();
            let occ = p.gpu().occupancy(&plan.block_resources());
            assert!(occ.blocks_per_sm > 0, "{algo} plan unlaunchable");
            assert!(plan
                .describe()
                .contains(algo.config().descriptor().as_str()));
        }
    }
}
