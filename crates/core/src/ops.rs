//! Compute-operation descriptions and the axis algebra of the paper's
//! Tbl. III.
//!
//! Every fused kernel combines VQ dequantization with one of three
//! computations: GeMM (prefill linear layers), GeMV (decode linear layers)
//! or attention decode (KV-cache consumption). The planner reasons about
//! each computation's *axes*: which are reduced, and which force a codebook
//! switch under a given [`CodebookScope`]. A non-empty intersection between
//! the two is what demands an explicit global reduction in the
//! codebook-centric dataflow (§VI-A).

use serde::{Deserialize, Serialize};
use vqllm_vq::config::CodebookScope;

/// Named axes, following the paper's notation.
///
/// Weight computations use `M` (weight rows = contraction dim), `N` (weight
/// columns = outputs) and `R` (residual rounds). Attention uses `B` (batch),
/// `H` (head), `T` (token), `C` (channel) plus `R`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Weight rows (the GeMM/GeMV contraction dimension).
    M,
    /// Weight columns (output features).
    N,
    /// Residual quantization rounds.
    R,
    /// Batch.
    B,
    /// Attention head.
    H,
    /// Token (sequence position).
    T,
    /// Channel within a head.
    C,
}

/// Which operand of the attention computation is being described (K and V
/// caches reduce along different axes — Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttnOperand {
    /// Key cache: the QK inner product reduces along channels.
    KCache,
    /// Value cache: the weighted sum reduces along tokens.
    VCache,
}

/// A computation to fuse VQ dequantization into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComputeOp {
    /// `C[m,n] = A[m,k=weight_rows] × W[weight_rows, n]`, weight quantized.
    Gemm {
        /// Activation rows (batch × sequence in prefill).
        m: usize,
        /// Output features (weight columns).
        n: usize,
        /// Contraction length (weight rows).
        k: usize,
    },
    /// `y[b, n] = W[n, k] · x[b, k]`, weight quantized, decode-phase shapes
    /// (small `b`).
    Gemv {
        /// Output features.
        n: usize,
        /// Contraction length.
        k: usize,
        /// Batch size.
        batch: usize,
    },
    /// Flash-decoding-style attention with a quantized KV cache.
    AttentionDecode {
        /// Batch size.
        batch: usize,
        /// Attention heads.
        heads: usize,
        /// Channels per head.
        head_dim: usize,
        /// Cached tokens (sequence length).
        seq: usize,
    },
}

impl ComputeOp {
    /// Convenience constructor for attention decode.
    pub fn attention_decode(heads: usize, head_dim: usize, seq: usize, batch: usize) -> Self {
        ComputeOp::AttentionDecode {
            batch,
            heads,
            head_dim,
            seq,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            ComputeOp::Gemm { .. } => "GeMM",
            ComputeOp::Gemv { .. } => "GeMV",
            ComputeOp::AttentionDecode { .. } => "Attention(Decode)",
        }
    }

    /// All axes of the computation (paper Tbl. III, "All axes").
    pub fn all_axes(&self) -> &'static [Axis] {
        match self {
            ComputeOp::Gemm { .. } | ComputeOp::Gemv { .. } => &[Axis::M, Axis::N, Axis::R],
            ComputeOp::AttentionDecode { .. } => &[Axis::B, Axis::H, Axis::T, Axis::C],
        }
    }

    /// Reduce axes (Tbl. III). For attention the operand matters: the QK
    /// product reduces along `C`, the V accumulation along `T`.
    pub fn reduce_axes(&self, operand: Option<AttnOperand>) -> &'static [Axis] {
        match self {
            ComputeOp::Gemm { .. } | ComputeOp::Gemv { .. } => &[Axis::M, Axis::R],
            ComputeOp::AttentionDecode { .. } => match operand {
                Some(AttnOperand::VCache) => &[Axis::T],
                _ => &[Axis::C],
            },
        }
    }

    /// Codebook-switch axes under `scope` (Tbl. III's last column):
    /// per-tensor books switch only across residuals (`R`), per-tile books
    /// across weight tiles (`M`, `N`), per-channel-group books across heads
    /// and channels (`H`, `C`).
    pub fn switch_axes(&self, scope: CodebookScope) -> &'static [Axis] {
        match (self, scope) {
            (ComputeOp::Gemm { .. } | ComputeOp::Gemv { .. }, CodebookScope::PerTensor) => {
                &[Axis::R]
            }
            (ComputeOp::Gemm { .. } | ComputeOp::Gemv { .. }, CodebookScope::PerTile { .. }) => {
                &[Axis::M, Axis::N]
            }
            (
                ComputeOp::Gemm { .. } | ComputeOp::Gemv { .. },
                CodebookScope::PerChannelGroup { .. },
            ) => &[Axis::M],
            (ComputeOp::AttentionDecode { .. }, CodebookScope::PerChannelGroup { .. }) => {
                &[Axis::H, Axis::C]
            }
            (ComputeOp::AttentionDecode { .. }, _) => &[Axis::H],
        }
    }

    /// Axes needing an explicit global reduction in the codebook-centric
    /// dataflow: `reduce ∩ switch` (the coloured cells of Tbl. III).
    pub fn global_reduce_axes(
        &self,
        scope: CodebookScope,
        operand: Option<AttnOperand>,
    ) -> Vec<Axis> {
        let reduce = self.reduce_axes(operand);
        self.switch_axes(scope)
            .iter()
            .copied()
            .filter(|a| reduce.contains(a))
            .collect()
    }

    /// Total floating-point operations of the computation (MAC = 2 FLOPs).
    pub fn flops(&self) -> f64 {
        match *self {
            ComputeOp::Gemm { m, n, k } => 2.0 * m as f64 * n as f64 * k as f64,
            ComputeOp::Gemv { n, k, batch } => 2.0 * n as f64 * k as f64 * batch as f64,
            ComputeOp::AttentionDecode {
                batch,
                heads,
                head_dim,
                seq,
            } => {
                // QK^T + softmax·V per head: 2 × (seq × dim) MACs ≈ 4·s·d
                // FLOPs, plus softmax (≈5 ops/token).
                let per_head = 4.0 * seq as f64 * head_dim as f64 + 5.0 * seq as f64;
                per_head * heads as f64 * batch as f64
            }
        }
    }

    /// Elements of the quantized operand (weights or KV cache).
    pub fn quantized_elems(&self) -> usize {
        match *self {
            ComputeOp::Gemm { n, k, .. } => n * k,
            ComputeOp::Gemv { n, k, .. } => n * k,
            ComputeOp::AttentionDecode {
                batch,
                heads,
                head_dim,
                seq,
            } => 2 * batch * heads * seq * head_dim, // K and V
        }
    }

    /// Output elements (FP16) the kernel writes.
    pub fn output_elems(&self) -> usize {
        match *self {
            ComputeOp::Gemm { m, n, .. } => m * n,
            ComputeOp::Gemv { n, batch, .. } => n * batch,
            ComputeOp::AttentionDecode {
                batch,
                heads,
                head_dim,
                ..
            } => batch * heads * head_dim,
        }
    }

    /// Whether the computation runs on tensor cores (`mma`) in the FP16
    /// baseline — true for GeMM (cutlass), false for the memory-bound ops.
    pub fn uses_tensor_cores(&self) -> bool {
        matches!(self, ComputeOp::Gemm { .. })
    }

    /// Per-thread register layout the computation consumes, in elements:
    /// `mma` fragments hold 2 consecutive elements per thread (Fig. 12);
    /// the element-wise reductions of GeMV and attention consume 1.
    pub fn required_layout(&self) -> usize {
        match self {
            ComputeOp::Gemm { .. } => 2,
            ComputeOp::Gemv { .. } | ComputeOp::AttentionDecode { .. } => 1,
        }
    }

    /// Activation / query bytes streamed from DRAM at FP16 (non-quantized
    /// inputs).
    pub fn input_bytes(&self) -> usize {
        match *self {
            ComputeOp::Gemm { m, k, .. } => m * k * 2,
            ComputeOp::Gemv { k, batch, .. } => k * batch * 2,
            ComputeOp::AttentionDecode {
                batch,
                heads,
                head_dim,
                ..
            } => batch * heads * head_dim * 2,
        }
    }
}

impl std::fmt::Display for ComputeOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ComputeOp::Gemm { m, n, k } => write!(f, "GeMM[{m}x{k}x{n}]"),
            ComputeOp::Gemv { n, k, batch } => write!(f, "GeMV[{n}x{k}, bs{batch}]"),
            ComputeOp::AttentionDecode {
                batch,
                heads,
                head_dim,
                seq,
            } => write!(f, "Attn[bs{batch}, {heads}h x {head_dim}, seq {seq}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm() -> ComputeOp {
        ComputeOp::Gemm {
            m: 128,
            n: 4096,
            k: 4096,
        }
    }

    fn attn() -> ComputeOp {
        ComputeOp::attention_decode(32, 128, 1024, 1)
    }

    #[test]
    fn table_iii_weight_axes() {
        let per_tensor = CodebookScope::PerTensor;
        let per_tile = CodebookScope::PerTile {
            rows: 256,
            cols: 256,
        };
        assert_eq!(gemm().switch_axes(per_tensor), &[Axis::R]);
        assert_eq!(gemm().switch_axes(per_tile), &[Axis::M, Axis::N]);
        assert_eq!(gemm().reduce_axes(None), &[Axis::M, Axis::R]);
        // AQLM/QuiP#: R is both switched and reduced → global reduce on R.
        assert_eq!(gemm().global_reduce_axes(per_tensor, None), vec![Axis::R]);
        // GPTVQ: M is both switched and reduced → split-K style reduce.
        assert_eq!(gemm().global_reduce_axes(per_tile, None), vec![Axis::M]);
    }

    #[test]
    fn table_iii_attention_axes() {
        let cq = CodebookScope::PerChannelGroup { channels: 4 };
        assert_eq!(attn().switch_axes(cq), &[Axis::H, Axis::C]);
        // K cache reduces along C → intersects switch axes.
        assert_eq!(
            attn().global_reduce_axes(cq, Some(AttnOperand::KCache)),
            vec![Axis::C]
        );
        // V cache reduces along T → no intersection, concat only.
        assert_eq!(
            attn().global_reduce_axes(cq, Some(AttnOperand::VCache)),
            Vec::<Axis>::new()
        );
    }

    #[test]
    fn required_layouts_match_fig12() {
        assert_eq!(gemm().required_layout(), 2, "mma fragment");
        assert_eq!(
            ComputeOp::Gemv {
                n: 1,
                k: 1,
                batch: 1
            }
            .required_layout(),
            1
        );
        assert_eq!(attn().required_layout(), 1);
    }

    #[test]
    fn flops_and_sizes() {
        let g = ComputeOp::Gemm { m: 2, n: 3, k: 4 };
        assert_eq!(g.flops(), 48.0);
        assert_eq!(g.output_elems(), 6);
        assert_eq!(g.quantized_elems(), 12);

        let a = ComputeOp::attention_decode(2, 4, 8, 3);
        assert_eq!(a.quantized_elems(), 2 * 3 * 2 * 8 * 4);
        assert_eq!(a.output_elems(), 3 * 2 * 4);
    }

    #[test]
    fn tensor_core_usage() {
        assert!(gemm().uses_tensor_cores());
        assert!(!attn().uses_tensor_cores());
    }
}
