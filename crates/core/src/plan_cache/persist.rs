//! On-disk persistence of warmed plan caches.
//!
//! A long-running server warms its [`PlanCache`](super::PlanCache) with a
//! handful of canonical serving shapes at construction; persisting that
//! working set lets a restarted engine skip the cold-start planning pass
//! entirely. The vendored `serde` stand-in is derive-only (see
//! `vendor/README.md`), so this module carries its own small, versioned,
//! line-oriented text codec: one `(PlanKey, KernelPlan)` entry per line,
//! every field written as an explicit token, floats as IEEE-754 bit
//! patterns so a round trip is bitwise exact. Swapping in the real `serde`
//! later can replace the codec without touching the [`PlanCache`] API.
//!
//! The format is strict on read: any malformed token fails the whole load
//! with [`io::ErrorKind::InvalidData`] rather than silently dropping
//! entries, so a corrupt cache file is surfaced instead of masquerading as
//! a cold start.

use super::{PlanKey, PlanRequest};
use crate::cache::CachePlacement;
use crate::dataflow::DataflowPlan;
use crate::engine::{KernelPlan, OptLevel, Tiling};
use crate::fusion::FusionLevel;
use crate::ops::ComputeOp;
use std::io;
use std::sync::Arc;
use vqllm_vq::config::CodebookScope;
use vqllm_vq::VqConfig;

/// File header: magic + codec version. Bump the version on any token
/// change; `load_from` rejects files it does not understand. (v2 added
/// the mandatory checksum trailer line.)
pub const HEADER: &str = "vqllm-plan-cache v2";

/// Prefix of the mandatory final line: `checksum <16-hex FNV-1a64>` over
/// every preceding line (header and entries, each including its `\n`).
/// The strict line codec already rejects a cut *inside* a line, but a
/// truncation that falls exactly on a line boundary parses cleanly — the
/// trailer turns that silent data loss into `InvalidData` too.
pub const TRAILER_PREFIX: &str = "checksum ";

/// Incremental FNV-1a 64-bit (dependency-free; collision resistance is
/// plenty for catching truncation/corruption, not an integrity boundary).
pub fn fnv1a64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a 64-bit offset basis (the seed for [`fnv1a64`]).
pub const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

// --- encoding ---

/// Escapes a string into a single whitespace-free token. Every character
/// `split_ascii_whitespace` treats as a separator must be escaped —
/// space, tab, newline, carriage return, form feed, vertical tab — or a
/// hostile GPU identity would split into extra tokens and mis-parse the
/// rest of the line.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\x0c' => out.push_str("\\f"),
            '\x0b' => out.push_str("\\v"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(token: &str) -> Result<String, String> {
    let mut out = String::with_capacity(token.len());
    let mut chars = token.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('s') => out.push(' '),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('f') => out.push('\x0c'),
            Some('v') => out.push('\x0b'),
            other => return Err(format!("bad escape \\{other:?}")),
        }
    }
    Ok(out)
}

fn push_f64(out: &mut String, v: f64) {
    out.push_str(&format!(" {:016x}", v.to_bits()));
}

fn push_vq(out: &mut String, vq: &VqConfig) {
    out.push_str(&format!(
        " {} {} {}",
        vq.vector_size, vq.num_entries, vq.residuals
    ));
    match vq.scope {
        CodebookScope::PerTensor => out.push_str(" T"),
        CodebookScope::PerTile { rows, cols } => out.push_str(&format!(" L {rows} {cols}")),
        CodebookScope::PerChannelGroup { channels } => out.push_str(&format!(" G {channels}")),
    }
    out.push_str(&format!(
        " {} {}",
        if vq.lattice { 1 } else { 0 },
        vq.lattice_base
    ));
}

fn push_op(out: &mut String, op: &ComputeOp) {
    match *op {
        ComputeOp::Gemm { m, n, k } => out.push_str(&format!(" M {m} {n} {k}")),
        ComputeOp::Gemv { n, k, batch } => out.push_str(&format!(" V {n} {k} {batch}")),
        ComputeOp::AttentionDecode {
            batch,
            heads,
            head_dim,
            seq,
        } => out.push_str(&format!(" A {batch} {heads} {head_dim} {seq}")),
    }
}

fn opt_index(level: OptLevel) -> usize {
    OptLevel::ALL
        .iter()
        .position(|&l| l == level)
        .expect("level is in ALL")
}

/// Renders one cache entry as a single line (no trailing newline).
pub fn encode_entry(key: &PlanKey, plan: &KernelPlan) -> String {
    let mut out = escape(&key.gpu);
    push_vq(&mut out, &key.vq);
    push_op(&mut out, &key.op);
    match key.request {
        PlanRequest::Best => out.push_str(" B"),
        PlanRequest::At(level) => out.push_str(&format!(" @{}", opt_index(level))),
    }
    out.push_str(&format!(" {} {:016x}", key.num_hot, key.profile_tag));

    push_op(&mut out, &plan.op);
    push_vq(&mut out, &plan.vq);
    out.push_str(&format!(" {}", opt_index(plan.opt_level)));
    let t = &plan.tiling;
    out.push_str(&format!(
        " {} {} {} {} {} {} {}",
        t.threads,
        t.grid_blocks,
        t.smem_data_bytes,
        t.regs_per_thread,
        t.books_per_block,
        t.output_bytes_per_block,
        t.reduce_chunks
    ));
    out.push_str(&format!(
        " {} {}",
        plan.placement.n_reg, plan.placement.n_shared
    ));
    match plan.fusion {
        FusionLevel::Shared => out.push_str(" S"),
        FusionLevel::Register { shuffles } => out.push_str(&format!(" R {shuffles}")),
    }
    let d = &plan.dataflow;
    out.push_str(&format!(
        " {} {}",
        d.split_factor,
        if d.needs_global_reduce { 1 } else { 0 }
    ));
    push_f64(&mut out, d.codebook_traffic_bytes);
    push_f64(&mut out, d.reduce_traffic_bytes);
    push_f64(&mut out, d.redundant_compute_factor);
    out.push_str(&format!(
        " {} {} {}",
        plan.books_per_block, plan.smem_codebook_bytes, plan.extra_regs_per_thread
    ));
    out
}

// --- decoding ---

/// Whitespace token cursor with contextual errors.
struct Tokens<'a> {
    iter: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> Tokens<'a> {
    fn new(line: &'a str) -> Self {
        Tokens {
            iter: line.split_ascii_whitespace(),
        }
    }

    fn next(&mut self, what: &str) -> Result<&'a str, String> {
        self.iter.next().ok_or_else(|| format!("missing {what}"))
    }

    fn usize(&mut self, what: &str) -> Result<usize, String> {
        self.next(what)?
            .parse()
            .map_err(|e| format!("bad {what}: {e}"))
    }

    fn bool(&mut self, what: &str) -> Result<bool, String> {
        match self.next(what)? {
            "0" => Ok(false),
            "1" => Ok(true),
            other => Err(format!("bad {what}: {other}")),
        }
    }

    fn u64_hex(&mut self, what: &str) -> Result<u64, String> {
        u64::from_str_radix(self.next(what)?, 16).map_err(|e| format!("bad {what}: {e}"))
    }

    fn f64(&mut self, what: &str) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64_hex(what)?))
    }

    fn vq(&mut self) -> Result<VqConfig, String> {
        let vector_size = self.usize("vq.vector_size")?;
        let num_entries = self.usize("vq.num_entries")?;
        let residuals = self.usize("vq.residuals")?;
        let scope = match self.next("vq.scope")? {
            "T" => CodebookScope::PerTensor,
            "L" => CodebookScope::PerTile {
                rows: self.usize("vq.scope.rows")?,
                cols: self.usize("vq.scope.cols")?,
            },
            "G" => CodebookScope::PerChannelGroup {
                channels: self.usize("vq.scope.channels")?,
            },
            other => return Err(format!("bad vq.scope: {other}")),
        };
        let lattice = self.bool("vq.lattice")?;
        let lattice_base = self.usize("vq.lattice_base")?;
        Ok(VqConfig {
            vector_size,
            num_entries,
            residuals,
            scope,
            lattice,
            lattice_base,
        })
    }

    fn op(&mut self) -> Result<ComputeOp, String> {
        match self.next("op.kind")? {
            "M" => Ok(ComputeOp::Gemm {
                m: self.usize("op.m")?,
                n: self.usize("op.n")?,
                k: self.usize("op.k")?,
            }),
            "V" => Ok(ComputeOp::Gemv {
                n: self.usize("op.n")?,
                k: self.usize("op.k")?,
                batch: self.usize("op.batch")?,
            }),
            "A" => Ok(ComputeOp::AttentionDecode {
                batch: self.usize("op.batch")?,
                heads: self.usize("op.heads")?,
                head_dim: self.usize("op.head_dim")?,
                seq: self.usize("op.seq")?,
            }),
            other => Err(format!("bad op.kind: {other}")),
        }
    }

    fn opt_level(&mut self, what: &str) -> Result<OptLevel, String> {
        let idx = self.usize(what)?;
        OptLevel::ALL
            .get(idx)
            .copied()
            .ok_or_else(|| format!("bad {what}: index {idx}"))
    }
}

/// Parses one line previously rendered by [`encode_entry`].
pub fn decode_entry(line: &str) -> Result<(PlanKey, KernelPlan), String> {
    let mut t = Tokens::new(line);
    let gpu: Arc<str> = unescape(t.next("gpu identity")?)?.into();
    let key_vq = t.vq()?;
    let key_op = t.op()?;
    let request = match t.next("request")? {
        "B" => PlanRequest::Best,
        at if at.starts_with('@') => {
            let idx: usize = at[1..].parse().map_err(|e| format!("bad request: {e}"))?;
            PlanRequest::At(
                OptLevel::ALL
                    .get(idx)
                    .copied()
                    .ok_or_else(|| format!("bad request level {idx}"))?,
            )
        }
        other => return Err(format!("bad request: {other}")),
    };
    let num_hot = t.usize("num_hot")?;
    let profile_tag = t.u64_hex("profile_tag")?;
    let key = PlanKey {
        gpu,
        vq: key_vq,
        op: key_op,
        request,
        num_hot,
        profile_tag,
    };

    let op = t.op()?;
    let vq = t.vq()?;
    let opt_level = t.opt_level("opt_level")?;
    let tiling = Tiling {
        threads: t.usize("tiling.threads")?,
        grid_blocks: t.usize("tiling.grid_blocks")?,
        smem_data_bytes: t.usize("tiling.smem_data_bytes")?,
        regs_per_thread: t.usize("tiling.regs_per_thread")?,
        books_per_block: t.usize("tiling.books_per_block")?,
        output_bytes_per_block: t.usize("tiling.output_bytes_per_block")?,
        reduce_chunks: t.usize("tiling.reduce_chunks")?,
    };
    let placement = CachePlacement {
        n_reg: t.usize("placement.n_reg")?,
        n_shared: t.usize("placement.n_shared")?,
    };
    let fusion = match t.next("fusion")? {
        "S" => FusionLevel::Shared,
        "R" => FusionLevel::Register {
            shuffles: t.usize("fusion.shuffles")?,
        },
        other => return Err(format!("bad fusion: {other}")),
    };
    let dataflow = DataflowPlan {
        split_factor: t.usize("dataflow.split_factor")?,
        needs_global_reduce: t.bool("dataflow.needs_global_reduce")?,
        codebook_traffic_bytes: t.f64("dataflow.codebook_traffic_bytes")?,
        reduce_traffic_bytes: t.f64("dataflow.reduce_traffic_bytes")?,
        redundant_compute_factor: t.f64("dataflow.redundant_compute_factor")?,
    };
    let plan = KernelPlan {
        op,
        vq,
        opt_level,
        tiling,
        placement,
        fusion,
        dataflow,
        books_per_block: t.usize("books_per_block")?,
        smem_codebook_bytes: t.usize("smem_codebook_bytes")?,
        extra_regs_per_thread: t.usize("extra_regs_per_thread")?,
    };
    if t.iter.next().is_some() {
        return Err("trailing tokens after entry".to_string());
    }
    Ok((key, plan))
}

pub(super) fn invalid_data(detail: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_hostile_strings() {
        for s in [
            "GpuSpec { name: \"RTX 4090\", sms: 128 }",
            "tabs\tand\nnewlines\\and \\s literals",
            "crlf\r\nand form\x0cfeed and vtab\x0b",
            "",
        ] {
            let token = escape(s);
            assert!(
                !token.contains(char::is_whitespace),
                "escaped token {token:?} still has whitespace"
            );
            assert_eq!(unescape(&token).unwrap(), s);
        }
    }
}
