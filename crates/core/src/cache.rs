//! The codebook cache (paper §V).
//!
//! A software-managed cache that spreads codebook entries across the GPU
//! memory hierarchy by access frequency:
//!
//! * entries hotter than µ+3σ → thread-local **registers** (no banks, no
//!   conflicts);
//! * entries above the mean → **shared memory**;
//! * cold entries → left in **global memory**.
//!
//! The implementation is the paper's *reorder-based static mapping*: sort
//! entries by descending profiled frequency, rewrite the quantized indices
//! against the new order, and resolve an access with two integer compares
//! against the `n_reg` / `n_shared` boundaries — no tags, no lookup table,
//! no eviction policy.
//!
//! Boundary *sizes* come from resource **slack** (paper Fig. 10): the
//! shared memory and registers a block can consume without lowering its
//! SM residency, divided by the entry size.

use serde::{Deserialize, Serialize};
use vqllm_gpu::occupancy::{BlockResources, Occupancy};
use vqllm_gpu::GpuSpec;
use vqllm_vq::stats::AccessHistogram;
use vqllm_vq::Codebook;

/// Where an entry is served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheLevel {
    /// Thread-local registers (hot entries).
    Register,
    /// Shared memory (medium entries).
    Shared,
    /// Global memory (cold entries).
    Global,
}

/// The two boundaries of the reorder-based static mapping: reordered ids
/// `< n_reg` live in registers, `< n_shared` in shared memory, the rest in
/// global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CachePlacement {
    /// First boundary: entries `[0, n_reg)` are register-resident.
    pub n_reg: usize,
    /// Second boundary: entries `[n_reg, n_shared)` are shared-resident.
    pub n_shared: usize,
}

impl CachePlacement {
    /// Everything in global memory (the GC baseline).
    pub fn global_only() -> Self {
        CachePlacement {
            n_reg: 0,
            n_shared: 0,
        }
    }

    /// Everything in shared memory (the greedy SC baseline), up to
    /// `stored` entries.
    pub fn all_shared(stored: usize) -> Self {
        CachePlacement {
            n_reg: 0,
            n_shared: stored,
        }
    }

    /// The paper's adaptive placement: boundaries = slack ÷ entry size,
    /// with the register boundary additionally capped by the number of
    /// profiled hot entries (caching lukewarm entries in registers buys
    /// nothing and burns slack).
    pub fn from_slack(
        stored: usize,
        entry_bytes: usize,
        smem_slack_bytes: usize,
        reg_slack_bytes_per_thread: usize,
        num_hot: usize,
        use_registers: bool,
    ) -> Self {
        let n_reg = if use_registers {
            (reg_slack_bytes_per_thread / entry_bytes.max(1))
                .min(num_hot)
                .min(stored)
        } else {
            0
        };
        let n_shared_extra = (smem_slack_bytes / entry_bytes.max(1)).min(stored - n_reg);
        CachePlacement {
            n_reg,
            n_shared: n_reg + n_shared_extra,
        }
    }

    /// Level of reordered entry `new_id` under these boundaries — the two
    /// index comparisons of the paper's runtime dequantization.
    pub fn level_of(&self, new_id: usize) -> CacheLevel {
        if new_id < self.n_reg {
            CacheLevel::Register
        } else if new_id < self.n_shared {
            CacheLevel::Shared
        } else {
            CacheLevel::Global
        }
    }

    /// Shared-memory bytes the placement consumes.
    pub fn smem_bytes(&self, entry_bytes: usize) -> usize {
        (self.n_shared - self.n_reg) * entry_bytes
    }

    /// Register bytes per thread the placement consumes.
    pub fn reg_bytes_per_thread(&self, entry_bytes: usize) -> usize {
        self.n_reg * entry_bytes
    }
}

/// Resource slack available to the codebook cache (paper Fig. 10's blue
/// region), derived from the occupancy analysis of the *compute* block
/// shape before any codebook is placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheBudget {
    /// Shared-memory bytes consumable for free.
    pub smem_slack_bytes: usize,
    /// Register bytes per thread consumable for free.
    pub reg_slack_bytes_per_thread: usize,
}

impl CacheBudget {
    /// Strict budget: slack at the *current* residency (no occupancy loss
    /// whatsoever).
    pub fn from_occupancy(gpu: &GpuSpec, block: &BlockResources) -> Self {
        let occ = Occupancy::analyze(gpu, block);
        CacheBudget {
            smem_slack_bytes: occ.smem_slack_bytes,
            reg_slack_bytes_per_thread: occ.reg_slack_per_thread * 4,
        }
    }

    /// The paper's Fig. 10 budget: slack measured against the *most
    /// performant* residency (the circle marker), not the maximum one.
    /// Throughput saturates once enough warps are resident to hide memory
    /// latency; any blocks beyond that are free to trade for codebook
    /// space.
    pub fn performance_slack(gpu: &GpuSpec, block: &BlockResources) -> Self {
        let occ = Occupancy::analyze(gpu, block);
        if occ.blocks_per_sm == 0 {
            return CacheBudget {
                smem_slack_bytes: 0,
                reg_slack_bytes_per_thread: 0,
            };
        }
        let warps_per_block = block.threads.div_ceil(32).max(1);
        let blocks_needed = (gpu.warps_to_hide_memory.ceil() as usize)
            .div_ceil(warps_per_block)
            .clamp(1, occ.blocks_per_sm);

        let smem_budget = (gpu.smem_per_sm / blocks_needed).min(gpu.max_smem_per_block);
        let smem_slack_bytes = smem_budget.saturating_sub(block.smem_bytes);

        let regs_per_warp_budget = gpu.regs_per_sm / (blocks_needed * warps_per_block);
        let regs_per_thread_budget =
            regs_per_warp_budget / gpu.reg_alloc_granularity * gpu.reg_alloc_granularity / 32;
        // CUDA caps a thread at 255 registers.
        let regs_per_thread_budget = regs_per_thread_budget.min(255);
        let reg_slack = regs_per_thread_budget.saturating_sub(block.regs_per_thread);

        CacheBudget {
            smem_slack_bytes,
            reg_slack_bytes_per_thread: reg_slack * 4,
        }
    }
}

/// A loaded codebook cache: the frequency-reordered codebook plus the
/// old→new index remap and the placement boundaries.
///
/// This is the `Load` / `Access` surface of the paper's §V-C API; `Switch`
/// is represented by constructing a cache per scope and swapping between
/// them (the kernels account the reload traffic).
#[derive(Debug, Clone)]
pub struct CodebookCache {
    book: Codebook,
    remap: Vec<u32>,
    placement: CachePlacement,
}

impl CodebookCache {
    /// `Load`: reorders `book` by the descending frequencies in `hist` and
    /// installs `placement` boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `hist` does not cover exactly the book's stored entries.
    pub fn load(book: &Codebook, hist: &AccessHistogram, placement: CachePlacement) -> Self {
        assert_eq!(
            hist.counts().len(),
            book.stored_entries(),
            "histogram must cover the codebook"
        );
        let perm = hist.sort_permutation(); // new position -> old id
        let mut remap = vec![0u32; perm.len()]; // old id -> new id
        for (new_pos, &old_id) in perm.iter().enumerate() {
            remap[old_id as usize] = new_pos as u32;
        }
        CodebookCache {
            book: book.reordered(&perm),
            remap,
            placement,
        }
    }

    /// `Access`: materializes the entry for an *original* logical id into
    /// `out` and reports which memory level served it.
    ///
    /// For lattice books only the stored (base) part of the id is remapped;
    /// the sign bits pass through untouched.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != vector_size` or the id is out of range.
    pub fn access(&self, old_logical_id: u32, out: &mut [f32]) -> CacheLevel {
        let old_stored = self.book.stored_id_of(old_logical_id);
        let new_stored = self.remap[old_stored as usize];
        let new_logical = if self.book.is_lattice() {
            let sign_shift = self.book.stored_entries().trailing_zeros();
            (old_logical_id >> sign_shift) << sign_shift | new_stored
        } else {
            new_stored
        };
        self.book.lookup(new_logical, out);
        self.placement.level_of(new_stored as usize)
    }

    /// Level the (original) logical id would be served from, without
    /// materializing it.
    pub fn level_of(&self, old_logical_id: u32) -> CacheLevel {
        let old_stored = self.book.stored_id_of(old_logical_id);
        self.placement
            .level_of(self.remap[old_stored as usize] as usize)
    }

    /// The reordered codebook (what a generated kernel embeds).
    pub fn reordered_book(&self) -> &Codebook {
        &self.book
    }

    /// The old→new stored-id remap (what the quantized indices are
    /// rewritten with).
    pub fn remap(&self) -> &[u32] {
        &self.remap
    }

    /// Placement boundaries.
    pub fn placement(&self) -> CachePlacement {
        self.placement
    }

    /// Entry size in FP16 bytes.
    pub fn entry_bytes(&self) -> usize {
        self.book.vector_size() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqllm_vq::stats::AccessHistogram;

    fn book() -> Codebook {
        // 8 entries × 2 dims, entry i = [i, -i].
        Codebook::new(
            (0..8).flat_map(|i| [i as f32, -(i as f32)]).collect(),
            2,
            false,
        )
        .unwrap()
    }

    fn hist() -> AccessHistogram {
        // Entry 5 hottest, then 2, then 7; rest cold.
        AccessHistogram::from_counts(vec![1, 0, 50, 2, 3, 100, 1, 20])
    }

    #[test]
    fn placement_boundaries_partition() {
        let p = CachePlacement {
            n_reg: 2,
            n_shared: 5,
        };
        assert_eq!(p.level_of(0), CacheLevel::Register);
        assert_eq!(p.level_of(1), CacheLevel::Register);
        assert_eq!(p.level_of(2), CacheLevel::Shared);
        assert_eq!(p.level_of(4), CacheLevel::Shared);
        assert_eq!(p.level_of(5), CacheLevel::Global);
        assert_eq!(p.smem_bytes(4), 12);
        assert_eq!(p.reg_bytes_per_thread(4), 8);
    }

    #[test]
    fn from_slack_respects_hot_cap_and_budget() {
        // 16-byte entries, 64 B smem slack → 4 shared entries; 64 B reg
        // slack → 4, but only 2 hot.
        let p = CachePlacement::from_slack(32, 16, 64, 64, 2, true);
        assert_eq!(p.n_reg, 2);
        assert_eq!(p.n_shared, 2 + 4);
        let p = CachePlacement::from_slack(32, 16, 64, 64, 2, false);
        assert_eq!(p.n_reg, 0);
    }

    #[test]
    fn from_slack_never_exceeds_stored() {
        let p = CachePlacement::from_slack(4, 2, 1 << 20, 1 << 20, 100, true);
        assert_eq!(p.n_reg, 4);
        assert_eq!(p.n_shared, 4);
    }

    #[test]
    fn access_returns_same_values_as_uncached_book() {
        let b = book();
        let cache = CodebookCache::load(
            &b,
            &hist(),
            CachePlacement {
                n_reg: 1,
                n_shared: 4,
            },
        );
        let mut got = [0.0f32; 2];
        let mut want = [0.0f32; 2];
        for id in 0..8u32 {
            b.lookup(id, &mut want);
            cache.access(id, &mut got);
            assert_eq!(got, want, "entry {id} must survive reordering");
        }
    }

    #[test]
    fn hottest_entry_is_register_resident() {
        let cache = CodebookCache::load(
            &book(),
            &hist(),
            CachePlacement {
                n_reg: 1,
                n_shared: 4,
            },
        );
        // Entry 5 has the top count → new id 0 → register.
        assert_eq!(cache.level_of(5), CacheLevel::Register);
        // Entry 2 is second → shared.
        assert_eq!(cache.level_of(2), CacheLevel::Shared);
        // Entry 1 (count 0) is last → global.
        assert_eq!(cache.level_of(1), CacheLevel::Global);
    }

    #[test]
    fn gc_and_sc_extremes() {
        let gc = CodebookCache::load(&book(), &hist(), CachePlacement::global_only());
        let sc = CodebookCache::load(&book(), &hist(), CachePlacement::all_shared(8));
        for id in 0..8u32 {
            assert_eq!(gc.level_of(id), CacheLevel::Global);
            assert_eq!(sc.level_of(id), CacheLevel::Shared);
        }
    }

    #[test]
    fn lattice_ids_remap_base_only() {
        // 4 stored entries × 2 dims, lattice.
        let b = Codebook::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], 2, true).unwrap();
        let h = AccessHistogram::from_counts(vec![5, 100, 1, 2]);
        let cache = CodebookCache::load(
            &b,
            &h,
            CachePlacement {
                n_reg: 1,
                n_shared: 2,
            },
        );
        // Logical id: signs(0b01) << 2 | base 1 → entry [−3, 4].
        let mut got = [0.0f32; 2];
        let lvl = cache.access(0b01_01, &mut got);
        assert_eq!(got, [-3.0, 4.0]);
        // Base 1 is the hottest → register, regardless of sign bits.
        assert_eq!(lvl, CacheLevel::Register);
    }

    #[test]
    fn budget_reads_occupancy_slack() {
        let gpu = GpuSpec::rtx4090();
        // 18 KB of data staging: 5 blocks fit per 100 KB SM, leaving 2 KB
        // of shared-memory slack per block.
        let b = CacheBudget::from_occupancy(&gpu, &BlockResources::new(256, 32, 18 * 1024));
        assert!(b.smem_slack_bytes > 0);
        assert!(b.reg_slack_bytes_per_thread > 0);
    }
}
