//! The VQ-LLM framework core — the paper's contribution.
//!
//! VQ-LLM generates high-performance fused dequantize-and-compute kernels
//! for vector-quantized LLM inference. The framework has two halves
//! (paper Fig. 7):
//!
//! * the **codebook cache** ([`cache`]): a software-managed, profile-driven
//!   placement of codebook entries across registers / shared memory /
//!   global memory, realized as a reorder-based static mapping with two
//!   boundaries (`n_reg`, `n_shared`) sized from resource *slack*;
//! * the **codebook-based compute engine** ([`dataflow`], [`fusion`],
//!   [`engine`]): a codebook-centric dataflow that eliminates duplicated
//!   codebook loads (with an adaptive split factor balancing global
//!   reduction traffic against codebook traffic), and hierarchical fusion
//!   that rearranges dequantized data in registers via warp shuffles when
//!   fewer than five shuffles suffice.
//!
//! [`engine::KernelPlanner`] assembles all adaptive decisions into a
//! [`engine::KernelPlan`]; [`codegen::emit`] renders the CUDA-like source a
//! GPU backend would compile, and `vqllm-kernels` executes plans against
//! the performance-model substrate.
//!
//! # Example
//!
//! ```
//! use vqllm_core::{ComputeOp, KernelPlanner};
//! use vqllm_gpu::GpuSpec;
//! use vqllm_vq::VqAlgorithm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let planner = KernelPlanner::new(GpuSpec::rtx4090());
//! let plan = planner.plan(
//!     &VqAlgorithm::Cq2.config(),
//!     &ComputeOp::attention_decode(32, 128, 1024, 1),
//! )?;
//! println!("{}", plan.describe());
//! println!("{}", vqllm_core::codegen::emit(&plan));
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod codegen;
pub mod dataflow;
pub mod engine;
pub mod failpoint;
pub mod fusion;
pub mod ops;
pub mod plan_cache;

pub use cache::{CacheBudget, CacheLevel, CachePlacement, CodebookCache};
pub use dataflow::{optimal_split_factor, DataflowPlan};
pub use engine::{KernelPlan, KernelPlanner, OptLevel, ProfileSummary, Tiling};
pub use fusion::{FusionLevel, ThreadMapping, SHUFFLE_THRESHOLD};
pub use ops::{AttnOperand, Axis, ComputeOp};
pub use plan_cache::{CacheStats, PlanCache, PlanKey, PlanRequest};

/// Full planning context of an unplannable request, so callers can report
/// (and programmatically react to) exactly which request overflowed which
/// budget.
#[derive(Debug, Clone, PartialEq)]
pub struct Unplannable {
    /// Why planning failed.
    pub what: &'static str,
    /// The computation being planned.
    pub op: ComputeOp,
    /// The VQ configuration being fused.
    pub vq: vqllm_vq::VqConfig,
    /// The optimization level requested.
    pub opt_level: OptLevel,
    /// The target device's name.
    pub gpu: String,
    /// Block resources of the rejected configuration.
    pub resources: vqllm_gpu::BlockResources,
}

/// Error type for planning failures.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// No launchable configuration exists for the request (boxed: the
    /// context is large and the `Ok` path is hot).
    Unplannable(Box<Unplannable>),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Unplannable(u) => write!(
                f,
                "unplannable kernel: {} ({} ⊕ {} at {} on {}: \
                 {} threads, {} regs/thread, {} B smem per block)",
                u.what,
                u.vq.descriptor(),
                u.op,
                u.opt_level,
                u.gpu,
                u.resources.threads,
                u.resources.regs_per_thread,
                u.resources.smem_bytes,
            ),
        }
    }
}

impl std::error::Error for CoreError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
