//! Memoizing kernel-plan cache.
//!
//! Running Alg. 2 (baseline tiling → cache placement → dataflow → fusion)
//! is cheap once, but the serving hot path asks for the *same* plan over
//! and over: every decode step of every layer of every request re-plans
//! the identical `(GpuSpec, VqConfig, ComputeOp)` triple. [`PlanCache`]
//! memoizes finished [`KernelPlan`]s behind an [`Arc`] so repeated lookups
//! are a hash probe instead of a full planning pass, and so every consumer
//! shares one plan instance (pointer equality holds across hits).
//!
//! The cache is internally synchronized: lookups take `&self`, so one
//! cache can be shared across threads (`Arc<PlanCache>`) by a batching
//! server.
//!
//! Two sizing caveats for long-running servers:
//!
//! * the key is *exact* — [`ComputeOp::AttentionDecode`] includes `seq`,
//!   so planning a fresh op per generated token creates a fresh entry per
//!   token. Plan at representative sequence lengths (as
//!   `vqllm_llm::Pipeline` does) rather than per-token ones;
//! * the cache is bounded ([`PlanCache::with_capacity_limit`], default
//!   4096 entries). On overflow it evicts one arbitrary entry per insert,
//!   so memory stays bounded even under per-token keys while the hot
//!   working set survives mostly intact.

use crate::engine::{KernelPlan, OptLevel, ProfileSummary};
use crate::ops::ComputeOp;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use vqllm_gpu::GpuSpec;
use vqllm_vq::VqConfig;

pub mod persist;

/// What kind of plan a key asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanRequest {
    /// A plan at one fixed rung of the optimization ladder.
    At(OptLevel),
    /// The adaptive best-performing plan (the paper's shipped framework:
    /// every rung is tried and the fastest estimate wins).
    Best,
}

/// Full-spec GPU identity for [`PlanKey`]s: the complete [`Debug`]
/// rendering, so two specs that differ in any modelled parameter never
/// alias. Compute it once per device (`Session`/`Pipeline` do this at
/// construction) and reuse it via [`PlanKey::with_identity`] — rendering
/// it per lookup would put string formatting on the hot path the cache
/// exists to shorten.
pub fn gpu_identity(gpu: &GpuSpec) -> Arc<str> {
    format!("{gpu:?}").into()
}

/// Cache key: everything a plan deterministically depends on.
///
/// For [`PlanRequest::Best`] the winning rung also depends on the access
/// distribution used for estimation — callers must stamp a fingerprint of
/// that distribution via [`PlanKey::with_profile_tag`] (the `Session` and
/// `Pipeline` front ends do), or two different profiles with the same
/// `num_hot` would alias to one cached decision.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    gpu: Arc<str>,
    vq: VqConfig,
    op: ComputeOp,
    request: PlanRequest,
    num_hot: usize,
    profile_tag: u64,
}

impl PlanKey {
    /// Builds the key for planning `op` under `vq` on `gpu`, rendering the
    /// GPU identity on the spot. Prefer [`PlanKey::with_identity`] with a
    /// precomputed [`gpu_identity`] on hot paths.
    pub fn new(
        gpu: &GpuSpec,
        vq: &VqConfig,
        op: &ComputeOp,
        request: PlanRequest,
        profile: &ProfileSummary,
    ) -> Self {
        PlanKey::with_identity(gpu_identity(gpu), vq, op, request, profile)
    }

    /// Builds the key from a precomputed [`gpu_identity`] (cheap: the
    /// identity is reference-counted, not re-rendered).
    pub fn with_identity(
        gpu: Arc<str>,
        vq: &VqConfig,
        op: &ComputeOp,
        request: PlanRequest,
        profile: &ProfileSummary,
    ) -> Self {
        PlanKey {
            gpu,
            vq: *vq,
            op: *op,
            request,
            num_hot: profile.num_hot,
            profile_tag: 0,
        }
    }

    /// Stamps a fingerprint of the estimation-time access distribution
    /// (e.g. `AccessProfile::fingerprint()`). Required for correctness of
    /// [`PlanRequest::Best`] keys whenever a non-default profile is used.
    #[must_use]
    pub fn with_profile_tag(mut self, tag: u64) -> Self {
        self.profile_tag = tag;
        self
    }

    /// The canonical [`PlanRequest::Best`] key: default profile summary
    /// plus the estimation profile's fingerprint. Every front end
    /// (`Session`, `Pipeline`) must build Best keys through this one
    /// recipe so they share cache entries for the same request.
    pub fn best(gpu: Arc<str>, vq: &VqConfig, op: &ComputeOp, profile_tag: u64) -> Self {
        PlanKey::with_identity(
            gpu,
            vq,
            op,
            PlanRequest::Best,
            &ProfileSummary::default_for(vq),
        )
        .with_profile_tag(profile_tag)
    }

    /// The canonical [`PlanRequest::Best`] key under a **measured**
    /// profile: the measured summary's hot-entry count plus the estimation
    /// profile's fingerprint. [`PlanKey::best`] is the default-profile
    /// specialization of this recipe; every front end that plans with
    /// measured feedback (the engine's per-context canonical plans) must
    /// build its keys here so siblings measuring the same tensors share
    /// cache entries.
    pub fn best_profiled(
        gpu: Arc<str>,
        vq: &VqConfig,
        op: &ComputeOp,
        summary: &ProfileSummary,
        profile_tag: u64,
    ) -> Self {
        PlanKey::with_identity(gpu, vq, op, PlanRequest::Best, summary)
            .with_profile_tag(profile_tag)
    }

    /// The request kind this key encodes.
    pub fn request(&self) -> PlanRequest {
        self.request
    }
}

/// Hit/miss counters, cheap to copy out for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the planner.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Default bound on cached plans (see [`PlanCache::with_capacity_limit`]).
pub const DEFAULT_CAPACITY_LIMIT: usize = 4096;

/// A memoizing, thread-safe, bounded cache of finished kernel plans.
#[derive(Debug)]
pub struct PlanCache {
    map: Mutex<HashMap<PlanKey, Arc<KernelPlan>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity_limit(DEFAULT_CAPACITY_LIMIT)
    }
}

impl PlanCache {
    /// Creates an empty cache bounded at [`DEFAULT_CAPACITY_LIMIT`] plans.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Creates an empty cache holding at most `limit` plans. Inserting
    /// past the limit evicts one arbitrary entry (outstanding `Arc`s stay
    /// valid), keeping memory bounded under adversarial key streams —
    /// such as one attention op per token — without wiping the shared hot
    /// working set.
    pub fn with_capacity_limit(limit: usize) -> Self {
        PlanCache {
            map: Mutex::new(HashMap::new()),
            capacity: limit.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured capacity limit.
    pub fn capacity_limit(&self) -> usize {
        self.capacity
    }

    /// Looks `key` up without planning; does not touch the counters.
    pub fn peek(&self, key: &PlanKey) -> Option<Arc<KernelPlan>> {
        self.map
            .lock()
            .expect("plan cache poisoned")
            .get(key)
            .cloned()
    }

    /// Returns the cached plan for `key`, or runs `plan` and caches its
    /// result. Errors from `plan` are returned as-is and nothing is
    /// cached, so a transiently unplannable request can be retried.
    pub fn get_or_try_insert_with<E>(
        &self,
        key: PlanKey,
        plan: impl FnOnce() -> Result<KernelPlan, E>,
    ) -> Result<Arc<KernelPlan>, E> {
        if let Some(hit) = self.peek(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        // Plan outside the lock: planning is pure and keyed, so two racing
        // threads at worst both plan once and one insert wins.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(plan()?);
        let mut map = self.map.lock().expect("plan cache poisoned");
        Self::evict_if_full(&mut map, &key, self.capacity);
        Ok(Arc::clone(map.entry(key).or_insert(fresh)))
    }

    /// The shared capacity policy of every insert path: at the bound, one
    /// arbitrary entry makes room for a *new* key (see
    /// [`PlanCache::with_capacity_limit`]).
    fn evict_if_full(map: &mut HashMap<PlanKey, Arc<KernelPlan>>, key: &PlanKey, capacity: usize) {
        if map.len() >= capacity && !map.contains_key(key) {
            if let Some(victim) = map.keys().next().cloned() {
                map.remove(&victim);
            }
        }
    }

    /// Removes the entry for `key`, returning whether one was cached.
    /// Outstanding `Arc`s to the evicted plan stay valid; the next lookup
    /// for the key re-plans. This is the profile-feedback seam: when a
    /// context's measured access distribution shifts, its canonical plan
    /// keys are invalidated and replanned under the new profile.
    pub fn invalidate(&self, key: &PlanKey) -> bool {
        self.map
            .lock()
            .expect("plan cache poisoned")
            .remove(key)
            .is_some()
    }

    /// Inserts a plan directly (used by [`PlanCache::load_from`] and by
    /// tests seeding a cache); respects the capacity bound like a planned
    /// insert and keeps an existing entry for the key.
    pub fn insert(&self, key: PlanKey, plan: KernelPlan) {
        let mut map = self.map.lock().expect("plan cache poisoned");
        Self::evict_if_full(&mut map, &key, self.capacity);
        map.entry(key).or_insert_with(|| Arc::new(plan));
    }

    /// Snapshot of every cached `(key, plan)` pair, in unspecified order.
    pub fn snapshot(&self) -> Vec<(PlanKey, Arc<KernelPlan>)> {
        self.map
            .lock()
            .expect("plan cache poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Writes every cached entry to `path` in the versioned text format of
    /// [`persist`] (sorted by rendered line, so identical caches produce
    /// identical files), terminated by a checksum trailer line covering
    /// everything before it. Returns the number of entries written.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be written.
    pub fn save_to(&self, path: impl AsRef<Path>) -> io::Result<usize> {
        let mut lines: Vec<String> = self
            .snapshot()
            .iter()
            .map(|(k, p)| persist::encode_entry(k, p))
            .collect();
        lines.sort_unstable();
        let mut out = String::with_capacity(lines.len() * 128 + 64);
        out.push_str(persist::HEADER);
        out.push('\n');
        for line in &lines {
            out.push_str(line);
            out.push('\n');
        }
        let sum = persist::fnv1a64(persist::FNV_SEED, out.as_bytes());
        out.push_str(&format!("{}{sum:016x}\n", persist::TRAILER_PREFIX));
        std::fs::write(path, out)?;
        Ok(lines.len())
    }

    /// Loads entries from a file written by [`PlanCache::save_to`] into
    /// this cache (existing entries for a key win; the capacity bound
    /// applies). Returns the number of entries read.
    ///
    /// The read is strict: a bad header or any malformed entry fails with
    /// [`io::ErrorKind::InvalidData`] so a corrupt warm-start file is
    /// surfaced instead of silently loading as partial or empty.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (including a missing file — probe
    /// with `Path::exists` to treat that as a cold start) or
    /// `InvalidData` on a version/format mismatch.
    pub fn load_from(&self, path: impl AsRef<Path>) -> io::Result<usize> {
        let text = std::fs::read_to_string(path)?;
        let mut lines = text.lines();
        match lines.next() {
            Some(persist::HEADER) => {}
            other => {
                return Err(persist::invalid_data(format!(
                    "expected header {:?}, found {other:?}",
                    persist::HEADER
                )));
            }
        }
        // Decode fully before touching the cache: a corrupt line midway
        // through the file must not leave a shared cache partially
        // mutated behind the InvalidData error. The running hash covers
        // every line before the trailer exactly as written, so the
        // trailer also catches truncation on a line boundary (which the
        // per-line codec alone would accept).
        let mut hash = persist::fnv1a64(persist::FNV_SEED, persist::HEADER.as_bytes());
        hash = persist::fnv1a64(hash, b"\n");
        let mut entries = Vec::new();
        let mut trailer: Option<&str> = None;
        for (idx, line) in lines.enumerate() {
            if trailer.is_some() {
                return Err(persist::invalid_data(format!(
                    "entry {} after checksum trailer",
                    idx + 1
                )));
            }
            if let Some(sum) = line.strip_prefix(persist::TRAILER_PREFIX) {
                trailer = Some(sum);
                continue;
            }
            hash = persist::fnv1a64(hash, line.as_bytes());
            hash = persist::fnv1a64(hash, b"\n");
            if line.is_empty() {
                continue;
            }
            let entry = persist::decode_entry(line)
                .map_err(|e| persist::invalid_data(format!("entry {}: {e}", idx + 1)))?;
            entries.push(entry);
        }
        match trailer {
            None => {
                return Err(persist::invalid_data(
                    "missing checksum trailer (file truncated?)".to_string(),
                ));
            }
            Some(sum) => {
                let expect = u64::from_str_radix(sum.trim(), 16)
                    .map_err(|e| persist::invalid_data(format!("bad checksum trailer: {e}")))?;
                if expect != hash {
                    return Err(persist::invalid_data(format!(
                        "checksum mismatch: file says {expect:016x}, content hashes to \
                         {hash:016x}"
                    )));
                }
            }
        }
        let loaded = entries.len();
        for (key, plan) in entries {
            self.insert(key, plan);
        }
        Ok(loaded)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.lock().expect("plan cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached plan and zeroes the counters.
    pub fn clear(&self) {
        self.map.lock().expect("plan cache poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::KernelPlanner;
    use vqllm_vq::VqAlgorithm;

    fn key(algo: VqAlgorithm, level: OptLevel) -> PlanKey {
        let vq = algo.config();
        PlanKey::new(
            &GpuSpec::rtx4090(),
            &vq,
            &ComputeOp::attention_decode(32, 128, 1024, 1),
            PlanRequest::At(level),
            &ProfileSummary::default_for(&vq),
        )
    }

    fn plan(algo: VqAlgorithm, level: OptLevel) -> KernelPlan {
        let vq = algo.config();
        KernelPlanner::new(GpuSpec::rtx4090())
            .plan_at(
                &vq,
                &ComputeOp::attention_decode(32, 128, 1024, 1),
                level,
                &ProfileSummary::default_for(&vq),
            )
            .unwrap()
    }

    #[test]
    fn same_key_hits_and_is_pointer_equal() {
        let cache = PlanCache::new();
        let a = cache
            .get_or_try_insert_with::<()>(key(VqAlgorithm::Cq2, OptLevel::O2), || {
                Ok(plan(VqAlgorithm::Cq2, OptLevel::O2))
            })
            .unwrap();
        let b = cache
            .get_or_try_insert_with::<()>(key(VqAlgorithm::Cq2, OptLevel::O2), || {
                panic!("second lookup must not re-plan")
            })
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_opt_level_misses() {
        let cache = PlanCache::new();
        for level in [OptLevel::O1, OptLevel::O2] {
            cache
                .get_or_try_insert_with::<()>(key(VqAlgorithm::Cq2, level), || {
                    Ok(plan(VqAlgorithm::Cq2, level))
                })
                .unwrap();
        }
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = PlanCache::new();
        let k = key(VqAlgorithm::Cq4, OptLevel::O4);
        let err: Result<_, &str> = cache.get_or_try_insert_with(k.clone(), || Err("nope"));
        assert_eq!(err.unwrap_err(), "nope");
        assert!(cache.is_empty());
        // A later successful attempt lands normally.
        cache
            .get_or_try_insert_with::<()>(k.clone(), || Ok(plan(VqAlgorithm::Cq4, OptLevel::O4)))
            .unwrap();
        assert!(cache.peek(&k).is_some());
    }

    #[test]
    fn clear_resets_everything() {
        let cache = PlanCache::new();
        cache
            .get_or_try_insert_with::<()>(key(VqAlgorithm::Cq2, OptLevel::O3), || {
                Ok(plan(VqAlgorithm::Cq2, OptLevel::O3))
            })
            .unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn capacity_limit_bounds_the_map() {
        let cache = PlanCache::with_capacity_limit(2);
        let shared = plan(VqAlgorithm::Cq2, OptLevel::O1);
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::O4] {
            let held = cache
                .get_or_try_insert_with::<()>(key(VqAlgorithm::Cq2, level), || Ok(shared.clone()))
                .unwrap();
            // Outstanding Arcs survive evictions.
            assert_eq!(*held, shared);
        }
        assert!(cache.len() <= 2, "len {} over limit", cache.len());
        assert_eq!(cache.capacity_limit(), 2);
        // The most recently inserted key is never the eviction victim.
        cache
            .get_or_try_insert_with::<()>(key(VqAlgorithm::Cq2, OptLevel::O4), || {
                panic!("must be cached")
            })
            .unwrap();
    }

    #[test]
    fn with_identity_matches_new() {
        let gpu = GpuSpec::rtx4090();
        let vq = VqAlgorithm::Cq2.config();
        let op = ComputeOp::attention_decode(32, 128, 1024, 1);
        let prof = ProfileSummary::default_for(&vq);
        let a = PlanKey::new(&gpu, &vq, &op, PlanRequest::Best, &prof);
        let b = PlanKey::with_identity(gpu_identity(&gpu), &vq, &op, PlanRequest::Best, &prof);
        assert_eq!(a, b);
    }

    #[test]
    fn save_load_round_trips_bitwise() {
        let cache = PlanCache::new();
        // A mixed population: every algorithm family (plain, lattice,
        // per-tile, per-channel-group scopes), both request kinds, and a
        // non-zero profile tag.
        for algo in [
            VqAlgorithm::Cq2,
            VqAlgorithm::QuipSharp4,
            VqAlgorithm::Gptvq2,
        ] {
            for level in [OptLevel::O2, OptLevel::O4] {
                cache
                    .get_or_try_insert_with::<()>(key(algo, level), || Ok(plan(algo, level)))
                    .unwrap();
            }
        }
        let vq = VqAlgorithm::Cq4.config();
        let op = ComputeOp::Gemv {
            n: 64,
            k: 256,
            batch: 3,
        };
        let best_key = PlanKey::best(
            gpu_identity(&GpuSpec::rtx4090()),
            &vq,
            &op,
            0xdead_beef_cafe_f00d,
        );
        cache
            .get_or_try_insert_with::<()>(best_key.clone(), || {
                Ok(KernelPlanner::new(GpuSpec::rtx4090())
                    .plan(&vq, &op)
                    .unwrap())
            })
            .unwrap();

        let path = std::env::temp_dir().join(format!(
            "vqllm_plan_cache_roundtrip_{}.txt",
            std::process::id()
        ));
        let written = cache.save_to(&path).unwrap();
        assert_eq!(written, cache.len());

        let restored = PlanCache::new();
        let loaded = restored.load_from(&path).unwrap();
        assert_eq!(loaded, written);
        assert_eq!(restored.len(), cache.len());
        for (k, p) in cache.snapshot() {
            let q = restored.peek(&k).expect("restored cache misses a key");
            assert_eq!(*q, *p, "plan changed across the round trip");
        }
        // Round-tripping the restored cache reproduces the identical file.
        let path2 = std::env::temp_dir().join(format!(
            "vqllm_plan_cache_roundtrip2_{}.txt",
            std::process::id()
        ));
        restored.save_to(&path2).unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            std::fs::read_to_string(&path2).unwrap()
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&path2);
    }

    #[test]
    fn load_rejects_corrupt_files() {
        let dir = std::env::temp_dir();
        let bad_header = dir.join(format!(
            "vqllm_plan_cache_bad_header_{}.txt",
            std::process::id()
        ));
        std::fs::write(&bad_header, "some other file\n").unwrap();
        let cache = PlanCache::new();
        let err = cache.load_from(&bad_header).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&bad_header);

        // A *valid* entry followed by a corrupt line: the whole load must
        // fail without mutating the cache (no partial apply).
        let donor = PlanCache::new();
        donor
            .get_or_try_insert_with::<()>(key(VqAlgorithm::Cq2, OptLevel::O2), || {
                Ok(plan(VqAlgorithm::Cq2, OptLevel::O2))
            })
            .unwrap();
        let valid_file = dir.join(format!(
            "vqllm_plan_cache_valid_donor_{}.txt",
            std::process::id()
        ));
        donor.save_to(&valid_file).unwrap();
        let mut text = std::fs::read_to_string(&valid_file).unwrap();
        text.push_str("not an entry\n");
        let bad_entry = dir.join(format!(
            "vqllm_plan_cache_bad_entry_{}.txt",
            std::process::id()
        ));
        std::fs::write(&bad_entry, text).unwrap();
        let err = cache.load_from(&bad_entry).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(cache.is_empty(), "strict load must not partially apply");
        let _ = std::fs::remove_file(&valid_file);
        let _ = std::fs::remove_file(&bad_entry);

        assert!(cache
            .load_from(dir.join(format!(
                "vqllm_plan_cache_missing_{}.txt",
                std::process::id()
            )))
            .is_err());
    }

    #[test]
    fn load_rejects_truncation_even_on_a_line_boundary() {
        let dir = std::env::temp_dir();
        let donor = PlanCache::new();
        for (algo, level) in [
            (VqAlgorithm::Cq2, OptLevel::O2),
            (VqAlgorithm::Cq4, OptLevel::O3),
        ] {
            donor
                .get_or_try_insert_with::<()>(key(algo, level), || Ok(plan(algo, level)))
                .unwrap();
        }
        let full = dir.join(format!(
            "vqllm_plan_cache_trunc_full_{}.txt",
            std::process::id()
        ));
        donor.save_to(&full).unwrap();
        let text = std::fs::read_to_string(&full).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + 2 entries + trailer");

        // Cut exactly on a line boundary: every line that survives still
        // decodes, so only the trailer can catch it.
        for keep in 1..lines.len() {
            let truncated: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
            let path = dir.join(format!(
                "vqllm_plan_cache_trunc_{keep}_{}.txt",
                std::process::id()
            ));
            std::fs::write(&path, truncated).unwrap();
            let cache = PlanCache::new();
            let err = cache.load_from(&path).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "keep={keep}");
            assert!(cache.is_empty(), "truncated load must not partially apply");
            let _ = std::fs::remove_file(&path);
        }

        // An entry dropped but the trailer kept: checksum mismatch.
        let tampered: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let path = dir.join(format!(
            "vqllm_plan_cache_tampered_{}.txt",
            std::process::id()
        ));
        std::fs::write(&path, tampered).unwrap();
        let err = PlanCache::new().load_from(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&full);
    }

    #[test]
    fn invalidate_forces_a_replan() {
        let cache = PlanCache::new();
        let k = key(VqAlgorithm::Cq2, OptLevel::O2);
        cache
            .get_or_try_insert_with::<()>(k.clone(), || Ok(plan(VqAlgorithm::Cq2, OptLevel::O2)))
            .unwrap();
        assert!(cache.invalidate(&k));
        assert!(!cache.invalidate(&k), "second invalidate finds nothing");
        assert!(cache.peek(&k).is_none());
        // The next lookup misses and re-plans.
        let misses = cache.stats().misses;
        cache
            .get_or_try_insert_with::<()>(k.clone(), || Ok(plan(VqAlgorithm::Cq2, OptLevel::O2)))
            .unwrap();
        assert_eq!(cache.stats().misses, misses + 1);
    }

    #[test]
    fn gpu_identity_is_the_full_spec() {
        let mut tweaked = GpuSpec::rtx4090();
        tweaked.smem_per_sm -= 1024;
        let vq = VqAlgorithm::Cq2.config();
        let op = ComputeOp::attention_decode(32, 128, 1024, 1);
        let prof = ProfileSummary::default_for(&vq);
        let a = PlanKey::new(&GpuSpec::rtx4090(), &vq, &op, PlanRequest::Best, &prof);
        let b = PlanKey::new(&tweaked, &vq, &op, PlanRequest::Best, &prof);
        assert_ne!(a, b, "same name, different spec must not alias");
    }
}
