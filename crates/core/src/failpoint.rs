//! Deterministic fault injection at named sites ("failpoints").
//!
//! A failpoint is a named hook compiled into the hot path that normally
//! does nothing beyond a single relaxed atomic load. When a test or the
//! chaos harness arms the registry, a site can deterministically
//!
//! * **panic** with a chosen message (exercising containment layers),
//! * **sleep** for a chosen duration (exercising watchdogs), or
//! * **return an error string** that the call site maps onto its own
//!   typed error (exercising typed-rejection paths such as forced
//!   `KvCapacity`).
//!
//! Determinism comes from per-site counters: an action can be configured
//! to skip the first `skip` hits and then fire for exactly `times` hits,
//! so a schedule like "the third step panics, once" is expressible without
//! any randomness.
//!
//! # Zero cost when disabled
//!
//! [`fire`] first checks a global `AtomicBool` with a relaxed load and
//! returns immediately when no failpoint is configured anywhere in the
//! process. Sites are placed at step/kernel-launch granularity (not inner
//! loops), so the disabled cost is one predictable branch per step.
//!
//! # Configuration
//!
//! Programmatic: [`configure`] / [`clear`]. Environment: the first call to
//! [`fire`] parses `VQLLM_FAILPOINTS` (a `;`-separated list of
//! `site=action` clauses) once. The action grammar is
//!
//! ```text
//! action   := kind [ '(' arg ')' ] [ '*' times ] [ '+' skip ]
//! kind     := "panic" | "delay" | "error" | "off"
//! ```
//!
//! e.g. `VQLLM_FAILPOINTS="llm.step.group=panic(boom)*1+2"` makes the
//! third hit of `llm.step.group` panic with message `boom`, exactly once.
//!
//! Failpoints are process-global: tests that arm them must serialize (the
//! repo's chaos tests share one mutex) and [`clear`] on exit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Central registry of every failpoint site compiled into the workspace,
/// as `(site, where the fault is injected)` pairs.
///
/// This is the source of truth `vqllm-lint` checks call sites and the
/// README table against (`--fix-docs` regenerates the latter): firing an
/// unregistered site, or registering a site nothing fires, is a lint
/// error. Keep entries in namespace order.
pub const SITES: &[(&str, &str)] = &[
    (
        "llm.step",
        "start of every `Engine::step`, before any group is formed",
    ),
    (
        "llm.step.group",
        "inside one batch group's decode, under the per-group `catch_unwind`",
    ),
    (
        "llm.step.append",
        "the KV append of one decoded row; maps onto a typed `KvCapacity` rejection",
    ),
    (
        "net.driver.step",
        "the driver thread's step loop, outside the engine; escalates to the supervisor",
    ),
    (
        "pool.scope",
        "entry of every `WorkerPool` scope, before jobs are queued",
    ),
    (
        "host.gemv_lut",
        "fused LUT GeMV: kernel entry and each worker's row chunk",
    ),
    (
        "host.gemv_lut_batch",
        "batched serving-shape LUT GeMV row chunks",
    ),
    (
        "host.gemv_xw",
        "dense x*W aggregation GeMV row chunks (the non-LUT side of the step)",
    ),
    (
        "host.gemm_fused",
        "panel-blocked fused GeMM: kernel entry and scope body",
    ),
    (
        "host.attention_ragged",
        "ragged shared-K attention entry (plain and tailed variants)",
    ),
];

/// What a fired failpoint does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Panic with this message.
    Panic(String),
    /// Sleep for this many milliseconds, then continue normally.
    DelayMs(u64),
    /// Return this detail string to the call site, which maps it onto its
    /// own typed error.
    Error(String),
}

#[derive(Debug)]
struct Site {
    action: Action,
    /// Hits to ignore before the action starts firing.
    skip: u64,
    /// Hits the action fires for once past `skip`; `None` = forever.
    times: Option<u64>,
    /// Total hits observed so far.
    hits: u64,
}

impl Site {
    /// Advances the hit counter and reports whether this hit fires.
    fn check(&mut self) -> bool {
        let hit = self.hits;
        self.hits += 1;
        if hit < self.skip {
            return false;
        }
        match self.times {
            Some(times) => hit - self.skip < times,
            None => true,
        }
    }
}

struct Registry {
    sites: Mutex<HashMap<String, Site>>,
    /// Fast-path gate: true iff any site is configured.
    armed: AtomicBool,
    /// One-shot `VQLLM_FAILPOINTS` bootstrap.
    env: OnceLock<()>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        sites: Mutex::new(HashMap::new()),
        armed: AtomicBool::new(false),
        env: OnceLock::new(),
    })
}

/// The sites map is only mutated in whole-entry inserts/removes and the
/// panic action fires after the guard is released, so a poisoned mutex
/// (some unrelated panic mid-critical-section) cannot hold torn state:
/// recover instead of cascading the panic into every later `fire`.
fn lock_sites(reg: &Registry) -> std::sync::MutexGuard<'_, HashMap<String, Site>> {
    reg.sites.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms `site` with `action`, skipping the first `skip` hits and firing
/// for `times` hits after that (`None` = every hit). Replaces any prior
/// configuration for the site, resetting its hit counter.
pub fn configure(site: &str, action: Action, skip: u64, times: Option<u64>) {
    let reg = registry();
    let mut sites = lock_sites(reg);
    sites.insert(
        site.to_string(),
        Site {
            action,
            skip,
            times,
            hits: 0,
        },
    );
    reg.armed.store(true, Ordering::Release);
}

/// Removes every configured failpoint and disarms the fast path.
pub fn clear() {
    let reg = registry();
    let mut sites = lock_sites(reg);
    sites.clear();
    reg.armed.store(false, Ordering::Release);
}

/// Parses a `VQLLM_FAILPOINTS`-style spec (`site=action;site=action`).
/// Returns the number of sites configured.
///
/// # Errors
///
/// Returns a description of the first malformed clause; earlier clauses
/// in the spec are already applied.
pub fn configure_from_spec(spec: &str) -> Result<usize, String> {
    let mut n = 0;
    for clause in spec.split(';') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let (site, action) = clause
            .split_once('=')
            .ok_or_else(|| format!("failpoint clause missing '=': {clause:?}"))?;
        let (action, skip, times) = parse_action(action.trim())?;
        match action {
            Some(action) => configure(site.trim(), action, skip, times),
            None => {
                let reg = registry();
                let mut sites = lock_sites(reg);
                sites.remove(site.trim());
                if sites.is_empty() {
                    reg.armed.store(false, Ordering::Release);
                }
            }
        }
        n += 1;
    }
    Ok(n)
}

/// Parses `kind[(arg)][*times][+skip]`; `Ok(None, ..)` means `off`.
#[allow(clippy::type_complexity)]
fn parse_action(s: &str) -> Result<(Option<Action>, u64, Option<u64>), String> {
    let mut rest = s;
    let mut skip = 0u64;
    let mut times = None;
    if let Some((head, tail)) = rest.rsplit_once('+') {
        if !head.ends_with(')') || !tail.contains('(') {
            skip = tail
                .parse()
                .map_err(|e| format!("bad skip in {s:?}: {e}"))?;
            rest = head;
        }
    }
    if let Some((head, tail)) = rest.rsplit_once('*') {
        if !head.ends_with(')') || !tail.contains('(') {
            times = Some(
                tail.parse()
                    .map_err(|e| format!("bad times in {s:?}: {e}"))?,
            );
            rest = head;
        }
    }
    let (kind, arg) = match rest.split_once('(') {
        Some((kind, arg)) => {
            let arg = arg
                .strip_suffix(')')
                .ok_or_else(|| format!("unterminated '(' in {s:?}"))?;
            (kind, Some(arg))
        }
        None => (rest, None),
    };
    let action = match kind {
        "panic" => Some(Action::Panic(arg.unwrap_or("failpoint panic").to_string())),
        "delay" => {
            let ms = arg
                .ok_or_else(|| format!("delay needs (ms) in {s:?}"))?
                .parse()
                .map_err(|e| format!("bad delay ms in {s:?}: {e}"))?;
            Some(Action::DelayMs(ms))
        }
        "error" => Some(Action::Error(arg.unwrap_or("failpoint error").to_string())),
        "off" => None,
        other => return Err(format!("unknown failpoint kind {other:?} in {s:?}")),
    };
    Ok((action, skip, times))
}

/// Evaluates the failpoint at `site`.
///
/// Disabled (the common case): a single relaxed atomic load, then return
/// `None`. When the site is armed and this hit fires:
///
/// * [`Action::Panic`] panics here with the configured message;
/// * [`Action::DelayMs`] sleeps, then returns `None` (the call site
///   proceeds normally, just late);
/// * [`Action::Error`] returns `Some(detail)` for the call site to map
///   onto its own typed error.
pub fn fire(site: &str) -> Option<String> {
    let reg = registry();
    // One-shot env bootstrap has to happen even while disarmed, but only
    // costs a OnceLock check after the first call.
    reg.env.get_or_init(|| {
        if let Ok(spec) = std::env::var("VQLLM_FAILPOINTS") {
            if let Err(e) = configure_from_spec(&spec) {
                eprintln!("VQLLM_FAILPOINTS ignored clause: {e}");
            }
        }
    });
    if !reg.armed.load(Ordering::Relaxed) {
        return None;
    }
    let action = {
        let mut sites = lock_sites(reg);
        let s = sites.get_mut(site)?;
        if !s.check() {
            return None;
        }
        s.action.clone()
    };
    match action {
        Action::Panic(msg) => panic!("failpoint {site}: {msg}"),
        Action::DelayMs(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        Action::Error(detail) => Some(detail),
    }
}

/// True iff any failpoint is currently configured (test/bench helper).
pub fn armed() -> bool {
    registry().armed.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Failpoints are process-global; serialize the tests that arm them.
    fn lock() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        let gate = GATE.get_or_init(|| Mutex::new(()));
        gate.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn site_registry_is_well_formed() {
        for (i, (site, desc)) in SITES.iter().enumerate() {
            assert!(!desc.trim().is_empty(), "site {site} has no description");
            assert!(
                SITES[..i].iter().all(|(s, _)| s != site),
                "duplicate site {site}"
            );
        }
    }

    #[test]
    fn disabled_fire_is_none() {
        let _g = lock();
        clear();
        assert!(!armed());
        assert_eq!(fire("nowhere"), None);
    }

    #[test]
    fn error_action_fires_deterministically() {
        let _g = lock();
        clear();
        configure("t.site", Action::Error("boom".into()), 1, Some(2));
        assert_eq!(fire("t.site"), None, "skip=1 ignores the first hit");
        assert_eq!(fire("t.site"), Some("boom".into()));
        assert_eq!(fire("t.site"), Some("boom".into()));
        assert_eq!(fire("t.site"), None, "times=2 exhausted");
        clear();
    }

    #[test]
    fn panic_action_panics_with_site_and_message() {
        let _g = lock();
        clear();
        configure("t.panic", Action::Panic("kaboom".into()), 0, Some(1));
        let err = std::panic::catch_unwind(|| fire("t.panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("t.panic") && msg.contains("kaboom"), "{msg}");
        assert_eq!(fire("t.panic"), None, "one-shot");
        clear();
    }

    #[test]
    fn spec_grammar_round_trips() {
        let _g = lock();
        clear();
        let n = configure_from_spec("a=panic(x)*1+2; b=delay(5); c=error(full)*3; a=off").unwrap();
        assert_eq!(n, 4);
        {
            let sites = registry().sites.lock().unwrap();
            assert!(!sites.contains_key("a"), "off removes the site");
            assert_eq!(
                sites.get("b").map(|s| s.action.clone()),
                Some(Action::DelayMs(5))
            );
            assert_eq!(
                sites.get("c").map(|s| (s.action.clone(), s.times)),
                Some((Action::Error("full".into()), Some(3)))
            );
        }
        assert!(configure_from_spec("bogus").is_err());
        assert!(configure_from_spec("x=warp").is_err());
        assert!(configure_from_spec("x=delay").is_err());
        clear();
    }
}
