//! Tripwire: the workspace must pass its own static analysis.
//!
//! This is the same check the `static-analysis` CI job runs via
//! `vqllm-lint --check`, wired into `cargo test` so a hot-path
//! `unwrap`, an unjustified `SeqCst`, a lock-order inversion, or a
//! registry drift (wire codes / metrics counters / failpoint sites /
//! README table) fails the ordinary test suite too — with the full
//! findings list in the assertion message.

use std::path::PathBuf;

#[test]
fn workspace_is_lint_clean() {
    // crates/lint/ -> workspace root.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let findings = vqllm_lint::run_check(&root).expect("lint run");
    assert!(
        findings.is_empty(),
        "vqllm-lint found {} issue(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
