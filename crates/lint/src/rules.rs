//! The three line-level rule families: panic-freedom, atomic orderings,
//! and lock discipline. Registry consistency lives in `registry.rs`.

use crate::source::SourceFile;
use crate::{is_hot, Finding, LockClass, LOCK_HIERARCHY, SELF_PATH};

// ---------------------------------------------------------------------------
// Rule 1: panic-freedom in hot-path modules.
// ---------------------------------------------------------------------------

const PANIC_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

pub fn panic_free(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files.iter().filter(|f| is_hot(&f.path)) {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let lno = idx + 1;
            for pat in PANIC_PATTERNS {
                if line.code.contains(pat) {
                    let what = pat.trim_start_matches('.').trim_end_matches('(');
                    out.push(
                        Finding::new(
                            &file.path,
                            lno,
                            "panic",
                            format!("`{what}` in hot-path module (panic = outage); return a typed error or waive with a rationale"),
                        )
                        .with_snippet(&line.raw),
                    );
                }
            }
            if has_index_expr(&line.code) {
                out.push(
                    Finding::new(
                        &file.path,
                        lno,
                        "index",
                        "bare slice/array index in hot-path module can panic; use `get`/`get_mut` or waive with a bounds rationale".to_string(),
                    )
                    .with_snippet(&line.raw),
                );
            }
        }
    }
    out
}

/// True when the stripped code contains an index *expression* (`x[i]`,
/// `f()[i]`, `x[a..b]`), as opposed to array types/literals, attributes,
/// or macro brackets.
fn has_index_expr(code: &str) -> bool {
    let t = code.trim_start();
    if t.starts_with("#[") || t.starts_with("#![") {
        return false;
    }
    let b: Vec<char> = code.chars().collect();
    for i in 1..b.len() {
        if b[i] != '[' {
            continue;
        }
        let mut j = i;
        let prev = loop {
            if j == 0 {
                break ' ';
            }
            j -= 1;
            if b[j] != ' ' {
                break b[j];
            }
        };
        if prev == '!' {
            continue; // vec![...], matches!(...) etc.
        }
        if prev.is_alphanumeric() || prev == '_' {
            // Walk back over the identifier: `&'a [u8]` is a lifetime
            // followed by a slice *type*, not an index expression.
            let mut k = j;
            while k > 0 && (b[k - 1].is_alphanumeric() || b[k - 1] == '_') {
                k -= 1;
            }
            if k > 0 && b[k - 1] == '\'' {
                continue;
            }
            return true;
        }
        if prev == ')' || prev == ']' || prev == '"' {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 2: atomic-ordering audit.
// ---------------------------------------------------------------------------

const ATOMIC_OPS: &[&str] = &[
    ".load(",
    ".store(",
    ".swap(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_and(",
    ".fetch_nand(",
    ".fetch_or(",
    ".fetch_xor(",
    ".fetch_max(",
    ".fetch_min(",
    ".fetch_update(",
    ".compare_exchange(",
    ".compare_exchange_weak(",
];

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

pub fn atomics(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files.iter().filter(|f| !f.path.starts_with(SELF_PATH)) {
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let lno = idx + 1;
            for op in ATOMIC_OPS {
                let mut from = 0;
                while let Some(pos) = line.code[from..].find(op) {
                    let col = from + pos;
                    from = col + op.len();
                    let span = call_span(file, idx, col + op.len() - 1);
                    if !ORDERINGS.iter().any(|o| span.contains(o)) {
                        out.push(
                            Finding::new(
                                &file.path,
                                lno,
                                "atomic-explicit",
                                format!(
                                    "`{}` without a literal `Ordering::` argument; orderings must be explicit at the call site",
                                    op.trim_start_matches('.').trim_end_matches('(')
                                ),
                            )
                            .with_snippet(&line.raw),
                        );
                    }
                }
            }
            // SeqCst demands a written justification: it is the "I could
            // not prove anything weaker" ordering, and unexplained uses
            // rot into load-bearing mysteries.
            if line.code.contains("SeqCst") && !line.code.trim_start().starts_with("use ") {
                let justified = line.comment.contains("ordering:")
                    || (idx > 0 && file.lines[idx - 1].comment.contains("ordering:"));
                if !justified {
                    out.push(
                        Finding::new(
                            &file.path,
                            lno,
                            "atomic-seqcst",
                            "`SeqCst` without an `// ordering:` justification on this or the preceding line; downgrade or explain".to_string(),
                        )
                        .with_snippet(&line.raw),
                    );
                }
            }
        }
    }
    out
}

/// Collect the argument span of a call whose `(` sits at (`line_idx`,
/// `col`) in stripped code, across up to 8 lines, until parens balance.
fn call_span(file: &SourceFile, line_idx: usize, col: usize) -> String {
    let mut span = String::new();
    let mut depth = 0i32;
    for (k, line) in file.lines.iter().enumerate().skip(line_idx).take(8) {
        let start = if k == line_idx { col } else { 0 };
        for c in line.code.chars().skip(start) {
            span.push(c);
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return span;
                    }
                }
                _ => {}
            }
        }
        span.push(' ');
    }
    span
}

// ---------------------------------------------------------------------------
// Rule 3: lock discipline.
// ---------------------------------------------------------------------------

struct Held {
    rank: u32,
    name: &'static str,
    binding: Option<String>,
    depth: i32,
    line: usize,
}

pub fn lock_discipline(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files {
        let classes: Vec<&LockClass> = LOCK_HIERARCHY
            .iter()
            .filter(|c| file.path.ends_with(c.file))
            .collect();
        if classes.is_empty() {
            continue;
        }
        check_file_locks(file, &classes, &mut out);
    }
    out
}

fn check_file_locks(file: &SourceFile, classes: &[&LockClass], out: &mut Vec<Finding>) {
    let mut depth = 0i32;
    let mut held: Vec<Held> = Vec::new();

    for (idx, line) in file.lines.iter().enumerate() {
        let lno = idx + 1;
        if !line.in_test {
            for recv in lock_receivers(&line.code) {
                let Some(class) = classes.iter().find(|c| c.recv == recv) else {
                    continue;
                };
                for h in &held {
                    if h.rank >= class.rank {
                        out.push(
                            Finding::new(
                                &file.path,
                                lno,
                                "lock-order",
                                format!(
                                    "{} (rank {}) acquired while holding {} (rank {}, line {}); the hierarchy requires outer (lower rank) locks first",
                                    class.name, class.rank, h.name, h.rank, h.line
                                ),
                            )
                            .with_snippet(&line.raw),
                        );
                    }
                }
                held.push(Held {
                    rank: class.rank,
                    name: class.name,
                    binding: let_binding(&line.code),
                    depth,
                    line: lno,
                });
            }
            // An explicit drop releases a named guard early.
            if line.code.contains("drop(") {
                if let Some(dropped) = ident_in_call(&line.code, "drop(") {
                    held.retain(|h| h.binding.as_deref() != Some(dropped.as_str()));
                }
            }
        }
        depth += brace_delta(&line.code);
        // Bound guards live while their block does; temporaries (no
        // `let`) die at end of statement, approximated as end of line.
        held.retain(|h| h.binding.is_some() && h.depth <= depth);
    }
}

/// Receivers locked on this line: final path component before `.lock(`
/// plus the argument of `lock_recover(...)`.
fn lock_receivers(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let b: Vec<char> = code.chars().collect();
    let mut from = 0;
    while let Some(pos) = code[from..].find(".lock(") {
        let col = char_index(code, from + pos);
        let mut start = col;
        while start > 0 && (b[start - 1].is_alphanumeric() || b[start - 1] == '_') {
            start -= 1;
        }
        if start < col {
            out.push(b[start..col].iter().collect());
        }
        from += pos + ".lock(".len();
    }
    from = 0;
    while let Some(pos) = code[from..].find("lock_recover(") {
        let tail = &code[from + pos + "lock_recover(".len()..];
        let arg: String = tail
            .trim_start_matches(['&', ' '])
            .trim_start_matches("mut ")
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '.')
            .collect();
        if let Some(last) = arg.rsplit('.').next() {
            if !last.is_empty() {
                out.push(last.to_string());
            }
        }
        from += pos + "lock_recover(".len();
    }
    out
}

fn char_index(code: &str, byte_pos: usize) -> usize {
    code[..byte_pos].chars().count()
}

/// Name bound by a `let` on this line, if any (`let mut g = ...` → `g`).
fn let_binding(code: &str) -> Option<String> {
    let t = code.trim_start();
    let rest = t
        .strip_prefix("let ")
        .or_else(|| t.find(" let ").map(|p| &t[p + 5..]))?;
    let rest = rest.trim_start().trim_start_matches("mut ").trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

fn ident_in_call(code: &str, call: &str) -> Option<String> {
    let pos = code.find(call)?;
    let arg: String = code[pos + call.len()..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if arg.is_empty() {
        None
    } else {
        Some(arg)
    }
}

fn brace_delta(code: &str) -> i32 {
    let mut d = 0;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn hot(src: &str) -> Vec<SourceFile> {
        vec![SourceFile::parse("src/net/driver.rs", src)]
    }

    // --- panic rule ---

    #[test]
    fn panic_flags_unwrap_expect_macros_index() {
        let f = hot(
            "fn f(v: &[u32]) {\n    let a = x.unwrap();\n    let b = y.expect(\"msg\");\n    panic!(\"boom\");\n    unreachable!();\n    let c = v[3];\n}\n",
        );
        let got = panic_free(&f);
        let rules: Vec<&str> = got.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["panic", "panic", "panic", "panic", "index"]);
    }

    #[test]
    fn panic_ignores_comments_strings_tests_and_cold_files() {
        let src = "fn f() {\n    // x.unwrap() in prose\n    let s = \"panic!(nope)\";\n}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(panic_free(&hot(src)).is_empty());
        let cold = vec![SourceFile::parse(
            "crates/vq/src/lib.rs",
            "fn f() { x.unwrap(); }",
        )];
        assert!(panic_free(&cold).is_empty());
    }

    #[test]
    fn index_skips_types_literals_macros_attrs() {
        let ok = "fn f() {\n    let a: [f32; 4] = [0.0; 4];\n    let v = vec![1, 2];\n    #[derive(Clone)]\n    let s = &x[..];\n}\n";
        let got = panic_free(&hot(ok));
        // Only the slice expression survives.
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "index");
        assert!(got[0].snippet.contains("&x[..]"));
    }

    // --- atomics rule ---

    #[test]
    fn atomics_requires_literal_ordering() {
        let f = hot("fn f() {\n    flag.store(true, ord);\n    flag.load(Ordering::Acquire);\n}\n");
        let got = atomics(&f);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "atomic-explicit");
        assert_eq!(got[0].line, 2);
    }

    #[test]
    fn atomics_multiline_call_spans() {
        let f = hot("fn f() {\n    flag.compare_exchange(\n        false,\n        true,\n        Ordering::AcqRel,\n        Ordering::Acquire,\n    );\n}\n");
        assert!(atomics(&f).is_empty());
    }

    #[test]
    fn seqcst_needs_ordering_comment() {
        let bare = hot("fn f() { flag.store(true, Ordering::SeqCst); }\n");
        let got = atomics(&bare);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "atomic-seqcst");

        let same = hot(
            "fn f() { flag.store(true, Ordering::SeqCst); } // ordering: total order vs drain\n",
        );
        assert!(atomics(&same).is_empty());
        let prev = hot("fn f() {\n    // ordering: total order vs drain\n    flag.store(true, Ordering::SeqCst);\n}\n");
        assert!(atomics(&prev).is_empty());
    }

    // --- lock discipline ---

    #[test]
    fn lock_order_flags_inversion() {
        let src = "impl T {\n    fn bad(&self) {\n        let cell = self.state.lock();\n        let map = self.phases.lock();\n    }\n}\n";
        let got = lock_discipline(&hot(src));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "lock-order");
        assert!(got[0].message.contains("driver.phases"));
    }

    #[test]
    fn lock_order_accepts_declared_order_and_drop() {
        let ok = "impl T {\n    fn good(&self) {\n        let map = self.phases.lock();\n        let cell = self.state.lock();\n    }\n    fn resequenced(&self) {\n        let cell = self.state.lock();\n        drop(cell);\n        let map = self.phases.lock();\n    }\n}\n";
        assert!(lock_discipline(&hot(ok)).is_empty());
    }

    #[test]
    fn lock_order_scopes_guards_to_blocks() {
        let ok = "impl T {\n    fn scoped(&self) {\n        {\n            let cell = self.state.lock();\n        }\n        let map = self.phases.lock();\n    }\n}\n";
        assert!(lock_discipline(&hot(ok)).is_empty());
    }

    #[test]
    fn lock_order_sees_lock_recover_helper() {
        let src = "impl T {\n    fn bad(&self) {\n        let cell = lock_recover(&self.state);\n        let map = lock_recover(&self.phases);\n    }\n}\n";
        let got = lock_discipline(&hot(src));
        assert_eq!(got.len(), 1);
    }
}
