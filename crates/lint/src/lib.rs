//! `vqllm-lint`: workspace invariant checker.
//!
//! Four repo-specific rule families, each enforcing a convention the
//! serving stack's correctness rests on but that `rustc` cannot see:
//!
//! 1. **panic-freedom** (`panic`, `index`) — `unwrap()`/`expect()`/
//!    `panic!`/`unreachable!`/`todo!`/`unimplemented!` and bare slice
//!    indexing are banned in hot-path modules; survivors need a waiver
//!    with a written rationale in `lint-allow.txt`.
//! 2. **atomic orderings** (`atomic-explicit`, `atomic-seqcst`) — every
//!    atomic op must name a literal `Ordering`, and any `SeqCst` must
//!    carry an `// ordering:` justification on the same or preceding
//!    line.
//! 3. **lock discipline** (`lock-order`) — a declared lock hierarchy per
//!    file; lexically nested `.lock()`s within one function must acquire
//!    outer-rank locks before inner-rank ones.
//! 4. **registry consistency** (`registry`, `docs`) — `RejectReason` ↔
//!    `RejectKind` counters ↔ wire codes must partition `rejected`, and
//!    every failpoint site literal must be registered in
//!    `vqllm_core::failpoint::SITES` and listed in the README table.
//!
//! Output is machine-readable: one finding per line, `file:line rule
//! message`. `--fix-docs` regenerates the README failpoint table from
//! the source-of-truth registry.

use std::fmt;
use std::io;
use std::path::Path;

pub mod registry;
pub mod rules;
pub mod source;
pub mod waiver;

/// One lint finding, printable as `file:line rule message`.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
    /// Trimmed raw source line, used for waiver pattern matching
    /// (empty for "something is missing" findings, which only a
    /// file-level `*` waiver can suppress).
    pub snippet: String,
}

impl Finding {
    pub fn new(file: &str, line: usize, rule: &'static str, message: String) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message,
            snippet: String::new(),
        }
    }

    pub fn with_snippet(mut self, snippet: &str) -> Finding {
        self.snippet = snippet.trim().to_string();
        self
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Modules where a panic is an outage, not a bug report: the request
/// path from socket to kernel. Paths are workspace-relative prefixes.
pub const HOT_PATHS: &[&str] = &[
    "src/net/",
    "crates/llm/src/serve",
    "crates/kernels/src/host_exec",
    "crates/core/src/failpoint.rs",
];

/// The lint crate's own sources (fixtures embed rule-triggering text).
pub const SELF_PATH: &str = "crates/lint/";

/// Declared lock hierarchy: within one file, a lock with a lower rank is
/// the outer lock and must be acquired first when nesting. Receivers are
/// matched by the final field name before `.lock()` / inside
/// `lock_recover(...)`.
pub struct LockClass {
    /// Workspace-relative path suffix of the file the class lives in.
    pub file: &'static str,
    /// Final path component of the lock receiver (`self.state.pending`
    /// matches `pending`).
    pub recv: &'static str,
    /// Lower = outer. Nesting must be strictly increasing.
    pub rank: u32,
    pub name: &'static str,
}

pub const LOCK_HIERARCHY: &[LockClass] = &[
    // Driver: phase map and handle table are control plane (outer); the
    // cell table guards the set of wait cells; each WaitCell's state
    // mutex is innermost (resolved while sweeping the table).
    LockClass {
        file: "src/net/driver.rs",
        recv: "phases",
        rank: 10,
        name: "driver.phases",
    },
    LockClass {
        file: "src/net/driver.rs",
        recv: "handles",
        rank: 15,
        name: "HandleTable.handles",
    },
    LockClass {
        file: "src/net/driver.rs",
        recv: "inner",
        rank: 20,
        name: "CellTable.inner",
    },
    LockClass {
        file: "src/net/driver.rs",
        recv: "state",
        rank: 30,
        name: "WaitCell.state",
    },
    // Server: per-connection closing flag and ticket map are outer; the
    // writer FrameQueue state is innermost (pushed to while routing).
    LockClass {
        file: "src/net/server.rs",
        recv: "closing",
        rank: 10,
        name: "Conn.closing",
    },
    LockClass {
        file: "src/net/server.rs",
        recv: "tickets",
        rank: 20,
        name: "Conn.tickets",
    },
    LockClass {
        file: "src/net/server.rs",
        recv: "state",
        rank: 30,
        name: "FrameQueue.state",
    },
    // Worker pool: job queue state is outer; the scope completion latch
    // and the panic-message slot are taken from within scopes.
    LockClass {
        file: "crates/kernels/src/host_exec/pool.rs",
        recv: "workers",
        rank: 5,
        name: "pool.workers",
    },
    LockClass {
        file: "crates/kernels/src/host_exec/pool.rs",
        recv: "state",
        rank: 10,
        name: "pool.state",
    },
    LockClass {
        file: "crates/kernels/src/host_exec/pool.rs",
        recv: "pending",
        rank: 20,
        name: "scope.pending",
    },
    LockClass {
        file: "crates/kernels/src/host_exec/pool.rs",
        recv: "panic_msg",
        rank: 30,
        name: "scope.panic_msg",
    },
    // Plan cache: the entry map is outer, per-entry build gates inner.
    LockClass {
        file: "crates/core/src/plan_cache.rs",
        recv: "map",
        rank: 10,
        name: "PlanCache.map",
    },
    LockClass {
        file: "crates/core/src/plan_cache.rs",
        recv: "gate",
        rank: 20,
        name: "PlanCache.gate",
    },
    // Failpoint registry and tenant metrics are single-lock files; listed
    // so any future second lock in them must declare a rank.
    LockClass {
        file: "crates/core/src/failpoint.rs",
        recv: "sites",
        rank: 10,
        name: "failpoint.sites",
    },
    LockClass {
        file: "src/net/metrics.rs",
        recv: "tenants",
        rank: 10,
        name: "metrics.tenants",
    },
];

pub fn is_hot(path: &str) -> bool {
    !path.starts_with(SELF_PATH) && HOT_PATHS.iter().any(|p| path.starts_with(p))
}

/// Run every rule over the workspace rooted at `root`, apply the waiver
/// file, and return surviving findings sorted by location.
pub fn run_check(root: &Path) -> io::Result<Vec<Finding>> {
    let files = source::load_workspace(root)?;
    let readme = std::fs::read_to_string(root.join("README.md")).ok();

    let mut findings = Vec::new();
    findings.extend(rules::panic_free(&files));
    findings.extend(rules::atomics(&files));
    findings.extend(rules::lock_discipline(&files));
    findings.extend(registry::check(&files, readme.as_deref()));

    let waiver_text = std::fs::read_to_string(root.join("lint-allow.txt")).unwrap_or_default();
    let (waivers, mut waiver_findings) = waiver::parse(&waiver_text);
    let mut kept = waiver::apply(findings, &waivers);
    kept.append(&mut waiver_findings);
    kept.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(kept)
}

/// Regenerate the README failpoint-site table from the source registry.
/// Returns true when the README changed.
pub fn fix_docs(root: &Path) -> io::Result<bool> {
    registry::fix_docs(root)
}
