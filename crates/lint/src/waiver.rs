//! The waiver file (`lint-allow.txt`): every surviving violation in a
//! hot-path module carries a written justification, checked in next to
//! the code it excuses.
//!
//! Format, one waiver per line:
//!
//! ```text
//! path/to/file.rs: line-pattern # rationale
//! path/to/file.rs: * # file-level rationale (kernel inner loops etc.)
//! ```
//!
//! `line-pattern` is a substring of the offending source line (`*`
//! waives the whole file). A waiver with no rationale is itself a
//! finding, and so is a waiver that no longer matches anything — stale
//! excuses rot just like stale sites.

use crate::Finding;

#[derive(Debug)]
pub struct Waiver {
    pub file: String,
    pub pattern: String,
    pub rationale: String,
    /// Line in lint-allow.txt, for reporting.
    pub line: usize,
}

/// Parse the waiver file text. Malformed lines become findings.
pub fn parse(text: &str) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (body, rationale) = match line.split_once(" # ") {
            Some((b, r)) if !r.trim().is_empty() => (b.trim(), r.trim().to_string()),
            _ => {
                findings.push(Finding::new(
                    "lint-allow.txt",
                    lno,
                    "waiver",
                    "waiver has no ` # rationale`; every exception must say why it is sound".into(),
                ));
                continue;
            }
        };
        let Some((file, pattern)) = body.split_once(':') else {
            findings.push(Finding::new(
                "lint-allow.txt",
                lno,
                "waiver",
                "waiver is not `path: line-pattern # rationale`".into(),
            ));
            continue;
        };
        waivers.push(Waiver {
            file: file.trim().to_string(),
            pattern: pattern.trim().to_string(),
            rationale,
            line: lno,
        });
    }
    (waivers, findings)
}

/// Suppress findings matched by a waiver; report waivers that matched
/// nothing as stale.
pub fn apply(findings: Vec<Finding>, waivers: &[Waiver]) -> Vec<Finding> {
    let mut used = vec![false; waivers.len()];
    let mut kept = Vec::new();
    'f: for finding in findings {
        for (i, w) in waivers.iter().enumerate() {
            let file_match = finding.file == w.file;
            let line_match = w.pattern == "*"
                || (!finding.snippet.is_empty() && finding.snippet.contains(&w.pattern));
            if file_match && line_match {
                used[i] = true;
                continue 'f;
            }
        }
        kept.push(finding);
    }
    for (i, w) in waivers.iter().enumerate() {
        if !used[i] {
            kept.push(Finding::new(
                "lint-allow.txt",
                w.line,
                "waiver",
                format!(
                    "stale waiver `{}: {}` matches no finding; delete it (rationale was: {})",
                    w.file, w.pattern, w.rationale
                ),
            ));
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, snippet: &str) -> Finding {
        Finding::new(file, 3, "panic", "msg".into()).with_snippet(snippet)
    }

    #[test]
    fn waives_by_substring_and_star() {
        let (ws, errs) = parse(
            "src/a.rs: x.unwrap() # lock cannot be poisoned here\nsrc/b.rs: * # whole file is bounds-checked by proptest\n",
        );
        assert!(errs.is_empty());
        let kept = apply(
            vec![
                finding("src/a.rs", "let v = x.unwrap();"),
                finding("src/a.rs", "let v = y.unwrap();"),
                finding("src/b.rs", "anything at all"),
            ],
            &ws,
        );
        assert_eq!(kept.len(), 1);
        assert!(kept[0].snippet.contains("y.unwrap"));
    }

    #[test]
    fn missing_rationale_and_stale_waivers_are_findings() {
        let (ws, errs) = parse("src/a.rs: x.unwrap()\n");
        assert!(ws.is_empty());
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].rule, "waiver");

        let (ws, _) = parse("src/a.rs: nothing-matches # because\n");
        let kept = apply(vec![], &ws);
        assert_eq!(kept.len(), 1);
        assert!(kept[0].message.contains("stale"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let (ws, errs) = parse("# header comment\n\n   \n");
        assert!(ws.is_empty() && errs.is_empty());
    }
}
