//! Rule 4: cross-registry consistency.
//!
//! Three hand-maintained registries must stay in lockstep:
//!
//! - `RejectReason` (crates/llm/src/serve/request.rs) — the typed
//!   rejection surface of the serving layer;
//! - `RejectKind` (src/net/metrics.rs) — per-reason counters that must
//!   partition `rejected`: the `of()` mapping, the `ALL` array, and the
//!   `code()` wire strings;
//! - `REJECT_WIRE_CODES` (src/net/proto.rs) — the protocol-side list of
//!   every code a client can observe.
//!
//! Plus the failpoint registry: every site string fired anywhere in the
//! workspace must appear in `vqllm_core::failpoint::SITES` and in the
//! README's generated site table (`--fix-docs` rewrites the latter).

use std::io;
use std::path::Path;

use crate::source::SourceFile;
use crate::{Finding, SELF_PATH};

pub const REQUEST_RS: &str = "crates/llm/src/serve/request.rs";
pub const METRICS_RS: &str = "src/net/metrics.rs";
pub const PROTO_RS: &str = "src/net/proto.rs";
pub const FAILPOINT_RS: &str = "crates/core/src/failpoint.rs";

/// Failpoint site strings live in these namespaces; a dotted literal
/// starting with one of them is treated as a site label even when passed
/// through a helper rather than to `fire()` directly.
const SITE_NAMESPACES: &[&str] = &["llm", "net", "host", "pool"];

/// Call shapes whose first string argument is a failpoint site.
const SITE_CALLS: &[&str] = &["fire(", "failpoint(", "try_scope(", "configure("];

pub fn check(files: &[SourceFile], readme: Option<&str>) -> Vec<Finding> {
    let mut out = Vec::new();
    check_reject_chain(files, &mut out);
    check_failpoints(files, readme, &mut out);
    out
}

fn find<'a>(files: &'a [SourceFile], path: &str) -> Option<&'a SourceFile> {
    files.iter().find(|f| f.path == path)
}

// ---------------------------------------------------------------------------
// RejectReason ↔ RejectKind ↔ wire codes.
// ---------------------------------------------------------------------------

fn check_reject_chain(files: &[SourceFile], out: &mut Vec<Finding>) {
    let (Some(request), Some(metrics), Some(proto)) = (
        find(files, REQUEST_RS),
        find(files, METRICS_RS),
        find(files, PROTO_RS),
    ) else {
        // Partial fixture sets (unit tests) check what they provide.
        return;
    };

    let Some((reasons, reason_line)) = enum_variants(request, "enum RejectReason") else {
        out.push(Finding::new(
            &request.path,
            1,
            "registry",
            "could not locate `enum RejectReason`".into(),
        ));
        return;
    };
    let Some((kinds, kind_line)) = enum_variants(metrics, "enum RejectKind") else {
        out.push(Finding::new(
            &metrics.path,
            1,
            "registry",
            "could not locate `enum RejectKind`".into(),
        ));
        return;
    };

    // of(): every RejectReason must map to a counter kind.
    let of_pairs = match_pairs(metrics, "fn of(", "RejectReason::", "RejectKind::");
    for r in &reasons {
        if !of_pairs.iter().any(|(from, _, _)| from == r) {
            out.push(Finding::new(
                &metrics.path,
                kind_line,
                "registry",
                format!("RejectReason::{r} has no RejectKind::of() mapping; its rejections would not be counted"),
            ));
        }
    }
    for (from, _, line) in &of_pairs {
        if !reasons.contains(from) {
            out.push(Finding::new(
                &metrics.path,
                *line,
                "registry",
                format!(
                    "RejectKind::of() maps RejectReason::{from}, which is not a declared variant"
                ),
            ));
        }
    }
    for (_, to, line) in &of_pairs {
        if !kinds.contains(to) {
            out.push(Finding::new(
                &metrics.path,
                *line,
                "registry",
                format!(
                    "RejectKind::of() targets RejectKind::{to}, which is not a declared variant"
                ),
            ));
        }
    }

    // ALL: the counter registration array must cover every kind exactly.
    let all = idents_in_block(metrics, "ALL: [RejectKind", "RejectKind::");
    for k in &kinds {
        if !all.iter().any(|(name, _)| name == k) {
            out.push(Finding::new(
                &metrics.path,
                kind_line,
                "registry",
                format!("RejectKind::{k} is missing from RejectKind::ALL; its counter would never be registered or snapshotted"),
            ));
        }
    }
    for (name, line) in &all {
        if !kinds.contains(name) {
            out.push(Finding::new(
                &metrics.path,
                *line,
                "registry",
                format!(
                    "RejectKind::ALL lists RejectKind::{name}, which is not a declared variant"
                ),
            ));
        }
    }

    // code(): every kind needs a unique wire string.
    let codes = match_strings(metrics, "fn code(", "RejectKind::");
    for k in &kinds {
        if !codes.iter().any(|(kind, _, _)| kind == k) {
            out.push(Finding::new(
                &metrics.path,
                kind_line,
                "registry",
                format!("RejectKind::{k} has no code() wire string"),
            ));
        }
    }
    for (i, (_, code, line)) in codes.iter().enumerate() {
        if codes[..i].iter().any(|(_, c, _)| c == code) {
            out.push(Finding::new(
                &metrics.path,
                *line,
                "registry",
                format!("duplicate wire code \"{code}\" in RejectKind::code()"),
            ));
        }
    }

    // proto.rs REJECT_WIRE_CODES must equal the code() set, both ways.
    let Some((wire, wire_line)) = const_strings(proto, "REJECT_WIRE_CODES") else {
        out.push(Finding::new(
            &proto.path,
            1,
            "registry",
            "could not locate `REJECT_WIRE_CODES`; the protocol-side code list is the registry --check verifies".into(),
        ));
        return;
    };
    for (_, code, _) in &codes {
        if !wire.iter().any(|(w, _)| w == code) {
            out.push(Finding::new(
                &proto.path,
                wire_line,
                "registry",
                format!("wire code \"{code}\" (RejectKind::code) is missing from proto::REJECT_WIRE_CODES"),
            ));
        }
    }
    for (w, line) in &wire {
        if !codes.iter().any(|(_, c, _)| c == w) {
            out.push(Finding::new(
                &proto.path,
                *line,
                "registry",
                format!("proto::REJECT_WIRE_CODES lists \"{w}\", which no RejectKind produces"),
            ));
        }
    }
    let _ = reason_line;
}

// ---------------------------------------------------------------------------
// Failpoint sites.
// ---------------------------------------------------------------------------

fn check_failpoints(files: &[SourceFile], readme: Option<&str>, out: &mut Vec<Finding>) {
    let Some(fp) = find(files, FAILPOINT_RS) else {
        return;
    };
    let Some((sites, sites_line)) = site_table(fp) else {
        out.push(Finding::new(
            &fp.path,
            1,
            "registry",
            "could not locate `pub const SITES`; the central failpoint site registry is required"
                .into(),
        ));
        return;
    };
    for (i, (name, desc, line)) in sites.iter().enumerate() {
        if sites[..i].iter().any(|(n, _, _)| n == name) {
            out.push(Finding::new(
                &fp.path,
                *line,
                "registry",
                format!("duplicate failpoint site \"{name}\" in SITES"),
            ));
        }
        if desc.trim().is_empty() {
            out.push(Finding::new(
                &fp.path,
                *line,
                "registry",
                format!("failpoint site \"{name}\" has an empty description"),
            ));
        }
    }

    // Every site literal used anywhere must be registered, and every
    // registered site must still be used somewhere.
    let site_names: Vec<&str> = sites.iter().map(|(n, _, _)| n.as_str()).collect();
    let registry_block = block_of(fp, "const SITES").unwrap_or((sites_line, sites_line));
    let mut used: Vec<&str> = Vec::new();
    for file in files.iter().filter(|f| !f.path.starts_with(SELF_PATH)) {
        let in_registry_file = file.path == fp.path;
        for (idx, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            if in_registry_file && (registry_block.0..=registry_block.1).contains(&idx) {
                continue; // the SITES table itself is not a call site
            }
            let lno = idx + 1;
            for s in &line.strings {
                let direct = SITE_CALLS.iter().any(|c| literal_follows(line, c, s));
                let namespaced = is_site_shaped(s)
                    && SITE_NAMESPACES.contains(&s.split('.').next().unwrap_or(""));
                if !direct && !namespaced {
                    continue;
                }
                if let Some(canon) = site_names.iter().copied().find(|n| *n == s.as_str()) {
                    if !used.contains(&canon) {
                        used.push(canon);
                    }
                } else {
                    out.push(
                        Finding::new(
                            &file.path,
                            lno,
                            "registry",
                            format!("failpoint site \"{s}\" is not registered in vqllm_core::failpoint::SITES"),
                        )
                        .with_snippet(&line.raw),
                    );
                }
            }
        }
    }
    for (name, _, line) in &sites {
        if !used.contains(&name.as_str()) {
            out.push(Finding::new(
                &fp.path,
                *line,
                "registry",
                format!(
                    "failpoint site \"{name}\" is registered but never referenced by any call site"
                ),
            ));
        }
    }

    // README table must mirror SITES (regenerate with --fix-docs).
    match readme.and_then(readme_sites) {
        None => out.push(Finding::new(
            "README.md",
            1,
            "docs",
            "README is missing the generated failpoint site table (markers `<!-- failpoint-sites:begin/end -->`); run `vqllm-lint --fix-docs`".into(),
        )),
        Some(listed) => {
            for (name, _, line) in &sites {
                if !listed.contains(name) {
                    out.push(Finding::new(
                        &fp.path,
                        *line,
                        "docs",
                        format!("failpoint site \"{name}\" is missing from the README table; run `vqllm-lint --fix-docs`"),
                    ));
                }
            }
            for l in &listed {
                if !site_names.contains(&l.as_str()) {
                    out.push(Finding::new(
                        "README.md",
                        1,
                        "docs",
                        format!("README lists failpoint site \"{l}\" which is not in SITES; run `vqllm-lint --fix-docs`"),
                    ));
                }
            }
        }
    }
}

/// True when `s` looks like a dotted site label: lowercase ident
/// segments joined by `.` (excludes IPs, file names, JSON keys).
fn is_site_shaped(s: &str) -> bool {
    let segs: Vec<&str> = s.split('.').collect();
    segs.len() >= 2
        && segs.iter().all(|seg| {
            !seg.is_empty()
                && seg.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// True when string literal `s` is the first argument of `call` on this
/// line (in stripped code, literals appear as `""`, so the call shape is
/// `call"` after removing whitespace-insensitive `("` matching).
fn literal_follows(line: &crate::source::Line, call: &str, s: &str) -> bool {
    let code = &line.code;
    let mut from = 0;
    while let Some(pos) = code[from..].find(call) {
        let after = &code[from + pos + call.len()..];
        let after = after.trim_start().trim_start_matches(['&', ' ']);
        if after.starts_with('"') {
            // Index of this literal among the line's strings = number of
            // closed literal pairs before it.
            let quotes_before = code[..from + pos].matches('"').count();
            if line.strings.get(quotes_before / 2).map(|x| x.as_str()) == Some(s) {
                return true;
            }
        }
        from += pos + call.len();
    }
    false
}

// ---------------------------------------------------------------------------
// Source-shape parsers (line/token level, mirroring how the code is
// actually written; fixtures in tests pin the accepted shapes).
// ---------------------------------------------------------------------------

/// Variants of `enum <name>`, with the declaration line.
fn enum_variants(file: &SourceFile, decl: &str) -> Option<(Vec<String>, usize)> {
    let (start, end) = block_of(file, decl)?;
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut expecting = true;
    for line in &file.lines[start..=end] {
        let code = line.code.trim();
        if code.starts_with('#') {
            continue;
        }
        for tok in tokens(code) {
            match tok.as_str() {
                "{" | "(" | "[" => {
                    depth += 1;
                    if depth == 1 {
                        expecting = true;
                    }
                }
                "}" | ")" | "]" => depth -= 1,
                "," if depth == 1 => expecting = true,
                t if depth == 1
                    && expecting
                    && t.chars().next().is_some_and(|c| c.is_ascii_uppercase()) =>
                {
                    variants.push(t.to_string());
                    expecting = false;
                }
                _ => {}
            }
        }
    }
    Some((variants, start + 1))
}

/// `(From, To, line)` pairs inside the body of `fn_decl`, matching
/// `from_prefix::X => ... to_prefix::Y` arms.
fn match_pairs(
    file: &SourceFile,
    fn_decl: &str,
    from_prefix: &str,
    to_prefix: &str,
) -> Vec<(String, String, usize)> {
    let Some((start, end)) = block_of(file, fn_decl) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (off, line) in file.lines[start..=end].iter().enumerate() {
        let code = &line.code;
        let mut from = 0;
        while let Some(pos) = code[from..].find(from_prefix) {
            let src = ident_after(&code[from + pos + from_prefix.len()..]);
            let tail = &code[from + pos..];
            if let Some(tpos) = tail.find(to_prefix) {
                let dst = ident_after(&tail[tpos + to_prefix.len()..]);
                if !src.is_empty() && !dst.is_empty() {
                    out.push((src, dst, start + off + 1));
                }
            }
            from += pos + from_prefix.len();
        }
    }
    out
}

/// `(Variant, "string", line)` triples inside the body of `fn_decl`.
fn match_strings(file: &SourceFile, fn_decl: &str, prefix: &str) -> Vec<(String, String, usize)> {
    let Some((start, end)) = block_of(file, fn_decl) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (off, line) in file.lines[start..=end].iter().enumerate() {
        if let Some(pos) = line.code.find(prefix) {
            let variant = ident_after(&line.code[pos + prefix.len()..]);
            if let (false, Some(s)) = (variant.is_empty(), line.strings.first()) {
                out.push((variant, s.clone(), start + off + 1));
            }
        }
    }
    out
}

/// Qualified idents `prefix::X` inside the block opened at `decl`.
fn idents_in_block(file: &SourceFile, decl: &str, prefix: &str) -> Vec<(String, usize)> {
    let Some((start, end)) = block_of(file, decl) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (off, line) in file.lines[start..=end].iter().enumerate() {
        let mut from = 0;
        while let Some(pos) = line.code[from..].find(prefix) {
            let name = ident_after(&line.code[from + pos + prefix.len()..]);
            if !name.is_empty() {
                out.push((name, start + off + 1));
            }
            from += pos + prefix.len();
        }
    }
    out
}

/// String literals inside `const <name>`, with their lines.
fn const_strings(file: &SourceFile, name: &str) -> Option<(Vec<(String, usize)>, usize)> {
    let decl = format!("const {name}");
    let (start, end) = block_of(file, &decl)?;
    let mut out = Vec::new();
    for (off, line) in file.lines[start..=end].iter().enumerate() {
        for s in &line.strings {
            out.push((s.clone(), start + off + 1));
        }
    }
    Some((out, start + 1))
}

/// One `(site, description, line)` row of the SITES table.
type SiteRow = (String, String, usize);

/// The SITES table: `(site, description, line)` triples from the pairs
/// of string literals inside `pub const SITES`.
fn site_table(file: &SourceFile) -> Option<(Vec<SiteRow>, usize)> {
    let (strings, line) = const_strings(file, "SITES")?;
    let mut out = Vec::new();
    let mut it = strings.into_iter();
    while let Some((site, l)) = it.next() {
        let desc = it.next().map(|(d, _)| d).unwrap_or_default();
        out.push((site, desc, l));
    }
    Some((out, line))
}

/// Find the item opened by the first line containing `decl`: returns
/// (decl line index, last line index), 0-based. Brace-balanced for
/// `{}` items (enums, fns); a `;` at brace depth zero ends brace-less
/// items (consts, whose `[...]` values carry no braces).
fn block_of(file: &SourceFile, decl: &str) -> Option<(usize, usize)> {
    let start = file.lines.iter().position(|l| l.code.contains(decl))?;
    let mut depth = 0i32;
    let mut opened = false;
    for (idx, line) in file.lines.iter().enumerate().skip(start) {
        let from = if idx == start {
            line.code.find(decl).unwrap_or(0)
        } else {
            0
        };
        for c in line.code[from..].chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return Some((start, idx));
                    }
                }
                // Brackets/parens only shield `;` (array lengths, fn
                // params); braces alone decide block structure.
                '[' | '(' => depth += 1,
                ']' | ')' => depth -= 1,
                ';' if depth == 0 => return Some((start, idx)),
                _ => {}
            }
        }
    }
    Some((start, file.lines.len() - 1))
}

fn ident_after(s: &str) -> String {
    s.chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

fn tokens(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in code.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            if !c.is_whitespace() {
                out.push(c.to_string());
            }
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

// ---------------------------------------------------------------------------
// README table generation (--fix-docs).
// ---------------------------------------------------------------------------

pub const TABLE_BEGIN: &str =
    "<!-- failpoint-sites:begin (generated by `vqllm-lint --fix-docs`; do not edit by hand) -->";
pub const TABLE_END: &str = "<!-- failpoint-sites:end -->";

/// Site names listed in the README's generated table, if present.
fn readme_sites(readme: &str) -> Option<Vec<String>> {
    let begin = readme.find("<!-- failpoint-sites:begin")?;
    let end = readme.find(TABLE_END)?;
    let mut out = Vec::new();
    for line in readme[begin..end].lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("| `") {
            if let Some(site) = rest.split('`').next() {
                out.push(site.to_string());
            }
        }
    }
    Some(out)
}

pub fn render_table(sites: &[(String, String, usize)]) -> String {
    let mut s = String::new();
    s.push_str(TABLE_BEGIN);
    s.push('\n');
    s.push_str("| site | fault is injected at |\n");
    s.push_str("| --- | --- |\n");
    for (name, desc, _) in sites {
        s.push_str(&format!("| `{name}` | {desc} |\n"));
    }
    s.push_str(TABLE_END);
    s
}

/// Rewrite the README block between the markers from the SITES registry.
/// Returns true when the file changed.
pub fn fix_docs(root: &Path) -> io::Result<bool> {
    let fp_path = root.join(FAILPOINT_RS);
    let text = std::fs::read_to_string(&fp_path)?;
    let fp = SourceFile::parse(FAILPOINT_RS, &text);
    let sites = site_table(&fp)
        .ok_or_else(|| io::Error::other("no `pub const SITES` in failpoint.rs"))?
        .0;

    let readme_path = root.join("README.md");
    let readme = std::fs::read_to_string(&readme_path)?;
    let table = render_table(&sites);

    let new = match (readme.find("<!-- failpoint-sites:begin"), readme.find(TABLE_END)) {
        (Some(b), Some(e)) if e > b => {
            format!("{}{}{}", &readme[..b], table, &readme[e + TABLE_END.len()..])
        }
        _ => {
            return Err(io::Error::other(
                "README.md has no failpoint-sites markers; add `<!-- failpoint-sites:begin -->` / `<!-- failpoint-sites:end -->` where the table belongs",
            ))
        }
    };
    if new != readme {
        std::fs::write(&readme_path, new)?;
        return Ok(true);
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    // Miniature but shape-accurate fixtures of the three real files.
    const REQUEST_FIX: &str =
        "pub enum RejectReason {\n    QueueFull { depth: usize },\n    Draining,\n}\n";
    const METRICS_FIX: &str = "pub enum RejectKind {\n    QueueFull,\n    Draining,\n}\nimpl RejectKind {\n    pub const ALL: [RejectKind; 2] = [RejectKind::QueueFull, RejectKind::Draining];\n    pub fn of(reason: &RejectReason) -> RejectKind {\n        match reason {\n            RejectReason::QueueFull { .. } => RejectKind::QueueFull,\n            RejectReason::Draining => RejectKind::Draining,\n        }\n    }\n    pub fn code(self) -> &'static str {\n        match self {\n            RejectKind::QueueFull => \"queue_full\",\n            RejectKind::Draining => \"draining\",\n        }\n    }\n}\n";
    const PROTO_FIX: &str =
        "pub const REJECT_WIRE_CODES: &[&str] = &[\"queue_full\", \"draining\"];\n";
    const FAILPOINT_FIX: &str = "pub const SITES: &[(&str, &str)] = &[\n    (\"llm.step\", \"whole-step fault\"),\n    (\"pool.scope\", \"scope entry\"),\n];\n";
    const README_FIX: &str = "# x\n<!-- failpoint-sites:begin -->\n| site | fault is injected at |\n| --- | --- |\n| `llm.step` | whole-step fault |\n| `pool.scope` | scope entry |\n<!-- failpoint-sites:end -->\n";

    fn fixture(edits: &[(&str, &str, &str)]) -> Vec<SourceFile> {
        let mut texts = vec![
            (REQUEST_RS, REQUEST_FIX.to_string()),
            (METRICS_RS, METRICS_FIX.to_string()),
            (PROTO_RS, PROTO_FIX.to_string()),
            (FAILPOINT_RS, FAILPOINT_FIX.to_string()),
            (
                "crates/llm/src/serve/multi.rs",
                "fn step() { failpoint::fire(\"llm.step\"); }\n".to_string(),
            ),
            (
                "crates/kernels/src/host_exec/pool.rs",
                "fn scope() { self.try_scope(\"pool.scope\", f); }\n".to_string(),
            ),
        ];
        for (path, from, to) in edits {
            for (p, t) in texts.iter_mut() {
                if p == path {
                    assert!(t.contains(from), "fixture edit `{from}` not found in {p}");
                    *t = t.replace(from, to);
                }
            }
        }
        texts
            .into_iter()
            .map(|(p, t)| SourceFile::parse(p, &t))
            .collect()
    }

    #[test]
    fn consistent_fixture_is_clean() {
        let got = check(&fixture(&[]), Some(README_FIX));
        assert!(got.is_empty(), "unexpected findings: {got:?}");
    }

    #[test]
    fn deleting_a_counter_mapping_fails() {
        // A new RejectReason variant without an of() arm: uncounted.
        let files = fixture(&[(REQUEST_RS, "Draining,\n}", "Draining,\n    Evicted,\n}")]);
        let got = check(&files, Some(README_FIX));
        assert!(
            got.iter()
                .any(|f| f.message.contains("Evicted") && f.message.contains("of()")),
            "missing-counter not caught: {got:?}"
        );
    }

    #[test]
    fn deleting_an_all_entry_fails() {
        let files = fixture(&[(
            METRICS_RS,
            "[RejectKind::QueueFull, RejectKind::Draining]",
            "[RejectKind::QueueFull]",
        )]);
        let got = check(&files, Some(README_FIX));
        assert!(
            got.iter()
                .any(|f| f.message.contains("ALL") && f.message.contains("Draining")),
            "missing ALL entry not caught: {got:?}"
        );
    }

    #[test]
    fn deleting_a_wire_code_fails() {
        let files = fixture(&[(PROTO_RS, "\"queue_full\", ", "")]);
        let got = check(&files, Some(README_FIX));
        assert!(
            got.iter().any(
                |f| f.message.contains("queue_full") && f.message.contains("REJECT_WIRE_CODES")
            ),
            "missing wire code not caught: {got:?}"
        );
    }

    #[test]
    fn stale_wire_code_fails() {
        let files = fixture(&[(PROTO_RS, "\"draining\"]", "\"draining\", \"ghost\"]")]);
        let got = check(&files, Some(README_FIX));
        assert!(
            got.iter().any(|f| f.message.contains("ghost")),
            "stale wire code not caught: {got:?}"
        );
    }

    #[test]
    fn unregistered_fire_site_fails() {
        let files = fixture(&[(
            "crates/llm/src/serve/multi.rs",
            "fire(\"llm.step\")",
            "fire(\"llm.rogue\")",
        )]);
        let got = check(&files, Some(README_FIX));
        assert!(
            got.iter()
                .any(|f| f.message.contains("llm.rogue") && f.message.contains("SITES")),
            "unregistered site not caught: {got:?}"
        );
    }

    #[test]
    fn deleting_a_sites_entry_fails() {
        // Site still fired in code but removed from the registry.
        let files = fixture(&[(FAILPOINT_RS, "    (\"pool.scope\", \"scope entry\"),\n", "")]);
        let got = check(&files, Some(README_FIX));
        assert!(
            got.iter().any(|f| f.message.contains("pool.scope")),
            "deleted SITES entry not caught: {got:?}"
        );
    }

    #[test]
    fn stale_site_and_helper_arg_labels() {
        // Registered but never referenced anywhere.
        let files = fixture(&[(
            "crates/kernels/src/host_exec/pool.rs",
            "self.try_scope(\"pool.scope\", f);",
            "noop();",
        )]);
        let got = check(&files, Some(README_FIX));
        assert!(
            got.iter().any(|f| f.message.contains("never referenced")),
            "stale site not caught: {got:?}"
        );
        // A namespaced label passed through a helper arg still counts as
        // a use (and as a violation when unregistered).
        let files = fixture(&[(
            "crates/kernels/src/host_exec/pool.rs",
            "self.try_scope(\"pool.scope\", f);",
            "helper(rows, \"pool.scope\", f); helper(rows, \"host.ghost\", f);",
        )]);
        let got = check(&files, Some(README_FIX));
        assert!(got.iter().any(|f| f.message.contains("host.ghost")));
        assert!(!got
            .iter()
            .any(|f| f.message.contains("\"pool.scope\" is registered but")));
    }

    #[test]
    fn readme_table_checked_and_rendered() {
        let stale = README_FIX.replace("| `pool.scope` | scope entry |\n", "");
        let got = check(&fixture(&[]), Some(&stale));
        assert!(got
            .iter()
            .any(|f| f.rule == "docs" && f.message.contains("pool.scope")));

        let got = check(&fixture(&[]), None);
        assert!(got
            .iter()
            .any(|f| f.rule == "docs" && f.message.contains("markers")));

        let fp = SourceFile::parse(FAILPOINT_RS, FAILPOINT_FIX);
        let table = render_table(&site_table(&fp).unwrap().0);
        assert!(table.contains("| `llm.step` | whole-step fault |"));
        assert!(table.starts_with(TABLE_BEGIN) && table.trim_end().ends_with(TABLE_END));
    }

    #[test]
    fn enum_parser_handles_fields_and_attrs() {
        let f = SourceFile::parse(
            REQUEST_RS,
            "#[derive(Debug)]\npub enum RejectReason {\n    /// doc\n    QueueFull { depth: usize, cap: usize },\n    #[allow(dead_code)]\n    Deadline(u64),\n    Draining,\n}\n",
        );
        let (vars, _) = enum_variants(&f, "enum RejectReason").unwrap();
        assert_eq!(vars, ["QueueFull", "Deadline", "Draining"]);
    }
}
