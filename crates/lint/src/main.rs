//! `vqllm-lint` CLI.
//!
//! ```text
//! vqllm-lint [--root PATH] [--check] [--fix-docs]
//! ```
//!
//! `--check` (the default) prints one finding per line as
//! `file:line rule message` and exits 1 when any survive the waiver
//! file. `--fix-docs` regenerates the README failpoint-site table from
//! `vqllm_core::failpoint::SITES`. Exit codes: 0 clean, 1 findings,
//! 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut fix_docs = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--fix-docs" => fix_docs = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: vqllm-lint [--root PATH] [--check] [--fix-docs]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    // Run from anywhere inside the workspace: walk up to the root
    // (identified by the waiver file next to the workspace manifest).
    if !root.join("Cargo.toml").exists() {
        eprintln!("no Cargo.toml under --root {}", root.display());
        return ExitCode::from(2);
    }

    if fix_docs {
        return match vqllm_lint::fix_docs(&root) {
            Ok(true) => {
                eprintln!("README.md failpoint table regenerated");
                ExitCode::SUCCESS
            }
            Ok(false) => {
                eprintln!("README.md failpoint table already current");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("--fix-docs failed: {e}");
                ExitCode::from(2)
            }
        };
    }

    match vqllm_lint::run_check(&root) {
        Ok(findings) if findings.is_empty() => {
            eprintln!("vqllm-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("vqllm-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("vqllm-lint: {e}");
            ExitCode::from(2)
        }
    }
}
