//! Source model: load `.rs` files, strip comments, blank string-literal
//! contents (keeping the quotes so call shapes survive), and mask
//! `#[cfg(test)]` items — the token-level substrate every rule runs on.
//!
//! This is deliberately a lexer, not a parser: the rules only need
//! line-level facts (is this `.unwrap()` in code or in a comment? is this
//! string a failpoint site or a doc example?), and a character-state
//! machine answers those exactly without a syntax tree.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One physical line of a source file, pre-lexed.
#[derive(Debug, Clone)]
pub struct Line {
    /// The raw text, exactly as on disk (no trailing newline).
    pub raw: String,
    /// Code with comments removed and string-literal contents dropped;
    /// the delimiting quotes remain, so `fire("x")` becomes `fire("")`.
    pub code: String,
    /// Text of any comment on the line (`//` tail or block-comment body).
    pub comment: String,
    /// String literals that *close* on this line, in source order.
    pub strings: Vec<String>,
    /// True when the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub lines: Vec<Line>,
}

impl SourceFile {
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let mut lines = lex(text);
        mask_cfg_test(&mut lines);
        SourceFile {
            path: path.to_string(),
            lines,
        }
    }

    /// 1-indexed accessor used by rule code when reporting.
    pub fn raw(&self, line: usize) -> &str {
        &self.lines[line - 1].raw
    }
}

enum Mode {
    Code,
    /// Nested block comment, with depth.
    Block(u32),
    /// Inside a normal string literal (may span lines).
    Str,
    /// Inside a raw string literal, with the `#` count of its delimiter.
    RawStr(u32),
}

fn lex(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    let mut cur_str = String::new();

    for raw in text.split('\n') {
        let bytes: Vec<char> = raw.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut strings = Vec::new();
        let mut i = 0usize;

        while i < bytes.len() {
            let c = bytes[i];
            match mode {
                Mode::Block(depth) => {
                    if c == '*' && bytes.get(i + 1) == Some(&'/') {
                        if depth == 1 {
                            mode = Mode::Code;
                        } else {
                            mode = Mode::Block(depth - 1);
                        }
                        i += 2;
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if c == '\\' {
                        cur_str.push(c);
                        if let Some(&n) = bytes.get(i + 1) {
                            cur_str.push(n);
                        }
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        strings.push(std::mem::take(&mut cur_str));
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        cur_str.push(c);
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if c == '"' {
                        let h = hashes as usize;
                        let closes = (1..=h).all(|k| bytes.get(i + k) == Some(&'#'));
                        if closes {
                            code.push('"');
                            for _ in 0..h {
                                code.push('#');
                            }
                            strings.push(std::mem::take(&mut cur_str));
                            mode = Mode::Code;
                            i += 1 + h;
                            continue;
                        }
                    }
                    cur_str.push(c);
                    i += 1;
                }
                Mode::Code => {
                    if c == '/' && bytes.get(i + 1) == Some(&'/') {
                        comment.push_str(&raw[byte_offset(raw, i) + 2..]);
                        break;
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(1);
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    } else if c == 'r'
                        && !prev_is_ident(&code)
                        && matches!(bytes.get(i + 1), Some('"') | Some('#'))
                    {
                        // Raw string: r"..." or r#"..."# (any hash depth).
                        let mut h = 0usize;
                        let mut j = i + 1;
                        while bytes.get(j) == Some(&'#') {
                            h += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            code.push('r');
                            for _ in 0..h {
                                code.push('#');
                            }
                            code.push('"');
                            mode = Mode::RawStr(h as u32);
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal vs lifetime. A char literal closes with
                        // a quote one (escaped: more) char later; a lifetime
                        // never closes.
                        if bytes.get(i + 1) == Some(&'\\') {
                            code.push_str("''");
                            i += 2;
                            while i < bytes.len() && bytes[i] != '\'' {
                                i += 1;
                            }
                            i += 1;
                        } else if bytes.get(i + 2) == Some(&'\'') && bytes.get(i + 1).is_some() {
                            code.push_str("''");
                            i += 3;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }

        out.push(Line {
            raw: raw.to_string(),
            code,
            comment,
            strings,
            in_test: false,
        });
        // A normal string continued past a newline keeps its content.
        if matches!(mode, Mode::Str | Mode::RawStr(_)) {
            cur_str.push('\n');
        }
    }
    out
}

/// Map a char index into `raw` to a byte offset (raw is mostly ASCII; this
/// keeps comments with non-ASCII text from slicing mid-codepoint).
fn byte_offset(raw: &str, char_idx: usize) -> usize {
    raw.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(raw.len())
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Mark every line belonging to a `#[cfg(test)]` item (module, fn, or
/// `use`) as `in_test`. Brace-tracked on the stripped code, so braces in
/// strings and comments cannot confuse it.
fn mask_cfg_test(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        lines[i].in_test = true;
        // Scan forward for the item body: a `{` opens a block item we track
        // to balance; a `;` at depth zero first means a braceless item.
        let mut depth = 0i32;
        let mut opened = false;
        let mut j = i;
        'mask: while j < lines.len() {
            lines[j].in_test = true;
            let start = if j == i {
                lines[i].code.find("#[cfg(test)]").unwrap_or(0) + "#[cfg(test)]".len()
            } else {
                0
            };
            for c in lines[j].code[start..].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            break 'mask;
                        }
                    }
                    ';' if !opened => break 'mask,
                    _ => {}
                }
            }
            j += 1;
        }
        i = (j + 1).max(i + 1);
    }
}

/// Walk the workspace source roots, skipping vendored and generated trees.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    for top in ["src", "crates", "tests", "examples", "benches"] {
        collect(&root.join(top), &mut paths)?;
    }
    paths.sort();
    let mut files = Vec::new();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(&p)?;
        files.push(SourceFile::parse(&rel, &text));
    }
    Ok(files)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> SourceFile {
        SourceFile::parse("t.rs", src)
    }

    #[test]
    fn strips_line_comments() {
        let f = one("let x = 1; // unwrap() here is prose\n");
        assert_eq!(f.lines[0].code.trim_end(), "let x = 1;");
        assert!(f.lines[0].comment.contains("unwrap()"));
    }

    #[test]
    fn blanks_strings_keeps_quotes() {
        let f = one(r#"fire("llm.step"); let s = "panic!";"#);
        assert_eq!(f.lines[0].code, r#"fire(""); let s = "";"#);
        assert_eq!(f.lines[0].strings, vec!["llm.step", "panic!"]);
    }

    #[test]
    fn raw_strings_and_escapes() {
        let f = one(r##"let a = r#"no "end" yet"#; let b = "q\"q";"##);
        assert_eq!(f.lines[0].strings, vec![r#"no "end" yet"#, r#"q\"q"#]);
        assert!(!f.lines[0].code.contains("end"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = one("a /* one /* two */ still */ b\n/* open\nunwrap()\n*/ c");
        assert_eq!(f.lines[0].code.replace(' ', ""), "ab");
        assert!(f.lines[2].code.is_empty());
        assert!(f.lines[2].comment.contains("unwrap()"));
        assert_eq!(f.lines[3].code.trim(), "c");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = one("let c = '\"'; fn f<'a>(x: &'a str) {} let d = '\\n';");
        // The quote char literal must not open a string.
        assert!(f.lines[0].strings.is_empty());
        assert!(f.lines[0].code.contains("<'a>"));
    }

    #[test]
    fn masks_cfg_test_blocks() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let f = one(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn masks_braceless_cfg_test_use() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let f = one(src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }
}
