//! Reconstruction-error metrics used across the evaluation.
//!
//! The paper's Fig. 2 compares VQ and element-wise quantization by MSE; the
//! end-to-end accuracy proxy (Fig. 17 right) is driven by these numbers.

use crate::Tensor2D;

/// Mean squared error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse operands must match in length");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = f64::from(x - y);
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// MSE between two tensors.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mse_tensor(a: &Tensor2D, b: &Tensor2D) -> f64 {
    assert_eq!(a.shape(), b.shape(), "mse operands must match in shape");
    mse(a.as_slice(), b.as_slice())
}

/// Maximum absolute element-wise difference.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Relative Frobenius-norm error `‖a−b‖ / ‖a‖` (0 when `a` is all zeros and
/// `b == a`).
pub fn rel_frobenius(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| {
            let d = f64::from(x - y);
            d * d
        })
        .sum();
    let den: f64 = a.iter().map(|x| f64::from(*x) * f64::from(*x)).sum();
    if den == 0.0 {
        return if num == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (num / den).sqrt()
}

/// Checks element-wise closeness with absolute + relative tolerance, the way
/// fused-kernel tests compare against references.
pub fn allclose(a: &[f32], b: &[f32], atol: f32, rtol: f32) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= atol + rtol * y.abs().max(x.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_identical_is_zero() {
        let v = vec![1.0, -2.0, 3.5];
        assert_eq!(mse(&v, &v), 0.0);
    }

    #[test]
    fn mse_matches_hand_value() {
        assert!((mse(&[0.0, 0.0], &[1.0, 3.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rel_frobenius_scales_with_error() {
        let a = vec![2.0, 0.0];
        let b = vec![0.0, 0.0];
        assert!((rel_frobenius(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rel_frobenius_zero_reference() {
        assert_eq!(rel_frobenius(&[0.0], &[0.0]), 0.0);
        assert!(rel_frobenius(&[0.0], &[1.0]).is_infinite());
    }

    #[test]
    fn allclose_tolerances() {
        assert!(allclose(&[1.0], &[1.0 + 1e-6], 1e-5, 0.0));
        assert!(!allclose(&[1.0], &[1.1], 1e-5, 1e-5));
        assert!(allclose(&[100.0], &[100.5], 0.0, 0.01));
        assert!(!allclose(&[1.0, 2.0], &[1.0], 1.0, 1.0));
    }

    #[test]
    fn max_abs_diff_finds_extreme() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[1.5, 2.0]), 3.0);
    }
}
