//! Row-major 2-D tensor with logical-dtype byte accounting.

use crate::{DType, Result, TensorError};

/// A dense, row-major 2-D tensor of `f32` values.
///
/// Compute precision is always `f32`; the *storage* precision a real
/// deployment would use is supplied per call-site via [`DType`] (e.g. the
/// performance model bills an FP16 weight matrix 2 bytes/element even though
/// we hold it as `f32` on the host).
///
/// ```
/// use vqllm_tensor::Tensor2D;
/// let t = Tensor2D::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(t.get(1, 2), 5.0);
/// assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor2D {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor2D {
    /// Creates a tensor of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("tensor size overflow");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor from a generating function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a tensor from an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidDimension {
                what: "from_vec buffer length",
                value: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of all elements.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable row-major view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Bytes this tensor would occupy at storage precision `dtype`.
    pub fn storage_bytes(&self, dtype: DType) -> usize {
        dtype.bytes_for(self.len())
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor2D {
        Tensor2D::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Copy of the sub-matrix `[r0, r0+h) × [c0, c0+w)`.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the tensor bounds.
    pub fn slice(&self, r0: usize, c0: usize, h: usize, w: usize) -> Tensor2D {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "slice out of bounds"
        );
        Tensor2D::from_fn(h, w, |r, c| self.get(r0 + r, c0 + c))
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Maps every element through `f`, in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Splits every row into consecutive `width`-element sub-vectors and
    /// returns them in scan order. This is the paper's "split the original
    /// vector into vector-size-dimensional sub-vectors" step (Fig. 1).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] if `width` is zero or does
    /// not divide the column count.
    pub fn subvectors(&self, width: usize) -> Result<Vec<&[f32]>> {
        if width == 0 || !self.cols.is_multiple_of(width) {
            return Err(TensorError::InvalidDimension {
                what: "subvector width",
                value: width,
            });
        }
        let mut out = Vec::with_capacity(self.len() / width);
        for row in self.iter_rows() {
            out.extend(row.chunks_exact(width));
        }
        Ok(out)
    }
}

impl Default for Tensor2D {
    fn default() -> Self {
        Tensor2D::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_layout_is_row_major() {
        let t = Tensor2D::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(t.get(1, 0), 10.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor2D::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Tensor2D::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor2D::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(t.transposed().transposed(), t);
        assert_eq!(t.transposed().get(4, 2), t.get(2, 4));
    }

    #[test]
    fn slice_extracts_window() {
        let t = Tensor2D::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let s = t.slice(1, 2, 2, 2);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.get(0, 0), t.get(1, 2));
        assert_eq!(s.get(1, 1), t.get(2, 3));
    }

    #[test]
    fn subvectors_cover_tensor_in_scan_order() {
        let t = Tensor2D::from_fn(2, 4, |r, c| (r * 4 + c) as f32);
        let sv = t.subvectors(2).unwrap();
        assert_eq!(sv.len(), 4);
        assert_eq!(sv[0], &[0.0, 1.0]);
        assert_eq!(sv[1], &[2.0, 3.0]);
        assert_eq!(sv[3], &[6.0, 7.0]);
    }

    #[test]
    fn subvectors_rejects_non_divisor() {
        let t = Tensor2D::zeros(2, 4);
        assert!(t.subvectors(3).is_err());
        assert!(t.subvectors(0).is_err());
    }

    #[test]
    fn storage_bytes_uses_logical_dtype() {
        let t = Tensor2D::zeros(8, 8);
        assert_eq!(t.storage_bytes(DType::F16), 128);
        assert_eq!(t.storage_bytes(DType::I4), 32);
        assert_eq!(t.storage_bytes(DType::Bits(12)), 96);
    }

    #[test]
    fn map_inplace_applies_function() {
        let mut t = Tensor2D::from_fn(2, 2, |_, _| 2.0);
        t.map_inplace(|v| v * v);
        assert!(t.as_slice().iter().all(|&v| v == 4.0));
    }
}
