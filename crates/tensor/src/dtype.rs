//! Logical storage datatypes.
//!
//! Kernels in this reproduction always *compute* in `f32`, but the memory
//! system costs traffic in the bytes a real deployment would move. `DType`
//! carries that logical width. Sub-byte types (the whole point of
//! quantization) are expressed in bits so that e.g. AQLM's 12-bit packed
//! indices have an exact size.

use serde::{Deserialize, Serialize};

/// Logical storage type of a tensor or index stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// IEEE-754 binary32.
    F32,
    /// IEEE-754 binary16 (the paper's baseline precision).
    F16,
    /// 8-bit integer.
    I8,
    /// 4-bit integer (AWQ / QoQ element-wise quantization).
    I4,
    /// Arbitrary bit-width per element (VQ index streams: 8, 12, 16 bits…).
    Bits(u8),
}

impl DType {
    /// Width of one element in bits.
    ///
    /// ```
    /// use vqllm_tensor::DType;
    /// assert_eq!(DType::F16.bits(), 16);
    /// assert_eq!(DType::Bits(12).bits(), 12);
    /// ```
    pub fn bits(self) -> u32 {
        match self {
            DType::F32 => 32,
            DType::F16 => 16,
            DType::I8 => 8,
            DType::I4 => 4,
            DType::Bits(b) => u32::from(b),
        }
    }

    /// Bytes needed to store `n` elements of this type, rounded up to whole
    /// bytes (packed storage, the way the paper's quantized formats work).
    pub fn bytes_for(self, n: usize) -> usize {
        (n * self.bits() as usize).div_ceil(8)
    }

    /// Size of a single element in bytes, rounded up. Useful for aligned
    /// (non-packed) layouts such as codebook entries.
    pub fn byte_width(self) -> usize {
        (self.bits() as usize).div_ceil(8)
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DType::F32 => write!(f, "fp32"),
            DType::F16 => write!(f, "fp16"),
            DType::I8 => write!(f, "int8"),
            DType::I4 => write!(f, "int4"),
            DType::Bits(b) => write!(f, "b{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_match_widths() {
        assert_eq!(DType::F32.bits(), 32);
        assert_eq!(DType::F16.bits(), 16);
        assert_eq!(DType::I8.bits(), 8);
        assert_eq!(DType::I4.bits(), 4);
        assert_eq!(DType::Bits(12).bits(), 12);
    }

    #[test]
    fn packed_bytes_round_up() {
        // 3 × 12-bit = 36 bits = 4.5 bytes → 5.
        assert_eq!(DType::Bits(12).bytes_for(3), 5);
        // 2 × 4-bit = 1 byte exactly.
        assert_eq!(DType::I4.bytes_for(2), 1);
        assert_eq!(DType::I4.bytes_for(3), 2);
        assert_eq!(DType::F16.bytes_for(10), 20);
    }

    #[test]
    fn byte_width_rounds_up() {
        assert_eq!(DType::Bits(12).byte_width(), 2);
        assert_eq!(DType::I4.byte_width(), 1);
        assert_eq!(DType::F32.byte_width(), 4);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(DType::F16.to_string(), "fp16");
        assert_eq!(DType::Bits(12).to_string(), "b12");
    }
}
