//! Numeric substrate for the VQ-LLM reproduction.
//!
//! The paper's kernels operate on FP16 weight / KV-cache tensors. This crate
//! provides the host-side stand-in: a row-major 2-D tensor whose *compute*
//! precision is `f32` (for deterministic, portable math) but whose *storage*
//! precision is tracked explicitly through [`DType`], because the GPU
//! performance model in `vqllm-gpu` costs memory traffic in logical bytes.
//!
//! Also provided here:
//!
//! * [`synth`] — seeded synthetic data generators matching the statistics
//!   the paper evaluates on (Gaussian weights, outlier-heavy activations,
//!   correlated 2-D pairs for Fig. 2, token-correlated KV streams).
//! * [`linalg`] — reference math (matmul/GeMV/softmax/attention) used as
//!   ground truth by every fused-kernel correctness test.
//! * [`metrics`] — reconstruction-error metrics (MSE, relative Frobenius).
//!
//! # Example
//!
//! ```
//! use vqllm_tensor::{DType, Tensor2D, synth};
//!
//! let w = synth::gaussian(64, 64, 0.02, 7);
//! assert_eq!(w.shape(), (64, 64));
//! assert_eq!(w.storage_bytes(DType::F16), 64 * 64 * 2);
//! ```

pub mod dtype;
pub mod linalg;
pub mod metrics;
pub mod synth;
pub mod tensor;

pub use dtype::DType;
pub use tensor::Tensor2D;

/// Error type for tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: (usize, usize),
        /// Shape of the right-hand operand.
        rhs: (usize, usize),
    },
    /// A dimension argument was zero or otherwise out of range.
    InvalidDimension {
        /// Which argument was invalid.
        what: &'static str,
        /// The offending value.
        value: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{} vs rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::InvalidDimension { what, value } => {
                write!(f, "invalid dimension for {what}: {value}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
