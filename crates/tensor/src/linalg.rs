//! Reference math: the ground truth every fused kernel is tested against.
//!
//! These are deliberately straightforward loops — clarity over speed — since
//! their job is correctness oracles for `vqllm-kernels` and functional
//! building blocks for `vqllm-llm`.

use crate::{Result, Tensor2D, TensorError};

/// `C = A (m×k) · B (k×n)`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the inner dimensions differ.
///
/// ```
/// use vqllm_tensor::{Tensor2D, linalg};
/// let a = Tensor2D::from_fn(2, 2, |r, c| (r + c) as f32);
/// let id = Tensor2D::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
/// assert_eq!(linalg::matmul(&a, &id).unwrap(), a);
/// ```
pub fn matmul(a: &Tensor2D, b: &Tensor2D) -> Result<Tensor2D> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Tensor2D::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (p, &av) in arow.iter().enumerate().take(k) {
            let brow = b.row(p);
            for j in 0..n {
                crow[j] += av * brow[j];
            }
        }
    }
    Ok(c)
}

/// `y = W (n×k) · x (k)` — the weight-times-activation GeMV of the decode
/// phase (weight stored row-major, one output per weight row).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x.len() != W.cols()`.
pub fn gemv(w: &Tensor2D, x: &[f32]) -> Result<Vec<f32>> {
    if x.len() != w.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "gemv",
            lhs: w.shape(),
            rhs: (x.len(), 1),
        });
    }
    Ok(w.iter_rows()
        .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
        .collect())
}

/// Numerically-stable softmax over a slice, in place.
pub fn softmax_inplace(v: &mut [f32]) {
    if v.is_empty() {
        return;
    }
    let max = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in v.iter_mut() {
        *x /= sum;
    }
}

/// Single-head attention for decode: one query row against `tokens × dim`
/// K/V caches. `scale` is usually `1/sqrt(dim)`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes disagree.
pub fn attention_decode_ref(
    q: &[f32],
    k_cache: &Tensor2D,
    v_cache: &Tensor2D,
    scale: f32,
) -> Result<Vec<f32>> {
    if q.len() != k_cache.cols() || k_cache.shape() != v_cache.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "attention_decode",
            lhs: k_cache.shape(),
            rhs: v_cache.shape(),
        });
    }
    let mut scores: Vec<f32> = k_cache
        .iter_rows()
        .map(|krow| krow.iter().zip(q).map(|(a, b)| a * b).sum::<f32>() * scale)
        .collect();
    softmax_inplace(&mut scores);
    let dim = v_cache.cols();
    let mut out = vec![0.0; dim];
    for (t, w) in scores.iter().enumerate() {
        let vrow = v_cache.row(t);
        for d in 0..dim {
            out[d] += w * vrow[d];
        }
    }
    Ok(out)
}

/// Row-wise RMSNorm: `x / rms(x) * gain`.
pub fn rmsnorm(x: &[f32], gain: &[f32], eps: f32) -> Vec<f32> {
    let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len().max(1) as f32;
    let inv = 1.0 / (ms + eps).sqrt();
    x.iter().zip(gain).map(|(v, g)| v * inv * g).collect()
}

/// SiLU activation `x * sigmoid(x)`, element-wise.
pub fn silu(x: &[f32]) -> Vec<f32> {
    x.iter().map(|&v| v / (1.0 + (-v).exp())).collect()
}

/// Rotary position embedding applied to consecutive even/odd pairs of a
/// head-dimension vector at position `pos` with base `theta` (10000 in
/// Llama).
pub fn rope(x: &[f32], pos: usize, theta: f32) -> Vec<f32> {
    let d = x.len();
    let mut out = vec![0.0; d];
    for i in (0..d.saturating_sub(1)).step_by(2) {
        let freq = 1.0 / theta.powf(i as f32 / d as f32);
        let angle = pos as f32 * freq;
        let (sin, cos) = angle.sin_cos();
        out[i] = x[i] * cos - x[i + 1] * sin;
        out[i + 1] = x[i] * sin + x[i + 1] * cos;
    }
    if d % 2 == 1 {
        out[d - 1] = x[d - 1];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn matmul_identity() {
        let a = synth::gaussian(8, 8, 1.0, 1);
        let id = Tensor2D::from_fn(8, 8, |r, c| if r == c { 1.0 } else { 0.0 });
        let c = matmul(&a, &id).unwrap();
        for (x, y) in c.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor2D::zeros(2, 3);
        let b = Tensor2D::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_matches_hand_example() {
        let a = Tensor2D::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor2D::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemv_matches_matmul() {
        let w = synth::gaussian(16, 8, 1.0, 2);
        let x: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let y = gemv(&w, &x).unwrap();
        let xt = Tensor2D::from_vec(8, 1, x).unwrap();
        let y2 = matmul(&w, &xt).unwrap();
        for (a, b) in y.iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut v = vec![1000.0, 1001.0, 1002.0];
        softmax_inplace(&mut v);
        let s: f32 = v.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn attention_single_token_returns_that_value() {
        let q = vec![1.0, 0.0];
        let k = Tensor2D::from_vec(1, 2, vec![1.0, 0.0]).unwrap();
        let v = Tensor2D::from_vec(1, 2, vec![3.0, -2.0]).unwrap();
        let out = attention_decode_ref(&q, &k, &v, 1.0).unwrap();
        assert_eq!(out, vec![3.0, -2.0]);
    }

    #[test]
    fn attention_weights_favor_matching_key() {
        let q = vec![4.0, 0.0];
        let k = Tensor2D::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let v = Tensor2D::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let out = attention_decode_ref(&q, &k, &v, 1.0).unwrap();
        assert!(out[0] > 0.9 && out[1] < 0.1);
    }

    #[test]
    fn rmsnorm_normalizes_scale() {
        let x = vec![3.0, 4.0];
        let g = vec![1.0, 1.0];
        let y = rmsnorm(&x, &g, 1e-6);
        let rms = (y.iter().map(|v| v * v).sum::<f32>() / 2.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-4);
    }

    #[test]
    fn silu_matches_definition_at_zero() {
        assert_eq!(silu(&[0.0])[0], 0.0);
        assert!(silu(&[10.0])[0] > 9.99);
    }

    #[test]
    fn rope_preserves_pair_norms() {
        let x = vec![1.0, 2.0, -0.5, 0.25];
        let y = rope(&x, 17, 10000.0);
        for i in (0..4).step_by(2) {
            let n0 = (x[i].powi(2) + x[i + 1].powi(2)).sqrt();
            let n1 = (y[i].powi(2) + y[i + 1].powi(2)).sqrt();
            assert!((n0 - n1).abs() < 1e-5);
        }
    }

    #[test]
    fn rope_at_position_zero_is_identity() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(rope(&x, 0, 10000.0), x);
    }
}
