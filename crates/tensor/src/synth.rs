//! Seeded synthetic data generators.
//!
//! The paper evaluates on Llama weights and KV caches. We do not have the
//! checkpoints (documented substitution in DESIGN.md §5), so we generate
//! tensors with the *statistics the paper relies on*:
//!
//! * LLM weights ≈ zero-mean Gaussians with small σ.
//! * Activations / KV entries carry per-channel scale variation and rare
//!   outliers (the lower half of the paper's Fig. 2 hinges on exactly this —
//!   element-wise grids waste points on outliers, VQ does not).
//! * Adjacent channels are *correlated*, which is the cross-dimension
//!   information VQ exploits.
//!
//! All generators take an explicit `seed` so every experiment is exactly
//! reproducible.

use crate::Tensor2D;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Standard-normal sample via Box–Muller (avoids a rand_distr dependency).
fn normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Zero-mean Gaussian tensor with standard deviation `sigma`.
///
/// ```
/// let t = vqllm_tensor::synth::gaussian(32, 32, 0.02, 1);
/// let mean: f32 = t.as_slice().iter().sum::<f32>() / t.len() as f32;
/// assert!(mean.abs() < 0.01);
/// ```
pub fn gaussian(rows: usize, cols: usize, sigma: f32, seed: u64) -> Tensor2D {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor2D::from_fn(rows, cols, |_, _| normal(&mut rng) * sigma)
}

/// Gaussian tensor with a fraction `outlier_frac` of elements scaled by
/// `outlier_scale` — the activation/KV-cache distribution element-wise
/// quantization struggles with (paper Fig. 2).
pub fn gaussian_with_outliers(
    rows: usize,
    cols: usize,
    sigma: f32,
    outlier_frac: f64,
    outlier_scale: f32,
    seed: u64,
) -> Tensor2D {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor2D::from_fn(rows, cols, |_, _| {
        let v = normal(&mut rng) * sigma;
        if rng.gen_bool(outlier_frac) {
            v * outlier_scale
        } else {
            v
        }
    })
}

/// Tensor whose consecutive `group` channels share a per-group scale and a
/// common latent component, giving the cross-dimension correlation VQ
/// exploits. `rho` in `[0, 1]` controls how much of each element is the
/// shared latent.
pub fn correlated_channels(
    rows: usize,
    cols: usize,
    group: usize,
    rho: f32,
    seed: u64,
) -> Tensor2D {
    assert!(group > 0, "group must be positive");
    assert!((0.0..=1.0).contains(&rho), "rho must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let groups = cols.div_ceil(group);
    // Per-group channel scales: log-normal-ish spread across groups.
    let scales: Vec<f32> = (0..groups)
        .map(|_| (normal(&mut rng) * 0.5).exp())
        .collect();
    let mut t = Tensor2D::zeros(rows, cols);
    for r in 0..rows {
        for (g, &scale) in scales.iter().enumerate() {
            let latent = normal(&mut rng);
            for k in 0..group {
                let c = g * group + k;
                if c >= cols {
                    break;
                }
                let noise = normal(&mut rng);
                let v = (rho * latent + (1.0 - rho * rho).sqrt() * noise) * scale * 0.02;
                t.set(r, c, v);
            }
        }
    }
    t
}

/// 2-D correlated point cloud with outliers, reproducing the scatter in the
/// paper's Fig. 2 (lower). Returns an `n × 2` tensor.
pub fn correlated_pairs(n: usize, rho: f32, outlier_frac: f64, seed: u64) -> Tensor2D {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor2D::from_fn(n, 2, |_, _| 0.0).tap(|t| {
        for r in 0..n {
            let z1 = normal(&mut rng);
            let z2 = normal(&mut rng);
            let mut x = z1;
            let mut y = rho * z1 + (1.0 - rho * rho).sqrt() * z2;
            if rng.gen_bool(outlier_frac) {
                // Outliers stretch along the minor axis, exactly where a
                // Cartesian-product grid has no points.
                x *= 2.5;
                y = -y * 2.5;
            }
            t.set(r, 0, x * 0.7);
            t.set(r, 1, y * 0.7);
        }
    })
}

/// KV-cache-like stream: `tokens × channels`, where adjacent tokens are
/// temporally correlated (decay `tau`) and channels carry stable per-channel
/// magnitudes — the structure CQ's per-channel-group codebooks exploit.
pub fn kv_stream(tokens: usize, channels: usize, tau: f32, seed: u64) -> Tensor2D {
    assert!((0.0..1.0).contains(&tau), "tau must be in [0,1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let chan_scale: Vec<f32> = (0..channels)
        .map(|_| (normal(&mut rng) * 0.4).exp() * 0.05)
        .collect();
    let mut prev: Vec<f32> = (0..channels).map(|_| normal(&mut rng)).collect();
    let mut t = Tensor2D::zeros(tokens, channels);
    for tok in 0..tokens {
        for c in 0..channels {
            let innov = normal(&mut rng);
            let v = tau * prev[c] + (1.0 - tau * tau).sqrt() * innov;
            prev[c] = v;
            t.set(tok, c, v * chan_scale[c]);
        }
    }
    t
}

/// Small helper so generators can fill-and-return without a mutable binding
/// at the call site.
trait Tap: Sized {
    fn tap(mut self, f: impl FnOnce(&mut Self)) -> Self {
        f(&mut self);
        self
    }
}

impl Tap for Tensor2D {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_is_seeded_and_deterministic() {
        let a = gaussian(16, 16, 1.0, 42);
        let b = gaussian(16, 16, 1.0, 42);
        let c = gaussian(16, 16, 1.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let t = gaussian(64, 64, 2.0, 7);
        let n = t.len() as f32;
        let mean = t.as_slice().iter().sum::<f32>() / n;
        let var = t.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.2, "std {}", var.sqrt());
    }

    #[test]
    fn outliers_increase_kurtosis() {
        let base = gaussian(64, 64, 1.0, 3);
        let heavy = gaussian_with_outliers(64, 64, 1.0, 0.05, 8.0, 3);
        let maxabs = |t: &Tensor2D| t.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(maxabs(&heavy) > maxabs(&base) * 2.0);
    }

    #[test]
    fn correlated_pairs_have_correlation() {
        let t = correlated_pairs(4096, 0.9, 0.0, 11);
        let xs: Vec<f32> = (0..t.rows()).map(|r| t.get(r, 0)).collect();
        let ys: Vec<f32> = (0..t.rows()).map(|r| t.get(r, 1)).collect();
        let n = xs.len() as f32;
        let mx = xs.iter().sum::<f32>() / n;
        let my = ys.iter().sum::<f32>() / n;
        let cov: f32 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mx) * (y - my))
            .sum::<f32>()
            / n;
        let sx = (xs.iter().map(|x| (x - mx).powi(2)).sum::<f32>() / n).sqrt();
        let sy = (ys.iter().map(|y| (y - my).powi(2)).sum::<f32>() / n).sqrt();
        let corr = cov / (sx * sy);
        assert!(corr > 0.8, "corr {corr}");
    }

    #[test]
    fn kv_stream_tokens_are_temporally_correlated() {
        let t = kv_stream(512, 8, 0.9, 5);
        // Lag-1 autocorrelation of channel 0 should be clearly positive.
        let xs: Vec<f32> = (0..t.rows()).map(|r| t.get(r, 0)).collect();
        let n = (xs.len() - 1) as f32;
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let num: f32 = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f32>()
            / n;
        let den: f32 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / xs.len() as f32;
        assert!(num / den > 0.5, "autocorr {}", num / den);
    }

    #[test]
    fn correlated_channels_groups_share_structure() {
        let t = correlated_channels(256, 16, 4, 0.95, 9);
        // Within-group correlation should exceed cross-group correlation.
        let col = |c: usize| -> Vec<f32> { (0..t.rows()).map(|r| t.get(r, c)).collect() };
        let corr = |a: &[f32], b: &[f32]| -> f32 {
            let n = a.len() as f32;
            let ma = a.iter().sum::<f32>() / n;
            let mb = b.iter().sum::<f32>() / n;
            let cov: f32 = a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - ma) * (y - mb))
                .sum::<f32>()
                / n;
            let sa = (a.iter().map(|x| (x - ma).powi(2)).sum::<f32>() / n).sqrt();
            let sb = (b.iter().map(|y| (y - mb).powi(2)).sum::<f32>() / n).sqrt();
            cov / (sa * sb)
        };
        let within = corr(&col(0), &col(1));
        let across = corr(&col(0), &col(8));
        assert!(within > across + 0.3, "within {within} across {across}");
    }
}
