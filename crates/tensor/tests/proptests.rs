//! Property-based tests for the numeric substrate.

use proptest::prelude::*;
use vqllm_tensor::{linalg, metrics, DType, Tensor2D};

fn small_tensor(max_dim: usize) -> impl Strategy<Value = Tensor2D> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |v| Tensor2D::from_vec(r, c, v).expect("sized buffer"))
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(t in small_tensor(12)) {
        prop_assert_eq!(t.transposed().transposed(), t);
    }

    #[test]
    fn storage_bytes_monotone_in_bits(t in small_tensor(8), bits in 1u8..=32) {
        let small = t.storage_bytes(DType::Bits(bits));
        let big = t.storage_bytes(DType::F32);
        prop_assert!(small <= big);
    }

    #[test]
    fn matmul_identity_is_noop(t in small_tensor(10)) {
        let n = t.cols();
        let id = Tensor2D::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 });
        let out = linalg::matmul(&t, &id).unwrap();
        prop_assert!(metrics::allclose(out.as_slice(), t.as_slice(), 1e-4, 1e-4));
    }

    #[test]
    fn matmul_distributes_over_scaling(t in small_tensor(8), s in 0.1f32..4.0) {
        let n = t.cols();
        let diag = Tensor2D::from_fn(n, n, |r, c| if r == c { s } else { 0.0 });
        let scaled = linalg::matmul(&t, &diag).unwrap();
        let mut expect = t.clone();
        expect.map_inplace(|v| v * s);
        prop_assert!(metrics::allclose(scaled.as_slice(), expect.as_slice(), 1e-3, 1e-3));
    }

    #[test]
    fn softmax_is_distribution(mut v in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
        linalg::softmax_inplace(&mut v);
        let sum: f32 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(v.iter().all(|&p| (0.0..=1.0001).contains(&p)));
    }

    #[test]
    fn rope_preserves_norm(v in proptest::collection::vec(-10.0f32..10.0, 2..32), pos in 0usize..4096) {
        let v = if v.len() % 2 == 1 { v[..v.len()-1].to_vec() } else { v };
        let out = linalg::rope(&v, pos, 10000.0);
        let n0: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        let n1: f32 = out.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!((n0 - n1).abs() < 1e-2 * n0.max(1.0));
    }

    #[test]
    fn mse_is_symmetric_and_nonnegative(
        a in proptest::collection::vec(-100.0f32..100.0, 1..128),
        shift in -10.0f32..10.0,
    ) {
        let b: Vec<f32> = a.iter().map(|x| x + shift).collect();
        let m1 = metrics::mse(&a, &b);
        let m2 = metrics::mse(&b, &a);
        prop_assert!((m1 - m2).abs() < 1e-9);
        prop_assert!(m1 >= 0.0);
        // Constant shift of s has MSE exactly s².
        prop_assert!((m1 - f64::from(shift) * f64::from(shift)).abs() < 1e-3);
    }

    #[test]
    fn subvectors_tile_exactly(r in 1usize..8, groups in 1usize..8, w in 1usize..8) {
        let t = Tensor2D::from_fn(r, groups * w, |i, j| (i * 1000 + j) as f32);
        let sv = t.subvectors(w).unwrap();
        prop_assert_eq!(sv.len(), r * groups);
        // Reassembling the subvectors in order reproduces the tensor.
        let flat: Vec<f32> = sv.into_iter().flatten().copied().collect();
        prop_assert_eq!(flat, t.as_slice().to_vec());
    }
}
