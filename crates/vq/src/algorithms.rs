//! The five algorithm presets of the paper's Tbl. II.

use crate::config::{CodebookScope, VqConfig};
use serde::{Deserialize, Serialize};

/// State-of-the-art VQ algorithms the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VqAlgorithm {
    /// QuiP#-4: weight quantization, vector 8, 65536-entry lattice codebook
    /// (256 stored entries + sign bits), 2 residuals → 4-bit equivalent.
    QuipSharp4,
    /// AQLM-3: weight quantization, vector 8, 4096 entries (12-bit,
    /// unaligned indices), 2 residuals → 3-bit equivalent.
    Aqlm3,
    /// GPTVQ-2: weight quantization, vector 4, 256 entries, per-(256×256)
    /// tile codebooks → 2-bit equivalent.
    Gptvq2,
    /// CQ-4: KV-cache quantization, vector 2, 256 entries, per-channel-group
    /// codebooks → 4-bit equivalent.
    Cq4,
    /// CQ-2: KV-cache quantization, vector 4, 256 entries, per-channel-group
    /// codebooks → 2-bit equivalent. The motivation study's configuration
    /// (`VQ<4,8,1>`).
    Cq2,
}

impl VqAlgorithm {
    /// All presets, in the paper's Tbl. II order.
    pub const ALL: [VqAlgorithm; 5] = [
        VqAlgorithm::QuipSharp4,
        VqAlgorithm::Aqlm3,
        VqAlgorithm::Gptvq2,
        VqAlgorithm::Cq4,
        VqAlgorithm::Cq2,
    ];

    /// The weight-quantization subset (GeMM/GeMV kernels).
    pub const WEIGHT: [VqAlgorithm; 3] = [
        VqAlgorithm::QuipSharp4,
        VqAlgorithm::Aqlm3,
        VqAlgorithm::Gptvq2,
    ];

    /// The KV-cache subset (attention kernels).
    pub const KV_CACHE: [VqAlgorithm; 2] = [VqAlgorithm::Cq4, VqAlgorithm::Cq2];

    /// The [`VqConfig`] for this preset.
    ///
    /// # Panics
    ///
    /// Never panics: all presets are valid by construction.
    pub fn config(self) -> VqConfig {
        match self {
            VqAlgorithm::QuipSharp4 => {
                VqConfig::new_lattice(8, 65_536, 256, 2, CodebookScope::PerTensor)
                    .expect("preset is valid")
            }
            VqAlgorithm::Aqlm3 => {
                VqConfig::new(8, 4096, 2, CodebookScope::PerTensor).expect("preset is valid")
            }
            VqAlgorithm::Gptvq2 => VqConfig::new(
                4,
                256,
                1,
                CodebookScope::PerTile {
                    rows: 256,
                    cols: 256,
                },
            )
            .expect("preset is valid"),
            VqAlgorithm::Cq4 => {
                VqConfig::new(2, 256, 1, CodebookScope::PerChannelGroup { channels: 2 })
                    .expect("preset is valid")
            }
            VqAlgorithm::Cq2 => {
                VqConfig::new(4, 256, 1, CodebookScope::PerChannelGroup { channels: 4 })
                    .expect("preset is valid")
            }
        }
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            VqAlgorithm::QuipSharp4 => "QuiP#-4",
            VqAlgorithm::Aqlm3 => "AQLM-3",
            VqAlgorithm::Gptvq2 => "GPTVQ-2",
            VqAlgorithm::Cq4 => "CQ-4",
            VqAlgorithm::Cq2 => "CQ-2",
        }
    }

    /// Whether this algorithm quantizes weights (vs the KV cache).
    pub fn is_weight_algorithm(self) -> bool {
        matches!(
            self,
            VqAlgorithm::QuipSharp4 | VqAlgorithm::Aqlm3 | VqAlgorithm::Gptvq2
        )
    }
}

impl std::fmt::Display for VqAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_compression_ratios() {
        let expect = [
            (VqAlgorithm::QuipSharp4, 0.25),
            (VqAlgorithm::Aqlm3, 0.1875),
            (VqAlgorithm::Gptvq2, 0.125),
            (VqAlgorithm::Cq4, 0.25),
            (VqAlgorithm::Cq2, 0.125),
        ];
        for (algo, ratio) in expect {
            assert!(
                (algo.config().compression_vs_fp16() - ratio).abs() < 1e-9,
                "{algo}: {}",
                algo.config().compression_vs_fp16()
            );
        }
    }

    #[test]
    fn table_ii_parameters() {
        let quip = VqAlgorithm::QuipSharp4.config();
        assert_eq!(
            (quip.vector_size, quip.num_entries, quip.residuals),
            (8, 65536, 2)
        );
        assert!(quip.lattice);
        assert_eq!(quip.stored_entries(), 256);

        let aqlm = VqAlgorithm::Aqlm3.config();
        assert_eq!(
            (aqlm.vector_size, aqlm.num_entries, aqlm.residuals),
            (8, 4096, 2)
        );
        assert_eq!(aqlm.index_bits(), 12, "AQLM's unaligned 12-bit format");

        let gptvq = VqAlgorithm::Gptvq2.config();
        assert_eq!(
            gptvq.scope,
            CodebookScope::PerTile {
                rows: 256,
                cols: 256
            }
        );

        let cq2 = VqAlgorithm::Cq2.config();
        assert_eq!(cq2.descriptor(), "VQ<4,8,1>");
    }

    #[test]
    fn weight_vs_kv_partition() {
        for a in VqAlgorithm::ALL {
            let in_weight = VqAlgorithm::WEIGHT.contains(&a);
            let in_kv = VqAlgorithm::KV_CACHE.contains(&a);
            assert!(in_weight ^ in_kv);
            assert_eq!(a.is_weight_algorithm(), in_weight);
        }
    }
}
