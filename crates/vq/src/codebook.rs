//! Codebooks and their mapping onto tensor regions.
//!
//! A [`Codebook`] is the trained centroid table of one (scope, residual)
//! slice. [`CodebookSet`] owns every codebook of a quantized tensor and
//! answers the question the compute engine keeps asking: *which codebook do
//! I need for element (row, col) at residual r?* — the "codebook switch
//! axes" of the paper's Tbl. III fall directly out of
//! [`CodebookSet::scope_index`].

use crate::config::{CodebookScope, VqConfig};
use crate::kmeans;
use crate::{Result, VqError};
use serde::{Deserialize, Serialize};

/// One trained codebook: `stored_entries × vector_size` centroids, plus the
/// optional QuiP#-style lattice extension where logical entries are a
/// stored entry with a per-element sign pattern applied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Codebook {
    vector_size: usize,
    entries: Vec<f32>,
    lattice: bool,
    /// Element-major mirror of `entries` (`vector_size × stored_entries`):
    /// `interleaved[j · stored + c] == entries[c · vector_size + j]`.
    /// Derived at construction; the SIMD-wide host kernels stream it so
    /// LUT builds and aggregated expansions become contiguous FMA loops
    /// over all stored entries instead of `vector_size`-long strided dots.
    interleaved: Vec<f32>,
}

impl Codebook {
    /// Wraps a flat `stored × vector_size` centroid buffer.
    ///
    /// # Errors
    ///
    /// Returns [`VqError::InvalidConfig`] if the buffer is not a non-empty
    /// multiple of `vector_size`, or (for lattice books) the stored count is
    /// not a power of two.
    pub fn new(entries: Vec<f32>, vector_size: usize, lattice: bool) -> Result<Self> {
        if vector_size == 0 || entries.is_empty() || !entries.len().is_multiple_of(vector_size) {
            return Err(VqError::InvalidConfig {
                what: "codebook buffer length",
                value: entries.len(),
            });
        }
        let stored = entries.len() / vector_size;
        if lattice && !stored.is_power_of_two() {
            return Err(VqError::InvalidConfig {
                what: "lattice stored entries (power of two)",
                value: stored,
            });
        }
        if lattice && vector_size > 16 {
            return Err(VqError::InvalidConfig {
                what: "lattice vector size (sign bits must fit)",
                value: vector_size,
            });
        }
        // Lattice kernels take sign-aware paths over `entries_flat` and
        // never read the mirror — skip it rather than double their
        // centroid memory.
        let interleaved = if lattice {
            Vec::new()
        } else {
            Self::interleave(&entries, vector_size)
        };
        Ok(Codebook {
            vector_size,
            entries,
            lattice,
            interleaved,
        })
    }

    /// Builds the element-major mirror of a `stored × vector_size` buffer.
    fn interleave(entries: &[f32], vector_size: usize) -> Vec<f32> {
        let stored = entries.len() / vector_size;
        let mut interleaved = vec![0.0f32; entries.len()];
        for (c, entry) in entries.chunks_exact(vector_size).enumerate() {
            for (j, &e) in entry.iter().enumerate() {
                interleaved[j * stored + c] = e;
            }
        }
        interleaved
    }

    /// Elements per entry.
    #[inline]
    pub fn vector_size(&self) -> usize {
        self.vector_size
    }

    /// Entries physically stored (and looked up by kernels).
    #[inline]
    pub fn stored_entries(&self) -> usize {
        self.entries.len() / self.vector_size
    }

    /// Flat borrow of the whole centroid storage
    /// (`stored_entries × vector_size`, row-major): host kernels index
    /// `&flat[id * vs..]` directly instead of paying a bounds-computed
    /// slice per lookup.
    #[inline]
    pub fn entries_flat(&self) -> &[f32] {
        &self.entries
    }

    /// Element-major mirror of the centroid storage
    /// (`vector_size × stored_entries`): row `j` holds element `j` of
    /// every stored entry contiguously, so a kernel loop over all entries
    /// at a fixed element — a LUT build (`lut[c] += x[j] · entry_c[j]`) or
    /// an aggregated expansion (`out[j] = Σ_c wsum[c] · entry_c[j]`) —
    /// reads/FMAs a dense `stored_entries`-long run that vectorizes
    /// 8-wide. Derived from [`Codebook::entries_flat`] at construction.
    ///
    /// Empty for lattice books: their per-element sign masks rule out the
    /// table-driven kernels, so no mirror is materialized.
    #[inline]
    pub fn entries_interleaved(&self) -> &[f32] {
        &self.interleaved
    }

    /// For lattice books: how far the sign mask is shifted above the base
    /// entry id (`log2 stored_entries`). Zero for plain books.
    #[inline]
    pub fn sign_shift(&self) -> u32 {
        if self.lattice {
            self.stored_entries().trailing_zeros()
        } else {
            0
        }
    }

    /// Logical entries addressable by an index (`stored × 2^vector_size`
    /// for lattice books).
    pub fn logical_entries(&self) -> usize {
        if self.lattice {
            self.stored_entries() << self.vector_size
        } else {
            self.stored_entries()
        }
    }

    /// Whether this is a lattice (sign-extended) codebook.
    #[inline]
    pub fn is_lattice(&self) -> bool {
        self.lattice
    }

    /// Borrow of stored entry `id` (the table a kernel would cache).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn stored_entry(&self, id: usize) -> &[f32] {
        &self.entries[id * self.vector_size..(id + 1) * self.vector_size]
    }

    /// Stored-entry id that logical index `id` dereferences (identity for
    /// plain books, low bits for lattice books). This is the id whose
    /// *access frequency* matters for cache placement.
    #[inline]
    pub fn stored_id_of(&self, id: u32) -> u32 {
        if self.lattice {
            id & (self.stored_entries() as u32 - 1)
        } else {
            id
        }
    }

    /// Materializes logical entry `id` into `out`.
    ///
    /// For lattice books the high bits of `id` are a sign mask applied
    /// element-wise — the "bit operations" of Tbl. II's footnote.
    /// Allocation-free: writes into the caller's buffer.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != vector_size` or `id` is out of range.
    #[inline]
    pub fn lookup(&self, id: u32, out: &mut [f32]) {
        assert_eq!(out.len(), self.vector_size, "output buffer size");
        assert!(
            (id as usize) < self.logical_entries(),
            "entry id out of range"
        );
        let base = self.stored_id_of(id) as usize;
        let entry = self.stored_entry(base);
        if self.lattice {
            let signs = id >> self.stored_entries().trailing_zeros();
            for (j, (o, &e)) in out.iter_mut().zip(entry).enumerate() {
                *o = if signs & (1 << j) != 0 { -e } else { e };
            }
        } else {
            out.copy_from_slice(entry);
        }
    }

    /// Accumulates logical entry `id` into `out` (`out[j] += entry[j]`,
    /// sign-applied for lattice books) — the residual-accumulation step of
    /// every fused dequantization loop, without a scratch buffer.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != vector_size` or `id` is out of range.
    #[inline]
    pub fn accumulate(&self, id: u32, out: &mut [f32]) {
        assert_eq!(out.len(), self.vector_size, "output buffer size");
        assert!(
            (id as usize) < self.logical_entries(),
            "entry id out of range"
        );
        let entry = self.stored_entry(self.stored_id_of(id) as usize);
        if self.lattice {
            let signs = id >> self.sign_shift();
            for (j, (o, &e)) in out.iter_mut().zip(entry).enumerate() {
                *o += if signs & (1 << j) != 0 { -e } else { e };
            }
        } else {
            for (o, &e) in out.iter_mut().zip(entry) {
                *o += e;
            }
        }
    }

    /// Scaled accumulate: `out[j] += w · entry[j]` for logical entry `id`
    /// (sign-applied for lattice books) — the expansion step of aggregated
    /// kernels, where `w` is the sum of activations that mapped to `id`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != vector_size` or `id` is out of range.
    #[inline]
    pub fn axpy(&self, id: u32, w: f32, out: &mut [f32]) {
        assert_eq!(out.len(), self.vector_size, "output buffer size");
        assert!(
            (id as usize) < self.logical_entries(),
            "entry id out of range"
        );
        let entry = self.stored_entry(self.stored_id_of(id) as usize);
        if self.lattice {
            let signs = id >> self.sign_shift();
            for (j, (o, &e)) in out.iter_mut().zip(entry).enumerate() {
                *o += w * if signs & (1 << j) != 0 { -e } else { e };
            }
        } else {
            for (o, &e) in out.iter_mut().zip(entry) {
                *o += w * e;
            }
        }
    }

    /// Encodes `v` to the nearest logical entry id.
    ///
    /// Plain books scan all stored entries; lattice books pick the sign
    /// mask from `v`'s signs and scan stored entries against `|v|`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != vector_size`.
    pub fn encode(&self, v: &[f32]) -> u32 {
        assert_eq!(v.len(), self.vector_size, "input vector size");
        if self.lattice {
            let mut signs = 0u32;
            let mut abs = vec![0.0f32; self.vector_size];
            for (j, &x) in v.iter().enumerate() {
                if x < 0.0 {
                    signs |= 1 << j;
                }
                abs[j] = x.abs();
            }
            let (base, _) = kmeans::nearest(&abs, &self.entries, self.vector_size);
            (signs << self.stored_entries().trailing_zeros()) | base
        } else {
            kmeans::nearest(v, &self.entries, self.vector_size).0
        }
    }

    /// Bytes this codebook occupies at FP16 entry precision (what a kernel
    /// stages into shared memory).
    pub fn bytes_fp16(&self) -> usize {
        self.entries.len() * 2
    }

    /// Returns a copy with stored entries permuted by `perm` (new position
    /// → old id). Used by the codebook cache's frequency reordering; the
    /// caller is responsible for rewriting indices to match.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..stored_entries()`.
    pub fn reordered(&self, perm: &[u32]) -> Codebook {
        assert_eq!(perm.len(), self.stored_entries(), "permutation length");
        let vs = self.vector_size;
        let mut entries = vec![0.0f32; self.entries.len()];
        for (new_pos, &old_id) in perm.iter().enumerate() {
            entries[new_pos * vs..(new_pos + 1) * vs]
                .copy_from_slice(self.stored_entry(old_id as usize));
        }
        let interleaved = if self.lattice {
            Vec::new()
        } else {
            Self::interleave(&entries, vs)
        };
        Codebook {
            vector_size: vs,
            entries,
            lattice: self.lattice,
            interleaved,
        }
    }
}

/// All codebooks of one quantized tensor: `books[residual][scope]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodebookSet {
    config: VqConfig,
    shape: (usize, usize),
    books: Vec<Vec<Codebook>>,
}

impl CodebookSet {
    /// Assembles a set from per-residual, per-scope codebooks.
    ///
    /// # Errors
    ///
    /// Returns [`VqError::InvalidConfig`] if the nesting does not match
    /// `config.residuals` × `num_scopes`.
    pub fn new(config: VqConfig, shape: (usize, usize), books: Vec<Vec<Codebook>>) -> Result<Self> {
        let scopes = Self::num_scopes(&config, shape);
        if books.len() != config.residuals || books.iter().any(|b| b.len() != scopes) {
            return Err(VqError::InvalidConfig {
                what: "codebook set nesting",
                value: books.len(),
            });
        }
        Ok(CodebookSet {
            config,
            shape,
            books,
        })
    }

    /// Number of distinct codebooks per residual level for `shape`.
    pub fn num_scopes(config: &VqConfig, shape: (usize, usize)) -> usize {
        match config.scope {
            CodebookScope::PerTensor => 1,
            CodebookScope::PerTile { rows, cols } => {
                shape.0.div_ceil(rows) * shape.1.div_ceil(cols)
            }
            CodebookScope::PerChannelGroup { channels } => shape.1.div_ceil(channels),
        }
    }

    /// Scope index owning element `(row, col)`.
    pub fn scope_index(&self, row: usize, col: usize) -> usize {
        match self.config.scope {
            CodebookScope::PerTensor => 0,
            CodebookScope::PerTile { rows, cols } => {
                (row / rows) * self.shape.1.div_ceil(cols) + col / cols
            }
            CodebookScope::PerChannelGroup { channels } => col / channels,
        }
    }

    /// The codebook for residual level `r`, scope `s`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn book(&self, r: usize, s: usize) -> &Codebook {
        &self.books[r][s]
    }

    /// Codebooks per residual level.
    pub fn scopes(&self) -> usize {
        self.books.first().map_or(0, Vec::len)
    }

    /// The configuration this set was trained under.
    pub fn config(&self) -> &VqConfig {
        &self.config
    }

    /// Shape of the quantized tensor.
    pub fn shape(&self) -> (usize, usize) {
        self.shape
    }

    /// Total FP16 bytes across all codebooks (the model-size overhead VQ
    /// pays for its codebooks).
    pub fn total_bytes(&self) -> usize {
        self.books.iter().flatten().map(Codebook::bytes_fp16).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain_book() -> Codebook {
        // 4 entries × 2 dims.
        Codebook::new(vec![0.0, 0.0, 1.0, 1.0, -1.0, 1.0, 2.0, -2.0], 2, false).unwrap()
    }

    #[test]
    fn lookup_and_encode_roundtrip() {
        let cb = plain_book();
        let mut out = [0.0f32; 2];
        for id in 0..4 {
            cb.lookup(id, &mut out);
            assert_eq!(cb.encode(&out), id);
        }
    }

    #[test]
    fn encode_picks_nearest() {
        let cb = plain_book();
        assert_eq!(cb.encode(&[0.9, 1.1]), 1);
        assert_eq!(cb.encode(&[0.1, -0.1]), 0);
    }

    #[test]
    fn lattice_lookup_applies_signs() {
        // 2 stored entries × 2 dims, lattice.
        let cb = Codebook::new(vec![1.0, 2.0, 3.0, 4.0], 2, true).unwrap();
        assert_eq!(cb.stored_entries(), 2);
        assert_eq!(cb.logical_entries(), 8); // 2 × 2^2
        let mut out = [0.0f32; 2];
        // id = signs(0b10) << 1 | base(1) = 0b101 = 5 → entry 1 with dim-1
        // negated.
        cb.lookup(5, &mut out);
        assert_eq!(out, [3.0, -4.0]);
    }

    #[test]
    fn lattice_encode_roundtrips_signs() {
        let cb = Codebook::new(vec![1.0, 2.0, 3.0, 4.0], 2, true).unwrap();
        let id = cb.encode(&[-1.1, 1.9]);
        let mut out = [0.0f32; 2];
        cb.lookup(id, &mut out);
        assert_eq!(out, [-1.0, 2.0]);
        // Stored id only reflects the base entry.
        assert_eq!(cb.stored_id_of(id), 0);
    }

    #[test]
    fn entries_flat_and_accumulate_match_lookup() {
        let plain = plain_book();
        assert_eq!(plain.entries_flat().len(), 8);
        assert_eq!(plain.sign_shift(), 0);
        let lattice = Codebook::new(vec![1.0, 2.0, 3.0, 4.0], 2, true).unwrap();
        assert_eq!(lattice.sign_shift(), 1);
        for book in [plain, lattice] {
            for id in 0..book.logical_entries() as u32 {
                let mut via_lookup = vec![0.5f32; book.vector_size()];
                let mut via_acc = vec![0.5f32; book.vector_size()];
                let mut entry = vec![0.0f32; book.vector_size()];
                book.lookup(id, &mut entry);
                for (o, &e) in via_lookup.iter_mut().zip(&entry) {
                    *o += e;
                }
                book.accumulate(id, &mut via_acc);
                assert_eq!(via_acc, via_lookup, "id {id}");
                // Flat storage indexes the same centroids.
                let base = book.stored_id_of(id) as usize;
                let vs = book.vector_size();
                assert_eq!(
                    &book.entries_flat()[base * vs..(base + 1) * vs],
                    book.stored_entry(base)
                );
            }
        }
    }

    #[test]
    fn interleaved_mirrors_entries() {
        let book = plain_book();
        let stored = book.stored_entries();
        let vs = book.vector_size();
        let inter = book.entries_interleaved();
        assert_eq!(inter.len(), book.entries_flat().len());
        for c in 0..stored {
            for j in 0..vs {
                assert_eq!(inter[j * stored + c], book.stored_entry(c)[j]);
            }
        }
        // Reordering rebuilds the mirror consistently.
        let re = book.reordered(&[2, 0, 3, 1]);
        assert_eq!(re.entries_interleaved()[0], re.stored_entry(0)[0]);
        // Lattice books take sign-aware kernel paths and carry no mirror.
        let lattice = Codebook::new(vec![1.0, 2.0, 3.0, 4.0], 2, true).unwrap();
        assert!(lattice.entries_interleaved().is_empty());
    }

    #[test]
    fn axpy_is_scaled_accumulate() {
        let plain = plain_book();
        let lattice = Codebook::new(vec![1.0, 2.0, 3.0, 4.0], 2, true).unwrap();
        for book in [plain, lattice] {
            for id in 0..book.logical_entries() as u32 {
                let mut entry = vec![0.0f32; book.vector_size()];
                book.lookup(id, &mut entry);
                let mut out = vec![0.25f32; book.vector_size()];
                book.axpy(id, -1.5, &mut out);
                for (o, &e) in out.iter().zip(&entry) {
                    assert!((o - (0.25 - 1.5 * e)).abs() < 1e-6, "id {id}");
                }
            }
        }
    }

    #[test]
    fn reorder_permutes_entries() {
        let cb = plain_book();
        let re = cb.reordered(&[2, 0, 3, 1]);
        assert_eq!(re.stored_entry(0), cb.stored_entry(2));
        assert_eq!(re.stored_entry(3), cb.stored_entry(1));
    }

    #[test]
    fn scope_indices_per_variant() {
        let per_tile =
            VqConfig::new(4, 256, 1, CodebookScope::PerTile { rows: 16, cols: 16 }).unwrap();
        let books = vec![vec![plain_book_4(); 4]];
        let set = CodebookSet::new(per_tile, (32, 32), books).unwrap();
        assert_eq!(set.scopes(), 4);
        assert_eq!(set.scope_index(0, 0), 0);
        assert_eq!(set.scope_index(0, 16), 1);
        assert_eq!(set.scope_index(16, 0), 2);
        assert_eq!(set.scope_index(31, 31), 3);

        let per_group =
            VqConfig::new(4, 256, 1, CodebookScope::PerChannelGroup { channels: 8 }).unwrap();
        let set = CodebookSet::new(per_group, (32, 32), vec![vec![plain_book_4(); 4]]).unwrap();
        assert_eq!(set.scope_index(5, 0), 0);
        assert_eq!(set.scope_index(5, 9), 1);
        assert_eq!(set.scope_index(31, 31), 3);
    }

    fn plain_book_4() -> Codebook {
        Codebook::new((0..256 * 4).map(|i| i as f32).collect(), 4, false).unwrap()
    }

    #[test]
    fn set_rejects_wrong_nesting() {
        let cfg = VqConfig::new(4, 256, 2, CodebookScope::PerTensor).unwrap();
        // Only one residual level supplied for residuals = 2.
        assert!(CodebookSet::new(cfg, (8, 8), vec![vec![plain_book_4()]]).is_err());
    }

    #[test]
    fn total_bytes_counts_all_books() {
        let cfg = VqConfig::new(4, 256, 1, CodebookScope::PerChannelGroup { channels: 4 }).unwrap();
        let books = vec![vec![plain_book_4(), plain_book_4()]];
        let set = CodebookSet::new(cfg, (8, 8), books).unwrap();
        assert_eq!(set.total_bytes(), 2 * 256 * 4 * 2);
    }
}
