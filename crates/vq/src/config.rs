//! VQ configuration: the `VQ<vector_size, log2 #entry, residual>` triple of
//! the paper's Tbl. I, plus the codebook *scope* (which part of the tensor
//! each codebook is trained on — the property §III-C identifies as the
//! source of the traffic/conflict trade-off differences between QuiP#,
//! AQLM, GPTVQ and CQ).

use crate::{Result, VqError};
use serde::{Deserialize, Serialize};

/// Which slice of a tensor shares one codebook (per residual level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodebookScope {
    /// One codebook for the whole tensor (QuiP#, AQLM). No duplicated
    /// Global→Shared traffic, but large per-block footprint.
    PerTensor,
    /// One codebook per `rows × cols` tile (GPTVQ trains per (256, 256)
    /// weight tile).
    PerTile {
        /// Tile height in tensor rows.
        rows: usize,
        /// Tile width in tensor columns.
        cols: usize,
    },
    /// One codebook per group of `channels` consecutive columns, trained
    /// across all rows/tokens (CQ couples channels; Fig. 11 shows one
    /// codebook per 4 channels of a head).
    PerChannelGroup {
        /// Channels (columns) per codebook.
        channels: usize,
    },
}

/// A full VQ algorithm configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VqConfig {
    /// Elements quantized at once (paper: *vector size*).
    pub vector_size: usize,
    /// Number of codebook entries (paper: *#Entry*).
    pub num_entries: usize,
    /// Residual quantization rounds (paper: *Residual*; 1 = no residual).
    pub residuals: usize,
    /// Which tensor slice shares a codebook.
    pub scope: CodebookScope,
    /// Lattice-style codebook (QuiP#): `num_entries` logical entries are
    /// synthesized from `lattice_base` stored entries plus per-element sign
    /// bits, so only `lattice_base` entries are ever *looked up* (Tbl. II
    /// footnote).
    pub lattice: bool,
    /// Stored entries when `lattice` is set (256 for QuiP#).
    pub lattice_base: usize,
}

impl VqConfig {
    /// Creates a plain (non-lattice) configuration.
    ///
    /// # Errors
    ///
    /// Returns [`VqError::InvalidConfig`] when a field is zero, the entry
    /// count is not a power of two, or the scope is inconsistent with the
    /// vector size.
    pub fn new(
        vector_size: usize,
        num_entries: usize,
        residuals: usize,
        scope: CodebookScope,
    ) -> Result<Self> {
        let cfg = VqConfig {
            vector_size,
            num_entries,
            residuals,
            scope,
            lattice: false,
            lattice_base: 0,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Creates a lattice configuration (QuiP#-style): `num_entries` logical
    /// entries synthesized from `lattice_base` stored ones.
    ///
    /// # Errors
    ///
    /// Same conditions as [`VqConfig::new`], plus `lattice_base` must be a
    /// power of two no larger than `num_entries`.
    pub fn new_lattice(
        vector_size: usize,
        num_entries: usize,
        lattice_base: usize,
        residuals: usize,
        scope: CodebookScope,
    ) -> Result<Self> {
        let cfg = VqConfig {
            vector_size,
            num_entries,
            residuals,
            scope,
            lattice: true,
            lattice_base,
        };
        cfg.validate()?;
        if !lattice_base.is_power_of_two() || lattice_base > num_entries {
            return Err(VqError::InvalidConfig {
                what: "lattice_base",
                value: lattice_base,
            });
        }
        // The logical entry space must exactly equal the index space:
        // every index is `log2 num_entries` bits wide and decodes as
        // (sign mask << log2 lattice_base) | base id, so
        // num_entries = lattice_base × 2^vector_size or some packed
        // indices would dereference out of range (or be unreachable).
        if num_entries != lattice_base << vector_size {
            return Err(VqError::InvalidConfig {
                what: "lattice num_entries (must be lattice_base << vector_size)",
                value: num_entries,
            });
        }
        Ok(cfg)
    }

    fn validate(&self) -> Result<()> {
        if self.vector_size == 0 {
            return Err(VqError::InvalidConfig {
                what: "vector_size",
                value: 0,
            });
        }
        if self.residuals == 0 {
            return Err(VqError::InvalidConfig {
                what: "residuals",
                value: 0,
            });
        }
        if !self.num_entries.is_power_of_two() || self.num_entries < 2 {
            return Err(VqError::InvalidConfig {
                what: "num_entries (must be a power of two ≥ 2)",
                value: self.num_entries,
            });
        }
        if let CodebookScope::PerChannelGroup { channels } = self.scope {
            if channels == 0 || channels % self.vector_size != 0 {
                return Err(VqError::InvalidConfig {
                    what: "channel group (must be a positive multiple of vector_size)",
                    value: channels,
                });
            }
        }
        if let CodebookScope::PerTile { rows, cols } = self.scope {
            if rows == 0 || cols == 0 || cols % self.vector_size != 0 {
                return Err(VqError::InvalidConfig {
                    what: "tile shape (cols must be a multiple of vector_size)",
                    value: cols,
                });
            }
        }
        Ok(())
    }

    /// Bits per stored index (`log2 #entry`).
    pub fn index_bits(&self) -> u32 {
        self.num_entries.trailing_zeros()
    }

    /// Equivalent bits per original element:
    /// `index_bits × residuals / vector_size`.
    ///
    /// ```
    /// use vqllm_vq::{CodebookScope, VqConfig};
    /// // CQ-2: VQ<4, 2^8, 1> → 2 bits/element = 12.5 % of FP16.
    /// let cq2 = VqConfig::new(4, 256, 1, CodebookScope::PerChannelGroup { channels: 4 }).unwrap();
    /// assert_eq!(cq2.equivalent_bits(), 2.0);
    /// ```
    pub fn equivalent_bits(&self) -> f64 {
        f64::from(self.index_bits()) * self.residuals as f64 / self.vector_size as f64
    }

    /// Compression ratio against FP16 (Tbl. II's first column).
    pub fn compression_vs_fp16(&self) -> f64 {
        self.equivalent_bits() / 16.0
    }

    /// Entries that are physically stored and looked up per codebook
    /// (differs from `num_entries` only for lattice codebooks).
    pub fn stored_entries(&self) -> usize {
        if self.lattice {
            self.lattice_base
        } else {
            self.num_entries
        }
    }

    /// Bytes of one stored codebook at FP16 entry precision.
    pub fn codebook_bytes(&self) -> usize {
        self.stored_entries() * self.vector_size * 2 * self.residuals
    }

    /// Bytes of a single codebook entry at FP16 precision.
    pub fn entry_bytes(&self) -> usize {
        self.vector_size * 2
    }

    /// Packed index bytes for quantizing an `rows × cols` tensor.
    pub fn index_bytes(&self, rows: usize, cols: usize) -> usize {
        let vectors = rows * cols / self.vector_size;
        (vectors * self.index_bits() as usize * self.residuals).div_ceil(8)
    }

    /// Short `VQ<x,y,z>` descriptor as used throughout the paper.
    pub fn descriptor(&self) -> String {
        format!(
            "VQ<{},{},{}>",
            self.vector_size,
            self.index_bits(),
            self.residuals
        )
    }
}

impl std::fmt::Display for VqConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.descriptor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalent_bits_match_table_ii() {
        let quip = VqConfig::new_lattice(8, 65536, 256, 2, CodebookScope::PerTensor).unwrap();
        assert_eq!(quip.equivalent_bits(), 4.0);
        assert_eq!(quip.compression_vs_fp16(), 0.25);

        let aqlm = VqConfig::new(8, 4096, 2, CodebookScope::PerTensor).unwrap();
        assert_eq!(aqlm.equivalent_bits(), 3.0);
        assert!((aqlm.compression_vs_fp16() - 0.1875).abs() < 1e-12);

        let gptvq = VqConfig::new(
            4,
            256,
            1,
            CodebookScope::PerTile {
                rows: 256,
                cols: 256,
            },
        )
        .unwrap();
        assert_eq!(gptvq.equivalent_bits(), 2.0);

        let cq4 = VqConfig::new(2, 256, 1, CodebookScope::PerChannelGroup { channels: 2 }).unwrap();
        assert_eq!(cq4.equivalent_bits(), 4.0);

        let cq2 = VqConfig::new(4, 256, 1, CodebookScope::PerChannelGroup { channels: 4 }).unwrap();
        assert_eq!(cq2.equivalent_bits(), 2.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(VqConfig::new(0, 256, 1, CodebookScope::PerTensor).is_err());
        assert!(VqConfig::new(4, 255, 1, CodebookScope::PerTensor).is_err());
        assert!(VqConfig::new(4, 256, 0, CodebookScope::PerTensor).is_err());
        assert!(VqConfig::new(4, 256, 1, CodebookScope::PerChannelGroup { channels: 6 }).is_err());
        assert!(VqConfig::new(4, 256, 1, CodebookScope::PerTile { rows: 0, cols: 256 }).is_err());
        assert!(VqConfig::new_lattice(8, 65536, 300, 2, CodebookScope::PerTensor).is_err());
        // Index space must equal the logical entry space: 16 << 2 = 64
        // logical entries but 8-bit (256-value) indices.
        assert!(VqConfig::new_lattice(2, 256, 16, 1, CodebookScope::PerTensor).is_err());
    }

    #[test]
    fn lattice_stores_base_entries_only() {
        let quip = VqConfig::new_lattice(8, 65536, 256, 2, CodebookScope::PerTensor).unwrap();
        assert_eq!(quip.stored_entries(), 256);
        // Tbl. V: QuiP# codebook ≈ 2 KB per block... 256 entries × 8 × 2 B
        // per residual slice.
        assert_eq!(quip.codebook_bytes(), 256 * 8 * 2 * 2);
    }

    #[test]
    fn index_bytes_packs_tightly() {
        // AQLM-3: 12-bit indices, 2 residuals over 8-wide vectors.
        let aqlm = VqConfig::new(8, 4096, 2, CodebookScope::PerTensor).unwrap();
        // 16 elements = 2 vectors = 2 × 12 × 2 bits = 48 bits = 6 bytes.
        assert_eq!(aqlm.index_bytes(1, 16), 6);
    }

    #[test]
    fn descriptor_matches_paper_notation() {
        let cq2 = VqConfig::new(4, 256, 1, CodebookScope::PerChannelGroup { channels: 4 }).unwrap();
        assert_eq!(cq2.descriptor(), "VQ<4,8,1>");
    }
}
