//! K-means clustering with k-means++ seeding.
//!
//! The codebook-training workhorse (paper Fig. 1: "conduct k-means
//! clustering to group these sub-vectors into #Entry clusters"). Points are
//! flat `f32` slices (`n × dim`, row-major) to keep the inner distance loop
//! allocation-free.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// Flat `k × dim` centroid matrix.
    pub centroids: Vec<f32>,
    /// Dimensionality of points/centroids.
    pub dim: usize,
    /// Cluster id per input point.
    pub assignments: Vec<u32>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Lloyd iterations actually executed.
    pub iterations: usize,
}

/// Tuning knobs for [`kmeans`].
#[derive(Debug, Clone, Copy)]
pub struct KmeansOptions {
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when relative inertia improvement drops below this.
    pub tol: f64,
    /// Train on at most this many points (sampled uniformly); all points
    /// are still assigned at the end. Large-tensor codebooks do not need
    /// every sub-vector to converge.
    pub train_sample: usize,
}

impl Default for KmeansOptions {
    fn default() -> Self {
        KmeansOptions {
            max_iters: 12,
            tol: 1e-4,
            train_sample: 65_536,
        }
    }
}

/// Squared Euclidean distance between two `dim`-length slices.
#[inline]
fn dist2(a: &[f32], b: &[f32]) -> f32 {
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// Index of the nearest centroid and its squared distance.
#[inline]
pub fn nearest(point: &[f32], centroids: &[f32], dim: usize) -> (u32, f32) {
    let mut best = 0u32;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.chunks_exact(dim).enumerate() {
        let d = dist2(point, c);
        if d < best_d {
            best_d = d;
            best = i as u32;
        }
    }
    (best, best_d)
}

/// Runs k-means on `points` (flat `n × dim`) for `k` clusters.
///
/// Uses k-means++ seeding on a training subsample, Lloyd iterations with
/// empty-cluster repair (an empty cluster is re-seeded on the point
/// farthest from its centroid), then assigns *all* points.
///
/// # Panics
///
/// Panics if `dim == 0`, `k == 0`, or `points.len()` is not a multiple of
/// `dim`.
pub fn kmeans(
    points: &[f32],
    dim: usize,
    k: usize,
    seed: u64,
    opts: &KmeansOptions,
) -> KmeansResult {
    assert!(dim > 0 && k > 0, "dim and k must be positive");
    assert_eq!(points.len() % dim, 0, "points must be n × dim");
    let n = points.len() / dim;
    assert!(n > 0, "need at least one point");

    let mut rng = StdRng::seed_from_u64(seed);

    // Training subsample (uniform without replacement when sampling).
    let train_idx: Vec<usize> = if n <= opts.train_sample {
        (0..n).collect()
    } else {
        // Floyd-ish sampling: step through with random stride; uniform
        // enough for codebook training and deterministic.
        let stride = n as f64 / opts.train_sample as f64;
        (0..opts.train_sample)
            .map(|i| {
                ((i as f64 * stride) as usize + rng.gen_range(0..stride.max(1.0) as usize + 1))
                    .min(n - 1)
            })
            .collect()
    };
    let t = train_idx.len();
    let point = |i: usize| -> &[f32] { &points[i * dim..(i + 1) * dim] };

    // --- k-means++ seeding on the training set ---
    let mut centroids = vec![0.0f32; k * dim];
    let first = train_idx[rng.gen_range(0..t)];
    centroids[..dim].copy_from_slice(point(first));
    let mut min_d2: Vec<f32> = train_idx
        .iter()
        .map(|&i| dist2(point(i), &centroids[..dim]))
        .collect();
    for c in 1..k {
        let total: f64 = min_d2.iter().map(|&d| f64::from(d)).sum();
        let chosen = if total <= f64::EPSILON {
            // All points identical / already covered: random pick.
            rng.gen_range(0..t)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = t - 1;
            for (j, &d) in min_d2.iter().enumerate() {
                target -= f64::from(d);
                if target <= 0.0 {
                    idx = j;
                    break;
                }
            }
            idx
        };
        let src = point(train_idx[chosen]).to_vec();
        centroids[c * dim..(c + 1) * dim].copy_from_slice(&src);
        for (j, &i) in train_idx.iter().enumerate() {
            let d = dist2(point(i), &src);
            if d < min_d2[j] {
                min_d2[j] = d;
            }
        }
    }

    // --- Lloyd iterations on the training set ---
    let mut train_assign = vec![0u32; t];
    let mut prev_inertia = f64::INFINITY;
    let mut iters_done = 0;
    for iter in 0..opts.max_iters {
        iters_done = iter + 1;
        let mut inertia = 0.0f64;
        for (j, &i) in train_idx.iter().enumerate() {
            let (a, d) = nearest(point(i), &centroids, dim);
            train_assign[j] = a;
            inertia += f64::from(d);
        }

        // Recompute centroids.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0usize; k];
        for (j, &i) in train_idx.iter().enumerate() {
            let a = train_assign[j] as usize;
            counts[a] += 1;
            for (s, &v) in sums[a * dim..(a + 1) * dim].iter_mut().zip(point(i)) {
                *s += f64::from(v);
            }
        }
        // Empty-cluster repair: seed on the point currently farthest from
        // its centroid.
        for c in 0..k {
            if counts[c] == 0 {
                let (far_j, _) = train_idx
                    .iter()
                    .enumerate()
                    .map(|(j, &i)| {
                        (
                            j,
                            dist2(
                                point(i),
                                &centroids[train_assign[j] as usize * dim..][..dim],
                            ),
                        )
                    })
                    .fold((0, -1.0f32), |acc, x| if x.1 > acc.1 { x } else { acc });
                let src = point(train_idx[far_j]).to_vec();
                centroids[c * dim..(c + 1) * dim].copy_from_slice(&src);
                counts[c] = 1;
                for (s, &v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(&src) {
                    *s = f64::from(v);
                }
                train_assign[far_j] = c as u32;
            } else {
                for (ci, s) in centroids[c * dim..(c + 1) * dim]
                    .iter_mut()
                    .zip(&sums[c * dim..(c + 1) * dim])
                {
                    *ci = (s / counts[c] as f64) as f32;
                }
            }
        }

        if prev_inertia.is_finite()
            && (prev_inertia - inertia).abs() <= opts.tol * prev_inertia.abs()
        {
            break;
        }
        prev_inertia = inertia;
    }

    // --- Final assignment of all points ---
    let mut assignments = vec![0u32; n];
    let mut inertia = 0.0f64;
    for (i, slot) in assignments.iter_mut().enumerate() {
        let (a, d) = nearest(point(i), &centroids, dim);
        *slot = a;
        inertia += f64::from(d);
    }

    KmeansResult {
        centroids,
        dim,
        assignments,
        inertia,
        iterations: iters_done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(n_per: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::with_capacity(n_per * 2 * 2);
        for _ in 0..n_per {
            pts.push(5.0 + rng.gen_range(-0.5f32..0.5));
            pts.push(5.0 + rng.gen_range(-0.5f32..0.5));
        }
        for _ in 0..n_per {
            pts.push(-5.0 + rng.gen_range(-0.5f32..0.5));
            pts.push(-5.0 + rng.gen_range(-0.5f32..0.5));
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs(100, 1);
        let r = kmeans(&pts, 2, 2, 42, &KmeansOptions::default());
        // Centroids near (5,5) and (-5,-5) in some order.
        let c0 = &r.centroids[0..2];
        let c1 = &r.centroids[2..4];
        let near = |c: &[f32], x: f32| (c[0] - x).abs() < 1.0 && (c[1] - x).abs() < 1.0;
        assert!((near(c0, 5.0) && near(c1, -5.0)) || (near(c0, -5.0) && near(c1, 5.0)));
        // First 100 points share a cluster, last 100 the other.
        assert!(r.assignments[..100].windows(2).all(|w| w[0] == w[1]));
        assert!(r.assignments[100..].windows(2).all(|w| w[0] == w[1]));
        assert_ne!(r.assignments[0], r.assignments[150]);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 5.0, 5.0];
        let r = kmeans(&pts, 2, 4, 7, &KmeansOptions::default());
        assert!(r.inertia < 1e-9, "inertia {}", r.inertia);
    }

    #[test]
    fn deterministic_under_seed() {
        let pts = two_blobs(64, 3);
        let a = kmeans(&pts, 2, 4, 11, &KmeansOptions::default());
        let b = kmeans(&pts, 2, 4, 11, &KmeansOptions::default());
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn handles_more_clusters_than_distinct_points() {
        // 4 identical points, k = 3: must not panic, must assign all.
        let pts = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let r = kmeans(&pts, 2, 3, 5, &KmeansOptions::default());
        assert_eq!(r.assignments.len(), 4);
    }

    #[test]
    fn subsampled_training_still_assigns_everything() {
        let pts = two_blobs(5000, 9);
        let opts = KmeansOptions {
            train_sample: 256,
            ..Default::default()
        };
        let r = kmeans(&pts, 2, 2, 1, &opts);
        assert_eq!(r.assignments.len(), 10_000);
        assert_ne!(r.assignments[0], r.assignments[9_999]);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let pts = two_blobs(200, 13);
        let r2 = kmeans(&pts, 2, 2, 1, &KmeansOptions::default());
        let r8 = kmeans(&pts, 2, 8, 1, &KmeansOptions::default());
        assert!(r8.inertia <= r2.inertia);
    }

    #[test]
    fn nearest_returns_argmin() {
        let centroids = vec![0.0, 0.0, 10.0, 10.0];
        let (id, d) = nearest(&[9.0, 9.0], &centroids, 2);
        assert_eq!(id, 1);
        assert!((d - 2.0).abs() < 1e-6);
    }
}
