//! The quantization / dequantization pipeline (paper Fig. 1).
//!
//! [`VqQuantizer::quantize`] splits a tensor into `vector_size`-wide
//! sub-vectors, trains one codebook per (scope, residual) slice with
//! k-means, encodes every sub-vector, subtracts the reconstruction, and
//! repeats for each residual round. [`QuantizedTensor::dequantize`] is the
//! exact inverse path a fused kernel performs on the fly.

use crate::codebook::{Codebook, CodebookSet};
use crate::config::VqConfig;
use crate::kmeans::{kmeans, KmeansOptions};
use crate::packing::PackedIndices;
use crate::{Result, VqError};
use serde::{Deserialize, Serialize};
use vqllm_tensor::Tensor2D;

/// Trains codebooks and encodes tensors under one [`VqConfig`].
#[derive(Debug, Clone)]
pub struct VqQuantizer {
    config: VqConfig,
    opts: KmeansOptions,
}

impl VqQuantizer {
    /// Creates a quantizer with default k-means options.
    pub fn new(config: VqConfig) -> Self {
        VqQuantizer {
            config,
            opts: KmeansOptions::default(),
        }
    }

    /// Overrides the k-means training options.
    pub fn with_options(mut self, opts: KmeansOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &VqConfig {
        &self.config
    }

    /// Quantizes `tensor`, training fresh codebooks.
    ///
    /// # Errors
    ///
    /// Returns [`VqError::IncompatibleShape`] if the column count is not a
    /// multiple of the vector size, or [`VqError::InsufficientData`] if a
    /// scope has fewer sub-vectors than codebook entries *stored* (lattice
    /// books only need their base entries).
    pub fn quantize(&self, tensor: &Tensor2D, seed: u64) -> Result<QuantizedTensor> {
        let cfg = &self.config;
        let (rows, cols) = tensor.shape();
        if rows == 0 || cols == 0 || cols % cfg.vector_size != 0 {
            return Err(VqError::IncompatibleShape {
                what: "quantize (cols must be a positive multiple of vector_size)",
                shape: tensor.shape(),
            });
        }

        let vs = cfg.vector_size;
        let col_groups = cols / vs;
        let num_scopes = CodebookSet::num_scopes(cfg, (rows, cols));
        let k = cfg.stored_entries();

        // Map each (row, col_group) sub-vector to its scope once.
        let scope_of = |row: usize, group: usize| -> usize {
            scope_index_static(cfg, (rows, cols), row, group * vs)
        };

        let mut residual = tensor.clone();
        let mut books: Vec<Vec<Codebook>> = Vec::with_capacity(cfg.residuals);
        let mut streams: Vec<PackedIndices> = Vec::with_capacity(cfg.residuals);

        for r in 0..cfg.residuals {
            // Gather sub-vectors per scope (flat buffers for k-means).
            let mut per_scope: Vec<Vec<f32>> = vec![Vec::new(); num_scopes];
            for row in 0..rows {
                let data = residual.row(row);
                for g in 0..col_groups {
                    let s = scope_of(row, g);
                    let sv = &data[g * vs..(g + 1) * vs];
                    if cfg.lattice {
                        per_scope[s].extend(sv.iter().map(|v| v.abs()));
                    } else {
                        per_scope[s].extend_from_slice(sv);
                    }
                }
            }

            // Train one codebook per scope.
            let mut round_books = Vec::with_capacity(num_scopes);
            for (s, pts) in per_scope.iter().enumerate() {
                let n = pts.len() / vs;
                if n < k {
                    return Err(VqError::InsufficientData {
                        points: n,
                        entries: k,
                    });
                }
                let km = kmeans(pts, vs, k, seed ^ ((r as u64) << 32) ^ s as u64, &self.opts);
                round_books.push(Codebook::new(km.centroids, vs, cfg.lattice)?);
            }

            // Encode every sub-vector against its scope's codebook and
            // subtract the reconstruction for the next residual round.
            let mut indices = Vec::with_capacity(rows * col_groups);
            let mut recon = vec![0.0f32; vs];
            for row in 0..rows {
                for g in 0..col_groups {
                    let s = scope_of(row, g);
                    let book = &round_books[s];
                    let sv: Vec<f32> = residual.row(row)[g * vs..(g + 1) * vs].to_vec();
                    let id = book.encode(&sv);
                    indices.push(id);
                    book.lookup(id, &mut recon);
                    let dst = residual.row_mut(row);
                    for (j, &rv) in recon.iter().enumerate() {
                        dst[g * vs + j] -= rv;
                    }
                }
            }

            streams.push(PackedIndices::pack(&indices, cfg.index_bits() as u8)?);
            books.push(round_books);
        }

        Ok(QuantizedTensor {
            config: *cfg,
            shape: (rows, cols),
            codebooks: CodebookSet::new(*cfg, (rows, cols), books)?,
            indices: streams,
        })
    }
}

fn scope_index_static(cfg: &VqConfig, shape: (usize, usize), row: usize, col: usize) -> usize {
    use crate::config::CodebookScope::*;
    match cfg.scope {
        PerTensor => 0,
        PerTile { rows, cols } => (row / rows) * shape.1.div_ceil(cols) + col / cols,
        PerChannelGroup { channels } => col / channels,
    }
}

/// A VQ-compressed tensor: packed index streams plus trained codebooks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    config: VqConfig,
    shape: (usize, usize),
    codebooks: CodebookSet,
    indices: Vec<PackedIndices>,
}

impl QuantizedTensor {
    /// Assembles a quantized tensor from pre-trained parts — the path a
    /// serving process takes when loading a quantized checkpoint (or a
    /// bench builds a large synthetic operand) instead of re-running
    /// k-means via [`VqQuantizer::quantize`].
    ///
    /// Index validity is implied by the bit width: every packed value is
    /// `< 2^index_bits = num_entries`, which equals each book's logical
    /// entry count (checked below, and enforced for lattice configs by
    /// [`VqConfig::new_lattice`]), so no O(elements) range scan is needed.
    ///
    /// # Errors
    ///
    /// Returns [`VqError::IncompatibleShape`] if the shape is not a
    /// positive multiple of the vector size or disagrees with the codebook
    /// set, and [`VqError::InvalidConfig`] if the stream count, stream
    /// lengths, bit widths, or per-book entry counts don't match `config`.
    pub fn from_parts(
        codebooks: CodebookSet,
        indices: Vec<PackedIndices>,
    ) -> Result<QuantizedTensor> {
        let config = *codebooks.config();
        let shape = codebooks.shape();
        let (rows, cols) = shape;
        if rows == 0 || cols == 0 || cols % config.vector_size != 0 {
            return Err(VqError::IncompatibleShape {
                what: "from_parts (cols must be a positive multiple of vector_size)",
                shape,
            });
        }
        if indices.len() != config.residuals {
            return Err(VqError::InvalidConfig {
                what: "from_parts stream count (must equal residuals)",
                value: indices.len(),
            });
        }
        // Every book must expose exactly the index space the packed codes
        // address, or decodes would panic (or silently alias) later.
        for r in 0..config.residuals {
            for s in 0..codebooks.scopes() {
                let book = codebooks.book(r, s);
                if book.vector_size() != config.vector_size
                    || book.is_lattice() != config.lattice
                    || book.logical_entries() != config.num_entries
                {
                    return Err(VqError::InvalidConfig {
                        what: "from_parts codebook (entry count / vector size / lattice \
                               flag must match the config)",
                        value: book.logical_entries(),
                    });
                }
            }
        }
        let vectors = rows * (cols / config.vector_size);
        for stream in &indices {
            if stream.len() != vectors {
                return Err(VqError::InvalidConfig {
                    what: "from_parts stream length (must equal sub-vector count)",
                    value: stream.len(),
                });
            }
            if u32::from(stream.bits()) != config.index_bits() {
                return Err(VqError::InvalidConfig {
                    what: "from_parts stream bit width (must equal index_bits)",
                    value: stream.bits() as usize,
                });
            }
        }
        Ok(QuantizedTensor {
            config,
            shape,
            codebooks,
            indices,
        })
    }

    /// The configuration this tensor was quantized under.
    pub fn config(&self) -> &VqConfig {
        &self.config
    }

    /// Original tensor shape.
    pub fn shape(&self) -> (usize, usize) {
        self.shape
    }

    /// Column groups per row (`cols / vector_size`).
    pub fn col_groups(&self) -> usize {
        self.shape.1 / self.config.vector_size
    }

    /// The trained codebooks.
    pub fn codebooks(&self) -> &CodebookSet {
        &self.codebooks
    }

    /// Packed index stream of residual round `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= residuals`.
    pub fn index_stream(&self, r: usize) -> &PackedIndices {
        &self.indices[r]
    }

    /// Logical entry id for residual `r`, element row `row`, column group
    /// `group`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn index_at(&self, r: usize, row: usize, group: usize) -> u32 {
        self.indices[r].get(row * self.col_groups() + group)
    }

    /// Reconstructs the sub-vector at (`row`, `group`) into `out`,
    /// accumulating all residual rounds — exactly what a fused kernel's
    /// dequantization stage computes.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != vector_size` or the position is out of range.
    pub fn dequantize_subvector(&self, row: usize, group: usize, out: &mut [f32]) {
        let vs = self.config.vector_size;
        assert_eq!(out.len(), vs, "output buffer size");
        out.fill(0.0);
        for r in 0..self.config.residuals {
            let s = self.codebooks.scope_index(row, group * vs);
            let book = self.codebooks.book(r, s);
            book.accumulate(self.index_at(r, row, group), out);
        }
    }

    /// Full dequantization.
    ///
    /// Row-at-a-time: each residual stream is block-decoded per row
    /// ([`PackedIndices::unpack_block`]) and accumulated in place — no
    /// per-sub-vector allocation or random-access bit fiddling.
    ///
    /// # Errors
    ///
    /// Currently infallible for a well-formed value; returns `Result` for
    /// forward compatibility with streaming backends.
    pub fn dequantize(&self) -> Result<Tensor2D> {
        let (rows, cols) = self.shape;
        let vs = self.config.vector_size;
        let groups = self.col_groups();
        let mut t = Tensor2D::zeros(rows, cols);
        let mut codes = vec![0u32; groups];
        for row in 0..rows {
            let dst = t.row_mut(row);
            for (r, stream) in self.indices.iter().enumerate() {
                stream.unpack_block(row * groups, &mut codes);
                for (g, &code) in codes.iter().enumerate() {
                    let s = self.codebooks.scope_index(row, g * vs);
                    self.codebooks
                        .book(r, s)
                        .accumulate(code, &mut dst[g * vs..(g + 1) * vs]);
                }
            }
        }
        Ok(t)
    }

    /// Compressed payload size: packed indices + codebooks (FP16).
    pub fn compressed_bytes(&self) -> usize {
        self.indices
            .iter()
            .map(PackedIndices::byte_len)
            .sum::<usize>()
            + self.codebooks.total_bytes()
    }

    /// Index-stream bytes only (what streams from DRAM per use; codebooks
    /// are shared).
    pub fn index_bytes(&self) -> usize {
        self.indices.iter().map(PackedIndices::byte_len).sum()
    }

    /// Compression ratio of the index streams against FP16 storage.
    pub fn index_compression_vs_fp16(&self) -> f64 {
        let fp16 = self.shape.0 * self.shape.1 * 2;
        self.index_bytes() as f64 / fp16 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CodebookScope;
    use vqllm_tensor::{metrics, synth};

    fn quantize_roundtrip(cfg: VqConfig, rows: usize, cols: usize) -> (Tensor2D, Tensor2D) {
        let w = synth::correlated_channels(rows, cols, cfg.vector_size, 0.9, 42);
        let q = VqQuantizer::new(cfg).quantize(&w, 7).unwrap();
        let restored = q.dequantize().unwrap();
        (w, restored)
    }

    #[test]
    fn per_tensor_roundtrip_has_low_error() {
        let cfg = VqConfig::new(4, 256, 1, CodebookScope::PerTensor).unwrap();
        let (w, r) = quantize_roundtrip(cfg, 64, 64);
        let rel = metrics::rel_frobenius(w.as_slice(), r.as_slice());
        assert!(rel < 0.7, "relative error {rel}");
    }

    #[test]
    fn residual_rounds_reduce_error() {
        let base = VqConfig::new(4, 64, 1, CodebookScope::PerTensor).unwrap();
        let twice = VqConfig::new(4, 64, 2, CodebookScope::PerTensor).unwrap();
        let w = synth::correlated_channels(64, 64, 4, 0.9, 3);
        let q1 = VqQuantizer::new(base).quantize(&w, 7).unwrap();
        let q2 = VqQuantizer::new(twice).quantize(&w, 7).unwrap();
        let e1 = metrics::mse_tensor(&w, &q1.dequantize().unwrap());
        let e2 = metrics::mse_tensor(&w, &q2.dequantize().unwrap());
        assert!(e2 < e1, "residual round must reduce MSE ({e2} !< {e1})");
    }

    #[test]
    fn channel_group_scope_trains_separate_books() {
        let cfg = VqConfig::new(2, 16, 1, CodebookScope::PerChannelGroup { channels: 2 }).unwrap();
        let w = synth::kv_stream(128, 8, 0.8, 9);
        let q = VqQuantizer::new(cfg).quantize(&w, 1).unwrap();
        assert_eq!(q.codebooks().scopes(), 4);
        let restored = q.dequantize().unwrap();
        assert!(metrics::rel_frobenius(w.as_slice(), restored.as_slice()) < 0.9);
    }

    #[test]
    fn tile_scope_counts_tiles() {
        let cfg = VqConfig::new(4, 16, 1, CodebookScope::PerTile { rows: 32, cols: 32 }).unwrap();
        let w = synth::gaussian(64, 64, 1.0, 5);
        let q = VqQuantizer::new(cfg).quantize(&w, 2).unwrap();
        assert_eq!(q.codebooks().scopes(), 4);
    }

    #[test]
    fn lattice_roundtrip_reconstructs_signs() {
        let cfg = VqConfig::new_lattice(8, 1 << 11, 8, 1, CodebookScope::PerTensor).unwrap();
        let w = synth::gaussian(32, 64, 1.0, 11);
        let q = VqQuantizer::new(cfg).quantize(&w, 3).unwrap();
        let restored = q.dequantize().unwrap();
        // Signs must match wherever the reconstruction is clearly non-zero.
        let mut sign_errors = 0;
        for (a, b) in w.as_slice().iter().zip(restored.as_slice()) {
            if b.abs() > 0.3 && a.signum() != b.signum() {
                sign_errors += 1;
            }
        }
        let frac = sign_errors as f64 / w.len() as f64;
        assert!(frac < 0.02, "sign error fraction {frac}");
    }

    #[test]
    fn index_bytes_match_config_math() {
        let cfg = VqConfig::new(4, 256, 1, CodebookScope::PerTensor).unwrap();
        let w = synth::gaussian(32, 32, 1.0, 1);
        let q = VqQuantizer::new(cfg).quantize(&w, 7).unwrap();
        assert_eq!(q.index_bytes(), cfg.index_bytes(32, 32));
        // 8 bits per 4 elements = 1/8 of FP16 bytes.
        assert!((q.index_compression_vs_fp16() - 0.125).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_shapes_and_starved_scopes() {
        let cfg = VqConfig::new(4, 256, 1, CodebookScope::PerTensor).unwrap();
        let w = synth::gaussian(8, 6, 1.0, 1); // 6 % 4 != 0
        assert!(VqQuantizer::new(cfg).quantize(&w, 0).is_err());

        let w = synth::gaussian(4, 8, 1.0, 1); // 8 subvectors < 256 entries
        assert!(matches!(
            VqQuantizer::new(cfg).quantize(&w, 0),
            Err(VqError::InsufficientData { .. })
        ));
    }

    #[test]
    fn from_parts_roundtrips_a_quantized_tensor() {
        let cfg = VqConfig::new(4, 64, 2, CodebookScope::PerTensor).unwrap();
        let w = synth::correlated_channels(32, 32, 4, 0.9, 13);
        let q = VqQuantizer::new(cfg).quantize(&w, 5).unwrap();
        let streams: Vec<_> = (0..cfg.residuals)
            .map(|r| q.index_stream(r).clone())
            .collect();
        let rebuilt = QuantizedTensor::from_parts(q.codebooks().clone(), streams).unwrap();
        assert_eq!(rebuilt, q);
        assert_eq!(rebuilt.dequantize().unwrap(), q.dequantize().unwrap());
    }

    #[test]
    fn from_parts_rejects_mismatched_parts() {
        let cfg = VqConfig::new(4, 64, 2, CodebookScope::PerTensor).unwrap();
        let w = synth::correlated_channels(32, 32, 4, 0.9, 13);
        let q = VqQuantizer::new(cfg).quantize(&w, 5).unwrap();
        // Too few streams for residuals = 2.
        let one = vec![q.index_stream(0).clone()];
        assert!(QuantizedTensor::from_parts(q.codebooks().clone(), one).is_err());
        // Wrong stream length.
        let short = PackedIndices::pack(&[0, 1, 2], cfg.index_bits() as u8).unwrap();
        assert!(
            QuantizedTensor::from_parts(q.codebooks().clone(), vec![short.clone(), short]).is_err()
        );
        // Wrong bit width.
        let vectors = 32 * 32 / 4;
        let wide = PackedIndices::pack(&vec![0u32; vectors], 8).unwrap();
        assert!(
            QuantizedTensor::from_parts(q.codebooks().clone(), vec![wide.clone(), wide]).is_err()
        );
        // Codebooks whose entry count disagrees with the config's index
        // space must be rejected, not panic at decode time.
        let small_books = vec![vec![plain_book_16()]; 2];
        let set = CodebookSet::new(cfg, (32, 32), small_books).unwrap();
        let streams: Vec<_> = (0..2).map(|r| q.index_stream(r).clone()).collect();
        assert!(QuantizedTensor::from_parts(set, streams).is_err());
    }

    fn plain_book_16() -> Codebook {
        Codebook::new((0..16 * 4).map(|i| i as f32).collect(), 4, false).unwrap()
    }

    #[test]
    fn quantization_is_deterministic() {
        let cfg = VqConfig::new(4, 64, 1, CodebookScope::PerTensor).unwrap();
        let w = synth::gaussian(32, 32, 1.0, 21);
        let a = VqQuantizer::new(cfg).quantize(&w, 5).unwrap();
        let b = VqQuantizer::new(cfg).quantize(&w, 5).unwrap();
        assert_eq!(a, b);
    }
}
