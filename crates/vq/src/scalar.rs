//! Element-wise (scalar) quantization baselines.
//!
//! The comparison targets of the paper's Fig. 2 and Fig. 16/17: group-wise
//! uniform integer quantization in the style of AWQ (weights, 4-bit,
//! group 128, asymmetric) and QoQ's KV4 (per-head 4-bit KV cache). These
//! treat every element independently — the Cartesian-product grid whose
//! corners never land on correlated-data outliers.

use crate::{Result, VqError};
use serde::{Deserialize, Serialize};
use vqllm_tensor::Tensor2D;

/// Group-wise uniform integer quantization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScalarQuantConfig {
    /// Bits per element (4 for AWQ/QoQ's weight & KV formats).
    pub bits: u32,
    /// Elements per scale group (128 in AWQ).
    pub group_size: usize,
    /// Asymmetric (scale + zero point) vs symmetric (scale only).
    pub asymmetric: bool,
}

impl ScalarQuantConfig {
    /// AWQ-style 4-bit weight quantization: group 128, asymmetric.
    pub fn awq4() -> Self {
        ScalarQuantConfig {
            bits: 4,
            group_size: 128,
            asymmetric: true,
        }
    }

    /// QoQ-style 4-bit KV quantization: per-64-element groups, asymmetric.
    pub fn qoq_kv4() -> Self {
        ScalarQuantConfig {
            bits: 4,
            group_size: 64,
            asymmetric: true,
        }
    }

    /// Equivalent bits per element including scale overhead (FP16 scale +
    /// optional zero point per group).
    pub fn equivalent_bits(&self) -> f64 {
        let meta_bits = if self.asymmetric { 32.0 } else { 16.0 };
        self.bits as f64 + meta_bits / self.group_size as f64
    }
}

/// A scalar-quantized tensor: packed levels plus per-group scale/zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarQuantized {
    config: ScalarQuantConfig,
    shape: (usize, usize),
    levels: Vec<u16>,
    scales: Vec<f32>,
    zeros: Vec<f32>,
}

/// Quantizes `tensor` group-wise along rows.
///
/// # Errors
///
/// Returns [`VqError::InvalidConfig`] for zero `bits`/`group_size` or
/// `bits > 8`.
pub fn quantize(tensor: &Tensor2D, config: ScalarQuantConfig) -> Result<ScalarQuantized> {
    if config.bits == 0 || config.bits > 8 {
        return Err(VqError::InvalidConfig {
            what: "scalar bits",
            value: config.bits as usize,
        });
    }
    if config.group_size == 0 {
        return Err(VqError::InvalidConfig {
            what: "scalar group size",
            value: 0,
        });
    }
    let (rows, cols) = tensor.shape();
    let qmax = (1u32 << config.bits) - 1;
    let mut levels = Vec::with_capacity(rows * cols);
    let mut scales = Vec::new();
    let mut zeros = Vec::new();

    for row in tensor.iter_rows() {
        for group in row.chunks(config.group_size) {
            let (lo, hi) = group
                .iter()
                .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            let (scale, zero) = if config.asymmetric {
                let scale = (hi - lo).max(1e-12) / qmax as f32;
                (scale, lo)
            } else {
                let m = hi.abs().max(lo.abs()).max(1e-12);
                let scale = 2.0 * m / qmax as f32;
                (scale, -m)
            };
            scales.push(scale);
            zeros.push(zero);
            for &v in group {
                let q = ((v - zero) / scale).round().clamp(0.0, qmax as f32) as u16;
                levels.push(q);
            }
        }
    }

    Ok(ScalarQuantized {
        config,
        shape: (rows, cols),
        levels,
        scales,
        zeros,
    })
}

impl ScalarQuantized {
    /// Dequantizes back to a dense tensor.
    pub fn dequantize(&self) -> Tensor2D {
        let (rows, cols) = self.shape;
        let gs = self.config.group_size;
        let groups_per_row = cols.div_ceil(gs);
        Tensor2D::from_fn(rows, cols, |r, c| {
            let g = r * groups_per_row + c / gs;
            self.zeros[g] + self.levels[r * cols + c] as f32 * self.scales[g]
        })
    }

    /// The configuration used.
    pub fn config(&self) -> &ScalarQuantConfig {
        &self.config
    }

    /// Packed payload bytes: levels at `bits` each plus FP16 scale(+zero)
    /// per group.
    pub fn compressed_bytes(&self) -> usize {
        let level_bytes = (self.levels.len() * self.config.bits as usize).div_ceil(8);
        let meta = if self.config.asymmetric { 4 } else { 2 };
        level_bytes + self.scales.len() * meta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqllm_tensor::{metrics, synth};

    #[test]
    fn roundtrip_error_is_bounded_by_step() {
        let t = synth::gaussian(32, 128, 1.0, 1);
        let q = quantize(&t, ScalarQuantConfig::awq4()).unwrap();
        let r = q.dequantize();
        // Max error ≤ half a quantization step per group; with range ~±4σ
        // and 15 levels the step is < 1.0.
        let max = metrics::max_abs_diff(t.as_slice(), r.as_slice());
        assert!(max < 0.5, "max err {max}");
    }

    #[test]
    fn more_bits_reduce_error() {
        let t = synth::gaussian(16, 128, 1.0, 3);
        let e4 = {
            let q = quantize(
                &t,
                ScalarQuantConfig {
                    bits: 4,
                    group_size: 64,
                    asymmetric: true,
                },
            )
            .unwrap();
            metrics::mse_tensor(&t, &q.dequantize())
        };
        let e8 = {
            let q = quantize(
                &t,
                ScalarQuantConfig {
                    bits: 8,
                    group_size: 64,
                    asymmetric: true,
                },
            )
            .unwrap();
            metrics::mse_tensor(&t, &q.dequantize())
        };
        assert!(e8 < e4 / 10.0, "e8 {e8} vs e4 {e4}");
    }

    #[test]
    fn symmetric_mode_centers_zero() {
        let t = Tensor2D::from_vec(1, 4, vec![-1.0, -0.5, 0.5, 1.0]).unwrap();
        let q = quantize(
            &t,
            ScalarQuantConfig {
                bits: 4,
                group_size: 4,
                asymmetric: false,
            },
        )
        .unwrap();
        let r = q.dequantize();
        assert!(metrics::max_abs_diff(t.as_slice(), r.as_slice()) < 0.15);
    }

    #[test]
    fn outliers_blow_up_group_error() {
        // One outlier stretches the group's range, coarsening everything —
        // the weakness Fig. 2 illustrates.
        let clean = synth::gaussian(1, 128, 0.1, 5);
        let mut dirty = clean.clone();
        dirty.set(0, 0, 10.0);
        let cfg = ScalarQuantConfig {
            bits: 4,
            group_size: 128,
            asymmetric: true,
        };
        let e_clean = metrics::mse_tensor(&clean, &quantize(&clean, cfg).unwrap().dequantize());
        let e_dirty = {
            let q = quantize(&dirty, cfg).unwrap().dequantize();
            // Error on the non-outlier elements only.
            metrics::mse(&dirty.as_slice()[1..], &q.as_slice()[1..])
        };
        assert!(e_dirty > 20.0 * e_clean, "dirty {e_dirty} clean {e_clean}");
    }

    #[test]
    fn equivalent_bits_include_metadata() {
        let awq = ScalarQuantConfig::awq4();
        assert!((awq.equivalent_bits() - 4.25).abs() < 1e-9);
    }

    #[test]
    fn compressed_bytes_accounting() {
        let t = synth::gaussian(4, 128, 1.0, 9);
        let q = quantize(&t, ScalarQuantConfig::awq4()).unwrap();
        // 512 elements × 4 bits = 256 B + 4 groups × 4 B = 272.
        assert_eq!(q.compressed_bytes(), 256 + 16);
    }

    #[test]
    fn rejects_invalid_config() {
        let t = synth::gaussian(2, 8, 1.0, 1);
        assert!(quantize(
            &t,
            ScalarQuantConfig {
                bits: 0,
                group_size: 8,
                asymmetric: true
            }
        )
        .is_err());
        assert!(quantize(
            &t,
            ScalarQuantConfig {
                bits: 9,
                group_size: 8,
                asymmetric: true
            }
        )
        .is_err());
        assert!(quantize(
            &t,
            ScalarQuantConfig {
                bits: 4,
                group_size: 0,
                asymmetric: true
            }
        )
        .is_err());
    }
}
