//! Bit-packed index streams.
//!
//! VQ indices occupy `log2 #entry` bits: 8 for GPTVQ/CQ, 16 for QuiP#'s
//! lattice ids — and 12 for AQLM, whose "unaligned 12-bit storage format …
//! necessitates additional unpacking and decoding logic" (paper §VII-B).
//! Packing is LSB-first within little-endian bytes, the layout a CUDA
//! kernel would decode with shift/mask ops.

use crate::{Result, VqError};
use serde::{Deserialize, Serialize};

/// A bit-packed stream of equal-width indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedIndices {
    bits: u8,
    len: usize,
    data: Vec<u8>,
}

impl PackedIndices {
    /// Packs `indices` at `bits` bits each.
    ///
    /// # Errors
    ///
    /// Returns [`VqError::InvalidConfig`] if `bits` is 0 or > 32, or an
    /// index does not fit in `bits` bits.
    pub fn pack(indices: &[u32], bits: u8) -> Result<Self> {
        if bits == 0 || bits > 32 {
            return Err(VqError::InvalidConfig {
                what: "index bits",
                value: bits as usize,
            });
        }
        let limit = if bits == 32 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let mut buf = Vec::with_capacity((indices.len() * bits as usize).div_ceil(8));
        let mut acc: u64 = 0;
        let mut nbits: u32 = 0;
        for &idx in indices {
            if u64::from(idx) > limit {
                return Err(VqError::InvalidConfig {
                    what: "index exceeds bit width",
                    value: idx as usize,
                });
            }
            acc |= u64::from(idx) << nbits;
            nbits += u32::from(bits);
            while nbits >= 8 {
                buf.push((acc & 0xff) as u8);
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            buf.push((acc & 0xff) as u8);
        }
        Ok(PackedIndices {
            bits,
            len: indices.len(),
            data: buf,
        })
    }

    /// Value mask for a `bits`-wide index.
    #[inline]
    fn mask_of(bits: u8) -> u64 {
        if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        }
    }

    /// Little-endian 64-bit word starting at byte offset `byte`, zero-padded
    /// past the end of the stream. One unaligned load replaces the per-byte
    /// shift/OR loop on the hot path.
    #[inline]
    fn word_at(&self, byte: usize) -> u64 {
        let d = &self.data;
        if byte + 8 <= d.len() {
            u64::from_le_bytes(d[byte..byte + 8].try_into().expect("8-byte slice"))
        } else {
            let mut buf = [0u8; 8];
            if byte < d.len() {
                buf[..d.len() - byte].copy_from_slice(&d[byte..]);
            }
            u64::from_le_bytes(buf)
        }
    }

    /// Index at position `i`.
    ///
    /// Decodes with a single word load + shift + mask (any index of width
    /// ≤ 32 spans at most 5 bytes, so the containing 8-byte word always
    /// holds it), instead of recomputing a byte-span loop per call.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        assert!(i < self.len, "index out of bounds");
        let bit_pos = i * self.bits as usize;
        (self.word_at(bit_pos >> 3) >> (bit_pos & 7) & Self::mask_of(self.bits)) as u32
    }

    /// Batched decode of `out.len()` consecutive indices starting at
    /// `start` — the kernel-facing fast path: the shift amount and mask are
    /// computed once and each index is one word load, so hot loops decode a
    /// whole row (or row-block) of codes at a time instead of re-running
    /// [`PackedIndices::get`]'s bit arithmetic per element.
    ///
    /// # Panics
    ///
    /// Panics if `start + out.len() > len`.
    #[inline]
    pub fn unpack_block(&self, start: usize, out: &mut [u32]) {
        assert!(
            start + out.len() <= self.len,
            "block [{start}, {}) out of bounds (len {})",
            start + out.len(),
            self.len
        );
        let bits = self.bits as usize;
        let mask = Self::mask_of(self.bits);
        let mut bit_pos = start * bits;
        for o in out.iter_mut() {
            *o = (self.word_at(bit_pos >> 3) >> (bit_pos & 7) & mask) as u32;
            bit_pos += bits;
        }
    }

    /// Iterator over `count` indices starting at `start` — a lazy wrapper
    /// over [`PackedIndices::get`]'s word-at-a-time decode for callers
    /// that don't want a scratch buffer ([`PackedIndices::unpack_block`]
    /// is the bulk fast path).
    ///
    /// # Panics
    ///
    /// Panics if `start + count > len`.
    pub fn iter_range(&self, start: usize, count: usize) -> impl Iterator<Item = u32> + '_ {
        assert!(start + count <= self.len, "range out of bounds");
        (start..start + count).map(move |i| self.get(i))
    }

    /// Unpacks the whole stream. Kept as the straightforward slow-path
    /// oracle that [`PackedIndices::unpack_block`] is tested against.
    pub fn unpack(&self) -> Vec<u32> {
        (0..self.len).map(|i| self.get_slow(i)).collect()
    }

    /// Original per-byte decode: the reference implementation `get` and
    /// `unpack_block` must agree with at every width.
    fn get_slow(&self, i: usize) -> u32 {
        assert!(i < self.len, "index out of bounds");
        let bits = self.bits as usize;
        let bit_pos = i * bits;
        let mut acc: u64 = 0;
        let first = bit_pos / 8;
        // An index spans at most ceil((bits + 7) / 8) + 1 bytes.
        let span = (bits + (bit_pos % 8)).div_ceil(8);
        for (j, &b) in self.data[first..(first + span).min(self.data.len())]
            .iter()
            .enumerate()
        {
            acc |= u64::from(b) << (8 * j);
        }
        acc >>= bit_pos % 8;
        (acc & Self::mask_of(self.bits)) as u32
    }

    /// Number of stored indices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per index.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Packed size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Whether decoding an index at position `i` requires non-byte-aligned
    /// shifts — true for widths like 12 that straddle byte boundaries on
    /// odd positions. This is the property that costs AQLM extra integer
    /// ops in the compute engine.
    pub fn is_byte_aligned(&self) -> bool {
        self.bits.is_multiple_of(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_byte_aligned() {
        let idx: Vec<u32> = (0..256).collect();
        let p = PackedIndices::pack(&idx, 8).unwrap();
        assert_eq!(p.unpack(), idx);
        assert_eq!(p.byte_len(), 256);
        assert!(p.is_byte_aligned());
    }

    #[test]
    fn roundtrip_12_bit() {
        let idx: Vec<u32> = (0..4096).step_by(7).collect();
        let p = PackedIndices::pack(&idx, 12).unwrap();
        assert_eq!(p.unpack(), idx);
        // 586 indices × 12 bits = 7032 bits = 879 bytes.
        assert_eq!(p.byte_len(), (idx.len() * 12).div_ceil(8));
        assert!(!p.is_byte_aligned());
    }

    #[test]
    fn roundtrip_odd_widths() {
        for bits in [1u8, 3, 5, 11, 13, 16, 17, 31] {
            let max = if bits == 32 {
                u32::MAX
            } else {
                (1u32 << bits) - 1
            };
            let idx: Vec<u32> = (0..100u32)
                .map(|i| i.wrapping_mul(2654435761) & max)
                .collect();
            let p = PackedIndices::pack(&idx, bits).unwrap();
            assert_eq!(p.unpack(), idx, "width {bits}");
        }
    }

    #[test]
    fn random_access_matches_unpack() {
        let idx: Vec<u32> = (0..977).map(|i| (i * 31) as u32 % 4096).collect();
        let p = PackedIndices::pack(&idx, 12).unwrap();
        for (i, &v) in idx.iter().enumerate() {
            assert_eq!(p.get(i), v);
        }
    }

    #[test]
    fn rejects_oversized_values() {
        assert!(PackedIndices::pack(&[256], 8).is_err());
        assert!(PackedIndices::pack(&[4096], 12).is_err());
        assert!(PackedIndices::pack(&[0], 0).is_err());
    }

    /// Deterministic pseudo-random indices that fit in `bits`.
    fn mixed_indices(n: usize, bits: u8) -> Vec<u32> {
        let max = if bits >= 32 {
            u32::MAX
        } else {
            (1u32 << bits) - 1
        };
        (0..n as u32)
            .map(|i| i.wrapping_mul(2654435761).rotate_left(7) & max)
            .collect()
    }

    #[test]
    fn block_decode_matches_oracle_at_all_widths() {
        // Every width the kernels can see, including every non-byte-aligned
        // one in 1..=16 (the AQLM-12 class) plus a few wide outliers.
        for bits in (1u8..=16).chain([17, 24, 31, 32]) {
            let idx = mixed_indices(203, bits);
            let p = PackedIndices::pack(&idx, bits).unwrap();
            // Whole-stream block decode vs the slow-path oracle.
            let mut block = vec![0u32; idx.len()];
            p.unpack_block(0, &mut block);
            assert_eq!(block, p.unpack(), "width {bits}");
            assert_eq!(block, idx, "width {bits}");
            // Unaligned interior blocks.
            for (start, count) in [(0, 1), (1, 7), (13, 64), (190, 13), (203, 0)] {
                let mut out = vec![0u32; count];
                p.unpack_block(start, &mut out);
                assert_eq!(out, &idx[start..start + count], "width {bits} @ {start}");
            }
            // get() (word-load fast path) agrees everywhere too.
            for (i, &v) in idx.iter().enumerate() {
                assert_eq!(p.get(i), v, "width {bits} get({i})");
            }
        }
    }

    #[test]
    fn block_decode_straddles_word_boundaries() {
        // Odd widths whose indices land astride the 64-bit words that
        // `word_at` loads: for each width, pick block starts so the first
        // decoded index begins in the last bits of a word and spills into
        // the next (bit_pos/64 != (bit_pos+bits-1)/64), plus blocks that
        // end exactly at, one before, and one past each word seam.
        for bits in [3u8, 5, 7, 31] {
            let n = 403usize;
            let idx = mixed_indices(n, bits);
            let p = PackedIndices::pack(&idx, bits).unwrap();
            let b = bits as usize;
            // Every straddling start position in the stream.
            let straddles: Vec<usize> = (0..n)
                .filter(|i| (i * b) / 64 != (i * b + b - 1) / 64)
                .collect();
            assert!(!straddles.is_empty(), "width {bits} has straddles");
            for &start in &straddles {
                for count in [1usize, 2, 64 / b + 1] {
                    let count = count.min(n - start);
                    let mut out = vec![0u32; count];
                    p.unpack_block(start, &mut out);
                    assert_eq!(out, &idx[start..start + count], "width {bits} @ {start}");
                    // The word-load `get` agrees at the same positions.
                    assert_eq!(p.get(start), idx[start], "width {bits} get({start})");
                }
            }
            // Blocks ending at / around the final byte of the stream (the
            // zero-padded tail load of `word_at`).
            for tail in 1..=(64 / b).min(n) {
                let start = n - tail;
                let mut out = vec![0u32; tail];
                p.unpack_block(start, &mut out);
                assert_eq!(out, &idx[start..], "width {bits} tail {tail}");
            }
        }
    }

    #[test]
    fn iter_range_matches_block_decode() {
        let idx = mixed_indices(151, 11);
        let p = PackedIndices::pack(&idx, 11).unwrap();
        let via_iter: Vec<u32> = p.iter_range(9, 100).collect();
        assert_eq!(via_iter, &idx[9..109]);
        assert_eq!(p.iter_range(0, 0).count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn block_decode_rejects_overrun() {
        let p = PackedIndices::pack(&[1, 2, 3], 8).unwrap();
        let mut out = [0u32; 2];
        p.unpack_block(2, &mut out);
    }

    #[test]
    fn empty_stream() {
        let p = PackedIndices::pack(&[], 12).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.byte_len(), 0);
        assert_eq!(p.unpack(), Vec::<u32>::new());
    }
}
