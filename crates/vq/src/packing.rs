//! Bit-packed index streams.
//!
//! VQ indices occupy `log2 #entry` bits: 8 for GPTVQ/CQ, 16 for QuiP#'s
//! lattice ids — and 12 for AQLM, whose "unaligned 12-bit storage format …
//! necessitates additional unpacking and decoding logic" (paper §VII-B).
//! Packing is LSB-first within little-endian bytes, the layout a CUDA
//! kernel would decode with shift/mask ops.

use crate::{Result, VqError};
use serde::{Deserialize, Serialize};

/// A bit-packed stream of equal-width indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedIndices {
    bits: u8,
    len: usize,
    data: Vec<u8>,
}

impl PackedIndices {
    /// Packs `indices` at `bits` bits each.
    ///
    /// # Errors
    ///
    /// Returns [`VqError::InvalidConfig`] if `bits` is 0 or > 32, or an
    /// index does not fit in `bits` bits.
    pub fn pack(indices: &[u32], bits: u8) -> Result<Self> {
        if bits == 0 || bits > 32 {
            return Err(VqError::InvalidConfig {
                what: "index bits",
                value: bits as usize,
            });
        }
        let limit = if bits == 32 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let mut buf = Vec::with_capacity((indices.len() * bits as usize).div_ceil(8));
        let mut acc: u64 = 0;
        let mut nbits: u32 = 0;
        for &idx in indices {
            if u64::from(idx) > limit {
                return Err(VqError::InvalidConfig {
                    what: "index exceeds bit width",
                    value: idx as usize,
                });
            }
            acc |= u64::from(idx) << nbits;
            nbits += u32::from(bits);
            while nbits >= 8 {
                buf.push((acc & 0xff) as u8);
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            buf.push((acc & 0xff) as u8);
        }
        Ok(PackedIndices {
            bits,
            len: indices.len(),
            data: buf,
        })
    }

    /// Index at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> u32 {
        assert!(i < self.len, "index out of bounds");
        let bits = self.bits as usize;
        let bit_pos = i * bits;
        let mut acc: u64 = 0;
        let first = bit_pos / 8;
        // An index spans at most ceil((bits + 7) / 8) + 1 bytes.
        let span = (bits + (bit_pos % 8)).div_ceil(8);
        for (j, &b) in self.data[first..(first + span).min(self.data.len())]
            .iter()
            .enumerate()
        {
            acc |= u64::from(b) << (8 * j);
        }
        acc >>= bit_pos % 8;
        let mask = if bits == 32 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        (acc & mask) as u32
    }

    /// Unpacks the whole stream.
    pub fn unpack(&self) -> Vec<u32> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Number of stored indices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per index.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Packed size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// Whether decoding an index at position `i` requires non-byte-aligned
    /// shifts — true for widths like 12 that straddle byte boundaries on
    /// odd positions. This is the property that costs AQLM extra integer
    /// ops in the compute engine.
    pub fn is_byte_aligned(&self) -> bool {
        self.bits.is_multiple_of(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_byte_aligned() {
        let idx: Vec<u32> = (0..256).collect();
        let p = PackedIndices::pack(&idx, 8).unwrap();
        assert_eq!(p.unpack(), idx);
        assert_eq!(p.byte_len(), 256);
        assert!(p.is_byte_aligned());
    }

    #[test]
    fn roundtrip_12_bit() {
        let idx: Vec<u32> = (0..4096).step_by(7).collect();
        let p = PackedIndices::pack(&idx, 12).unwrap();
        assert_eq!(p.unpack(), idx);
        // 586 indices × 12 bits = 7032 bits = 879 bytes.
        assert_eq!(p.byte_len(), (idx.len() * 12).div_ceil(8));
        assert!(!p.is_byte_aligned());
    }

    #[test]
    fn roundtrip_odd_widths() {
        for bits in [1u8, 3, 5, 11, 13, 16, 17, 31] {
            let max = if bits == 32 {
                u32::MAX
            } else {
                (1u32 << bits) - 1
            };
            let idx: Vec<u32> = (0..100u32)
                .map(|i| i.wrapping_mul(2654435761) & max)
                .collect();
            let p = PackedIndices::pack(&idx, bits).unwrap();
            assert_eq!(p.unpack(), idx, "width {bits}");
        }
    }

    #[test]
    fn random_access_matches_unpack() {
        let idx: Vec<u32> = (0..977).map(|i| (i * 31) as u32 % 4096).collect();
        let p = PackedIndices::pack(&idx, 12).unwrap();
        for (i, &v) in idx.iter().enumerate() {
            assert_eq!(p.get(i), v);
        }
    }

    #[test]
    fn rejects_oversized_values() {
        assert!(PackedIndices::pack(&[256], 8).is_err());
        assert!(PackedIndices::pack(&[4096], 12).is_err());
        assert!(PackedIndices::pack(&[0], 0).is_err());
    }

    #[test]
    fn empty_stream() {
        let p = PackedIndices::pack(&[], 12).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.byte_len(), 0);
        assert_eq!(p.unpack(), Vec::<u32>::new());
    }
}
