//! Codebook-entry access-frequency profiling.
//!
//! The codebook cache's placement policy is driven by offline profiles of
//! how often each *stored* entry is dereferenced during dequantization:
//!
//! * Fig. 8 — the per-entry histogram with its µ and µ+3σ markers; the few
//!   entries above µ+3σ are the register-cached "hot" set.
//! * Fig. 9 — hot entries are consistent across tensor parts, which
//!   justifies reordering at the *tensor* level rather than per block.

use crate::quantizer::QuantizedTensor;
use serde::{Deserialize, Serialize};

/// Classification of one entry's access frequency (paper §IV: cold /
/// medium / hot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntryClass {
    /// Above µ+3σ: cached in registers.
    Hot,
    /// Above the mean: cached in shared memory.
    Medium,
    /// At or below the mean: left in global memory.
    Cold,
}

/// Access counts per stored codebook entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessHistogram {
    counts: Vec<u64>,
}

impl AccessHistogram {
    /// Profiles residual round `r` of `q` across the whole tensor
    /// (aggregating every scope — the paper's tensor-level reordering
    /// choice, supported by Fig. 9).
    ///
    /// # Panics
    ///
    /// Panics if `r >= residuals`.
    pub fn profile(q: &QuantizedTensor, r: usize) -> Self {
        let stored = q.config().stored_entries();
        let mut counts = vec![0u64; stored];
        let groups = q.col_groups();
        let (rows, _) = q.shape();
        for row in 0..rows {
            for g in 0..groups {
                let id = q.index_at(r, row, g);
                let s = q.codebooks().scope_index(row, g * q.config().vector_size);
                let sid = q.codebooks().book(r, s).stored_id_of(id);
                counts[sid as usize] += 1;
            }
        }
        AccessHistogram { counts }
    }

    /// Profiles a band of rows only (one "tensor part" of Fig. 9).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the tensor or `r >= residuals`.
    pub fn profile_rows(q: &QuantizedTensor, r: usize, row_start: usize, row_end: usize) -> Self {
        let stored = q.config().stored_entries();
        let mut counts = vec![0u64; stored];
        let groups = q.col_groups();
        for row in row_start..row_end {
            for g in 0..groups {
                let id = q.index_at(r, row, g);
                let s = q.codebooks().scope_index(row, g * q.config().vector_size);
                let sid = q.codebooks().book(r, s).stored_id_of(id);
                counts[sid as usize] += 1;
            }
        }
        AccessHistogram { counts }
    }

    /// Builds a histogram from raw counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        AccessHistogram { counts }
    }

    /// Per-entry counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean accesses per entry.
    pub fn mean(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.total() as f64 / self.counts.len() as f64
    }

    /// Population standard deviation of per-entry accesses.
    pub fn std_dev(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        let var = self
            .counts
            .iter()
            .map(|&c| (c as f64 - m).powi(2))
            .sum::<f64>()
            / self.counts.len() as f64;
        var.sqrt()
    }

    /// The paper's hot threshold, µ+3σ.
    pub fn hot_threshold(&self) -> f64 {
        self.mean() + 3.0 * self.std_dev()
    }

    /// Classifies every entry (Fig. 8's partition).
    pub fn classify(&self) -> Vec<EntryClass> {
        let mean = self.mean();
        let hot = self.hot_threshold();
        self.counts
            .iter()
            .map(|&c| {
                let c = c as f64;
                if c > hot {
                    EntryClass::Hot
                } else if c > mean {
                    EntryClass::Medium
                } else {
                    EntryClass::Cold
                }
            })
            .collect()
    }

    /// Number of entries above µ+3σ (Tbl. V's "#Entry freq > µ+3σ" row).
    pub fn num_hot(&self) -> usize {
        self.classify()
            .iter()
            .filter(|c| **c == EntryClass::Hot)
            .count()
    }

    /// Entries accessed at or below the mean (the ">half yield little
    /// benefit in shared memory" population of §V-A).
    pub fn num_cold(&self) -> usize {
        self.classify()
            .iter()
            .filter(|c| **c == EntryClass::Cold)
            .count()
    }

    /// Permutation sorting entries by descending frequency: element `i` is
    /// the old entry id that moves to position `i`. This is the codebook
    /// cache's reorder-based static mapping (most frequent → index 0).
    pub fn sort_permutation(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..self.counts.len() as u32).collect();
        ids.sort_by_key(|&id| std::cmp::Reverse(self.counts[id as usize]));
        ids
    }

    /// Pearson correlation with another histogram over the same entries
    /// (Fig. 9's cross-block consistency).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn correlation(&self, other: &AccessHistogram) -> f64 {
        assert_eq!(self.counts.len(), other.counts.len());
        let n = self.counts.len() as f64;
        if n == 0.0 {
            return 1.0;
        }
        let ma = self.mean();
        let mb = other.mean();
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (&a, &b) in self.counts.iter().zip(&other.counts) {
            let da = a as f64 - ma;
            let db = b as f64 - mb;
            cov += da * db;
            va += da * da;
            vb += db * db;
        }
        if va == 0.0 || vb == 0.0 {
            return 1.0;
        }
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Per-block × entry access matrix (Fig. 9).
#[derive(Debug, Clone)]
pub struct BlockAccessMatrix {
    blocks: Vec<AccessHistogram>,
}

impl BlockAccessMatrix {
    /// Splits the tensor's rows into `num_blocks` contiguous bands and
    /// profiles each — one row of Fig. 9 per band.
    ///
    /// # Panics
    ///
    /// Panics if `num_blocks` is 0 or exceeds the row count.
    pub fn profile(q: &QuantizedTensor, r: usize, num_blocks: usize) -> Self {
        let (rows, _) = q.shape();
        assert!(num_blocks > 0 && num_blocks <= rows, "invalid block count");
        let band = rows.div_ceil(num_blocks);
        let blocks = (0..num_blocks)
            .map(|b| {
                let start = b * band;
                let end = ((b + 1) * band).min(rows);
                AccessHistogram::profile_rows(q, r, start, end)
            })
            .collect();
        BlockAccessMatrix { blocks }
    }

    /// Per-block histograms.
    pub fn blocks(&self) -> &[AccessHistogram] {
        &self.blocks
    }

    /// Mean pairwise correlation between block histograms — high values
    /// mean hot entries are consistent across tensor parts, validating
    /// tensor-level reordering.
    pub fn cross_block_consistency(&self) -> f64 {
        let n = self.blocks.len();
        if n < 2 {
            return 1.0;
        }
        let mut sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                sum += self.blocks[i].correlation(&self.blocks[j]);
                pairs += 1;
            }
        }
        sum / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CodebookScope, VqConfig};
    use crate::quantizer::VqQuantizer;
    use vqllm_tensor::synth;

    fn quantized() -> QuantizedTensor {
        let w = synth::gaussian_with_outliers(96, 64, 1.0, 0.02, 6.0, 17);
        let cfg = VqConfig::new(4, 64, 1, CodebookScope::PerTensor).unwrap();
        VqQuantizer::new(cfg).quantize(&w, 3).unwrap()
    }

    #[test]
    fn histogram_total_matches_subvector_count() {
        let q = quantized();
        let h = AccessHistogram::profile(&q, 0);
        assert_eq!(h.total(), (96 * 64 / 4) as u64);
        assert_eq!(h.counts().len(), 64);
    }

    #[test]
    fn classes_partition_entries() {
        // 100 entries at 1 access, one at 1000: µ ≈ 10.9, σ ≈ 98.9, so the
        // big entry clears µ+3σ while the rest sit below the mean.
        let mut counts = vec![1u64; 100];
        counts.push(1000);
        let h = AccessHistogram::from_counts(counts);
        let classes = h.classify();
        assert_eq!(classes.len(), 101);
        assert_eq!(classes[100], EntryClass::Hot);
        assert_eq!(classes[0], EntryClass::Cold);
        assert_eq!(h.num_hot(), 1);
        assert_eq!(h.num_cold(), 100);
    }

    #[test]
    fn hot_threshold_is_mu_plus_3_sigma() {
        let h = AccessHistogram::from_counts(vec![10, 10, 10, 10]);
        assert_eq!(h.hot_threshold(), 10.0);
        assert_eq!(h.num_hot(), 0, "uniform histogram has no hot entries");
    }

    #[test]
    fn sort_permutation_is_descending_permutation() {
        let q = quantized();
        let h = AccessHistogram::profile(&q, 0);
        let perm = h.sort_permutation();
        let mut seen = vec![false; perm.len()];
        for &id in &perm {
            assert!(!seen[id as usize], "duplicate in permutation");
            seen[id as usize] = true;
        }
        for w in perm.windows(2) {
            assert!(h.counts()[w[0] as usize] >= h.counts()[w[1] as usize]);
        }
    }

    #[test]
    fn kmeans_populations_are_skewed() {
        // Gaussian-with-outliers data must produce non-uniform cluster
        // populations — the premise of hierarchical placement (Fig. 8:
        // "over half of the codebook entries are accessed less frequently
        // than the average").
        let q = quantized();
        let h = AccessHistogram::profile(&q, 0);
        // At least 40 % of entries at-or-below the mean on this synthetic
        // tensor (the paper reports "over half" on real Llama weights).
        assert!(
            h.num_cold() * 5 >= h.counts().len() * 2,
            "cold {}",
            h.num_cold()
        );
        assert!(
            h.std_dev() > 0.2 * h.mean(),
            "std {} mean {}",
            h.std_dev(),
            h.mean()
        );
    }

    #[test]
    fn blocks_are_mutually_consistent() {
        // Fig. 9: hot entries are consistent across tensor parts.
        let q = quantized();
        let m = BlockAccessMatrix::profile(&q, 0, 8);
        assert_eq!(m.blocks().len(), 8);
        assert!(
            m.cross_block_consistency() > 0.4,
            "consistency {}",
            m.cross_block_consistency()
        );
    }

    #[test]
    fn correlation_bounds() {
        let a = AccessHistogram::from_counts(vec![1, 2, 3, 4]);
        let b = AccessHistogram::from_counts(vec![2, 4, 6, 8]);
        let c = AccessHistogram::from_counts(vec![4, 3, 2, 1]);
        assert!((a.correlation(&b) - 1.0).abs() < 1e-9);
        assert!((a.correlation(&c) + 1.0).abs() < 1e-9);
    }
}
