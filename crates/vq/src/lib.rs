//! Vector-quantization substrate for the VQ-LLM reproduction.
//!
//! Implements the full VQ pipeline of the paper's Fig. 1: sub-vector
//! splitting, k-means codebook training (with k-means++ seeding), residual
//! quantization rounds, packed index storage (including AQLM's unaligned
//! 12-bit format), and exact dequantization. The five algorithm presets of
//! the paper's Tbl. II are provided in [`algorithms`]:
//!
//! | Algorithm | Compression | Vector | #Entry | Residual |
//! |-----------|-------------|--------|--------|----------|
//! | QuiP#-4   | 25 %        | 8      | 65536 (lattice: 256 looked up) | 2 |
//! | AQLM-3    | 18.75 %     | 8      | 4096   | 2 |
//! | GPTVQ-2   | 12.5 %      | 4      | 256    | 1 |
//! | CQ-4      | 25 %        | 2      | 256    | 1 |
//! | CQ-2      | 12.5 %      | 4      | 256    | 1 |
//!
//! The [`stats`] module profiles codebook-entry access frequency — the
//! hot/medium/cold structure (paper Fig. 8/9) that the codebook cache in
//! `vqllm-core` exploits.
//!
//! # Example
//!
//! ```
//! use vqllm_vq::{config::{CodebookScope, VqConfig}, quantizer::VqQuantizer};
//! use vqllm_tensor::{metrics, synth};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = synth::correlated_channels(64, 64, 4, 0.9, 42);
//! let cfg = VqConfig::new(4, 256, 1, CodebookScope::PerTensor)?;
//! let q = VqQuantizer::new(cfg).quantize(&w, 7)?;
//! let restored = q.dequantize()?;
//! assert!(vqllm_tensor::metrics::mse_tensor(&w, &restored) < 1e-2);
//! # Ok(())
//! # }
//! ```

pub mod algorithms;
pub mod codebook;
pub mod config;
pub mod kmeans;
pub mod packing;
pub mod quantizer;
pub mod scalar;
pub mod stats;

pub use algorithms::VqAlgorithm;
pub use codebook::{Codebook, CodebookSet};
pub use config::{CodebookScope, VqConfig};
pub use packing::PackedIndices;
pub use quantizer::{QuantizedTensor, VqQuantizer};

/// Error type for quantization operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VqError {
    /// Configuration is internally inconsistent.
    InvalidConfig {
        /// What was wrong.
        what: &'static str,
        /// Offending value.
        value: usize,
    },
    /// Tensor shape is incompatible with the configuration (e.g. columns
    /// not divisible by the vector size).
    IncompatibleShape {
        /// What was expected.
        what: &'static str,
        /// Tensor shape.
        shape: (usize, usize),
    },
    /// Not enough data to train the requested codebook.
    InsufficientData {
        /// Points available.
        points: usize,
        /// Entries requested.
        entries: usize,
    },
}

impl std::fmt::Display for VqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VqError::InvalidConfig { what, value } => {
                write!(f, "invalid VQ config: {what} = {value}")
            }
            VqError::IncompatibleShape { what, shape } => {
                write!(
                    f,
                    "incompatible tensor shape {}x{} for {what}",
                    shape.0, shape.1
                )
            }
            VqError::InsufficientData { points, entries } => {
                write!(f, "cannot train {entries} entries from {points} points")
            }
        }
    }
}

impl std::error::Error for VqError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, VqError>;
