//! Property-based tests for the VQ substrate.

use proptest::prelude::*;
use vqllm_tensor::{metrics, synth, Tensor2D};
use vqllm_vq::config::{CodebookScope, VqConfig};
use vqllm_vq::packing::PackedIndices;
use vqllm_vq::quantizer::VqQuantizer;
use vqllm_vq::stats::AccessHistogram;
use vqllm_vq::Codebook;

proptest! {
    /// Packing is a lossless round-trip at any width.
    #[test]
    fn pack_unpack_roundtrip(
        bits in 1u8..=24,
        seed in 0u64..1000,
        n in 0usize..300,
    ) {
        let max = (1u64 << bits) - 1;
        let idx: Vec<u32> = (0..n)
            .map(|i| (((i as u64).wrapping_mul(seed.wrapping_mul(2654435761) | 1)) & max) as u32)
            .collect();
        let p = PackedIndices::pack(&idx, bits).unwrap();
        prop_assert_eq!(p.unpack(), idx);
        prop_assert_eq!(p.byte_len(), (n * bits as usize).div_ceil(8));
    }

    /// Quantize→dequantize error never exceeds the trivial bound: the
    /// reconstruction of each sub-vector is its nearest centroid, so MSE is
    /// at most the data's variance around its global mean (k-means with
    /// k ≥ 1 is at least as good as the 1-cluster solution).
    #[test]
    fn vq_mse_bounded_by_variance(seed in 0u64..50, entries_log2 in 2u32..6) {
        let w = synth::gaussian(32, 32, 1.0, seed);
        let cfg = VqConfig::new(4, 1 << entries_log2, 1, CodebookScope::PerTensor).unwrap();
        let q = VqQuantizer::new(cfg).quantize(&w, seed).unwrap();
        let r = q.dequantize().unwrap();
        let mse = metrics::mse_tensor(&w, &r);
        let mean = w.as_slice().iter().sum::<f32>() / w.len() as f32;
        let var = w.as_slice().iter().map(|v| f64::from(v - mean).powi(2)).sum::<f64>() / w.len() as f64;
        prop_assert!(mse <= var * 1.05, "mse {mse} var {var}");
    }

    /// More entries never hurt reconstruction (same seed/data).
    #[test]
    fn more_entries_never_hurt(seed in 0u64..20) {
        let w = synth::correlated_channels(32, 32, 4, 0.9, seed);
        let small = VqConfig::new(4, 8, 1, CodebookScope::PerTensor).unwrap();
        let big = VqConfig::new(4, 128, 1, CodebookScope::PerTensor).unwrap();
        let es = metrics::mse_tensor(&w, &VqQuantizer::new(small).quantize(&w, 1).unwrap().dequantize().unwrap());
        let eb = metrics::mse_tensor(&w, &VqQuantizer::new(big).quantize(&w, 1).unwrap().dequantize().unwrap());
        prop_assert!(eb <= es * 1.10, "big {eb} small {es}");
    }

    /// Codebook reorder is a value-preserving permutation.
    #[test]
    fn reorder_preserves_entry_multiset(seed in 0u64..100) {
        let w = synth::gaussian(16, 16, 1.0, seed);
        let cfg = VqConfig::new(4, 16, 1, CodebookScope::PerTensor).unwrap();
        let q = VqQuantizer::new(cfg).quantize(&w, seed).unwrap();
        let book = q.codebooks().book(0, 0);
        let h = AccessHistogram::profile(&q, 0);
        let perm = h.sort_permutation();
        let re = book.reordered(&perm);
        let mut a: Vec<f32> = (0..book.stored_entries()).flat_map(|i| book.stored_entry(i).to_vec()).collect();
        let mut b: Vec<f32> = (0..re.stored_entries()).flat_map(|i| re.stored_entry(i).to_vec()).collect();
        a.sort_by(f32::total_cmp);
        b.sort_by(f32::total_cmp);
        prop_assert_eq!(a, b);
    }

    /// Lattice encode/lookup reconstructs every element with the sign of
    /// the input (when the reconstruction is non-zero).
    #[test]
    fn lattice_respects_signs(vals in proptest::collection::vec(0.5f32..4.0, 8), signs in proptest::collection::vec(any::<bool>(), 8)) {
        let entries: Vec<f32> = (0..16 * 8).map(|i| (i % 13) as f32 * 0.3 + 0.1).collect();
        let cb = Codebook::new(entries, 8, true).unwrap();
        let v: Vec<f32> = vals.iter().zip(&signs).map(|(x, &s)| if s { -x } else { *x }).collect();
        let id = cb.encode(&v);
        let mut out = vec![0.0f32; 8];
        cb.lookup(id, &mut out);
        for (o, x) in out.iter().zip(&v) {
            if o.abs() > 1e-6 {
                prop_assert_eq!(o.signum(), x.signum());
            }
        }
    }

    /// Histogram totals are invariant under banding (Fig. 9's row-band
    /// decomposition sums back to the whole).
    #[test]
    fn banded_histograms_sum_to_total(seed in 0u64..20, bands in 1usize..8) {
        let w = synth::gaussian(32, 16, 1.0, seed);
        let cfg = VqConfig::new(4, 8, 1, CodebookScope::PerTensor).unwrap();
        let q = VqQuantizer::new(cfg).quantize(&w, seed).unwrap();
        let whole = AccessHistogram::profile(&q, 0);
        let band_size = 32usize.div_ceil(bands);
        let mut acc = vec![0u64; whole.counts().len()];
        let mut start = 0;
        while start < 32 {
            let end = (start + band_size).min(32);
            let h = AccessHistogram::profile_rows(&q, 0, start, end);
            for (a, &c) in acc.iter_mut().zip(h.counts()) {
                *a += c;
            }
            start = end;
        }
        prop_assert_eq!(acc, whole.counts().to_vec());
    }

    /// Dequantizing a quantized all-identical tensor is exact: one centroid
    /// absorbs everything.
    #[test]
    fn constant_tensor_is_exact(v in -5.0f32..5.0) {
        let w = Tensor2D::from_fn(16, 16, |_, _| v);
        let cfg = VqConfig::new(4, 4, 1, CodebookScope::PerTensor).unwrap();
        let q = VqQuantizer::new(cfg).quantize(&w, 0).unwrap();
        let r = q.dequantize().unwrap();
        prop_assert!(metrics::max_abs_diff(w.as_slice(), r.as_slice()) < 1e-5);
    }
}
