//! Fused kernels and baselines for the VQ-LLM reproduction.
//!
//! Every kernel in this crate produces a [`KernelOutput`]: the performance
//! counters it tallied against the `vqllm-gpu` substrate and the latency
//! estimate derived from them. Functional variants additionally compute
//! real outputs so correctness can be checked against the reference math in
//! `vqllm-tensor`.
//!
//! Kernel families:
//!
//! * [`fp16`] — the FP16 baselines: cutlass-style GeMM, GeMV, and the four
//!   attention dataflows of Fig. 18 (FlashDecoding, FlashAttention, and
//!   their paged variants).
//! * [`vq_kernel`] — the plan-driven fused VQ kernels: executes any
//!   [`vqllm_core::KernelPlan`] from the GC baseline to fully-optimized O4.
//! * [`host_exec`] — real host execution: fused kernels that compute
//!   directly on packed codes with cache-resident codebooks/LUTs (the
//!   paper's insight translated to the CPU memory hierarchy).
//! * [`backend`] — the pluggable [`Backend`] seam ([`PerfModelBackend`]
//!   and the executing [`CpuBackend`]) shared by `Session` and `Pipeline`.
//! * [`elementwise`] — the element-wise quantization comparators: AWQ-4
//!   weight kernels and QoQ-4 KV-cache attention (Fig. 16/17).
//! * [`traffic`] — the codebook-access cost model shared by the VQ kernels.

pub mod backend;
pub mod elementwise;
pub mod fp16;
pub mod host_exec;
pub mod traffic;
pub mod vq_kernel;

pub use backend::{Backend, CpuBackend, PerfModelBackend};
pub use host_exec::HostBlocking;
pub use traffic::{l1_hit_rate, AccessProfile, CodebookAccessCost};

use vqllm_gpu::{LatencyBreakdown, LaunchConfig, PerfCounters};

/// The outcome of one (estimated or executed) kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelOutput {
    /// Whole-grid performance counters.
    pub counters: PerfCounters,
    /// Latency estimate from the timing model.
    pub latency: LatencyBreakdown,
    /// The launch shape used.
    pub launch: LaunchConfig,
}

impl KernelOutput {
    /// Latency in microseconds (shorthand).
    pub fn us(&self) -> f64 {
        self.latency.total_us
    }
}

/// Error type for kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// Input shapes disagree with the plan or with each other.
    ShapeMismatch {
        /// Description of the mismatch.
        what: &'static str,
    },
    /// A required input was missing or inconsistent.
    InvalidInput {
        /// Description of the problem.
        what: &'static str,
    },
    /// Planning failed before anything could execute (the [`Backend`]
    /// planning entry points flow `CoreError` through here with its full
    /// structured context).
    Unplannable(vqllm_core::CoreError),
    /// A kernel job panicked and the panic was contained (by the
    /// [`host_exec::pool::WorkerPool`] or a `catch_unwind` wrapper). The
    /// panic does not cross this boundary; instead the captured payload
    /// travels as data so the serving layer can quarantine exactly the
    /// offending work.
    Panicked {
        /// The failpoint/callsite name where the panic surfaced.
        site: &'static str,
        /// Downcast panic payload (`&str`/`String`), or a placeholder for
        /// non-string payloads.
        message: String,
    },
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
            KernelError::InvalidInput { what } => write!(f, "invalid input: {what}"),
            KernelError::Unplannable(e) => write!(f, "planning: {e}"),
            KernelError::Panicked { site, message } => {
                write!(f, "kernel panicked at {site}: {message}")
            }
        }
    }
}

impl KernelError {
    /// Downcasts a caught panic payload into its conventional `&str` /
    /// `String` message and wraps it as [`KernelError::Panicked`].
    pub fn from_panic(site: &'static str, payload: Box<dyn std::any::Any + Send>) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        KernelError::Panicked { site, message }
    }
}

impl std::error::Error for KernelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KernelError::Unplannable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vqllm_core::CoreError> for KernelError {
    fn from(e: vqllm_core::CoreError) -> Self {
        KernelError::Unplannable(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, KernelError>;
