//! Persistent worker pool for the host kernels' row-parallel paths.
//!
//! PR 2's `std::thread::scope` path paid a full OS-thread spawn + join per
//! kernel call — on decode-sized operands the spawn cost rivals the kernel
//! itself, which is why the seed bench recorded a *parallel* GeMV slower
//! than the serial one. [`WorkerPool`] replaces it with workers spawned
//! **once** (lazily, at the first parallel kernel call or when a
//! `CpuBackend` warms it) and fed through a shared job queue; a kernel call
//! is then two mutex pushes and a condvar wake instead of N `clone()`d
//! stacks.
//!
//! Design points:
//!
//! * **Process-wide singleton** ([`WorkerPool::shared`]), sized to
//!   `available_parallelism`. Every `CpuBackend` shares the same OS
//!   threads; the per-backend `threads` knob controls how many chunks a
//!   call is partitioned into (static row partitioning derived from
//!   `HostBlocking`), not how many threads exist.
//! * **Caller participation**: [`WorkerPool::scope`] lets the submitting
//!   thread drain the queue while it waits, so a pool on a 1-core machine
//!   (zero useful workers) still completes every job, and an
//!   oversubscribed pool degrades to sequential execution instead of
//!   deadlocking.
//! * **Borrowed jobs**: jobs may borrow the caller's stack (the kernels
//!   hand out disjoint `&mut` row chunks). `scope` guarantees every job
//!   has finished before it returns, which is what makes the lifetime
//!   erasure in [`Scope::spawn`] sound.
//! * **Panic safety**: a panicking job neither kills its worker nor wedges
//!   the scope — the panic is caught, its payload message is captured, the
//!   scope's completion latch still fires (via a drop guard), and the
//!   failure surfaces on the submitting thread once the scope is fully
//!   joined: as a structured [`KernelError::Panicked`] from
//!   [`WorkerPool::try_scope`] (what the kernels use, so the serving layer
//!   can quarantine the offending request), or as a re-raised panic
//!   carrying the same message from [`WorkerPool::scope`].

use crate::KernelError;

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A type-erased unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks a mutex, recovering from poisoning instead of panicking.
///
/// Sound here because every critical section in this module is short
/// straight-line code that cannot panic; jobs that *can* panic run
/// outside these guards (under `catch_unwind`), so a poisoned lock
/// never exposes torn state — and the pool must keep serving other
/// scopes after one job panics.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Shared FIFO feeding the workers (and draining callers).
struct JobQueue {
    /// Pending jobs plus the shutdown flag, under one lock.
    state: Mutex<(VecDeque<Job>, bool)>,
    /// Signalled when a job is pushed or shutdown begins.
    available: Condvar,
}

impl JobQueue {
    fn new() -> Self {
        JobQueue {
            state: Mutex::new((VecDeque::new(), false)),
            available: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut state = lock_recover(&self.state);
        state.0.push_back(job);
        drop(state);
        self.available.notify_one();
    }

    /// Blocking pop for workers; `None` means shutdown and drained.
    fn pop_wait(&self) -> Option<Job> {
        let mut state = lock_recover(&self.state);
        loop {
            if let Some(job) = state.0.pop_front() {
                return Some(job);
            }
            if state.1 {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking pop for caller-drain loops.
    fn try_pop(&self) -> Option<Job> {
        lock_recover(&self.state).0.pop_front()
    }

    fn shutdown(&self) {
        lock_recover(&self.state).1 = true;
        self.available.notify_all();
    }
}

/// A persistent, channel-fed pool of worker threads.
pub struct WorkerPool {
    queue: Arc<JobQueue>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(JobQueue::new());
        let workers = (0..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("vqllm-host-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop_wait() {
                            // A panicking job must not kill the worker; the
                            // scope's drop guard reports it to the caller.
                            let _ = panic::catch_unwind(AssertUnwindSafe(job));
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool {
            queue,
            workers: Mutex::new(workers),
            threads,
        }
    }

    /// The process-wide pool, spawned on first use and sized to
    /// `available_parallelism`. All `CpuBackend`s (and direct `host_exec`
    /// callers) share it, so kernel calls never pay thread spawns.
    pub fn shared() -> &'static WorkerPool {
        static SHARED: OnceLock<WorkerPool> = OnceLock::new();
        SHARED.get_or_init(|| {
            WorkerPool::new(
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1),
            )
        })
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f`, which may [`Scope::spawn`] borrowing jobs onto the pool,
    /// and returns only after every spawned job has completed. The calling
    /// thread participates by draining the queue while it waits.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Panicked`] (tagged with `site` and the
    /// job's downcast panic message) if any spawned job panicked. The
    /// panic does **not** unwind out of this call, which is what lets the
    /// serving layer above treat a poisoned kernel as a per-request fault
    /// instead of a dead thread.
    pub fn try_scope<'env, R>(
        &self,
        site: &'static str,
        f: impl FnOnce(&Scope<'_, 'env>) -> R,
    ) -> Result<R, KernelError> {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: Mutex::new(0),
                done: Condvar::new(),
                panicked: AtomicBool::new(false),
                panic_msg: Mutex::new(None),
            }),
            _env: PhantomData,
        };
        // Join before propagating any panic from `f` itself: spawned jobs
        // borrow the caller's stack and must not outlive this frame.
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.join();
        match result {
            Ok(result) => {
                // Acquire pairs with the `Release` store in
                // `record_panic`: observing the flag makes the message
                // written before it visible.
                if scope.state.panicked.load(Ordering::Acquire) {
                    let message = lock_recover(&scope.state.panic_msg)
                        .take()
                        .unwrap_or_else(|| "worker pool job panicked".to_string());
                    Err(KernelError::Panicked { site, message })
                } else {
                    Ok(result)
                }
            }
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Panicking convenience wrapper around [`WorkerPool::try_scope`] for
    /// callers without an error channel.
    ///
    /// # Panics
    ///
    /// Panics with the captured job message if any spawned job panicked
    /// (never the old bare "worker pool job panicked").
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        match self.try_scope("pool.scope", f) {
            Ok(result) => result,
            Err(e) => panic!("{e}"),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.queue.shutdown();
        for handle in lock_recover(&self.workers).drain(..) {
            let _ = handle.join();
        }
    }
}

/// Book-keeping for one [`WorkerPool::scope`] invocation.
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
    /// First captured panic payload message (later panics in the same
    /// scope are dropped — one message is enough to name the fault).
    panic_msg: Mutex<Option<String>>,
}

impl ScopeState {
    /// Records a caught job panic: keeps the first downcast payload
    /// message and marks the scope poisoned.
    fn record_panic(&self, payload: &(dyn std::any::Any + Send)) {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        let mut slot = lock_recover(&self.panic_msg);
        slot.get_or_insert(message);
        drop(slot);
        // Release pairs with the `Acquire` load in `try_scope`: the
        // message above is published before the flag flips.
        self.panicked.store(true, Ordering::Release);
    }
}

/// Decrements the scope latch when dropped — runs even if the job panics,
/// so a scope can never wedge on a poisoned job.
struct CompletionGuard {
    state: Arc<ScopeState>,
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        // Backstop: the job wrapper catches and records panics itself
        // (with the payload message); this only fires if unwinding somehow
        // escapes that catch.
        if std::thread::panicking() {
            self.state.panicked.store(true, Ordering::Release);
        }
        let mut pending = lock_recover(&self.state.pending);
        *pending -= 1;
        if *pending == 0 {
            self.state.done.notify_all();
        }
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`].
pub struct Scope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Enqueues `job` on the pool. The job may borrow from `'env` (the
    /// caller's stack); the enclosing [`WorkerPool::scope`] blocks until it
    /// has run.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'env) {
        *lock_recover(&self.state.pending) += 1;
        let guard = CompletionGuard {
            state: Arc::clone(&self.state),
        };
        let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let _guard = guard;
            // Catch here (not just in the worker loop) so the payload can
            // be recorded for the scope's structured error; the latch
            // guard still drops normally afterwards.
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(job)) {
                _guard.state.record_panic(payload.as_ref());
            }
        });
        // SAFETY: `WorkerPool::scope` joins (waits for `pending == 0`)
        // before returning, and the completion guard only fires after the
        // job has run (or unwound), so no borrow in `job` outlives `'env`.
        let wrapped: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(
                wrapped,
            )
        };
        self.pool.queue.push(wrapped);
    }

    /// Drains the queue from the calling thread, then waits for any jobs
    /// still running on workers.
    fn join(&self) {
        // Run queued jobs inline — this is what makes a 1-core pool (or a
        // pool busy with other scopes) make progress instead of blocking.
        while let Some(job) = self.pool.queue.try_pop() {
            let _ = panic::catch_unwind(AssertUnwindSafe(job));
        }
        let mut pending = lock_recover(&self.state.pending);
        while *pending > 0 {
            pending = self
                .state
                .done
                .wait(pending)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_runs_every_job_and_blocks_until_done() {
        let pool = WorkerPool::new(3);
        let mut data = vec![0usize; 64];
        pool.scope(|scope| {
            for (i, chunk) in data.chunks_mut(7).enumerate() {
                scope.spawn(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = i * 7 + j;
                    }
                });
            }
        });
        let expect: Vec<usize> = (0..64).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn sequential_jobs_reuse_the_same_workers() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let pool = WorkerPool::new(1);
        let out = pool.scope(|_| 42);
        assert_eq!(out, 42);
    }

    #[test]
    fn shared_pool_is_a_singleton() {
        let a = WorkerPool::shared() as *const WorkerPool;
        let b = WorkerPool::shared() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(WorkerPool::shared().threads() >= 1);
    }

    #[test]
    fn panicking_job_is_reported_not_wedged() {
        let pool = WorkerPool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("boom"));
                scope.spawn(|| ());
            });
        }));
        let payload = result.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom"), "re-raise carries the payload: {msg}");
        // The pool survives and keeps executing later scopes.
        let ran = AtomicBool::new(false);
        pool.scope(|scope| {
            scope.spawn(|| ran.store(true, Ordering::SeqCst));
        });
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn try_scope_returns_structured_panicked_error() {
        let pool = WorkerPool::new(2);
        let err = pool
            .try_scope("test.site", |scope| {
                scope.spawn(|| panic!("lut index {} out of range", 7));
                scope.spawn(|| ());
            })
            .unwrap_err();
        match err {
            KernelError::Panicked { site, message } => {
                assert_eq!(site, "test.site");
                assert_eq!(message, "lut index 7 out of range");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn pool_self_heals_after_contained_panics() {
        let pool = WorkerPool::new(2);
        // Poison every worker (more panics than threads, so workers and
        // the caller-drain path both see one).
        for _ in 0..4 {
            let _ = pool.try_scope("test.heal", |scope| {
                for _ in 0..3 {
                    scope.spawn(|| panic!("transient"));
                }
            });
        }
        // Full healthy scope still completes with correct data.
        let counter = AtomicUsize::new(0);
        pool.try_scope("test.heal", |scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn nested_parallelism_from_many_threads() {
        let pool = Arc::new(WorkerPool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    for _ in 0..10 {
                        pool.scope(|scope| {
                            for _ in 0..3 {
                                let total = &total;
                                scope.spawn(move || {
                                    total.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 120);
    }
}
