//! SIMD-wide inner loops for the host kernels.
//!
//! Every primitive here ships two tiers behind one safe entry point:
//!
//! * an **AVX2 + FMA** intrinsic path (`#[cfg(target_arch = "x86_64")]`,
//!   selected at runtime via `is_x86_feature_detected!`, which caches the
//!   CPUID probe), and
//! * a **scalar** fallback restructured into 8-wide unrolled accumulator
//!   lanes so LLVM's autovectorizer reliably emits packed math on any
//!   target (and out-of-order cores get independent dependency chains even
//!   when it does not).
//!
//! The primitives are exactly the inner loops of
//! [`host_exec`](crate::host_exec): contiguous dot products (LUT builds and
//! interleaved-codebook expansions), the `acc += lut[code]` gather of the
//! LUT GeMV (an `vpgatherdps` over a group-blocked slab), and the
//! batch-lane accumulation of `gemv_lut_batch`.

/// Width of the accumulator-lane unroll (one AVX2 register of f32).
pub const LANES: usize = 8;

/// Rows of A per GeMM micro-kernel tile: 6 rows × two 8-wide vectors fills
/// 12 of the 16 AVX registers with accumulators, leaving room for the two
/// panel vectors and the broadcast.
pub const GEMM_MR: usize = 6;
/// Output columns per GeMM micro-kernel tile (two 8-wide vectors).
pub const GEMM_NR: usize = 16;

/// Whether the AVX2 + FMA tier is selected on this machine.
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        // std caches the CPUID probe; this is a load + test after the
        // first call.
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Human-readable name of the selected tier (for reports/benches).
pub fn tier() -> &'static str {
    if avx2_available() {
        "avx2+fma"
    } else {
        "scalar-8w"
    }
}

/// Dense dot product `Σ a[i]·b[i]`.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot operand lengths");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2+FMA presence was just verified.
        return unsafe { dot_avx2(a, b) };
    }
    dot_scalar(a, b)
}

fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for i in 0..chunks {
        let (xa, xb) = (&a[i * LANES..][..LANES], &b[i * LANES..][..LANES]);
        for l in 0..LANES {
            lanes[l] += xa[l] * xb[l];
        }
    }
    let mut acc = lanes.iter().sum::<f32>();
    for i in chunks * LANES..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// `out[i] += s · src[i]` — the AXPY behind LUT builds over the
/// interleaved codebook layout.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn axpy(out: &mut [f32], s: f32, src: &[f32]) {
    assert_eq!(out.len(), src.len(), "axpy operand lengths");
    if s == 0.0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2+FMA presence was just verified.
        unsafe { axpy_avx2(out, s, src) };
        return;
    }
    for (o, &v) in out.iter_mut().zip(src) {
        *o += s * v;
    }
}

/// `acc[i] += src[i]` — the batch-lane accumulation of `gemv_lut_batch`
/// (`src` is the B-wide slab row of one code).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn add_assign(acc: &mut [f32], src: &[f32]) {
    assert_eq!(acc.len(), src.len(), "add_assign operand lengths");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2+FMA presence was just verified.
        unsafe { add_assign_avx2(acc, src) };
        return;
    }
    for (a, &v) in acc.iter_mut().zip(src) {
        *a += v;
    }
}

/// The LUT GeMV inner loop: `Σ_g slab[g·stored + codes[g]]` — one gather
/// and one add per packed code, 8 group lanes at a time.
///
/// # Panics
///
/// Panics (scalar tier) or debug-asserts (AVX2 tier) if any code indexes
/// outside its `stored`-entry slab row.
#[inline]
pub fn lut_row_sum(slab: &[f32], stored: usize, codes: &[u32]) -> f32 {
    debug_assert!(codes.len() * stored <= slab.len(), "slab covers codes");
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2+FMA presence was just verified; index bounds are
        // debug-asserted inside.
        return unsafe { lut_row_sum_avx2(slab, stored, codes) };
    }
    lut_row_sum_scalar(slab, stored, codes)
}

fn lut_row_sum_scalar(slab: &[f32], stored: usize, codes: &[u32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let chunks = codes.len() / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        for l in 0..LANES {
            lanes[l] += slab[(base + l) * stored + codes[base + l] as usize];
        }
    }
    let mut acc = lanes.iter().sum::<f32>();
    for g in chunks * LANES..codes.len() {
        acc += slab[g * stored + codes[g] as usize];
    }
    acc
}

/// One GeMM micro-kernel tile: `acc[p][l] += Σ_ii arows[p][ii] ·
/// panel[ii·stride + j0 + l]` — `GEMM_MR × GEMM_NR` accumulators held
/// live across the whole panel depth `kb`. Callers pad the panel width
/// and the A-row set so every tile runs this one full-size kernel; the
/// per-machine tier (FMA vs mul+add) is then uniform across all tiles,
/// keeping results bitwise identical at every strip partitioning.
///
/// # Panics
///
/// Debug-asserts that each `arows[p]` covers `kb` and the panel covers
/// the tile.
#[inline]
pub fn gemm_acc_tile(
    arows: &[&[f32]; GEMM_MR],
    panel: &[f32],
    stride: usize,
    j0: usize,
    kb: usize,
    acc: &mut [[f32; GEMM_NR]; GEMM_MR],
) {
    debug_assert!(arows.iter().all(|r| r.len() >= kb), "A rows cover kb");
    debug_assert!(
        kb == 0 || (kb - 1) * stride + j0 + GEMM_NR <= panel.len(),
        "panel covers tile"
    );
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2+FMA presence was just verified; bounds are
        // debug-asserted above and enforced by the slice indexing in the
        // scalar path's shared contract.
        unsafe { gemm_acc_tile_avx2(arows, panel, stride, j0, kb, acc) };
        return;
    }
    gemm_acc_tile_scalar(arows, panel, stride, j0, kb, acc);
}

fn gemm_acc_tile_scalar(
    arows: &[&[f32]; GEMM_MR],
    panel: &[f32],
    stride: usize,
    j0: usize,
    kb: usize,
    acc: &mut [[f32; GEMM_NR]; GEMM_MR],
) {
    for ii in 0..kb {
        let pvec: &[f32; GEMM_NR] = panel[ii * stride + j0..ii * stride + j0 + GEMM_NR]
            .try_into()
            .expect("tile panel slice");
        for (p, accp) in acc.iter_mut().enumerate() {
            let av = arows[p][ii];
            for l in 0..GEMM_NR {
                accp[l] += av * pvec[l];
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::LANES;
    use std::arch::x86_64::*;

    #[inline]
    unsafe fn hsum(v: __m256) -> f32 {
        // SAFETY: caller guarantees AVX2.
        unsafe {
            let hi = _mm256_extractf128_ps(v, 1);
            let lo = _mm256_castps256_ps128(v);
            let s = _mm_add_ps(lo, hi);
            let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
            let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0b01));
            _mm_cvtss_f32(s)
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: caller guarantees AVX2+FMA and equal lengths.
        unsafe {
            let chunks = a.len() / LANES;
            let mut acc = _mm256_setzero_ps();
            for i in 0..chunks {
                let va = _mm256_loadu_ps(a.as_ptr().add(i * LANES));
                let vb = _mm256_loadu_ps(b.as_ptr().add(i * LANES));
                acc = _mm256_fmadd_ps(va, vb, acc);
            }
            let mut sum = hsum(acc);
            for i in chunks * LANES..a.len() {
                sum += a[i] * b[i];
            }
            sum
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy_avx2(out: &mut [f32], s: f32, src: &[f32]) {
        // SAFETY: caller guarantees AVX2+FMA and equal lengths.
        unsafe {
            let chunks = out.len() / LANES;
            let vs = _mm256_set1_ps(s);
            for i in 0..chunks {
                let o = out.as_mut_ptr().add(i * LANES);
                let v = _mm256_fmadd_ps(
                    vs,
                    _mm256_loadu_ps(src.as_ptr().add(i * LANES)),
                    _mm256_loadu_ps(o),
                );
                _mm256_storeu_ps(o, v);
            }
            // Fused like the vector body: a lane must land on the same
            // rounding whether it fell in the 8-wide chunks or the tail,
            // so batch-interleaved LUT slabs are bitwise identical at
            // every batch width (the serving scheduler's parity contract).
            for i in chunks * LANES..out.len() {
                out[i] = s.mul_add(src[i], out[i]);
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn add_assign_avx2(acc: &mut [f32], src: &[f32]) {
        // SAFETY: caller guarantees AVX2+FMA and equal lengths.
        unsafe {
            let chunks = acc.len() / LANES;
            for i in 0..chunks {
                let a = acc.as_mut_ptr().add(i * LANES);
                let v = _mm256_add_ps(
                    _mm256_loadu_ps(a),
                    _mm256_loadu_ps(src.as_ptr().add(i * LANES)),
                );
                _mm256_storeu_ps(a, v);
            }
            for i in chunks * LANES..acc.len() {
                acc[i] += src[i];
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_acc_tile_avx2(
        arows: &[&[f32]; super::GEMM_MR],
        panel: &[f32],
        stride: usize,
        j0: usize,
        kb: usize,
        acc: &mut [[f32; super::GEMM_NR]; super::GEMM_MR],
    ) {
        // SAFETY: caller guarantees AVX2+FMA and that every `arows[p]`
        // covers `kb` and the panel covers the `GEMM_NR`-wide tile at
        // `j0` for all `kb` rows.
        unsafe {
            let mut r: [[__m256; 2]; super::GEMM_MR] = [[_mm256_setzero_ps(); 2]; super::GEMM_MR];
            for ii in 0..kb {
                let p = panel.as_ptr().add(ii * stride + j0);
                let v0 = _mm256_loadu_ps(p);
                let v1 = _mm256_loadu_ps(p.add(8));
                for (q, rq) in r.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*arows[q].get_unchecked(ii));
                    rq[0] = _mm256_fmadd_ps(av, v0, rq[0]);
                    rq[1] = _mm256_fmadd_ps(av, v1, rq[1]);
                }
            }
            for (q, rq) in r.iter().enumerate() {
                let a0 = _mm256_add_ps(_mm256_loadu_ps(acc[q].as_ptr()), rq[0]);
                let a1 = _mm256_add_ps(_mm256_loadu_ps(acc[q].as_ptr().add(8)), rq[1]);
                _mm256_storeu_ps(acc[q].as_mut_ptr(), a0);
                _mm256_storeu_ps(acc[q].as_mut_ptr().add(8), a1);
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn lut_row_sum_avx2(slab: &[f32], stored: usize, codes: &[u32]) -> f32 {
        // SAFETY: caller guarantees AVX2+FMA; every gathered index is
        // `g·stored + code` with `code < stored` (debug-asserted), which
        // the caller's bound `codes.len()·stored ≤ slab.len()` keeps in
        // range.
        unsafe {
            let chunks = codes.len() / LANES;
            let mut acc = _mm256_setzero_ps();
            // Lane offsets 0·stored … 7·stored, advanced by 8·stored.
            let lane_off = _mm256_mullo_epi32(
                _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
                _mm256_set1_epi32(stored as i32),
            );
            let step = _mm256_set1_epi32((LANES * stored) as i32);
            let mut base = lane_off;
            for c in 0..chunks {
                if cfg!(debug_assertions) {
                    for l in 0..LANES {
                        debug_assert!((codes[c * LANES + l] as usize) < stored, "code in range");
                    }
                }
                let vcodes = _mm256_loadu_si256(codes.as_ptr().add(c * LANES).cast());
                let vidx = _mm256_add_epi32(base, vcodes);
                acc = _mm256_add_ps(acc, _mm256_i32gather_ps::<4>(slab.as_ptr(), vidx));
                base = _mm256_add_epi32(base, step);
            }
            let mut sum = hsum(acc);
            for g in chunks * LANES..codes.len() {
                sum += slab[g * stored + codes[g] as usize];
            }
            sum
        }
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{add_assign_avx2, axpy_avx2, dot_avx2, gemm_acc_tile_avx2, lut_row_sum_avx2};

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize, phase: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * phase).sin()).collect()
    }

    #[test]
    fn dot_matches_naive_at_all_remainders() {
        for n in [0, 1, 7, 8, 9, 31, 64, 100] {
            let a = series(n, 0.37);
            let b = series(n, 0.23);
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-4, "n = {n}");
            assert!((dot_scalar(&a, &b) - naive).abs() < 1e-4, "n = {n}");
        }
    }

    #[test]
    fn axpy_and_add_assign_match_naive() {
        for n in [0, 3, 8, 19, 40] {
            let src = series(n, 0.41);
            let mut out = series(n, 0.11);
            let mut naive = out.clone();
            axpy(&mut out, 1.5, &src);
            for (o, &s) in naive.iter_mut().zip(&src) {
                *o += 1.5 * s;
            }
            assert_eq!(out.len(), naive.len());
            for (x, y) in out.iter().zip(&naive) {
                assert!((x - y).abs() < 1e-5, "n = {n}");
            }
            add_assign(&mut out, &src);
            for (o, &s) in naive.iter_mut().zip(&src) {
                *o += s;
            }
            for (x, y) in out.iter().zip(&naive) {
                assert!((x - y).abs() < 1e-5, "n = {n}");
            }
        }
    }

    #[test]
    fn lut_row_sum_matches_naive_gather() {
        let stored = 16;
        for groups in [1usize, 5, 8, 13, 24] {
            let slab = series(groups * stored, 0.19);
            let codes: Vec<u32> = (0..groups as u32)
                .map(|g| (g * 7 + 3) % stored as u32)
                .collect();
            let naive: f32 = codes
                .iter()
                .enumerate()
                .map(|(g, &c)| slab[g * stored + c as usize])
                .sum();
            assert!(
                (lut_row_sum(&slab, stored, &codes) - naive).abs() < 1e-5,
                "groups = {groups}"
            );
            assert!(
                (lut_row_sum_scalar(&slab, stored, &codes) - naive).abs() < 1e-5,
                "groups = {groups}"
            );
        }
    }

    #[test]
    fn gemm_tile_matches_naive_triple_loop() {
        let kb = 11;
        let stride = 2 * GEMM_NR;
        let panel = series(kb * stride, 0.21);
        let a: Vec<Vec<f32>> = (0..GEMM_MR)
            .map(|p| series(kb, 0.31 + p as f32 * 0.07))
            .collect();
        let arows: [&[f32]; GEMM_MR] = std::array::from_fn(|p| a[p].as_slice());
        for j0 in [0, GEMM_NR] {
            let mut acc = [[0.5f32; GEMM_NR]; GEMM_MR];
            gemm_acc_tile(&arows, &panel, stride, j0, kb, &mut acc);
            for p in 0..GEMM_MR {
                for l in 0..GEMM_NR {
                    let naive: f32 = (0..kb)
                        .map(|ii| arows[p][ii] * panel[ii * stride + j0 + l])
                        .sum();
                    assert!(
                        (acc[p][l] - (0.5 + naive)).abs() < 1e-4,
                        "p {p} l {l} j0 {j0}"
                    );
                }
            }
        }
    }

    #[test]
    fn tier_is_reported() {
        // On x86_64 CI this exercises the AVX2 path; elsewhere the scalar
        // tier. Either way the selection is stable across calls.
        assert_eq!(tier(), tier());
        assert!(["avx2+fma", "scalar-8w"].contains(&tier()));
    }
}
