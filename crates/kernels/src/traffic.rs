//! Codebook-access cost modelling.
//!
//! The cost of a dequantization lookup depends on *where* the entry lives
//! (register / shared / global — decided by the codebook cache) and on the
//! *distribution* of lookups (hot entries broadcast within a warp; uniform
//! random entries conflict). This module samples warp-wide lookup events
//! from a profiled (or synthetic) access distribution and replays them
//! against the bank/coalescing models of `vqllm-gpu`, yielding per-warp
//! average costs that the kernel counter assembly scales by the total
//! lookup count.

use vqllm_core::cache::CachePlacement;
use vqllm_gpu::{GlobalMemoryModel, GpuSpec, SharedMemoryModel, WARP_SIZE};
use vqllm_vq::stats::AccessHistogram;
use vqllm_vq::VqConfig;

/// A normalized access distribution over *reordered* entry ranks
/// (rank 0 = hottest).
#[derive(Debug, Clone)]
pub struct AccessProfile {
    /// Cumulative probability per rank (ascending, last = 1.0).
    cumulative: Vec<f64>,
}

impl AccessProfile {
    /// Builds the profile from a measured histogram (sorted descending —
    /// the codebook cache's reordering).
    pub fn from_histogram(hist: &AccessHistogram) -> Self {
        let mut counts: Vec<u64> = hist.counts().to_vec();
        counts.sort_unstable_by_key(|&c| std::cmp::Reverse(c));
        Self::from_sorted_weights(counts.iter().map(|&c| c as f64 + 1e-9).collect())
    }

    /// Synthetic Zipf-like profile: weight of rank `i` is `1/(i+1)^s`.
    pub fn zipf(entries: usize, s: f64) -> Self {
        assert!(entries > 0);
        Self::from_sorted_weights(
            (0..entries)
                .map(|i| 1.0 / ((i + 1) as f64).powf(s))
                .collect(),
        )
    }

    /// The synthetic default matching each algorithm's skew (Tbl. V's
    /// "#Entry freq > µ+3σ": AQLM 15-30, QuiP# 1-3, GPTVQ/CQ <1 — larger
    /// codebooks trained on long-tailed weight data are more skewed).
    pub fn default_for(vq: &VqConfig) -> Self {
        let s = if vq.num_entries >= 4096 {
            1.0
        } else if vq.lattice {
            0.8
        } else {
            0.5
        };
        Self::zipf(vq.stored_entries(), s)
    }

    fn from_sorted_weights(weights: Vec<f64>) -> Self {
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        AccessProfile { cumulative }
    }

    /// Number of entries in the distribution.
    pub fn entries(&self) -> usize {
        self.cumulative.len()
    }

    /// Stable fingerprint of the distribution (FNV-1a over the bit
    /// patterns), for use as a plan-cache key component: two profiles with
    /// different shapes must not alias to one cached best-rung decision.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &c in &self.cumulative {
            h = (h ^ c.to_bits()).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Samples a rank from the distribution given `u ∈ [0, 1)`.
    pub fn sample(&self, u: f64) -> usize {
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Kolmogorov–Smirnov distance between two rank distributions: the
    /// largest absolute gap between the cumulative curves, in `[0, 1]`.
    /// A shorter curve is treated as saturated (mass 1.0) past its end,
    /// so comparing profiles of different entry counts is well-defined.
    ///
    /// This is the serving layer's replan trigger: a measured per-context
    /// profile that drifts more than a configured threshold from the one
    /// its canonical plans were made under invalidates those plans.
    pub fn divergence(&self, other: &AccessProfile) -> f64 {
        let n = self.cumulative.len().max(other.cumulative.len());
        let mut d: f64 = 0.0;
        for i in 0..n {
            let a = self.cumulative.get(i).copied().unwrap_or(1.0);
            let b = other.cumulative.get(i).copied().unwrap_or(1.0);
            d = d.max((a - b).abs());
        }
        d
    }

    /// Fraction of accesses landing in ranks `[0, n)`.
    pub fn mass_below(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else if n >= self.cumulative.len() {
            1.0
        } else {
            self.cumulative[n - 1]
        }
    }
}

/// Averaged per-warp-lookup costs for one (profile, placement) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodebookAccessCost {
    /// Fraction of lookups served from registers.
    pub frac_reg: f64,
    /// Fraction served from shared memory.
    pub frac_shared: f64,
    /// Fraction served from global memory.
    pub frac_global: f64,
    /// Shared-memory cycles per warp lookup event (conflicts included).
    pub smem_cycles_per_warp: f64,
    /// Bank-conflict excess cycles per warp lookup event.
    pub conflict_cycles_per_warp: f64,
    /// Distinct 128 B lines touched in global memory per warp event.
    pub gmem_lines_per_warp: f64,
}

/// Deterministic xorshift for reproducible sampling.
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Samples `samples` warp-wide lookup events and replays them against the
/// bank and coalescing models.
///
/// `entry_cache_bytes` is the per-entry footprint in the cache (int8
/// lattice points for QuiP#, FP16 otherwise).
pub fn model_codebook_access(
    profile: &AccessProfile,
    placement: &CachePlacement,
    entry_cache_bytes: usize,
    gpu: &GpuSpec,
    samples: usize,
    seed: u64,
) -> CodebookAccessCost {
    let smem = SharedMemoryModel::new(gpu);
    let gmem = GlobalMemoryModel::new(gpu);
    let mut rng = XorShift(seed | 1);

    let mut reg_hits = 0usize;
    let mut shared_hits = 0usize;
    let mut global_hits = 0usize;
    let mut smem_cycles = 0usize;
    let mut conflict_cycles = 0usize;
    let mut gmem_lines = 0usize;

    for _ in 0..samples.max(1) {
        let mut smem_addrs: Vec<Option<usize>> = vec![None; WARP_SIZE];
        let mut gmem_addrs: Vec<Option<usize>> = vec![None; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            let rank = profile.sample(rng.next_f64());
            match placement.level_of(rank) {
                vqllm_core::CacheLevel::Register => reg_hits += 1,
                vqllm_core::CacheLevel::Shared => {
                    shared_hits += 1;
                    smem_addrs[lane] = Some((rank - placement.n_reg) * entry_cache_bytes);
                }
                vqllm_core::CacheLevel::Global => {
                    global_hits += 1;
                    gmem_addrs[lane] = Some(rank * entry_cache_bytes);
                }
            }
        }
        let sa = smem.warp_access(&smem_addrs, entry_cache_bytes);
        smem_cycles += sa.cycles;
        conflict_cycles += sa.conflict_cycles;
        let ga = gmem.warp_access(&gmem_addrs, entry_cache_bytes);
        gmem_lines += ga.transactions;
    }

    let total = (samples.max(1) * WARP_SIZE) as f64;
    let n = samples.max(1) as f64;
    CodebookAccessCost {
        frac_reg: reg_hits as f64 / total,
        frac_shared: shared_hits as f64 / total,
        frac_global: global_hits as f64 / total,
        smem_cycles_per_warp: smem_cycles as f64 / n,
        conflict_cycles_per_warp: conflict_cycles as f64 / n,
        gmem_lines_per_warp: gmem_lines as f64 / n,
    }
}

/// L1 hit-rate estimate for global-resident codebook entries: the resident
/// fraction of the working set, deflated by a `thrash` factor for the KV /
/// index streams competing for the same cache.
///
/// Per-tensor codebooks are a stable working set (`thrash ≈ 2`); CQ/GPTVQ
/// books churn as blocks sweep channels and tiles — the operating point
/// behind the paper's 12.45 % overall L1 hit rate for VQ-attn-GC
/// (`thrash ≈ 12`).
pub fn l1_hit_rate_with(working_set_bytes: usize, gpu: &GpuSpec, thrash: f64) -> f64 {
    if working_set_bytes == 0 {
        return 0.95;
    }
    (gpu.l1_bytes as f64 / (working_set_bytes as f64 * thrash.max(1.0))).min(0.9)
}

/// [`l1_hit_rate_with`] at the default (moderate) thrash factor.
pub fn l1_hit_rate(working_set_bytes: usize, gpu: &GpuSpec) -> f64 {
    l1_hit_rate_with(working_set_bytes, gpu, 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqllm_core::CachePlacement;
    use vqllm_vq::VqAlgorithm;

    fn gpu() -> GpuSpec {
        GpuSpec::rtx4090()
    }

    #[test]
    fn zipf_profile_is_normalized_and_skewed() {
        let p = AccessProfile::zipf(256, 1.0);
        assert_eq!(p.entries(), 256);
        assert!(p.mass_below(256) > 0.999);
        // Top 16 ranks carry far more than 16/256 of the mass.
        assert!(p.mass_below(16) > 0.4, "{}", p.mass_below(16));
    }

    #[test]
    fn sampling_respects_the_distribution() {
        let p = AccessProfile::zipf(64, 1.2);
        let mut rng = XorShift(42);
        let mut counts = vec![0usize; 64];
        for _ in 0..20_000 {
            counts[p.sample(rng.next_f64())] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[40]);
    }

    #[test]
    fn gc_placement_sends_everything_to_global() {
        let p = AccessProfile::zipf(256, 0.8);
        let cost = model_codebook_access(&p, &CachePlacement::global_only(), 8, &gpu(), 64, 1);
        assert_eq!(cost.frac_global, 1.0);
        assert_eq!(cost.smem_cycles_per_warp, 0.0);
        assert!(
            cost.gmem_lines_per_warp > 4.0,
            "{}",
            cost.gmem_lines_per_warp
        );
    }

    #[test]
    fn sc_placement_conflicts_in_shared_memory() {
        let p = AccessProfile::zipf(256, 0.5);
        let cost = model_codebook_access(&p, &CachePlacement::all_shared(256), 8, &gpu(), 64, 1);
        assert_eq!(cost.frac_global, 0.0);
        assert!(
            cost.conflict_cycles_per_warp > 1.0,
            "random wide entries must conflict: {}",
            cost.conflict_cycles_per_warp
        );
    }

    #[test]
    fn register_caching_reduces_conflicts() {
        // Skewed profile: moving the hot head into registers removes the
        // most frequent conflict sources.
        let p = AccessProfile::zipf(256, 1.0);
        let sc = model_codebook_access(&p, &CachePlacement::all_shared(256), 8, &gpu(), 128, 3);
        let o2 = model_codebook_access(
            &p,
            &CachePlacement {
                n_reg: 16,
                n_shared: 256,
            },
            8,
            &gpu(),
            128,
            3,
        );
        assert!(o2.frac_reg > 0.3, "hot head captures mass: {}", o2.frac_reg);
        assert!(
            o2.smem_cycles_per_warp < sc.smem_cycles_per_warp,
            "register hits bypass the banks: {} vs {}",
            o2.smem_cycles_per_warp,
            sc.smem_cycles_per_warp
        );
    }

    #[test]
    fn partial_shared_caching_splits_traffic() {
        let p = AccessProfile::zipf(256, 0.8);
        let cost = model_codebook_access(
            &p,
            &CachePlacement {
                n_reg: 0,
                n_shared: 64,
            },
            8,
            &gpu(),
            128,
            7,
        );
        assert!(cost.frac_shared > 0.5, "hot 64 entries capture most mass");
        assert!(cost.frac_global > 0.01);
        assert!((cost.frac_reg + cost.frac_shared + cost.frac_global - 1.0).abs() < 1e-9);
    }

    #[test]
    fn default_profiles_match_table_v_hotness() {
        // AQLM's 4096-entry profile is more skewed than CQ's 256-entry one.
        let aqlm = AccessProfile::default_for(&VqAlgorithm::Aqlm3.config());
        let cq = AccessProfile::default_for(&VqAlgorithm::Cq2.config());
        assert!(aqlm.mass_below(30) > cq.mass_below(30));
    }

    #[test]
    fn divergence_is_a_metric_on_rank_curves() {
        let flat = AccessProfile::zipf(256, 0.0);
        let skewed = AccessProfile::zipf(256, 1.2);
        assert_eq!(flat.divergence(&flat), 0.0);
        assert_eq!(skewed.divergence(&flat), flat.divergence(&skewed));
        assert!(skewed.divergence(&flat) > 0.3, "skew is a large shift");
        // A mild reshuffle is a small shift; different lengths still work.
        let mild = AccessProfile::zipf(256, 0.1);
        assert!(flat.divergence(&mild) < skewed.divergence(&flat));
        let short = AccessProfile::zipf(16, 0.0);
        let d = short.divergence(&flat);
        assert!(d > 0.0 && d <= 1.0, "{d}");
    }

    #[test]
    fn l1_hit_rate_is_monotone_and_bounded() {
        // Codebook-entry hit rate degrades with the working set and never
        // reaches 1 (cold misses always cost something).
        let small = l1_hit_rate(1024, &gpu());
        let medium = l1_hit_rate(64 * 1024, &gpu());
        let large = l1_hit_rate(512 * 1024, &gpu());
        assert!(small > medium && medium > large, "{small} {medium} {large}");
        assert!(small <= 0.9);
        assert!(large < 0.15, "{large}");
    }

    #[test]
    fn wider_entries_conflict_more() {
        let p = AccessProfile::zipf(256, 0.5);
        let narrow = model_codebook_access(&p, &CachePlacement::all_shared(256), 4, &gpu(), 128, 9);
        let wide = model_codebook_access(&p, &CachePlacement::all_shared(256), 16, &gpu(), 128, 9);
        assert!(
            wide.conflict_cycles_per_warp > narrow.conflict_cycles_per_warp,
            "vector-size-8 entries span more banks: {} vs {}",
            wide.conflict_cycles_per_warp,
            narrow.conflict_cycles_per_warp
        );
    }
}
