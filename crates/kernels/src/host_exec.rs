//! Fused host execution of VQ kernels — real computation on packed codes.
//!
//! This module is the paper's core insight (§IV: keep codebooks
//! cache-resident and fuse dequantization into the consuming op) mapped
//! onto the host memory hierarchy. No kernel here ever materializes the
//! dequantized weight matrix; every inner loop reads **packed codes**
//! (via [`PackedIndices::unpack_block`]) and small cache-resident tables:
//!
//! * [`gemv_lut`] — `y = dequant(Wq) · x`: per-(scope, residual) lookup
//!   tables of `x`-sub-vector · centroid partial dots (the decode-centric
//!   LUT GeMV of EVA/VPTQ), so the inner loop is `acc[row] += lut[code]` —
//!   one gather and one add per packed code, 8 group lanes at a time
//!   ([`simd::lut_row_sum`]).
//! * [`gemv_lut_batch`] — the same LUT kernel over a **batch** of
//!   activations (the serving-layer multi-token decode shape): one shared
//!   code decode per weight row feeds batch-interleaved LUT slabs, so the
//!   inner loop is one contiguous B-wide vector add per packed code.
//! * [`gemv_xw`] — `y = xᵀ · dequant(Wq)` (the [`Backend`] GeMV contract,
//!   where sub-vectors run along the *output* axis): the dual trick —
//!   scatter-aggregate `wsum[code] += x[row]` into a cache-resident slab,
//!   then expand through the centroids once, as dense SIMD dots over the
//!   interleaved codebook layout when the aggregation is saturated.
//! * [`gemm_fused`] — `C = A × dequant(Wq)`: **panel-blocked**. Each
//!   worker decodes a K-panel of its column strip once (all residual
//!   rounds folded, never the full matrix) and reuses it across an M×N
//!   register-blocked micro-kernel, instead of re-decoding per output row.
//! * [`attention_decode_fused`] / [`attention_decode_batch`] — decode
//!   heads over quantized K/V: the K-side score pass *is* the LUT GeMV
//!   (batched for multi-query), the V-side weighted sum *is* the
//!   aggregation GeMV (the batch variant rides the panel-blocked GeMM).
//!
//! Blocking ([`HostBlocking`]) reuses the [`KernelPlan`]'s shared-memory
//! budget decisions: the bytes the planner would stage into an SM's shared
//! memory are the natural L1/L2-resident slab size on the host. Row
//! partitioning derived from the blocking runs on the persistent
//! [`pool::WorkerPool`] — workers are spawned once per process and fed
//! through a channel, so a parallel kernel call costs two queue pushes,
//! not N thread spawns. Inner loops dispatch through [`simd`]: AVX2 + FMA
//! intrinsics when the CPU has them, 8-wide unrolled scalar lanes
//! otherwise.
//!
//! [`Backend`]: crate::backend::Backend
//! [`PackedIndices::unpack_block`]: vqllm_vq::PackedIndices::unpack_block

pub mod pool;
pub mod simd;

use crate::{KernelError, Result};
use vqllm_core::KernelPlan;
use vqllm_tensor::{linalg, Tensor2D};
use vqllm_vq::config::CodebookScope;
use vqllm_vq::QuantizedTensor;

/// Cache-blocking and threading decisions for the host kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostBlocking {
    /// Byte budget for the cache-resident slab (LUT, aggregation table, or
    /// decoded weight panel) a kernel keeps hot — the host analogue of the
    /// plan's shared-memory footprint.
    pub slab_bytes: usize,
    /// Worker partitions for the parallel paths (1 = sequential). The
    /// partitions execute on the shared [`pool::WorkerPool`]; this knob
    /// decides how many chunks a call is split into, not how many OS
    /// threads exist.
    pub threads: usize,
}

/// Default slab budget when no plan is supplied: a typical L1 data cache.
const DEFAULT_SLAB_BYTES: usize = 32 << 10;

impl Default for HostBlocking {
    fn default() -> Self {
        HostBlocking {
            slab_bytes: DEFAULT_SLAB_BYTES,
            threads: 1,
        }
    }
}

impl HostBlocking {
    /// Derives blocking from a kernel plan: the bytes the planner decided
    /// to stage into shared memory (codebook slice + data tiles) become
    /// the host's cache-resident slab budget, clamped to a sane L1..L2
    /// range.
    pub fn for_plan(plan: &KernelPlan) -> Self {
        let staged = plan.smem_codebook_bytes + plan.tiling.smem_data_bytes;
        HostBlocking {
            slab_bytes: staged.clamp(16 << 10, 256 << 10),
            threads: 1,
        }
    }

    /// Sets the worker count for the parallel paths.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Column groups per slab so `group_block × slot_width` f32 slots
    /// fit the budget.
    fn group_block(&self, slot_width: usize, groups: usize) -> usize {
        (self.slab_bytes / (slot_width * 4).max(1)).clamp(1, groups.max(1))
    }

    /// Rows per decoded K-panel. Panels are sized to the next level of the
    /// hierarchy above the LUT slab (8× the slab budget, the typical
    /// L2:L1 ratio): the micro-kernel re-streams the panel `m / MR` times,
    /// so the panel wants L2 residency, while deep panels amortize the
    /// accumulator-tile setup. At least 8 rows, capped at `rows`.
    fn panel_rows(&self, row_floats: usize, rows: usize) -> usize {
        (self.slab_bytes * 8 / (row_floats * 4).max(1)).clamp(8.min(rows.max(1)), rows.max(1))
    }
}

/// Dot product against a lattice entry with per-element sign bits applied.
#[inline]
fn signed_dot(entry: &[f32], xs: &[f32], signs: u32) -> f32 {
    let mut acc = 0.0;
    for (j, (&e, &x)) in entry.iter().zip(xs).enumerate() {
        acc += if signs & (1 << j) != 0 { -e * x } else { e * x };
    }
    acc
}

/// Height of a row band within which every column group's codebook scope
/// is row-invariant (whole tensor except for per-tile books).
fn band_height(scope: CodebookScope, rows: usize) -> usize {
    match scope {
        CodebookScope::PerTile {
            rows: tile_rows, ..
        } => tile_rows.clamp(1, rows),
        _ => rows,
    }
}

/// Evaluates the failpoint at a kernel entry (`vqllm_core::failpoint`):
/// a fired `Error` action surfaces as a contained
/// [`KernelError::Panicked`] so fault drills can force a kernel failure
/// without unwinding. Disabled failpoints cost one relaxed atomic load.
fn failpoint(site: &'static str) -> Result<()> {
    match vqllm_core::failpoint::fire(site) {
        Some(message) => Err(KernelError::Panicked { site, message }),
        None => Ok(()),
    }
}

/// Splits `data` (`rows × row_width` elements, row-major) into row-aligned
/// chunks and runs `f(first_row, chunk)` on each — on the shared
/// [`pool::WorkerPool`] when `threads > 1`, sequentially otherwise. Chunks
/// are disjoint `&mut` slices, so workers never race.
///
/// # Errors
///
/// Returns [`KernelError::Panicked`] (tagged with `site`) if a chunk job
/// panicked; the panic is contained by the pool, not re-raised.
fn parallel_row_chunks<F>(
    data: &mut [f32],
    row_width: usize,
    threads: usize,
    site: &'static str,
    f: F,
) -> Result<()>
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let rows = data.len() / row_width.max(1);
    let workers = threads.max(1).min(rows.max(1));
    if workers <= 1 {
        f(0, data);
        return Ok(());
    }
    let chunk_rows = rows.div_ceil(workers);
    pool::WorkerPool::shared().try_scope(site, |scope| {
        for (ci, chunk) in data.chunks_mut(chunk_rows * row_width).enumerate() {
            let f = &f;
            scope.spawn(move || f(ci * chunk_rows, chunk));
        }
    })
}

/// Fused LUT GeMV: `y = dequant(Wq) · x` with `x.len() == cols`,
/// `y.len() == rows` — the decode-orientation GeMV where quantized
/// sub-vectors run along the reduction axis.
///
/// For each (residual, row band) a `groups × stored_entries` table of
/// `x`-sub-vector · centroid partial dots is built with SIMD AXPYs over
/// the interleaved codebook layout; the per-row inner loop is then one
/// gather + add per block-decoded packed code ([`simd::lut_row_sum`]),
/// visited in [`HostBlocking`]-sized group blocks so the active LUT slab
/// stays L1-resident. Lattice codebooks (sign-extended logical entries)
/// take a fused sign-aware path instead — a per-base-entry LUT cannot
/// absorb element-wise sign masks.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if `x.len() != cols`.
pub fn gemv_lut(wq: &QuantizedTensor, x: &[f32], blocking: &HostBlocking) -> Result<Vec<f32>> {
    let (rows, cols) = wq.shape();
    if x.len() != cols {
        return Err(KernelError::ShapeMismatch {
            what: "x length must equal quantized cols",
        });
    }
    let vq = *wq.config();
    let vs = vq.vector_size;
    let groups = wq.col_groups();
    let stored = vq.stored_entries();
    let books = wq.codebooks();
    let band = band_height(vq.scope, rows);
    let mut y = vec![0.0f32; rows];

    let mut band_start = 0;
    while band_start < rows {
        let band_len = band.min(rows - band_start);
        for r in 0..vq.residuals {
            let stream = wq.index_stream(r);
            if vq.lattice {
                // Sign-extended entries: fuse the sign application into the
                // dot instead of tabulating 2^vs variants per base entry.
                parallel_row_chunks(
                    &mut y[band_start..band_start + band_len],
                    1,
                    blocking.threads,
                    "host.gemv_lut",
                    |first, chunk| {
                        let mut codes = vec![0u32; groups];
                        for (local, out) in chunk.iter_mut().enumerate() {
                            let row = band_start + first + local;
                            stream.unpack_block(row * groups, &mut codes);
                            let mut acc = 0.0f32;
                            for (g, &code) in codes.iter().enumerate() {
                                let book = books.book(r, books.scope_index(row, g * vs));
                                let base = book.stored_id_of(code) as usize;
                                let signs = code >> book.sign_shift();
                                acc += signed_dot(
                                    &book.entries_flat()[base * vs..(base + 1) * vs],
                                    &x[g * vs..(g + 1) * vs],
                                    signs,
                                );
                            }
                            *out += acc;
                        }
                    },
                )?;
            } else {
                // The LUT: partial dot of every centroid against the x
                // sub-vector of every column group of this band's books,
                // built as `vs` dense AXPYs over the interleaved layout.
                let mut lut = vec![0.0f32; groups * stored];
                for (g, slab) in lut.chunks_mut(stored).enumerate() {
                    let inter = books
                        .book(r, books.scope_index(band_start, g * vs))
                        .entries_interleaved();
                    let xs = &x[g * vs..(g + 1) * vs];
                    for (j, &xj) in xs.iter().enumerate() {
                        simd::axpy(slab, xj, &inter[j * stored..(j + 1) * stored]);
                    }
                }
                let gb = blocking.group_block(stored, groups);
                parallel_row_chunks(
                    &mut y[band_start..band_start + band_len],
                    1,
                    blocking.threads,
                    "host.gemv_lut",
                    |first, chunk| {
                        let mut codes = vec![0u32; gb];
                        for g0 in (0..groups).step_by(gb) {
                            let gl = gb.min(groups - g0);
                            let slab = &lut[g0 * stored..(g0 + gl) * stored];
                            for (local, out) in chunk.iter_mut().enumerate() {
                                let row = band_start + first + local;
                                stream.unpack_block(row * groups + g0, &mut codes[..gl]);
                                *out += simd::lut_row_sum(slab, stored, &codes[..gl]);
                            }
                        }
                    },
                )?;
            }
        }
        band_start += band_len;
    }
    Ok(y)
}

/// Batched fused LUT GeMV: `Y = dequant(Wq) · Xᵀ` for a batch of
/// activation rows `xs` (`batch × cols`, row-major), returning `Y` as
/// `rows × batch` (token-major: `Y[row][b] = (dequant(Wq) · xs[b])[row]`).
///
/// This is the serving-layer multi-token decode shape: the packed-code
/// decode — the per-row cost [`gemv_lut`] pays once per activation — is
/// shared across the whole batch, and the LUT slab is **batch-interleaved**
/// (`lut[(g·stored + code)·B..][..B]`) so the inner loop per packed code is
/// a single contiguous B-wide vector add ([`simd::add_assign`]) instead of
/// B scattered gathers. Lattice books fall back to the fused sign-aware
/// path per batch lane.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if `xs.cols() != cols`.
pub fn gemv_lut_batch(
    wq: &QuantizedTensor,
    xs: &Tensor2D,
    blocking: &HostBlocking,
) -> Result<Tensor2D> {
    let (rows, cols) = wq.shape();
    if xs.cols() != cols {
        return Err(KernelError::ShapeMismatch {
            what: "batch activation cols must equal quantized cols",
        });
    }
    let batch = xs.rows();
    let mut y = Tensor2D::zeros(rows, batch);
    if batch == 0 {
        return Ok(y);
    }
    let vq = *wq.config();
    let vs = vq.vector_size;
    let groups = wq.col_groups();
    let stored = vq.stored_entries();
    let books = wq.codebooks();
    let band = band_height(vq.scope, rows);

    let mut band_start = 0;
    while band_start < rows {
        let band_len = band.min(rows - band_start);
        let band_out = &mut y.as_mut_slice()[band_start * batch..(band_start + band_len) * batch];
        for r in 0..vq.residuals {
            let stream = wq.index_stream(r);
            if vq.lattice {
                parallel_row_chunks(
                    band_out,
                    batch,
                    blocking.threads,
                    "host.gemv_lut_batch",
                    |first, chunk| {
                        let mut codes = vec![0u32; groups];
                        for (local, yrow) in chunk.chunks_mut(batch).enumerate() {
                            let row = band_start + first + local;
                            stream.unpack_block(row * groups, &mut codes);
                            for (g, &code) in codes.iter().enumerate() {
                                let book = books.book(r, books.scope_index(row, g * vs));
                                let base = book.stored_id_of(code) as usize;
                                let signs = code >> book.sign_shift();
                                let entry = &book.entries_flat()[base * vs..(base + 1) * vs];
                                for (b, out) in yrow.iter_mut().enumerate() {
                                    *out +=
                                        signed_dot(entry, &xs.row(b)[g * vs..(g + 1) * vs], signs);
                                }
                            }
                        }
                    },
                )?;
            } else {
                // Batch-interleaved LUT: B contiguous partial dots per
                // (group, code) slot, built from the interleaved codebook
                // layout with one broadcast-FMA per (code, element).
                let mut lut = vec![0.0f32; groups * stored * batch];
                let mut xt = vec![0.0f32; vs * batch];
                for g in 0..groups {
                    let inter = books
                        .book(r, books.scope_index(band_start, g * vs))
                        .entries_interleaved();
                    for j in 0..vs {
                        for b in 0..batch {
                            xt[j * batch + b] = xs.row(b)[g * vs + j];
                        }
                    }
                    let gslab = &mut lut[g * stored * batch..(g + 1) * stored * batch];
                    for (c, dst) in gslab.chunks_mut(batch).enumerate() {
                        for j in 0..vs {
                            simd::axpy(dst, inter[j * stored + c], &xt[j * batch..(j + 1) * batch]);
                        }
                    }
                }
                let gb = blocking.group_block(stored * batch, groups);
                parallel_row_chunks(
                    band_out,
                    batch,
                    blocking.threads,
                    "host.gemv_lut_batch",
                    |first, chunk| {
                        let mut codes = vec![0u32; gb];
                        for g0 in (0..groups).step_by(gb) {
                            let gl = gb.min(groups - g0);
                            let slab = &lut[g0 * stored * batch..(g0 + gl) * stored * batch];
                            for (local, yrow) in chunk.chunks_mut(batch).enumerate() {
                                let row = band_start + first + local;
                                stream.unpack_block(row * groups + g0, &mut codes[..gl]);
                                for (gi, &code) in codes[..gl].iter().enumerate() {
                                    let base = (gi * stored + code as usize) * batch;
                                    simd::add_assign(yrow, &slab[base..base + batch]);
                                }
                            }
                        }
                    },
                )?;
            }
        }
        band_start += band_len;
    }
    Ok(y)
}

/// Fused transposed GeMV: `y = xᵀ · dequant(Wq)` with `x.len() == rows`,
/// `y.len() == cols` — the [`Backend`](crate::backend::Backend) GeMV
/// contract, where quantized sub-vectors run along the *output* axis.
///
/// Dual of [`gemv_lut`]: since each packed code scales a whole centroid by
/// the scalar `x[row]`, the kernel scatter-aggregates `wsum[code] +=
/// x[row]` into a slab-resident table per column-group block, then expands
/// each code's aggregated weight through its centroid exactly once —
/// `rows` adds plus `stored × vs` FMAs per group instead of `rows × vs`
/// FMAs. When the aggregation is saturated (at least as many rows as
/// stored entries, so most slots are hot), the expansion runs as `vs`
/// dense SIMD dots over the interleaved codebook layout; otherwise it
/// skips untouched codes. Lattice books fall back to fused sign-aware
/// AXPY.
///
/// The row-parallel path partitions the *output* (column groups) across
/// workers, so no two threads ever touch the same accumulator.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if `x.len() != rows`.
pub fn gemv_xw(x: &[f32], wq: &QuantizedTensor, blocking: &HostBlocking) -> Result<Vec<f32>> {
    let (rows, cols) = wq.shape();
    if x.len() != rows {
        return Err(KernelError::ShapeMismatch {
            what: "x length must equal quantized weight rows",
        });
    }
    let vq = *wq.config();
    let vs = vq.vector_size;
    let groups = wq.col_groups();
    let stored = vq.stored_entries();
    let books = wq.codebooks();
    let band = band_height(vq.scope, rows);
    let mut y = vec![0.0f32; cols];

    // Workers own disjoint, contiguous column-group spans of y.
    parallel_row_chunks(
        &mut y,
        vs,
        blocking.threads,
        "host.gemv_xw",
        |first_group, ychunk| {
            let span = ychunk.len() / vs;
            let gb = blocking.group_block(stored, span);
            let mut codes = vec![0u32; gb];
            let mut wsum = vec![0.0f32; gb * stored];
            for r in 0..vq.residuals {
                let stream = wq.index_stream(r);
                let mut band_start = 0;
                while band_start < rows {
                    let band_len = band.min(rows - band_start);
                    for b0 in (0..span).step_by(gb) {
                        let gl = gb.min(span - b0);
                        let g0 = first_group + b0;
                        if vq.lattice {
                            for (off, &xv) in
                                x[band_start..band_start + band_len].iter().enumerate()
                            {
                                let row = band_start + off;
                                stream.unpack_block(row * groups + g0, &mut codes[..gl]);
                                for (gi, &code) in codes[..gl].iter().enumerate() {
                                    books.book(r, books.scope_index(row, (g0 + gi) * vs)).axpy(
                                        code,
                                        xv,
                                        &mut ychunk[(b0 + gi) * vs..(b0 + gi + 1) * vs],
                                    );
                                }
                            }
                        } else {
                            wsum[..gl * stored].fill(0.0);
                            // Scatter: aggregate x over equal codes.
                            for (off, &xv) in
                                x[band_start..band_start + band_len].iter().enumerate()
                            {
                                stream.unpack_block(
                                    (band_start + off) * groups + g0,
                                    &mut codes[..gl],
                                );
                                for (gi, &code) in codes[..gl].iter().enumerate() {
                                    wsum[gi * stored + code as usize] += xv;
                                }
                            }
                            // Expand: aggregated code weights through the
                            // centroids — dense SIMD dots once the table is
                            // saturated, zero-skipping otherwise.
                            let dense = band_len >= stored;
                            for gi in 0..gl {
                                let book =
                                    books.book(r, books.scope_index(band_start, (g0 + gi) * vs));
                                let wsum_g = &wsum[gi * stored..(gi + 1) * stored];
                                let out = &mut ychunk[(b0 + gi) * vs..(b0 + gi + 1) * vs];
                                if dense {
                                    let inter = book.entries_interleaved();
                                    for (j, o) in out.iter_mut().enumerate() {
                                        *o +=
                                            simd::dot(wsum_g, &inter[j * stored..(j + 1) * stored]);
                                    }
                                } else {
                                    let flat = book.entries_flat();
                                    for (c, &w) in wsum_g.iter().enumerate() {
                                        if w != 0.0 {
                                            for (o, &e) in
                                                out.iter_mut().zip(&flat[c * vs..(c + 1) * vs])
                                            {
                                                *o += w * e;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    band_start += band_len;
                }
            }
        },
    )?;
    Ok(y)
}

use simd::{GEMM_MR, GEMM_NR};

/// Fused GeMM: `C = A (m×k) × dequant(Wq) (k×n)` — panel-blocked.
///
/// The quantized weight is decoded one **K-panel at a time** (a
/// slab-resident `panel_rows × strip` block assembled directly from packed
/// codes, all residual rounds folded — the full dequantized matrix never
/// exists), and each panel is reused across every row of `A` through an
/// `MR × NR` register-blocked micro-kernel: `GEMM_NR`-wide accumulator
/// tiles stay live across the whole panel depth, so the decoded panel is
/// streamed from cache `m / MR` times instead of `m` times and each
/// decoded weight feeds `MR` FMAs per load. Workers own disjoint
/// column-group strips, so the packed stream is decoded exactly once per
/// strip (PR 2 re-decoded it per worker).
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if `a.cols() != wq.rows`.
pub fn gemm_fused(a: &Tensor2D, wq: &QuantizedTensor, blocking: &HostBlocking) -> Result<Tensor2D> {
    failpoint("host.gemm_fused")?;
    if a.cols() != wq.shape().0 {
        return Err(KernelError::ShapeMismatch {
            what: "A.cols must equal quantized weight rows",
        });
    }
    let n = wq.shape().1;
    let m = a.rows();
    let vs = wq.config().vector_size;
    let groups = wq.col_groups();
    let mut c = Tensor2D::zeros(m, n);
    if m == 0 || n == 0 {
        return Ok(c);
    }

    let workers = blocking.threads.max(1).min(groups);
    if workers <= 1 {
        gemm_strip(a, wq, blocking, 0, groups, c.as_mut_slice());
        return Ok(c);
    }

    // Column-parallel: each worker owns a contiguous group strip and a
    // private output buffer (C is row-major, so strips interleave in C and
    // cannot be handed out as disjoint `&mut` chunks directly).
    let gchunk = groups.div_ceil(workers);
    let strips: Vec<(usize, usize)> = (0..workers)
        .map(|w| (w * gchunk, ((w + 1) * gchunk).min(groups)))
        .filter(|(gs, ge)| gs < ge)
        .collect();
    let mut bufs: Vec<Vec<f32>> = strips
        .iter()
        .map(|(gs, ge)| vec![0.0f32; m * (ge - gs) * vs])
        .collect();
    pool::WorkerPool::shared().try_scope("host.gemm_fused", |scope| {
        for (&(gs, ge), buf) in strips.iter().zip(bufs.iter_mut()) {
            scope.spawn(move || gemm_strip(a, wq, blocking, gs, ge, buf));
        }
    })?;
    for (&(gs, ge), buf) in strips.iter().zip(&bufs) {
        let strip_n = (ge - gs) * vs;
        for p in 0..m {
            c.row_mut(p)[gs * vs..ge * vs].copy_from_slice(&buf[p * strip_n..(p + 1) * strip_n]);
        }
    }
    Ok(c)
}

/// One worker's share of [`gemm_fused`]: groups `[gs, ge)` of the weight,
/// accumulated into `cs` (`m × (ge-gs)·vs`, row-major).
fn gemm_strip(
    a: &Tensor2D,
    wq: &QuantizedTensor,
    blocking: &HostBlocking,
    gs: usize,
    ge: usize,
    cs: &mut [f32],
) {
    let (k, _) = wq.shape();
    let m = a.rows();
    let vq = *wq.config();
    let vs = vq.vector_size;
    let groups = wq.col_groups();
    let books = wq.codebooks();
    let sw = ge - gs;
    let strip_n = sw * vs;
    let band = band_height(vq.scope, k);
    // Panel depth is derived from the FULL row width, not the strip, so
    // the K-split — and therefore the f32 summation order — is identical
    // at every thread count.
    let panel_rows = blocking.panel_rows(groups * vs, k);
    // The panel is padded to a whole number of micro-kernel tiles (the
    // padding stays zero), and short A-row sets are padded with a zero
    // column, so every tile runs the one full-size kernel — uniform
    // numerics at every strip partitioning.
    let padded_n = strip_n.next_multiple_of(GEMM_NR);
    let mut panel = vec![0.0f32; panel_rows * padded_n];
    let zero_col = vec![0.0f32; panel_rows];
    let mut codes = vec![0u32; sw];

    let mut band_start = 0;
    while band_start < k {
        let band_len = band.min(k - band_start);
        // Books are row-invariant within a band: resolve the (residual,
        // group) → codebook mapping once per band instead of per code.
        let band_books: Vec<Vec<&vqllm_vq::Codebook>> = (0..vq.residuals)
            .map(|r| {
                (gs..ge)
                    .map(|g| books.book(r, books.scope_index(band_start, g * vs)))
                    .collect()
            })
            .collect();
        let mut p0 = 0;
        while p0 < band_len {
            let kb = panel_rows.min(band_len - p0);
            let i0 = band_start + p0;
            // Decode the K-panel (all residual rounds) from packed codes:
            // the first round writes entries straight into the panel, later
            // rounds accumulate.
            let panel_slice = &mut panel[..kb * padded_n];
            for (r, row_books) in band_books.iter().enumerate() {
                let stream = wq.index_stream(r);
                for (ii, prow) in panel_slice.chunks_mut(padded_n).enumerate() {
                    stream.unpack_block((i0 + ii) * groups + gs, &mut codes);
                    for (gi, &code) in codes.iter().enumerate() {
                        let book = row_books[gi];
                        let out = &mut prow[gi * vs..(gi + 1) * vs];
                        if vq.lattice {
                            let base = book.stored_id_of(code) as usize;
                            let signs = code >> book.sign_shift();
                            let entry = &book.entries_flat()[base * vs..(base + 1) * vs];
                            for (j, (o, &e)) in out.iter_mut().zip(entry).enumerate() {
                                let v = if signs & (1 << j) != 0 { -e } else { e };
                                if r == 0 {
                                    *o = v;
                                } else {
                                    *o += v;
                                }
                            }
                        } else if vs == 4 {
                            // The dominant sub-vector width: fixed-size
                            // copies compile to two 16-byte moves instead
                            // of a runtime-length memcpy per code.
                            let c = code as usize;
                            let entry: &[f32; 4] = book.entries_flat()[c * 4..c * 4 + 4]
                                .try_into()
                                .expect("vs-4 entry");
                            let out: &mut [f32; 4] = out.try_into().expect("vs-4 slot");
                            if r == 0 {
                                *out = *entry;
                            } else {
                                for (o, &e) in out.iter_mut().zip(entry) {
                                    *o += e;
                                }
                            }
                        } else {
                            let c = code as usize;
                            let entry = &book.entries_flat()[c * vs..(c + 1) * vs];
                            if r == 0 {
                                out.copy_from_slice(entry);
                            } else {
                                for (o, &e) in out.iter_mut().zip(entry) {
                                    *o += e;
                                }
                            }
                        }
                    }
                }
            }
            // Register-blocked tile updates over the resident panel.
            for pr0 in (0..m).step_by(GEMM_MR) {
                let mr = GEMM_MR.min(m - pr0);
                let arows: [&[f32]; GEMM_MR] = std::array::from_fn(|p| {
                    if p < mr {
                        &a.row(pr0 + p)[i0..i0 + kb]
                    } else {
                        &zero_col[..kb]
                    }
                });
                for j0 in (0..strip_n).step_by(GEMM_NR) {
                    let nr = GEMM_NR.min(strip_n - j0);
                    let mut acc = [[0.0f32; GEMM_NR]; GEMM_MR];
                    simd::gemm_acc_tile(&arows, panel_slice, padded_n, j0, kb, &mut acc);
                    for (p, accp) in acc.iter().enumerate().take(mr) {
                        let crow = &mut cs[(pr0 + p) * strip_n + j0..(pr0 + p) * strip_n + j0 + nr];
                        for (o, &v) in crow.iter_mut().zip(accp) {
                            *o += v;
                        }
                    }
                }
            }
            p0 += kb;
        }
        band_start += band_len;
    }
}

/// One head of fused attention decode over quantized K/V caches
/// (`seq × head_dim` each): `softmax(q · dequant(Kq)ᵀ / √d) · dequant(Vq)`.
///
/// The score pass is exactly [`gemv_lut`] (q-sub-vector · centroid LUTs,
/// `score[t] += lut[code]` over K's packed codes); the output pass is
/// exactly [`gemv_xw`] with the softmaxed scores as `x`. Neither K nor V
/// is ever materialized.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] on inconsistent shapes.
pub fn attention_decode_fused(
    q: &[f32],
    kq: &QuantizedTensor,
    vq: &QuantizedTensor,
    blocking: &HostBlocking,
) -> Result<Vec<f32>> {
    if kq.shape() != vq.shape() || q.len() != kq.shape().1 {
        return Err(KernelError::ShapeMismatch {
            what: "q/K/V shapes disagree",
        });
    }
    let mut scores = gemv_lut(kq, q, blocking)?;
    let scale = 1.0 / (q.len() as f32).sqrt();
    for s in scores.iter_mut() {
        *s *= scale;
    }
    linalg::softmax_inplace(&mut scores);
    gemv_xw(&scores, vq, blocking)
}

/// Batched fused attention decode: `qs` holds one query row per sequence
/// (`batch × head_dim`) attending over shared quantized K/V caches;
/// returns `batch × head_dim` outputs.
///
/// The serving-layer composition of the two blocked paths: the score pass
/// is [`gemv_lut_batch`] (K's packed codes decoded **once** for the whole
/// batch), and after per-query softmax the value pass is the
/// panel-blocked [`gemm_fused`] (`scores (batch × seq) × dequant(Vq)`).
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] on inconsistent shapes.
pub fn attention_decode_batch(
    qs: &Tensor2D,
    kq: &QuantizedTensor,
    vq: &QuantizedTensor,
    blocking: &HostBlocking,
) -> Result<Tensor2D> {
    attention_batch_inner(qs, None, kq, vq, blocking)
}

/// Ragged batched fused attention decode: like [`attention_decode_batch`],
/// but query `b` attends only the first `lens[b]` cached tokens of the
/// shared K/V — the continuous-batching shape, where co-scheduled tenants
/// sit at different positions in the cache.
///
/// The K-decode is still shared across the whole batch (the score pass
/// computes all `seq` rows once); raggedness is applied afterwards: each
/// query's softmax runs over its own prefix and the tail weights are
/// exactly zero, so the value-pass GeMM contributes nothing beyond
/// `lens[b]`. A query with `lens[b] == seq` goes through *identical*
/// arithmetic to [`attention_decode_batch`], and every lane's result is
/// bitwise independent of the other lanes in the batch — the serving
/// scheduler's parity contract.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] on inconsistent shapes or
/// `lens` length, and [`KernelError::InvalidInput`] when any length is 0
/// or exceeds the cached sequence.
pub fn attention_decode_ragged(
    qs: &Tensor2D,
    lens: &[usize],
    kq: &QuantizedTensor,
    vq: &QuantizedTensor,
    blocking: &HostBlocking,
) -> Result<Tensor2D> {
    failpoint("host.attention_ragged")?;
    if lens.len() != qs.rows() {
        return Err(KernelError::ShapeMismatch {
            what: "one softmax length per query row",
        });
    }
    let seq = kq.shape().0;
    if lens.iter().any(|&l| l == 0 || l > seq) {
        return Err(KernelError::InvalidInput {
            what: "softmax lengths must be in 1..=seq",
        });
    }
    attention_batch_inner(qs, Some(lens), kq, vq, blocking)
}

/// Shared body of [`attention_decode_batch`] / [`attention_decode_ragged`]
/// (`lens: None` means every query attends the full cache).
fn attention_batch_inner(
    qs: &Tensor2D,
    lens: Option<&[usize]>,
    kq: &QuantizedTensor,
    vq: &QuantizedTensor,
    blocking: &HostBlocking,
) -> Result<Tensor2D> {
    if kq.shape() != vq.shape() || qs.cols() != kq.shape().1 {
        return Err(KernelError::ShapeMismatch {
            what: "qs/K/V shapes disagree",
        });
    }
    let seq = kq.shape().0;
    // `rows × batch` scores, transposed to query-major for the softmax and
    // the GeMM value pass.
    let mut scores = gemv_lut_batch(kq, qs, blocking)?.transposed();
    let scale = 1.0 / (qs.cols() as f32).sqrt();
    for b in 0..scores.rows() {
        let len = lens.map_or(seq, |l| l[b]);
        let srow = scores.row_mut(b);
        for s in srow[..len].iter_mut() {
            *s *= scale;
        }
        linalg::softmax_inplace(&mut srow[..len]);
        // Beyond the query's prefix the weights are exactly zero, so the
        // value pass adds nothing there (0·v contributions are exact).
        srow[len..].fill(0.0);
    }
    gemm_fused(&scores, vq, blocking)
}

/// A per-group residual left unquantized because the packed codes alone
/// reconstructed the sub-vector too poorly (the outlier channel of
/// VecInfer-style KV VQ): `values` is added on top of the decoded codes
/// for `(row, group)` of the extension.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierResidual {
    /// Extension row (0-based within the folded rows).
    pub row: usize,
    /// Column group (sub-vector slot) within the row.
    pub group: usize,
    /// Exact f32 residual, `vector_size` wide.
    pub values: Vec<f32>,
}

/// One query's private KV extension for
/// [`attention_decode_ragged_tailed`]: `rows` appended tokens folded into
/// packed codes (encoded against the **shared context's** codebooks, so
/// the kernel reuses the already-resident tables), sparse per-group
/// outlier residuals on top, and an unquantized f32 tail window of the
/// newest tokens.
#[derive(Debug, Clone, Copy, Default)]
pub struct RaggedExt<'a> {
    /// Folded (packed) extension rows.
    pub rows: usize,
    /// K codes, one stream per residual round, `rows × col_groups` long
    /// each (row-major, group-minor).
    pub k_codes: &'a [Vec<u32>],
    /// V codes, same layout as `k_codes`.
    pub v_codes: &'a [Vec<u32>],
    /// Sparse K outlier residuals over the folded rows.
    pub k_outliers: &'a [OutlierResidual],
    /// Sparse V outlier residuals over the folded rows.
    pub v_outliers: &'a [OutlierResidual],
    /// Unquantized K tail rows (`head_dim` wide each), oldest first.
    pub k_tail: &'a [Vec<f32>],
    /// Unquantized V tail rows, same length as `k_tail`.
    pub v_tail: &'a [Vec<f32>],
}

impl RaggedExt<'_> {
    /// Total extension tokens (folded + tail).
    pub fn len(&self) -> usize {
        self.rows + self.k_tail.len()
    }

    /// Whether the extension holds no tokens at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn validate(&self, kq: &QuantizedTensor) -> Result<()> {
        let cfg = kq.config();
        let groups = kq.col_groups();
        let head_dim = kq.shape().1;
        for codes in [self.k_codes, self.v_codes] {
            // With no folded rows, an absent stream set (the `Default`)
            // is as valid as `residuals` empty streams.
            if codes.len() != cfg.residuals && !(self.rows == 0 && codes.is_empty()) {
                return Err(KernelError::ShapeMismatch {
                    what: "extension code streams must match the context's residual rounds",
                });
            }
            if codes.iter().any(|s| s.len() != self.rows * groups) {
                return Err(KernelError::ShapeMismatch {
                    what: "extension code stream length must be rows × col_groups",
                });
            }
        }
        for outs in [self.k_outliers, self.v_outliers] {
            if outs.iter().any(|o| {
                o.row >= self.rows || o.group >= groups || o.values.len() != cfg.vector_size
            }) {
                return Err(KernelError::InvalidInput {
                    what: "outlier residual outside the folded extension",
                });
            }
        }
        if self.k_tail.len() != self.v_tail.len()
            || self
                .k_tail
                .iter()
                .chain(self.v_tail)
                .any(|r| r.len() != head_dim)
        {
            return Err(KernelError::ShapeMismatch {
                what: "tail rows must be head_dim wide with matching K/V lengths",
            });
        }
        Ok(())
    }
}

/// Dot of `q` against one folded extension row decoded on the fly from
/// the context's codebooks (all residual rounds, plus outliers applied by
/// the caller).
fn ext_row_score(
    q: &[f32],
    books: &vqllm_vq::CodebookSet,
    codes: &[Vec<u32>],
    row: usize,
    groups: usize,
    vs: usize,
) -> f32 {
    let mut acc = 0.0f32;
    for (r, s) in codes.iter().enumerate() {
        for g in 0..groups {
            let code = s[row * groups + g];
            let book = books.book(r, books.scope_index(0, g * vs));
            let qsub = &q[g * vs..(g + 1) * vs];
            if book.is_lattice() {
                let base = book.stored_id_of(code) as usize;
                let signs = code >> book.sign_shift();
                acc += signed_dot(book.stored_entry(base), qsub, signs);
            } else {
                let entry = book.stored_entry(code as usize);
                acc += entry.iter().zip(qsub).map(|(&e, &x)| e * x).sum::<f32>();
            }
        }
    }
    acc
}

/// Ragged batched attention decode over a shared quantized context
/// **plus per-query private KV extensions** — the live-KV serving shape.
///
/// Query `b` attends `lens[b]` tokens of the shared packed context
/// followed by its own [`RaggedExt`]: folded rows decoded against the
/// context's codebooks (+ sparse outlier residuals), then the f32 tail
/// window spliced in after the LUT score pass. One softmax spans the
/// whole attended sequence; the context's value pass stays the
/// panel-blocked [`gemm_fused`], the extension's value pass is
/// per-query [`Codebook::axpy`] expansion plus dense tail accumulation.
///
/// With every extension empty the arithmetic is **identical** to
/// [`attention_decode_ragged`]: same score source, same scale and
/// softmax, same value GeMM — so turning the live-KV path on without
/// appending anything is bitwise invisible.
///
/// [`Codebook::axpy`]: vqllm_vq::Codebook::axpy
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] /
/// [`KernelError::InvalidInput`] on inconsistent shapes, lengths, or
/// extensions that do not match the context's VQ configuration.
pub fn attention_decode_ragged_tailed(
    qs: &Tensor2D,
    lens: &[usize],
    exts: &[RaggedExt<'_>],
    kq: &QuantizedTensor,
    vq: &QuantizedTensor,
    blocking: &HostBlocking,
) -> Result<Tensor2D> {
    failpoint("host.attention_ragged")?;
    if lens.len() != qs.rows() || exts.len() != qs.rows() {
        return Err(KernelError::ShapeMismatch {
            what: "one prefix length and one extension per query row",
        });
    }
    if kq.shape() != vq.shape() || qs.cols() != kq.shape().1 {
        return Err(KernelError::ShapeMismatch {
            what: "qs/K/V shapes disagree",
        });
    }
    let seq = kq.shape().0;
    if lens.iter().any(|&l| l == 0 || l > seq) {
        return Err(KernelError::InvalidInput {
            what: "softmax lengths must be in 1..=seq",
        });
    }
    let cfg = kq.config();
    if matches!(cfg.scope, CodebookScope::PerTile { .. }) {
        return Err(KernelError::InvalidInput {
            what: "per-tile codebook scopes are row-dependent; live-KV extensions \
                   require a row-invariant scope (PerTensor or PerChannelGroup)",
        });
    }
    for ext in exts {
        ext.validate(kq)?;
    }
    let d = qs.cols();
    let vs = cfg.vector_size;
    let groups = kq.col_groups();
    let k_books = kq.codebooks();
    let v_books = vq.codebooks();

    // Shared context score pass: one batched LUT GeMV, exactly as the
    // extension-free kernel computes it.
    let mut scores = gemv_lut_batch(kq, qs, blocking)?.transposed();
    let scale = 1.0 / (d as f32).sqrt();
    // Per-query softmax weights over the extension (folded + tail),
    // saved for the value pass.
    let mut ext_weights: Vec<Vec<f32>> = Vec::with_capacity(exts.len());
    for b in 0..scores.rows() {
        let ext = &exts[b];
        let len = lens[b];
        let q = qs.row(b);
        // Concatenated score row: [context prefix | folded ext | f32 tail].
        let mut srow = Vec::with_capacity(len + ext.len());
        srow.extend_from_slice(&scores.row(b)[..len]);
        for row in 0..ext.rows {
            srow.push(ext_row_score(q, k_books, ext.k_codes, row, groups, vs));
        }
        for o in ext.k_outliers {
            let qsub = &q[o.group * vs..(o.group + 1) * vs];
            srow[len + o.row] += o.values.iter().zip(qsub).map(|(&e, &x)| e * x).sum::<f32>();
        }
        for t in ext.k_tail {
            srow.push(t.iter().zip(q).map(|(&e, &x)| e * x).sum::<f32>());
        }
        for s in srow.iter_mut() {
            *s *= scale;
        }
        linalg::softmax_inplace(&mut srow);
        // The context's weights ride the shared GeMM value pass; the
        // extension's weights are applied per query below.
        let ctx_row = scores.row_mut(b);
        ctx_row[..len].copy_from_slice(&srow[..len]);
        ctx_row[len..].fill(0.0);
        ext_weights.push(srow.split_off(len));
    }
    let mut out = gemm_fused(&scores, vq, blocking)?;
    for (b, ext) in exts.iter().enumerate() {
        let weights = &ext_weights[b];
        let orow = out.row_mut(b);
        for (row, &w) in weights.iter().take(ext.rows).enumerate() {
            for (r, stream) in ext.v_codes.iter().enumerate() {
                for g in 0..groups {
                    let code = stream[row * groups + g];
                    let book = v_books.book(r, v_books.scope_index(0, g * vs));
                    book.axpy(code, w, &mut orow[g * vs..(g + 1) * vs]);
                }
            }
        }
        for o in ext.v_outliers {
            let w = weights[o.row];
            for (j, &v) in o.values.iter().enumerate() {
                orow[o.group * vs + j] += w * v;
            }
        }
        for (t, vrow) in ext.v_tail.iter().enumerate() {
            let w = weights[ext.rows + t];
            for (o, &v) in orow.iter_mut().zip(vrow) {
                *o += w * v;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqllm_tensor::{metrics, synth};
    use vqllm_vq::{VqAlgorithm, VqConfig, VqQuantizer};

    fn quantized(cfg: VqConfig, rows: usize, cols: usize, seed: u64) -> QuantizedTensor {
        let w = synth::correlated_channels(rows, cols, cfg.vector_size, 0.9, seed);
        VqQuantizer::new(cfg).quantize(&w, seed).unwrap()
    }

    fn xs(n: usize, phase: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * phase).sin()).collect()
    }

    /// Every preset the repo ships, at a size each scope supports.
    fn preset_cases() -> Vec<(VqConfig, usize, usize)> {
        vec![
            (
                VqConfig::new(4, 64, 1, CodebookScope::PerTensor).unwrap(),
                48,
                64,
            ),
            (
                VqConfig::new(4, 64, 2, CodebookScope::PerTensor).unwrap(),
                48,
                64,
            ),
            (VqAlgorithm::Cq4.config(), 256, 32),
            (VqAlgorithm::Cq2.config(), 256, 32),
            (
                VqConfig::new(4, 32, 1, CodebookScope::PerTile { rows: 16, cols: 16 }).unwrap(),
                32,
                32,
            ),
            (
                VqConfig::new_lattice(4, 256, 16, 1, CodebookScope::PerTensor).unwrap(),
                32,
                32,
            ),
        ]
    }

    #[test]
    fn gemv_lut_matches_dequantized_gemv() {
        for (cfg, rows, cols) in preset_cases() {
            let wq = quantized(cfg, rows, cols, 7);
            let x = xs(cols, 0.37);
            let fused = gemv_lut(&wq, &x, &HostBlocking::default()).unwrap();
            let reference = linalg::gemv(&wq.dequantize().unwrap(), &x).unwrap();
            assert!(
                metrics::allclose(&fused, &reference, 1e-4, 1e-4),
                "{cfg} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn gemv_lut_batch_matches_per_row_gemv() {
        for (cfg, rows, cols) in preset_cases() {
            let wq = quantized(cfg, rows, cols, 13);
            for batch in [1usize, 3, 8] {
                let acts =
                    Tensor2D::from_fn(batch, cols, |b, c| ((b * 31 + c) as f32 * 0.17).sin());
                let out = gemv_lut_batch(&wq, &acts, &HostBlocking::default()).unwrap();
                assert_eq!(out.shape(), (rows, batch));
                for b in 0..batch {
                    let single = gemv_lut(&wq, acts.row(b), &HostBlocking::default()).unwrap();
                    let col: Vec<f32> = (0..rows).map(|r| out.get(r, b)).collect();
                    assert!(
                        metrics::allclose(&col, &single, 1e-4, 1e-4),
                        "{cfg} {rows}x{cols} batch {batch} lane {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemv_lut_batch_empty_batch_is_empty() {
        let cfg = VqConfig::new(4, 32, 1, CodebookScope::PerTensor).unwrap();
        let wq = quantized(cfg, 32, 32, 5);
        let out = gemv_lut_batch(&wq, &Tensor2D::zeros(0, 32), &HostBlocking::default()).unwrap();
        assert_eq!(out.shape(), (32, 0));
    }

    #[test]
    fn gemv_xw_matches_transposed_gemv() {
        for (cfg, rows, cols) in preset_cases() {
            let wq = quantized(cfg, rows, cols, 11);
            let x = xs(rows, 0.23);
            let fused = gemv_xw(&x, &wq, &HostBlocking::default()).unwrap();
            let reference = linalg::gemv(&wq.dequantize().unwrap().transposed(), &x).unwrap();
            assert!(
                metrics::allclose(&fused, &reference, 1e-4, 1e-4),
                "{cfg} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn gemm_fused_matches_dequantized_matmul() {
        for (cfg, rows, cols) in preset_cases() {
            let wq = quantized(cfg, rows, cols, 3);
            // Cover micro-kernel edges: m below/at/above MR multiples.
            for m in [1usize, 4, 5] {
                let a = synth::gaussian(m, rows, 1.0, 9 + m as u64);
                let fused = gemm_fused(&a, &wq, &HostBlocking::default()).unwrap();
                let reference = linalg::matmul(&a, &wq.dequantize().unwrap()).unwrap();
                assert!(
                    metrics::allclose(fused.as_slice(), reference.as_slice(), 1e-4, 1e-4),
                    "{cfg} {rows}x{cols} m={m}"
                );
            }
        }
    }

    #[test]
    fn gemm_fused_tiny_panels_still_correct() {
        // Slab smaller than one panel row: panel_rows bottoms out and the
        // K loop walks many panels.
        let cfg = VqConfig::new(4, 64, 2, CodebookScope::PerTensor).unwrap();
        let wq = quantized(cfg, 48, 64, 2);
        let a = synth::gaussian(6, 48, 1.0, 21);
        let tiny = HostBlocking {
            slab_bytes: 1,
            threads: 1,
        };
        let fused = gemm_fused(&a, &wq, &tiny).unwrap();
        let reference = linalg::matmul(&a, &wq.dequantize().unwrap()).unwrap();
        assert!(metrics::allclose(
            fused.as_slice(),
            reference.as_slice(),
            1e-4,
            1e-4
        ));
    }

    #[test]
    fn attention_matches_reference() {
        let cfg = VqAlgorithm::Cq2.config();
        let k = synth::kv_stream(320, 64, 0.8, 4);
        let v = synth::kv_stream(320, 64, 0.8, 5);
        let kq = VqQuantizer::new(cfg).quantize(&k, 1).unwrap();
        let vq = VqQuantizer::new(cfg).quantize(&v, 2).unwrap();
        let q = xs(64, 0.31);
        let fused = attention_decode_fused(&q, &kq, &vq, &HostBlocking::default()).unwrap();
        let reference = linalg::attention_decode_ref(
            &q,
            &kq.dequantize().unwrap(),
            &vq.dequantize().unwrap(),
            1.0 / 8.0,
        )
        .unwrap();
        assert!(metrics::allclose(&fused, &reference, 1e-4, 1e-4));
    }

    #[test]
    fn attention_batch_matches_per_query_fused() {
        let cfg = VqAlgorithm::Cq4.config();
        let k = synth::kv_stream(320, 32, 0.8, 14);
        let v = synth::kv_stream(320, 32, 0.8, 15);
        let kq = VqQuantizer::new(cfg).quantize(&k, 1).unwrap();
        let vq = VqQuantizer::new(cfg).quantize(&v, 2).unwrap();
        let qs = Tensor2D::from_fn(5, 32, |b, d| ((b * 17 + d) as f32 * 0.29).cos());
        for threads in [1usize, 3] {
            let blocking = HostBlocking::default().with_threads(threads);
            let batch = attention_decode_batch(&qs, &kq, &vq, &blocking).unwrap();
            assert_eq!(batch.shape(), (5, 32));
            for b in 0..qs.rows() {
                let single = attention_decode_fused(qs.row(b), &kq, &vq, &blocking).unwrap();
                assert!(
                    metrics::allclose(batch.row(b), &single, 1e-4, 1e-4),
                    "query {b} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn attention_ragged_matches_truncated_reference() {
        let cfg = VqAlgorithm::Cq4.config();
        let k = synth::kv_stream(320, 32, 0.8, 24);
        let v = synth::kv_stream(320, 32, 0.8, 25);
        let kq = VqQuantizer::new(cfg).quantize(&k, 1).unwrap();
        let vq = VqQuantizer::new(cfg).quantize(&v, 2).unwrap();
        let qs = Tensor2D::from_fn(4, 32, |b, d| ((b * 19 + d) as f32 * 0.27).sin());
        let lens = [17usize, 320, 40, 1];
        let blocking = HostBlocking::default();
        let out = attention_decode_ragged(&qs, &lens, &kq, &vq, &blocking).unwrap();
        let kd = kq.dequantize().unwrap();
        let vd = vq.dequantize().unwrap();
        for (b, &len) in lens.iter().enumerate() {
            let oracle = linalg::attention_decode_ref(
                qs.row(b),
                &kd.slice(0, 0, len, 32),
                &vd.slice(0, 0, len, 32),
                1.0 / (32.0f32).sqrt(),
            )
            .unwrap();
            assert!(
                metrics::allclose(out.row(b), &oracle, 1e-4, 1e-4),
                "query {b} len {len}"
            );
        }
        // Full-length raggedness is the same arithmetic as the plain batch
        // path — bitwise.
        let full = attention_decode_batch(&qs, &kq, &vq, &blocking).unwrap();
        let ragged_full = attention_decode_ragged(&qs, &[320; 4], &kq, &vq, &blocking).unwrap();
        assert_eq!(full, ragged_full);
        // And each lane is bitwise independent of its batch-mates: the
        // request alone (batch 1, same length) reproduces its row exactly.
        for (b, &len) in lens.iter().enumerate() {
            let solo_q = Tensor2D::from_vec(1, 32, qs.row(b).to_vec()).unwrap();
            let solo = attention_decode_ragged(&solo_q, &[len], &kq, &vq, &blocking).unwrap();
            assert_eq!(out.row(b), solo.row(0), "lane {b} not batch-invariant");
        }
        // Degenerate lengths are rejected.
        assert!(attention_decode_ragged(&qs, &[0, 1, 1, 1], &kq, &vq, &blocking).is_err());
        assert!(attention_decode_ragged(&qs, &[321, 1, 1, 1], &kq, &vq, &blocking).is_err());
        assert!(attention_decode_ragged(&qs, &[1, 1], &kq, &vq, &blocking).is_err());
    }

    /// Encodes f32 rows against a codebook set the way the live-KV fold
    /// does: all residual rounds per group, plus an exact outlier
    /// residual when the remaining error exceeds `keep` of the group's
    /// norm. Returns the packed code streams, the outliers, and the
    /// reconstruction (codes + outliers) for the oracle.
    fn fold_rows(
        rows: &[Vec<f32>],
        books: &vqllm_vq::CodebookSet,
        keep: f32,
    ) -> (Vec<Vec<u32>>, Vec<OutlierResidual>, Tensor2D) {
        let cfg = books.config();
        let vs = cfg.vector_size;
        let d = rows.first().map_or(0, Vec::len);
        let groups = d / vs;
        let mut codes = vec![Vec::new(); cfg.residuals];
        let mut outliers = Vec::new();
        let mut recon = Tensor2D::zeros(rows.len(), d);
        for (i, row) in rows.iter().enumerate() {
            for g in 0..groups {
                let orig = &row[g * vs..(g + 1) * vs];
                let mut resid = orig.to_vec();
                let mut dec = vec![0.0f32; vs];
                let mut entry = vec![0.0f32; vs];
                for (r, stream) in codes.iter_mut().enumerate().take(cfg.residuals) {
                    let book = books.book(r, books.scope_index(0, g * vs));
                    let code = book.encode(&resid);
                    stream.push(code);
                    book.lookup(code, &mut entry);
                    for ((res, dv), &e) in resid.iter_mut().zip(dec.iter_mut()).zip(&entry) {
                        *res -= e;
                        *dv += e;
                    }
                }
                let rn: f32 = resid.iter().map(|x| x * x).sum();
                let on: f32 = orig.iter().map(|x| x * x).sum();
                if rn > keep * keep * on {
                    for (dv, &rv) in dec.iter_mut().zip(&resid) {
                        *dv += rv;
                    }
                    outliers.push(OutlierResidual {
                        row: i,
                        group: g,
                        values: resid.clone(),
                    });
                }
                recon.row_mut(i)[g * vs..(g + 1) * vs].copy_from_slice(&dec);
            }
        }
        (codes, outliers, recon)
    }

    #[test]
    fn attention_ragged_tailed_matches_spliced_reference() {
        let cfg = VqAlgorithm::Cq4.config();
        let d = 32usize;
        let k = synth::kv_stream(320, d, 0.8, 24);
        let v = synth::kv_stream(320, d, 0.8, 25);
        let kq = VqQuantizer::new(cfg).quantize(&k, 1).unwrap();
        let vq = VqQuantizer::new(cfg).quantize(&v, 2).unwrap();
        let qs = Tensor2D::from_fn(3, d, |b, j| ((b * 19 + j) as f32 * 0.27).sin());
        let lens = [17usize, 320, 40];
        let blocking = HostBlocking::default();

        // Empty extensions: bitwise the plain ragged kernel.
        let empty = vec![RaggedExt::default(); 3];
        let tailed =
            attention_decode_ragged_tailed(&qs, &lens, &empty, &kq, &vq, &blocking).unwrap();
        let plain = attention_decode_ragged(&qs, &lens, &kq, &vq, &blocking).unwrap();
        assert_eq!(tailed, plain, "empty extensions must be invisible");

        // Per-query extensions: query 0 gets 3 folded rows (keep=0 → every
        // group carries an exact outlier residual, so reconstruction is
        // exact) + 2 tail rows; query 1 gets folded rows without outliers;
        // query 2 gets tail rows only.
        let ext_rows: Vec<Vec<f32>> = (0..5)
            .map(|i| (0..d).map(|j| ((i * 7 + j) as f32 * 0.31).cos()).collect())
            .collect();
        let (k0, ko0, krec0) = fold_rows(&ext_rows[..3], kq.codebooks(), 0.0);
        let (v0, vo0, vrec0) = fold_rows(&ext_rows[..3], vq.codebooks(), 0.0);
        let (k1, ko1, krec1) = fold_rows(&ext_rows[..2], kq.codebooks(), f32::INFINITY);
        let (v1, vo1, vrec1) = fold_rows(&ext_rows[..2], vq.codebooks(), f32::INFINITY);
        assert!(ko1.is_empty() && vo1.is_empty());
        let no_codes = vec![Vec::new(); cfg.residuals];
        let exts = vec![
            RaggedExt {
                rows: 3,
                k_codes: &k0,
                v_codes: &v0,
                k_outliers: &ko0,
                v_outliers: &vo0,
                k_tail: &ext_rows[3..5],
                v_tail: &ext_rows[3..5],
            },
            RaggedExt {
                rows: 2,
                k_codes: &k1,
                v_codes: &v1,
                k_outliers: &ko1,
                v_outliers: &vo1,
                k_tail: &[],
                v_tail: &[],
            },
            RaggedExt {
                rows: 0,
                k_codes: &no_codes,
                v_codes: &no_codes,
                k_outliers: &[],
                v_outliers: &[],
                k_tail: &ext_rows[..4],
                v_tail: &ext_rows[..4],
            },
        ];
        let out = attention_decode_ragged_tailed(&qs, &lens, &exts, &kq, &vq, &blocking).unwrap();

        // Oracle: dequantize the context prefix, splice the extension's
        // reconstruction and tail underneath, run the dense reference.
        let kd = kq.dequantize().unwrap();
        let vd = vq.dequantize().unwrap();
        let splice = |base: &Tensor2D, len: usize, rec: &Tensor2D, tail: &[Vec<f32>]| {
            let mut rows: Vec<f32> = Vec::new();
            for r in 0..len {
                rows.extend_from_slice(base.row(r));
            }
            for r in 0..rec.shape().0 {
                rows.extend_from_slice(rec.row(r));
            }
            for t in tail {
                rows.extend_from_slice(t);
            }
            Tensor2D::from_vec(len + rec.shape().0 + tail.len(), d, rows).unwrap()
        };
        let no_rec = Tensor2D::zeros(0, d);
        let recs = [
            (&krec0, &vrec0, &ext_rows[3..5]),
            (&krec1, &vrec1, &ext_rows[0..0]),
            (&no_rec, &no_rec, &ext_rows[..4]),
        ];
        for (b, &(krec, vrec, tail)) in recs.iter().enumerate() {
            let kfull = splice(&kd, lens[b], krec, tail);
            let vfull = splice(&vd, lens[b], vrec, tail);
            let oracle =
                linalg::attention_decode_ref(qs.row(b), &kfull, &vfull, 1.0 / (d as f32).sqrt())
                    .unwrap();
            assert!(
                metrics::allclose(out.row(b), &oracle, 1e-4, 1e-4),
                "query {b} spliced oracle"
            );
        }

        // Query 0's extension reconstructs exactly (outliers keep the full
        // residual), so it must also match attending the *raw* f32 rows.
        let kexact = splice(
            &kd,
            lens[0],
            &Tensor2D::from_vec(3, d, ext_rows[..3].concat()).unwrap(),
            &ext_rows[3..5],
        );
        let vexact = splice(
            &vd,
            lens[0],
            &Tensor2D::from_vec(3, d, ext_rows[..3].concat()).unwrap(),
            &ext_rows[3..5],
        );
        let oracle =
            linalg::attention_decode_ref(qs.row(0), &kexact, &vexact, 1.0 / (d as f32).sqrt())
                .unwrap();
        assert!(metrics::allclose(out.row(0), &oracle, 1e-4, 1e-4));

        // Lane independence: each query solo reproduces its batched row.
        for (b, ext) in exts.iter().enumerate() {
            let solo_q = Tensor2D::from_vec(1, d, qs.row(b).to_vec()).unwrap();
            let solo = attention_decode_ragged_tailed(
                &solo_q,
                &[lens[b]],
                std::slice::from_ref(ext),
                &kq,
                &vq,
                &blocking,
            )
            .unwrap();
            assert_eq!(out.row(b), solo.row(0), "lane {b} not batch-invariant");
        }

        // Malformed extensions are rejected.
        let bad_stream = RaggedExt {
            rows: 2,
            k_codes: &k1[..0],
            v_codes: &v1,
            k_outliers: &[],
            v_outliers: &[],
            k_tail: &[],
            v_tail: &[],
        };
        assert!(attention_decode_ragged_tailed(
            &qs,
            &lens,
            &[bad_stream, exts[1], exts[2]],
            &kq,
            &vq,
            &blocking
        )
        .is_err());
    }

    #[test]
    fn threaded_path_matches_sequential() {
        for (cfg, rows, cols) in preset_cases() {
            let wq = quantized(cfg, rows, cols, 17);
            let xc = xs(cols, 0.41);
            let xr = xs(rows, 0.19);
            let seq = HostBlocking::default();
            let par = HostBlocking::default().with_threads(4);
            assert_eq!(
                gemv_lut(&wq, &xc, &seq).unwrap(),
                gemv_lut(&wq, &xc, &par).unwrap(),
                "{cfg} lut"
            );
            assert_eq!(
                gemv_xw(&xr, &wq, &seq).unwrap(),
                gemv_xw(&xr, &wq, &par).unwrap(),
                "{cfg} xw"
            );
            let acts = Tensor2D::from_fn(3, cols, |b, c| ((b + 2 * c) as f32 * 0.13).sin());
            assert_eq!(
                gemv_lut_batch(&wq, &acts, &seq).unwrap(),
                gemv_lut_batch(&wq, &acts, &par).unwrap(),
                "{cfg} lut-batch"
            );
            let a = synth::gaussian(6, rows, 1.0, 21);
            assert_eq!(
                gemm_fused(&a, &wq, &seq).unwrap(),
                gemm_fused(&a, &wq, &par).unwrap(),
                "{cfg} gemm"
            );
        }
    }

    #[test]
    fn tiny_slab_blocking_still_correct() {
        // Force many group blocks (slab smaller than one group's table).
        let cfg = VqConfig::new(4, 64, 1, CodebookScope::PerTensor).unwrap();
        let wq = quantized(cfg, 48, 64, 2);
        let x = xs(64, 0.53);
        let tiny = HostBlocking {
            slab_bytes: 1,
            threads: 1,
        };
        let fused = gemv_lut(&wq, &x, &tiny).unwrap();
        let reference = linalg::gemv(&wq.dequantize().unwrap(), &x).unwrap();
        assert!(metrics::allclose(&fused, &reference, 1e-4, 1e-4));
        let xr = xs(48, 0.29);
        let fused = gemv_xw(&xr, &wq, &tiny).unwrap();
        let reference = linalg::gemv(&wq.dequantize().unwrap().transposed(), &xr).unwrap();
        assert!(metrics::allclose(&fused, &reference, 1e-4, 1e-4));
        let acts = Tensor2D::from_fn(2, 64, |b, c| ((b + c) as f32 * 0.11).cos());
        let batch = gemv_lut_batch(&wq, &acts, &tiny).unwrap();
        for b in 0..2 {
            let single = gemv_lut(&wq, acts.row(b), &tiny).unwrap();
            let col: Vec<f32> = (0..48).map(|r| batch.get(r, b)).collect();
            assert!(metrics::allclose(&col, &single, 1e-4, 1e-4));
        }
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let cfg = VqConfig::new(4, 32, 1, CodebookScope::PerTensor).unwrap();
        let wq = quantized(cfg, 64, 32, 1);
        let b = HostBlocking::default();
        assert!(gemv_lut(&wq, &[0.0; 3], &b).is_err());
        assert!(gemv_xw(&[0.0; 3], &wq, &b).is_err());
        assert!(gemm_fused(&Tensor2D::zeros(2, 3), &wq, &b).is_err());
        assert!(gemv_lut_batch(&wq, &Tensor2D::zeros(2, 3), &b).is_err());
        let other = quantized(cfg, 32, 32, 2);
        assert!(attention_decode_fused(&[0.0; 32], &wq, &other, &b).is_err());
        assert!(attention_decode_batch(&Tensor2D::zeros(2, 32), &wq, &other, &b).is_err());
    }
}
