//! Fused host execution of VQ kernels — real computation on packed codes.
//!
//! This module is the paper's core insight (§IV: keep codebooks
//! cache-resident and fuse dequantization into the consuming op) mapped
//! onto the host memory hierarchy. No kernel here ever materializes the
//! dequantized weight matrix; every inner loop reads **packed codes**
//! (via [`PackedIndices::unpack_block`]) and small cache-resident tables:
//!
//! * [`gemv_lut`] — `y = dequant(Wq) · x`: per-(scope, residual) lookup
//!   tables of `x`-sub-vector · centroid partial dots (the decode-centric
//!   LUT GeMV of EVA/VPTQ), so the inner loop is `acc[row] += lut[code]` —
//!   one gather and one add per packed code.
//! * [`gemv_xw`] — `y = xᵀ · dequant(Wq)` (the [`Backend`] GeMV contract,
//!   where sub-vectors run along the *output* axis): the dual trick —
//!   scatter-aggregate `wsum[code] += x[row]` into a cache-resident slab,
//!   then expand each code's aggregated weight through its centroid once.
//! * [`gemm_fused`] — `C = A × dequant(Wq)`: streams one decoded weight
//!   row at a time (a 1-row panel, never the full matrix) into blocked
//!   AXPY updates.
//! * [`attention_decode_fused`] — one decode head over quantized K/V:
//!   the K-side score pass *is* [`gemv_lut`] (q-sub-vector LUTs), the
//!   V-side weighted sum *is* [`gemv_xw`] over the softmaxed scores.
//!
//! Blocking ([`HostBlocking`]) reuses the [`KernelPlan`]'s shared-memory
//! budget decisions: the bytes the planner would stage into an SM's shared
//! memory are the natural L1/L2-resident slab size on the host, and the
//! plan's tiling feeds the `std::thread::scope`-based row-parallel path.
//!
//! [`Backend`]: crate::backend::Backend
//! [`PackedIndices::unpack_block`]: vqllm_vq::PackedIndices::unpack_block

use crate::{KernelError, Result};
use vqllm_core::KernelPlan;
use vqllm_tensor::{linalg, Tensor2D};
use vqllm_vq::config::CodebookScope;
use vqllm_vq::QuantizedTensor;

/// Cache-blocking and threading decisions for the host kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostBlocking {
    /// Byte budget for the cache-resident slab (LUT or aggregation table)
    /// a kernel keeps hot — the host analogue of the plan's shared-memory
    /// footprint.
    pub slab_bytes: usize,
    /// Worker threads for the row-parallel path (1 = sequential).
    pub threads: usize,
}

/// Default slab budget when no plan is supplied: a typical L1 data cache.
const DEFAULT_SLAB_BYTES: usize = 32 << 10;

impl Default for HostBlocking {
    fn default() -> Self {
        HostBlocking {
            slab_bytes: DEFAULT_SLAB_BYTES,
            threads: 1,
        }
    }
}

impl HostBlocking {
    /// Derives blocking from a kernel plan: the bytes the planner decided
    /// to stage into shared memory (codebook slice + data tiles) become
    /// the host's cache-resident slab budget, clamped to a sane L1..L2
    /// range.
    pub fn for_plan(plan: &KernelPlan) -> Self {
        let staged = plan.smem_codebook_bytes + plan.tiling.smem_data_bytes;
        HostBlocking {
            slab_bytes: staged.clamp(16 << 10, 256 << 10),
            threads: 1,
        }
    }

    /// Sets the worker-thread count for the row-parallel path.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Column groups per slab so `group_block × stored_entries` f32 slots
    /// fit the budget.
    fn group_block(&self, stored: usize, groups: usize) -> usize {
        (self.slab_bytes / (stored * 4).max(1)).clamp(1, groups.max(1))
    }
}

/// Plain dot product (kept trivially inlinable).
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Dot product against a lattice entry with per-element sign bits applied.
#[inline]
fn signed_dot(entry: &[f32], xs: &[f32], signs: u32) -> f32 {
    let mut acc = 0.0;
    for (j, (&e, &x)) in entry.iter().zip(xs).enumerate() {
        acc += if signs & (1 << j) != 0 { -e * x } else { e * x };
    }
    acc
}

/// Height of a row band within which every column group's codebook scope
/// is row-invariant (whole tensor except for per-tile books).
fn band_height(scope: CodebookScope, rows: usize) -> usize {
    match scope {
        CodebookScope::PerTile {
            rows: tile_rows, ..
        } => tile_rows.clamp(1, rows),
        _ => rows,
    }
}

/// Splits `data` (`rows × row_width` elements, row-major) into row-aligned
/// chunks and runs `f(first_row, chunk)` on each — on `std::thread::scope`
/// workers when `threads > 1`, sequentially otherwise. Chunks are disjoint
/// `&mut` slices, so workers never race.
fn parallel_row_chunks<F>(data: &mut [f32], row_width: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let rows = data.len() / row_width.max(1);
    let workers = threads.max(1).min(rows.max(1));
    if workers <= 1 {
        f(0, data);
        return;
    }
    let chunk_rows = rows.div_ceil(workers);
    std::thread::scope(|s| {
        for (ci, chunk) in data.chunks_mut(chunk_rows * row_width).enumerate() {
            let f = &f;
            s.spawn(move || f(ci * chunk_rows, chunk));
        }
    });
}

/// Fused LUT GeMV: `y = dequant(Wq) · x` with `x.len() == cols`,
/// `y.len() == rows` — the decode-orientation GeMV where quantized
/// sub-vectors run along the reduction axis.
///
/// For each (residual, row band) a `groups × stored_entries` table of
/// `x`-sub-vector · centroid partial dots is precomputed; the per-row
/// inner loop is then `acc += lut[code]` over block-decoded packed codes,
/// visited in [`HostBlocking`]-sized group blocks so the active LUT slab
/// stays L1-resident. Lattice codebooks (sign-extended logical entries)
/// take a fused sign-aware path instead — a per-base-entry LUT cannot
/// absorb element-wise sign masks.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if `x.len() != cols`.
pub fn gemv_lut(wq: &QuantizedTensor, x: &[f32], blocking: &HostBlocking) -> Result<Vec<f32>> {
    let (rows, cols) = wq.shape();
    if x.len() != cols {
        return Err(KernelError::ShapeMismatch {
            what: "x length must equal quantized cols",
        });
    }
    let vq = *wq.config();
    let vs = vq.vector_size;
    let groups = wq.col_groups();
    let stored = vq.stored_entries();
    let books = wq.codebooks();
    let band = band_height(vq.scope, rows);
    let mut y = vec![0.0f32; rows];

    let mut band_start = 0;
    while band_start < rows {
        let band_len = band.min(rows - band_start);
        for r in 0..vq.residuals {
            let stream = wq.index_stream(r);
            if vq.lattice {
                // Sign-extended entries: fuse the sign application into the
                // dot instead of tabulating 2^vs variants per base entry.
                parallel_row_chunks(
                    &mut y[band_start..band_start + band_len],
                    1,
                    blocking.threads,
                    |first, chunk| {
                        let mut codes = vec![0u32; groups];
                        for (local, out) in chunk.iter_mut().enumerate() {
                            let row = band_start + first + local;
                            stream.unpack_block(row * groups, &mut codes);
                            let mut acc = 0.0f32;
                            for (g, &code) in codes.iter().enumerate() {
                                let book = books.book(r, books.scope_index(row, g * vs));
                                let base = book.stored_id_of(code) as usize;
                                let signs = code >> book.sign_shift();
                                acc += signed_dot(
                                    &book.entries_flat()[base * vs..(base + 1) * vs],
                                    &x[g * vs..(g + 1) * vs],
                                    signs,
                                );
                            }
                            *out += acc;
                        }
                    },
                );
            } else {
                // The LUT: partial dot of every centroid against the x
                // sub-vector of every column group of this band's books.
                let mut lut = vec![0.0f32; groups * stored];
                for (g, slab) in lut.chunks_mut(stored).enumerate() {
                    let flat = books
                        .book(r, books.scope_index(band_start, g * vs))
                        .entries_flat();
                    let xs = &x[g * vs..(g + 1) * vs];
                    for (c, slot) in slab.iter_mut().enumerate() {
                        *slot = dot(&flat[c * vs..(c + 1) * vs], xs);
                    }
                }
                let gb = blocking.group_block(stored, groups);
                parallel_row_chunks(
                    &mut y[band_start..band_start + band_len],
                    1,
                    blocking.threads,
                    |first, chunk| {
                        let mut codes = vec![0u32; gb];
                        for g0 in (0..groups).step_by(gb) {
                            let gl = gb.min(groups - g0);
                            let slab = &lut[g0 * stored..(g0 + gl) * stored];
                            for (local, out) in chunk.iter_mut().enumerate() {
                                let row = band_start + first + local;
                                stream.unpack_block(row * groups + g0, &mut codes[..gl]);
                                let mut acc = 0.0f32;
                                for (gi, &code) in codes[..gl].iter().enumerate() {
                                    acc += slab[gi * stored + code as usize];
                                }
                                *out += acc;
                            }
                        }
                    },
                );
            }
        }
        band_start += band_len;
    }
    Ok(y)
}

/// Fused transposed GeMV: `y = xᵀ · dequant(Wq)` with `x.len() == rows`,
/// `y.len() == cols` — the [`Backend`](crate::backend::Backend) GeMV
/// contract, where quantized sub-vectors run along the *output* axis.
///
/// Dual of [`gemv_lut`]: since each packed code scales a whole centroid by
/// the scalar `x[row]`, the kernel scatter-aggregates `wsum[code] +=
/// x[row]` into a slab-resident table per column-group block, then expands
/// each code's aggregated weight through its centroid exactly once —
/// `rows` adds plus `stored × vs` FMAs per group instead of `rows × vs`
/// FMAs. Lattice books fall back to fused sign-aware AXPY.
///
/// The row-parallel path partitions the *output* (column groups) across
/// workers, so no two threads ever touch the same accumulator.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if `x.len() != rows`.
pub fn gemv_xw(x: &[f32], wq: &QuantizedTensor, blocking: &HostBlocking) -> Result<Vec<f32>> {
    let (rows, cols) = wq.shape();
    if x.len() != rows {
        return Err(KernelError::ShapeMismatch {
            what: "x length must equal quantized weight rows",
        });
    }
    let vq = *wq.config();
    let vs = vq.vector_size;
    let groups = wq.col_groups();
    let stored = vq.stored_entries();
    let books = wq.codebooks();
    let band = band_height(vq.scope, rows);
    let mut y = vec![0.0f32; cols];

    // Workers own disjoint, contiguous column-group spans of y.
    parallel_row_chunks(&mut y, vs, blocking.threads, |first_group, ychunk| {
        let span = ychunk.len() / vs;
        let gb = blocking.group_block(stored, span);
        let mut codes = vec![0u32; gb];
        let mut wsum = vec![0.0f32; gb * stored];
        for r in 0..vq.residuals {
            let stream = wq.index_stream(r);
            let mut band_start = 0;
            while band_start < rows {
                let band_len = band.min(rows - band_start);
                for b0 in (0..span).step_by(gb) {
                    let gl = gb.min(span - b0);
                    let g0 = first_group + b0;
                    if vq.lattice {
                        for (off, &xv) in x[band_start..band_start + band_len].iter().enumerate() {
                            let row = band_start + off;
                            stream.unpack_block(row * groups + g0, &mut codes[..gl]);
                            for (gi, &code) in codes[..gl].iter().enumerate() {
                                let book = books.book(r, books.scope_index(row, (g0 + gi) * vs));
                                let base = book.stored_id_of(code) as usize;
                                let signs = code >> book.sign_shift();
                                let entry = &book.entries_flat()[base * vs..(base + 1) * vs];
                                let out = &mut ychunk[(b0 + gi) * vs..(b0 + gi + 1) * vs];
                                for (j, (o, &e)) in out.iter_mut().zip(entry).enumerate() {
                                    let v = if signs & (1 << j) != 0 { -e } else { e };
                                    *o += xv * v;
                                }
                            }
                        }
                    } else {
                        wsum[..gl * stored].fill(0.0);
                        // Scatter: aggregate x over equal codes.
                        for (off, &xv) in x[band_start..band_start + band_len].iter().enumerate() {
                            stream.unpack_block((band_start + off) * groups + g0, &mut codes[..gl]);
                            for (gi, &code) in codes[..gl].iter().enumerate() {
                                wsum[gi * stored + code as usize] += xv;
                            }
                        }
                        // Expand: one centroid FMA per touched code.
                        for gi in 0..gl {
                            let flat = books
                                .book(r, books.scope_index(band_start, (g0 + gi) * vs))
                                .entries_flat();
                            let out = &mut ychunk[(b0 + gi) * vs..(b0 + gi + 1) * vs];
                            for (c, &w) in wsum[gi * stored..(gi + 1) * stored].iter().enumerate() {
                                if w != 0.0 {
                                    for (o, &e) in out.iter_mut().zip(&flat[c * vs..(c + 1) * vs]) {
                                        *o += w * e;
                                    }
                                }
                            }
                        }
                    }
                }
                band_start += band_len;
            }
        }
    });
    Ok(y)
}

/// Fused GeMM: `C = A (m×k) × dequant(Wq) (k×n)`.
///
/// Streams the quantized weight one decoded row at a time — a single-row
/// panel (`n` floats, L1/L2-resident) assembled directly from packed codes
/// across all residual rounds — and folds it into every row of `C` with an
/// AXPY. The full dequantized matrix never exists. Row-parallel over `C`
/// (each worker owns a contiguous strip of output rows).
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if `a.cols() != wq.rows`.
pub fn gemm_fused(a: &Tensor2D, wq: &QuantizedTensor, blocking: &HostBlocking) -> Result<Tensor2D> {
    if a.cols() != wq.shape().0 {
        return Err(KernelError::ShapeMismatch {
            what: "A.cols must equal quantized weight rows",
        });
    }
    let (k, n) = wq.shape();
    let m = a.rows();
    let vq = *wq.config();
    let vs = vq.vector_size;
    let groups = wq.col_groups();
    let books = wq.codebooks();
    let mut c = Tensor2D::zeros(m, n);

    // Each worker re-decodes the packed stream for its strip (decoding is
    // read-only and sharing it would need a per-row barrier), so cap the
    // worker count at m/4: every worker then amortizes its decode over at
    // least ~4 AXPY rows and wall-clock never regresses vs sequential.
    let workers = blocking.threads.min(m.div_ceil(4)).max(1);
    parallel_row_chunks(c.as_mut_slice(), n, workers, |first_row, chunk| {
        let mrows = chunk.len() / n;
        let mut codes = vec![0u32; groups];
        let mut wrow = vec![0.0f32; n];
        for i in 0..k {
            // Decode weight row i (all residual rounds) from packed codes.
            wrow.fill(0.0);
            for r in 0..vq.residuals {
                wq.index_stream(r).unpack_block(i * groups, &mut codes);
                for (g, &code) in codes.iter().enumerate() {
                    books
                        .book(r, books.scope_index(i, g * vs))
                        .accumulate(code, &mut wrow[g * vs..(g + 1) * vs]);
                }
            }
            // C[p] += A[p][i] * wrow for this worker's strip.
            for p in 0..mrows {
                let apv = a.row(first_row + p)[i];
                if apv != 0.0 {
                    for (o, &w) in chunk[p * n..(p + 1) * n].iter_mut().zip(&wrow) {
                        *o += apv * w;
                    }
                }
            }
        }
    });
    Ok(c)
}

/// One head of fused attention decode over quantized K/V caches
/// (`seq × head_dim` each): `softmax(q · dequant(Kq)ᵀ / √d) · dequant(Vq)`.
///
/// The score pass is exactly [`gemv_lut`] (q-sub-vector · centroid LUTs,
/// `score[t] += lut[code]` over K's packed codes); the output pass is
/// exactly [`gemv_xw`] with the softmaxed scores as `x`. Neither K nor V
/// is ever materialized.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] on inconsistent shapes.
pub fn attention_decode_fused(
    q: &[f32],
    kq: &QuantizedTensor,
    vq: &QuantizedTensor,
    blocking: &HostBlocking,
) -> Result<Vec<f32>> {
    if kq.shape() != vq.shape() || q.len() != kq.shape().1 {
        return Err(KernelError::ShapeMismatch {
            what: "q/K/V shapes disagree",
        });
    }
    let mut scores = gemv_lut(kq, q, blocking)?;
    let scale = 1.0 / (q.len() as f32).sqrt();
    for s in scores.iter_mut() {
        *s *= scale;
    }
    linalg::softmax_inplace(&mut scores);
    gemv_xw(&scores, vq, blocking)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqllm_tensor::{metrics, synth};
    use vqllm_vq::{VqAlgorithm, VqConfig, VqQuantizer};

    fn quantized(cfg: VqConfig, rows: usize, cols: usize, seed: u64) -> QuantizedTensor {
        let w = synth::correlated_channels(rows, cols, cfg.vector_size, 0.9, seed);
        VqQuantizer::new(cfg).quantize(&w, seed).unwrap()
    }

    fn xs(n: usize, phase: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * phase).sin()).collect()
    }

    /// Every preset the repo ships, at a size each scope supports.
    fn preset_cases() -> Vec<(VqConfig, usize, usize)> {
        vec![
            (
                VqConfig::new(4, 64, 1, CodebookScope::PerTensor).unwrap(),
                48,
                64,
            ),
            (
                VqConfig::new(4, 64, 2, CodebookScope::PerTensor).unwrap(),
                48,
                64,
            ),
            (VqAlgorithm::Cq4.config(), 256, 32),
            (VqAlgorithm::Cq2.config(), 256, 32),
            (
                VqConfig::new(4, 32, 1, CodebookScope::PerTile { rows: 16, cols: 16 }).unwrap(),
                32,
                32,
            ),
            (
                VqConfig::new_lattice(4, 256, 16, 1, CodebookScope::PerTensor).unwrap(),
                32,
                32,
            ),
        ]
    }

    #[test]
    fn gemv_lut_matches_dequantized_gemv() {
        for (cfg, rows, cols) in preset_cases() {
            let wq = quantized(cfg, rows, cols, 7);
            let x = xs(cols, 0.37);
            let fused = gemv_lut(&wq, &x, &HostBlocking::default()).unwrap();
            let reference = linalg::gemv(&wq.dequantize().unwrap(), &x).unwrap();
            assert!(
                metrics::allclose(&fused, &reference, 1e-4, 1e-4),
                "{cfg} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn gemv_xw_matches_transposed_gemv() {
        for (cfg, rows, cols) in preset_cases() {
            let wq = quantized(cfg, rows, cols, 11);
            let x = xs(rows, 0.23);
            let fused = gemv_xw(&x, &wq, &HostBlocking::default()).unwrap();
            let reference = linalg::gemv(&wq.dequantize().unwrap().transposed(), &x).unwrap();
            assert!(
                metrics::allclose(&fused, &reference, 1e-4, 1e-4),
                "{cfg} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn gemm_fused_matches_dequantized_matmul() {
        for (cfg, rows, cols) in preset_cases() {
            let wq = quantized(cfg, rows, cols, 3);
            let a = synth::gaussian(5, rows, 1.0, 9);
            let fused = gemm_fused(&a, &wq, &HostBlocking::default()).unwrap();
            let reference = linalg::matmul(&a, &wq.dequantize().unwrap()).unwrap();
            assert!(
                metrics::allclose(fused.as_slice(), reference.as_slice(), 1e-4, 1e-4),
                "{cfg} {rows}x{cols}"
            );
        }
    }

    #[test]
    fn attention_matches_reference() {
        let cfg = VqAlgorithm::Cq2.config();
        let k = synth::kv_stream(320, 64, 0.8, 4);
        let v = synth::kv_stream(320, 64, 0.8, 5);
        let kq = VqQuantizer::new(cfg).quantize(&k, 1).unwrap();
        let vq = VqQuantizer::new(cfg).quantize(&v, 2).unwrap();
        let q = xs(64, 0.31);
        let fused = attention_decode_fused(&q, &kq, &vq, &HostBlocking::default()).unwrap();
        let reference = linalg::attention_decode_ref(
            &q,
            &kq.dequantize().unwrap(),
            &vq.dequantize().unwrap(),
            1.0 / 8.0,
        )
        .unwrap();
        assert!(metrics::allclose(&fused, &reference, 1e-4, 1e-4));
    }

    #[test]
    fn threaded_path_matches_sequential() {
        for (cfg, rows, cols) in preset_cases() {
            let wq = quantized(cfg, rows, cols, 17);
            let xc = xs(cols, 0.41);
            let xr = xs(rows, 0.19);
            let seq = HostBlocking::default();
            let par = HostBlocking::default().with_threads(4);
            assert_eq!(
                gemv_lut(&wq, &xc, &seq).unwrap(),
                gemv_lut(&wq, &xc, &par).unwrap(),
                "{cfg} lut"
            );
            assert_eq!(
                gemv_xw(&xr, &wq, &seq).unwrap(),
                gemv_xw(&xr, &wq, &par).unwrap(),
                "{cfg} xw"
            );
            let a = synth::gaussian(6, rows, 1.0, 21);
            assert_eq!(
                gemm_fused(&a, &wq, &seq).unwrap(),
                gemm_fused(&a, &wq, &par).unwrap(),
                "{cfg} gemm"
            );
        }
    }

    #[test]
    fn tiny_slab_blocking_still_correct() {
        // Force many group blocks (slab smaller than one group's table).
        let cfg = VqConfig::new(4, 64, 1, CodebookScope::PerTensor).unwrap();
        let wq = quantized(cfg, 48, 64, 2);
        let x = xs(64, 0.53);
        let tiny = HostBlocking {
            slab_bytes: 1,
            threads: 1,
        };
        let fused = gemv_lut(&wq, &x, &tiny).unwrap();
        let reference = linalg::gemv(&wq.dequantize().unwrap(), &x).unwrap();
        assert!(metrics::allclose(&fused, &reference, 1e-4, 1e-4));
        let xr = xs(48, 0.29);
        let fused = gemv_xw(&xr, &wq, &tiny).unwrap();
        let reference = linalg::gemv(&wq.dequantize().unwrap().transposed(), &xr).unwrap();
        assert!(metrics::allclose(&fused, &reference, 1e-4, 1e-4));
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let cfg = VqConfig::new(4, 32, 1, CodebookScope::PerTensor).unwrap();
        let wq = quantized(cfg, 64, 32, 1);
        let b = HostBlocking::default();
        assert!(gemv_lut(&wq, &[0.0; 3], &b).is_err());
        assert!(gemv_xw(&[0.0; 3], &wq, &b).is_err());
        assert!(gemm_fused(&Tensor2D::zeros(2, 3), &wq, &b).is_err());
        let other = quantized(cfg, 32, 32, 2);
        assert!(attention_decode_fused(&[0.0; 32], &wq, &other, &b).is_err());
    }
}
