//! Element-wise quantization comparators (paper Fig. 16/17).
//!
//! AWQ-4 (group-wise INT4 weights, qServe-style kernels) for GeMM/GeMV and
//! QoQ-4 (4-bit KV cache) for attention. These are the "theoretical upper
//! bound of VQ kernels if using the same computation dataflow" (§VII-D):
//! the same compressed bytes stream from DRAM, but dequantization is a
//! multiply-add against a group scale — no codebook, no banks, no layout
//! mismatch.

use crate::KernelOutput;
use vqllm_gpu::occupancy::BlockResources;
use vqllm_gpu::{GpuSpec, LaunchConfig, PerfCounters, TimingModel};

/// Equivalent bits of the element-wise formats modelled here.
pub const AWQ_BITS: f64 = 4.0;

/// AWQ-style W4A16 GeMM: INT4 weights dequantized on the fly into
/// tensor-core fragments.
pub fn awq_gemm(gpu: &GpuSpec, m: usize, n: usize, k: usize) -> KernelOutput {
    let grid = m.div_ceil(128) * n.div_ceil(128);
    let block = BlockResources::new(256, 72, 32 * 1024);
    let launch = LaunchConfig::new(grid, block);

    let w_bytes = (k * n) as f64 * AWQ_BITS / 8.0;
    let scale_bytes = (k * n / 128 * 4) as f64;
    let a_bytes = (m * k * 2) as f64;
    let passes = m.div_ceil(128) as f64;
    let counters = PerfCounters {
        dram_read_bytes: a_bytes * 1.15 + (w_bytes + scale_bytes) * (1.0 + (passes - 1.0) * 0.2),
        dram_write_bytes: (m * n * 2) as f64,
        global_to_shared_bytes: a_bytes * n.div_ceil(128) as f64 + w_bytes * passes,
        shared_to_reg_bytes: a_bytes * n.div_ceil(128) as f64 + w_bytes * passes,
        smem_cycles: 2.0 * (a_bytes * n.div_ceil(128) as f64) / gpu.smem_bytes_per_cycle as f64,
        tensor_flops: 2.0 * m as f64 * n as f64 * k as f64,
        // INT4 → FP16 unpack: shift/mask + scale FMA per element, done once
        // per row-strip pass.
        int_ops: (k * n) as f64 * passes * 2.0,
        ..Default::default()
    };
    let latency = TimingModel::new(gpu.clone()).latency(&launch, &counters);
    KernelOutput {
        counters,
        latency,
        launch,
    }
}

/// AWQ-style W4A16 GeMV.
pub fn awq_gemv(gpu: &GpuSpec, n: usize, k: usize, batch: usize) -> KernelOutput {
    let grid = n.div_ceil(32) * k.div_ceil(2048).max(1);
    let block = BlockResources::new(256, 56, 2 * 1024);
    let launch = LaunchConfig::new(grid, block);

    let w_bytes = (k * n) as f64 * AWQ_BITS / 8.0;
    let scale_bytes = (k * n / 128 * 4) as f64;
    let flops = 2.0 * n as f64 * k as f64 * batch as f64;
    let counters = PerfCounters {
        dram_read_bytes: w_bytes + scale_bytes + (k * batch * 2) as f64,
        dram_write_bytes: (n * batch * 2) as f64,
        flops: if batch >= 8 { 0.0 } else { flops },
        tensor_flops: if batch >= 8 { flops } else { 0.0 },
        int_ops: (k * n) as f64 * 2.0,
        ..Default::default()
    };
    let latency = TimingModel::new(gpu.clone()).latency(&launch, &counters);
    KernelOutput {
        counters,
        latency,
        launch,
    }
}

/// QoQ-style KV4 attention decode: 4-bit KV cache with per-group scales.
pub fn qoq_attention(
    gpu: &GpuSpec,
    batch: usize,
    heads: usize,
    head_dim: usize,
    seq: usize,
) -> KernelOutput {
    let chunks = seq.div_ceil(128).max(1);
    let grid = batch * heads * chunks;
    let block = BlockResources::new(128, 56, 12 * 1024);
    let launch = LaunchConfig::new(grid, block);

    let kv_elems = (2 * batch * heads * seq * head_dim) as f64;
    let kv_bytes = kv_elems * AWQ_BITS / 8.0;
    let scale_bytes = kv_elems / 64.0 * 4.0;
    let partials = (batch * heads * head_dim * 2 * 2) as f64 * chunks as f64;
    let counters = PerfCounters {
        dram_read_bytes: kv_bytes + scale_bytes + (batch * heads * head_dim * 2) as f64 + partials,
        dram_write_bytes: partials + (batch * heads * head_dim * 2) as f64,
        global_to_shared_bytes: kv_bytes,
        shared_to_reg_bytes: kv_elems * 2.0,
        smem_cycles: (kv_bytes + kv_elems * 2.0) / gpu.smem_bytes_per_cycle as f64,
        flops: (batch * heads) as f64 * (4.0 * seq as f64 * head_dim as f64 + 5.0 * seq as f64),
        int_ops: kv_elems * 2.0,
        ..Default::default()
    };
    let latency = TimingModel::new(gpu.clone()).latency(&launch, &counters);
    KernelOutput {
        counters,
        latency,
        launch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp16;

    fn gpu() -> GpuSpec {
        GpuSpec::rtx4090()
    }

    #[test]
    fn awq_gemv_beats_fp16_gemv() {
        // 4-bit weights move 4× less data: the memory-bound GeMV gets most
        // of that back (Fig. 16: both quantized kernels beat cutlass GeMV).
        let fp = fp16::gemv(&gpu(), 4096, 4096, 1);
        let awq = awq_gemv(&gpu(), 4096, 4096, 1);
        assert!(awq.us() < fp.us(), "AWQ {} !< FP16 {}", awq.us(), fp.us());
        assert!(
            awq.us() > fp.us() / 5.0,
            "overheads keep it off the ideal 4x"
        );
    }

    #[test]
    fn awq_gemm_does_not_beat_cutlass() {
        // Fig. 16: at GeMM both quantized kernels underperform cutlass
        // (compute-bound + dequant overhead).
        let fp = fp16::gemm(&gpu(), 2048, 4096, 4096);
        let awq = awq_gemm(&gpu(), 2048, 4096, 4096);
        assert!(
            awq.us() >= fp.us() * 0.95,
            "AWQ {} vs FP16 {}",
            awq.us(),
            fp.us()
        );
    }

    #[test]
    fn qoq_attention_beats_fp16_attention() {
        let fp = fp16::attention(&gpu(), fp16::AttnBaseline::FlashDecoding, 1, 32, 128, 1024);
        let qoq = qoq_attention(&gpu(), 1, 32, 128, 1024);
        assert!(qoq.us() < fp.us(), "QoQ {} !< FP16 {}", qoq.us(), fp.us());
    }

    #[test]
    fn qoq_scales_with_batch_and_seq() {
        let small = qoq_attention(&gpu(), 1, 32, 128, 1024);
        let big = qoq_attention(&gpu(), 8, 32, 128, 4096);
        assert!(
            big.us() > 8.0 * small.us() * 0.5,
            "{} vs {}",
            big.us(),
            small.us()
        );
    }
}
