//! Pluggable execution backends.
//!
//! A [`Backend`] is everything a `Session` (and an `llm::Pipeline`) needs
//! from an execution substrate: planning a fused kernel, estimating a
//! plan's latency, and functionally executing a plan against real data.
//! Two implementations ship:
//!
//! * [`PerfModelBackend`] — the GPU performance model (the workspace's
//!   documented hardware substitution): plans with the paper's heuristics,
//!   estimates with the roofline timing model, executes functionally
//!   through the modelled codebook cache.
//! * [`CpuBackend`] — real host execution: the same planner decisions,
//!   but `run_*` dispatches to the fused [`host_exec`](crate::host_exec)
//!   kernels, which compute directly on packed codes with cache-resident
//!   codebook LUTs, runtime-dispatched SIMD inner loops, and parallel
//!   paths on the persistent [`host_exec::pool::WorkerPool`].
//!
//! The trait lives in `vqllm-kernels` (below `vqllm-llm`) so the decode
//! pipeline and the facade share one seam; a real-GPU (CUDA/HIP) backend
//! plugs in here later without touching any consumer.

use crate::host_exec::{self, HostBlocking};
use crate::{vq_kernel, AccessProfile, KernelOutput, Result};
use vqllm_core::plan_cache::PlanRequest;
use vqllm_core::{ComputeOp, KernelPlan, KernelPlanner, OptLevel, ProfileSummary};
use vqllm_gpu::GpuSpec;
use vqllm_tensor::Tensor2D;
use vqllm_vq::{QuantizedTensor, VqConfig};

/// An execution substrate for fused VQ kernels.
///
/// Implementations must be thread-safe: one backend instance is shared by
/// every clone of a `Session` and by the plan cache's racing planners.
pub trait Backend: std::fmt::Debug + Send + Sync {
    /// Short backend name for reports and debugging.
    fn name(&self) -> &'static str;

    /// Plans `op` under `vq` at one rung of the optimization ladder.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Unplannable`](crate::KernelError::Unplannable)
    /// when no launchable configuration exists.
    fn plan_at(
        &self,
        gpu: &GpuSpec,
        vq: &VqConfig,
        op: &ComputeOp,
        level: OptLevel,
        profile: &ProfileSummary,
    ) -> Result<KernelPlan>;

    /// Plans at every rung and returns the fastest plan (the paper's
    /// adaptive "best perform version").
    ///
    /// # Errors
    ///
    /// Returns an error when no rung yields a launchable configuration.
    fn best_plan(
        &self,
        gpu: &GpuSpec,
        vq: &VqConfig,
        op: &ComputeOp,
        profile: &AccessProfile,
    ) -> Result<(KernelPlan, KernelOutput)>;

    /// Plans a [`PlanRequest`]: a fixed rung goes through
    /// [`Backend::plan_at`] with `summary`, the adaptive best through
    /// [`Backend::best_plan`] with `profile`. This is the one seam every
    /// front end (`Session`, `Pipeline`, the serving warm-up) dispatches
    /// through, so a measured profile threads into planning identically
    /// everywhere.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::Unplannable`](crate::KernelError::Unplannable)
    /// when no launchable configuration exists for the request.
    fn plan_request(
        &self,
        gpu: &GpuSpec,
        vq: &VqConfig,
        op: &ComputeOp,
        request: PlanRequest,
        profile: &AccessProfile,
        summary: &ProfileSummary,
    ) -> Result<KernelPlan> {
        match request {
            PlanRequest::At(level) => self.plan_at(gpu, vq, op, level, summary),
            PlanRequest::Best => self.best_plan(gpu, vq, op, profile).map(|(plan, _)| plan),
        }
    }

    /// Latency/counter estimate for an existing plan.
    fn estimate(&self, gpu: &GpuSpec, plan: &KernelPlan, profile: &AccessProfile) -> KernelOutput;

    /// Functionally executes a fused GeMM: `A × dequant(Wq)`.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches.
    fn run_gemm(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        a: &Tensor2D,
        wq: &QuantizedTensor,
    ) -> Result<(Tensor2D, KernelOutput)>;

    /// Functionally executes a fused GeMV: `xᵀ × dequant(Wq)`.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches.
    fn run_gemv(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        x: &[f32],
        wq: &QuantizedTensor,
    ) -> Result<(Vec<f32>, KernelOutput)>;

    /// Functionally executes one head of fused attention decode over
    /// quantized K/V caches.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches.
    fn run_attention_head(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        q: &[f32],
        kq: &QuantizedTensor,
        vq: &QuantizedTensor,
    ) -> Result<(Vec<f32>, KernelOutput)>;

    /// Functionally executes one head of attention decode for a **batch**
    /// of queries (`qs` is `batch × head_dim`, one row per sequence)
    /// attending over shared quantized K/V caches — the serving-layer
    /// multi-tenant decode shape. The default loops
    /// [`Backend::run_attention_head`]; substrates with a real batched
    /// kernel (see [`CpuBackend`]) override it.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches or an empty batch.
    fn run_attention_batch(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        qs: &Tensor2D,
        kq: &QuantizedTensor,
        vq: &QuantizedTensor,
    ) -> Result<(Tensor2D, KernelOutput)> {
        if qs.rows() == 0 {
            return Err(crate::KernelError::InvalidInput {
                what: "empty query batch",
            });
        }
        let mut out = Tensor2D::zeros(qs.rows(), qs.cols());
        let mut last = None;
        for b in 0..qs.rows() {
            let (row, o) = self.run_attention_head(gpu, plan, qs.row(b), kq, vq)?;
            out.row_mut(b).copy_from_slice(&row);
            last = Some(o);
        }
        Ok((out, last.expect("non-empty batch")))
    }

    /// Ragged batched attention decode: query `b` attends only the first
    /// `lens[b]` cached tokens of the shared quantized K/V — the
    /// continuous-batching shape, where co-scheduled tenants sit at
    /// different positions in one cache. The default dequantizes and loops
    /// the reference per query (correct on any substrate); [`CpuBackend`]
    /// overrides it with the fused ragged kernel whose K-decode is shared
    /// across the batch.
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches, an empty batch, or a length
    /// outside `1..=seq`.
    fn run_attention_ragged(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        qs: &Tensor2D,
        lens: &[usize],
        kq: &QuantizedTensor,
        vq: &QuantizedTensor,
    ) -> Result<(Tensor2D, KernelOutput)> {
        if qs.rows() == 0 {
            return Err(crate::KernelError::InvalidInput {
                what: "empty query batch",
            });
        }
        if lens.len() != qs.rows() {
            return Err(crate::KernelError::ShapeMismatch {
                what: "one softmax length per query row",
            });
        }
        if kq.shape() != vq.shape() || qs.cols() != kq.shape().1 {
            return Err(crate::KernelError::ShapeMismatch {
                what: "qs/K/V shapes disagree",
            });
        }
        let (seq, head_dim) = kq.shape();
        if lens.iter().any(|&l| l == 0 || l > seq) {
            return Err(crate::KernelError::InvalidInput {
                what: "softmax lengths must be in 1..=seq",
            });
        }
        let kd = kq
            .dequantize()
            .map_err(|_| crate::KernelError::InvalidInput {
                what: "K cache failed to dequantize",
            })?;
        let vd = vq
            .dequantize()
            .map_err(|_| crate::KernelError::InvalidInput {
                what: "V cache failed to dequantize",
            })?;
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut out = Tensor2D::zeros(qs.rows(), head_dim);
        for (b, &len) in lens.iter().enumerate() {
            let row = vqllm_tensor::linalg::attention_decode_ref(
                qs.row(b),
                &kd.slice(0, 0, len, head_dim),
                &vd.slice(0, 0, len, head_dim),
                scale,
            )
            .map_err(|_| crate::KernelError::ShapeMismatch {
                what: "reference attention rejected the ragged slice",
            })?;
            out.row_mut(b).copy_from_slice(&row);
        }
        let profile = AccessProfile::default_for(kq.config());
        let counters = self.estimate(gpu, plan, &profile);
        Ok((out, counters))
    }

    /// Ragged attention decode over a shared quantized context **plus
    /// per-query private KV extensions** ([`RaggedExt`]: packed codes
    /// encoded against the context's codebooks, sparse outlier residuals,
    /// and an unquantized f32 tail window) — the live-KV serving shape.
    /// The default dequantizes the context, reconstructs each extension
    /// (codes + outliers + tail) and loops the dense reference per query
    /// (correct on any substrate); [`CpuBackend`] overrides it with the
    /// fused tailed kernel that keeps the shared batched LUT score pass.
    ///
    /// [`RaggedExt`]: host_exec::RaggedExt
    ///
    /// # Errors
    ///
    /// Returns an error on shape mismatches, an empty batch, lengths
    /// outside `1..=seq`, or extensions inconsistent with the context's
    /// VQ configuration.
    #[allow(clippy::too_many_arguments)]
    fn run_attention_ragged_tailed(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        qs: &Tensor2D,
        lens: &[usize],
        exts: &[host_exec::RaggedExt<'_>],
        kq: &QuantizedTensor,
        vq: &QuantizedTensor,
    ) -> Result<(Tensor2D, KernelOutput)> {
        if qs.rows() == 0 {
            return Err(crate::KernelError::InvalidInput {
                what: "empty query batch",
            });
        }
        if lens.len() != qs.rows() || exts.len() != qs.rows() {
            return Err(crate::KernelError::ShapeMismatch {
                what: "one prefix length and one extension per query row",
            });
        }
        if kq.shape() != vq.shape() || qs.cols() != kq.shape().1 {
            return Err(crate::KernelError::ShapeMismatch {
                what: "qs/K/V shapes disagree",
            });
        }
        let (seq, head_dim) = kq.shape();
        if lens.iter().any(|&l| l == 0 || l > seq) {
            return Err(crate::KernelError::InvalidInput {
                what: "softmax lengths must be in 1..=seq",
            });
        }
        let kd = kq
            .dequantize()
            .map_err(|_| crate::KernelError::InvalidInput {
                what: "K cache failed to dequantize",
            })?;
        let vd = vq
            .dequantize()
            .map_err(|_| crate::KernelError::InvalidInput {
                what: "V cache failed to dequantize",
            })?;
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut out = Tensor2D::zeros(qs.rows(), head_dim);
        for (b, ext) in exts.iter().enumerate() {
            let len = lens[b];
            let kfull = splice_extension(&kd, len, ext, kq, ExtSide::K)?;
            let vfull = splice_extension(&vd, len, ext, vq, ExtSide::V)?;
            let row = vqllm_tensor::linalg::attention_decode_ref(qs.row(b), &kfull, &vfull, scale)
                .map_err(|_| crate::KernelError::ShapeMismatch {
                    what: "reference attention rejected the spliced extension",
                })?;
            out.row_mut(b).copy_from_slice(&row);
        }
        let profile = AccessProfile::default_for(kq.config());
        let counters = self.estimate(gpu, plan, &profile);
        Ok((out, counters))
    }
}

/// Which half of a [`host_exec::RaggedExt`] to reconstruct.
#[derive(Clone, Copy)]
enum ExtSide {
    K,
    V,
}

/// Dense reconstruction of `len` context rows plus one query's extension
/// (decoded codes + outlier residuals + f32 tail) — the oracle the
/// default [`Backend::run_attention_ragged_tailed`] attends over.
fn splice_extension(
    base: &Tensor2D,
    len: usize,
    ext: &host_exec::RaggedExt<'_>,
    q: &QuantizedTensor,
    side: ExtSide,
) -> Result<Tensor2D> {
    let cfg = q.config();
    if matches!(cfg.scope, vqllm_vq::CodebookScope::PerTile { .. }) {
        return Err(crate::KernelError::InvalidInput {
            what: "per-tile codebook scopes are row-dependent; live-KV extensions \
                   require a row-invariant scope (PerTensor or PerChannelGroup)",
        });
    }
    let (codes, outliers, tail) = match side {
        ExtSide::K => (ext.k_codes, ext.k_outliers, ext.k_tail),
        ExtSide::V => (ext.v_codes, ext.v_outliers, ext.v_tail),
    };
    let head_dim = q.shape().1;
    let vs = cfg.vector_size;
    let groups = q.col_groups();
    if ext.rows > 0
        && (codes.len() != cfg.residuals || codes.iter().any(|s| s.len() != ext.rows * groups))
    {
        return Err(crate::KernelError::ShapeMismatch {
            what: "extension code stream length must be rows × col_groups",
        });
    }
    if tail.iter().any(|r| r.len() != head_dim) {
        return Err(crate::KernelError::ShapeMismatch {
            what: "tail rows must be head_dim wide",
        });
    }
    let books = q.codebooks();
    let mut full = Tensor2D::zeros(len + ext.rows + tail.len(), head_dim);
    for r in 0..len {
        full.row_mut(r).copy_from_slice(base.row(r));
    }
    for row in 0..ext.rows {
        let orow = full.row_mut(len + row);
        for (r, stream) in codes.iter().enumerate() {
            for g in 0..groups {
                let book = books.book(r, books.scope_index(0, g * vs));
                book.accumulate(stream[row * groups + g], &mut orow[g * vs..(g + 1) * vs]);
            }
        }
    }
    for o in outliers {
        if o.row >= ext.rows || o.group >= groups || o.values.len() != vs {
            return Err(crate::KernelError::InvalidInput {
                what: "outlier residual outside the folded extension",
            });
        }
        let orow = full.row_mut(len + o.row);
        for (j, &v) in o.values.iter().enumerate() {
            orow[o.group * vs + j] += v;
        }
    }
    for (t, trow) in tail.iter().enumerate() {
        full.row_mut(len + ext.rows + t).copy_from_slice(trow);
    }
    Ok(full)
}

/// The GPU performance-model backend (the workspace's documented hardware
/// substitution): plans with [`KernelPlanner`], estimates with the
/// roofline timing model, and executes functionally on the host while
/// tallying modelled memory behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfModelBackend;

impl PerfModelBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        PerfModelBackend
    }
}

impl Backend for PerfModelBackend {
    fn name(&self) -> &'static str {
        "perf-model"
    }

    fn plan_at(
        &self,
        gpu: &GpuSpec,
        vq: &VqConfig,
        op: &ComputeOp,
        level: OptLevel,
        profile: &ProfileSummary,
    ) -> Result<KernelPlan> {
        Ok(KernelPlanner::new(gpu.clone()).plan_at(vq, op, level, profile)?)
    }

    fn best_plan(
        &self,
        gpu: &GpuSpec,
        vq: &VqConfig,
        op: &ComputeOp,
        profile: &AccessProfile,
    ) -> Result<(KernelPlan, KernelOutput)> {
        vq_kernel::best_plan(gpu, vq, op, profile)
    }

    fn estimate(&self, gpu: &GpuSpec, plan: &KernelPlan, profile: &AccessProfile) -> KernelOutput {
        vq_kernel::estimate(gpu, plan, profile)
    }

    fn run_gemm(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        a: &Tensor2D,
        wq: &QuantizedTensor,
    ) -> Result<(Tensor2D, KernelOutput)> {
        vq_kernel::run_gemm(gpu, plan, a, wq)
    }

    fn run_gemv(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        x: &[f32],
        wq: &QuantizedTensor,
    ) -> Result<(Vec<f32>, KernelOutput)> {
        vq_kernel::run_gemv(gpu, plan, x, wq)
    }

    fn run_attention_head(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        q: &[f32],
        kq: &QuantizedTensor,
        vq: &QuantizedTensor,
    ) -> Result<(Vec<f32>, KernelOutput)> {
        vq_kernel::run_attention_head(gpu, plan, q, kq, vq)
    }
}

/// Real host execution: plans exactly like [`PerfModelBackend`] (the
/// plan's tiling/placement decisions also seed the host cache blocking),
/// but `run_*` executes the fused [`host_exec`] kernels directly on packed
/// codes — no dequantized weight matrix, codebooks and LUT slabs sized to
/// stay cache-resident, SIMD-tiered inner loops, and optional
/// row/column parallelism on the shared persistent worker pool.
///
/// The [`KernelOutput`] returned alongside real results still carries the
/// *modelled* GPU counters for the plan (so perf-model and CPU runs stay
/// comparable in reports); wall-clock measurement is the bench harness's
/// job (`host_speedup`).
#[derive(Debug, Clone, Copy)]
pub struct CpuBackend {
    threads: usize,
}

impl Default for CpuBackend {
    fn default() -> Self {
        CpuBackend::new()
    }
}

impl CpuBackend {
    /// Single-threaded backend (deterministic, bench-friendly).
    pub fn new() -> Self {
        CpuBackend { threads: 1 }
    }

    /// Backend with an explicit worker-partition count for the parallel
    /// paths (clamped to ≥ 1). Partitions execute on the process-wide
    /// [`host_exec::pool::WorkerPool`], which this constructor warms
    /// (spawns once) so the first kernel call never pays thread spawns.
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        if threads > 1 {
            host_exec::pool::WorkerPool::shared();
        }
        CpuBackend { threads }
    }

    /// Backend sized to the machine's available parallelism.
    pub fn auto() -> Self {
        CpuBackend::with_threads(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Worker threads the row-parallel path uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Host blocking derived from a plan plus this backend's threading.
    fn blocking(&self, plan: &KernelPlan) -> HostBlocking {
        HostBlocking::for_plan(plan).with_threads(self.threads)
    }

    /// Modelled counters for the executed plan under the algorithm's
    /// default access distribution. Deliberately *not* profiled from the
    /// tensor: a per-call `AccessHistogram::profile` would re-decode every
    /// packed index (O(rows × groups)) on the serving hot path, rivalling
    /// the fused kernel itself; real execution is the product here and the
    /// counters are a constant-per-plan report.
    fn output_for(&self, gpu: &GpuSpec, plan: &KernelPlan, q: &QuantizedTensor) -> KernelOutput {
        let profile = AccessProfile::default_for(q.config());
        vq_kernel::estimate(gpu, plan, &profile)
    }
}

impl Backend for CpuBackend {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn plan_at(
        &self,
        gpu: &GpuSpec,
        vq: &VqConfig,
        op: &ComputeOp,
        level: OptLevel,
        profile: &ProfileSummary,
    ) -> Result<KernelPlan> {
        PerfModelBackend.plan_at(gpu, vq, op, level, profile)
    }

    fn best_plan(
        &self,
        gpu: &GpuSpec,
        vq: &VqConfig,
        op: &ComputeOp,
        profile: &AccessProfile,
    ) -> Result<(KernelPlan, KernelOutput)> {
        PerfModelBackend.best_plan(gpu, vq, op, profile)
    }

    fn estimate(&self, gpu: &GpuSpec, plan: &KernelPlan, profile: &AccessProfile) -> KernelOutput {
        PerfModelBackend.estimate(gpu, plan, profile)
    }

    fn run_gemm(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        a: &Tensor2D,
        wq: &QuantizedTensor,
    ) -> Result<(Tensor2D, KernelOutput)> {
        let c = host_exec::gemm_fused(a, wq, &self.blocking(plan))?;
        Ok((c, self.output_for(gpu, plan, wq)))
    }

    fn run_gemv(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        x: &[f32],
        wq: &QuantizedTensor,
    ) -> Result<(Vec<f32>, KernelOutput)> {
        let y = host_exec::gemv_xw(x, wq, &self.blocking(plan))?;
        Ok((y, self.output_for(gpu, plan, wq)))
    }

    fn run_attention_head(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        q: &[f32],
        kq: &QuantizedTensor,
        vq: &QuantizedTensor,
    ) -> Result<(Vec<f32>, KernelOutput)> {
        let out = host_exec::attention_decode_fused(q, kq, vq, &self.blocking(plan))?;
        Ok((out, self.output_for(gpu, plan, kq)))
    }

    fn run_attention_batch(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        qs: &Tensor2D,
        kq: &QuantizedTensor,
        vq: &QuantizedTensor,
    ) -> Result<(Tensor2D, KernelOutput)> {
        if qs.rows() == 0 {
            return Err(crate::KernelError::InvalidInput {
                what: "empty query batch",
            });
        }
        // The real batched kernel: K's packed codes are decoded once for
        // the whole batch (gemv_lut_batch) and the value pass rides the
        // panel-blocked GeMM.
        let out = host_exec::attention_decode_batch(qs, kq, vq, &self.blocking(plan))?;
        Ok((out, self.output_for(gpu, plan, kq)))
    }

    fn run_attention_ragged(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        qs: &Tensor2D,
        lens: &[usize],
        kq: &QuantizedTensor,
        vq: &QuantizedTensor,
    ) -> Result<(Tensor2D, KernelOutput)> {
        if qs.rows() == 0 {
            return Err(crate::KernelError::InvalidInput {
                what: "empty query batch",
            });
        }
        // One shared K-decode for the whole ragged batch; per-query softmax
        // prefixes and an exactly-zero tail in the value pass.
        let out = host_exec::attention_decode_ragged(qs, lens, kq, vq, &self.blocking(plan))?;
        Ok((out, self.output_for(gpu, plan, kq)))
    }

    fn run_attention_ragged_tailed(
        &self,
        gpu: &GpuSpec,
        plan: &KernelPlan,
        qs: &Tensor2D,
        lens: &[usize],
        exts: &[host_exec::RaggedExt<'_>],
        kq: &QuantizedTensor,
        vq: &QuantizedTensor,
    ) -> Result<(Tensor2D, KernelOutput)> {
        if qs.rows() == 0 {
            return Err(crate::KernelError::InvalidInput {
                what: "empty query batch",
            });
        }
        // Shared batched LUT score pass over the context, per-query code
        // expansion + f32 tail splice for the extensions.
        let out = host_exec::attention_decode_ragged_tailed(
            qs,
            lens,
            exts,
            kq,
            vq,
            &self.blocking(plan),
        )?;
        Ok((out, self.output_for(gpu, plan, kq)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqllm_tensor::{linalg, metrics, synth};
    use vqllm_vq::{VqAlgorithm, VqQuantizer};

    fn plan_for(vq: &VqConfig, op: &ComputeOp) -> KernelPlan {
        KernelPlanner::new(GpuSpec::rtx4090())
            .plan_at(vq, op, OptLevel::O4, &ProfileSummary::default_for(vq))
            .unwrap()
    }

    #[test]
    fn cpu_backend_gemv_matches_perf_model_backend() {
        let vq = VqAlgorithm::Gptvq2.config();
        let w = synth::correlated_channels(256, 64, 4, 0.9, 3);
        let wq = VqQuantizer::new(vq).quantize(&w, 1).unwrap();
        let x: Vec<f32> = (0..256).map(|i| (i as f32 * 0.17).cos()).collect();
        let op = ComputeOp::Gemv {
            n: 64,
            k: 256,
            batch: 1,
        };
        let plan = plan_for(&vq, &op);
        let gpu = GpuSpec::rtx4090();
        let (cpu, _) = CpuBackend::auto().run_gemv(&gpu, &plan, &x, &wq).unwrap();
        let (model, _) = PerfModelBackend.run_gemv(&gpu, &plan, &x, &wq).unwrap();
        assert!(metrics::allclose(&cpu, &model, 1e-4, 1e-4));
        let oracle = linalg::gemv(&wq.dequantize().unwrap().transposed(), &x).unwrap();
        assert!(metrics::allclose(&cpu, &oracle, 1e-4, 1e-4));
    }

    #[test]
    fn attention_batch_matches_looped_default() {
        use vqllm_vq::VqAlgorithm;
        let vq_cfg = VqAlgorithm::Cq4.config();
        let k = synth::kv_stream(320, 32, 0.8, 8);
        let v = synth::kv_stream(320, 32, 0.8, 9);
        let kq = VqQuantizer::new(vq_cfg).quantize(&k, 1).unwrap();
        let vq_t = VqQuantizer::new(vq_cfg).quantize(&v, 2).unwrap();
        let op = ComputeOp::attention_decode(1, 32, 320, 4);
        let plan = plan_for(&vq_cfg, &op);
        let gpu = GpuSpec::rtx4090();
        let qs = vqllm_tensor::Tensor2D::from_fn(4, 32, |b, d| ((b * 13 + d) as f32 * 0.23).sin());
        let backend = CpuBackend::with_threads(2);
        // The fused batch override vs the trait's looped default (which
        // PerfModelBackend inherits) vs per-query fused.
        let (fused, out) = backend
            .run_attention_batch(&gpu, &plan, &qs, &kq, &vq_t)
            .unwrap();
        assert!(out.us() > 0.0);
        let (looped, _) = PerfModelBackend
            .run_attention_batch(&gpu, &plan, &qs, &kq, &vq_t)
            .unwrap();
        assert!(metrics::allclose(
            fused.as_slice(),
            looped.as_slice(),
            1e-4,
            1e-4
        ));
        for b in 0..qs.rows() {
            let (single, _) = backend
                .run_attention_head(&gpu, &plan, qs.row(b), &kq, &vq_t)
                .unwrap();
            assert!(
                metrics::allclose(fused.row(b), &single, 1e-4, 1e-4),
                "query {b}"
            );
        }
        // Empty batches are rejected, not silently mis-shaped.
        let empty = vqllm_tensor::Tensor2D::zeros(0, 32);
        assert!(backend
            .run_attention_batch(&gpu, &plan, &empty, &kq, &vq_t)
            .is_err());
        assert!(PerfModelBackend
            .run_attention_batch(&gpu, &plan, &empty, &kq, &vq_t)
            .is_err());
    }

    #[test]
    fn attention_ragged_agrees_across_backends() {
        let vq_cfg = VqAlgorithm::Cq4.config();
        let k = synth::kv_stream(320, 32, 0.8, 30);
        let v = synth::kv_stream(320, 32, 0.8, 31);
        let kq = VqQuantizer::new(vq_cfg).quantize(&k, 1).unwrap();
        let vq_t = VqQuantizer::new(vq_cfg).quantize(&v, 2).unwrap();
        let op = ComputeOp::attention_decode(1, 32, 320, 3);
        let plan = plan_for(&vq_cfg, &op);
        let gpu = GpuSpec::rtx4090();
        let qs = vqllm_tensor::Tensor2D::from_fn(3, 32, |b, d| ((b * 7 + d) as f32 * 0.19).sin());
        let lens = [40usize, 320, 9];
        let backend = CpuBackend::with_threads(2);
        let (fused, out) = backend
            .run_attention_ragged(&gpu, &plan, &qs, &lens, &kq, &vq_t)
            .unwrap();
        assert!(out.us() > 0.0);
        // The trait's dequantize-and-loop default (what PerfModelBackend
        // inherits) is the oracle.
        let (reference, _) = PerfModelBackend
            .run_attention_ragged(&gpu, &plan, &qs, &lens, &kq, &vq_t)
            .unwrap();
        assert!(metrics::allclose(
            fused.as_slice(),
            reference.as_slice(),
            1e-4,
            1e-4
        ));
        // Invalid lengths and empty batches are rejected on both paths.
        let empty = vqllm_tensor::Tensor2D::zeros(0, 32);
        assert!(backend
            .run_attention_ragged(&gpu, &plan, &empty, &[], &kq, &vq_t)
            .is_err());
        assert!(PerfModelBackend
            .run_attention_ragged(&gpu, &plan, &empty, &[], &kq, &vq_t)
            .is_err());
        assert!(backend
            .run_attention_ragged(&gpu, &plan, &qs, &[0, 1, 1], &kq, &vq_t)
            .is_err());
        assert!(PerfModelBackend
            .run_attention_ragged(&gpu, &plan, &qs, &[1, 1, 321], &kq, &vq_t)
            .is_err());
    }

    #[test]
    fn attention_ragged_tailed_agrees_across_backends() {
        use crate::host_exec::{OutlierResidual, RaggedExt};
        let vq_cfg = VqAlgorithm::Cq4.config();
        let k = synth::kv_stream(320, 32, 0.8, 30);
        let v = synth::kv_stream(320, 32, 0.8, 31);
        let kq = VqQuantizer::new(vq_cfg).quantize(&k, 1).unwrap();
        let vq_t = VqQuantizer::new(vq_cfg).quantize(&v, 2).unwrap();
        let op = ComputeOp::attention_decode(1, 32, 320, 3);
        let plan = plan_for(&vq_cfg, &op);
        let gpu = GpuSpec::rtx4090();
        let qs = vqllm_tensor::Tensor2D::from_fn(3, 32, |b, d| ((b * 7 + d) as f32 * 0.19).sin());
        let lens = [40usize, 320, 9];
        // Encode two appended rows against the context's codebooks; keep
        // every group's residual as an outlier so reconstruction is exact.
        let rows: Vec<Vec<f32>> = (0..3)
            .map(|i| {
                (0..32)
                    .map(|j| ((i * 11 + j) as f32 * 0.33).sin())
                    .collect()
            })
            .collect();
        let vs = vq_cfg.vector_size;
        let groups = 32 / vs;
        let encode = |books: &vqllm_vq::CodebookSet,
                      rows: &[Vec<f32>]|
         -> (Vec<Vec<u32>>, Vec<OutlierResidual>) {
            let mut codes = vec![Vec::new(); vq_cfg.residuals];
            let mut outs = Vec::new();
            for (i, row) in rows.iter().enumerate() {
                for g in 0..groups {
                    let mut resid = row[g * vs..(g + 1) * vs].to_vec();
                    let mut entry = vec![0.0f32; vs];
                    for (r, stream) in codes.iter_mut().enumerate() {
                        let book = books.book(r, books.scope_index(0, g * vs));
                        let code = book.encode(&resid);
                        stream.push(code);
                        book.lookup(code, &mut entry);
                        for (rv, &e) in resid.iter_mut().zip(&entry) {
                            *rv -= e;
                        }
                    }
                    outs.push(OutlierResidual {
                        row: i,
                        group: g,
                        values: resid,
                    });
                }
            }
            (codes, outs)
        };
        let (kc, ko) = encode(kq.codebooks(), &rows[..2]);
        let (vc, vo) = encode(vq_t.codebooks(), &rows[..2]);
        let exts = [
            RaggedExt {
                rows: 2,
                k_codes: &kc,
                v_codes: &vc,
                k_outliers: &ko,
                v_outliers: &vo,
                k_tail: &rows[2..],
                v_tail: &rows[2..],
            },
            RaggedExt::default(),
            RaggedExt {
                rows: 0,
                k_codes: &[],
                v_codes: &[],
                k_outliers: &[],
                v_outliers: &[],
                k_tail: &rows[..1],
                v_tail: &rows[..1],
            },
        ];
        let backend = CpuBackend::with_threads(2);
        let (fused, out) = backend
            .run_attention_ragged_tailed(&gpu, &plan, &qs, &lens, &exts, &kq, &vq_t)
            .unwrap();
        assert!(out.us() > 0.0);
        // The trait's dequantize-splice-and-loop default (what
        // PerfModelBackend inherits) is the oracle.
        let (reference, _) = PerfModelBackend
            .run_attention_ragged_tailed(&gpu, &plan, &qs, &lens, &exts, &kq, &vq_t)
            .unwrap();
        assert!(metrics::allclose(
            fused.as_slice(),
            reference.as_slice(),
            1e-4,
            1e-4
        ));
        // With every extension empty both paths reduce to the plain
        // ragged decode.
        let empty = [
            RaggedExt::default(),
            RaggedExt::default(),
            RaggedExt::default(),
        ];
        let (no_ext, _) = backend
            .run_attention_ragged_tailed(&gpu, &plan, &qs, &lens, &empty, &kq, &vq_t)
            .unwrap();
        let (plain, _) = backend
            .run_attention_ragged(&gpu, &plan, &qs, &lens, &kq, &vq_t)
            .unwrap();
        assert_eq!(no_ext, plain, "empty extensions must be bitwise invisible");
        // Mismatched extension counts are rejected on both paths.
        assert!(backend
            .run_attention_ragged_tailed(&gpu, &plan, &qs, &lens, &exts[..2], &kq, &vq_t)
            .is_err());
        assert!(PerfModelBackend
            .run_attention_ragged_tailed(&gpu, &plan, &qs, &lens, &exts[..2], &kq, &vq_t)
            .is_err());
    }

    #[test]
    fn cpu_backend_plans_like_the_model() {
        let vq = VqAlgorithm::Cq2.config();
        let op = ComputeOp::attention_decode(8, 64, 256, 1);
        let gpu = GpuSpec::rtx4090();
        let summary = ProfileSummary::default_for(&vq);
        let a = CpuBackend::new()
            .plan_at(&gpu, &vq, &op, OptLevel::O4, &summary)
            .unwrap();
        let b = PerfModelBackend
            .plan_at(&gpu, &vq, &op, OptLevel::O4, &summary)
            .unwrap();
        assert_eq!(a, b, "planning is backend-independent");
        assert_eq!(CpuBackend::with_threads(0).threads(), 1);
    }
}
