//! Plan-driven fused VQ kernels.
//!
//! [`estimate`] executes a [`KernelPlan`] against the performance-model
//! substrate: it assembles whole-grid [`PerfCounters`] from the plan's
//! placement / dataflow / fusion decisions and the profiled codebook access
//! distribution, then asks the timing model for a latency. [`run_gemm`],
//! [`run_gemv`] and [`run_attention_head`] additionally execute the fused
//! computation *functionally* (dequantizing through the codebook cache) so
//! the output can be checked against dequantize-then-reference-compute.
//!
//! The counter assembly is where every effect from the paper's analysis
//! lives; each term is annotated with the corresponding observation.

use crate::traffic::{l1_hit_rate_with, model_codebook_access, AccessProfile};
use crate::{KernelError, KernelOutput, Result};
use vqllm_core::cache::CodebookCache;
use vqllm_core::engine::{entry_bytes, entry_cache_bytes, kernel_codebook_bytes};
use vqllm_core::{CacheLevel, ComputeOp, FusionLevel, KernelPlan, OptLevel};
use vqllm_gpu::{GpuSpec, PerfCounters, TimingModel, WARP_SIZE};
use vqllm_tensor::{linalg, Tensor2D};
use vqllm_vq::stats::AccessHistogram;
use vqllm_vq::QuantizedTensor;

/// LSU replay cycles per lane for an uncoalesced global codebook lookup
/// (L1 hit or miss both occupy the load-store pipe).
const GLOBAL_LOOKUP_CYCLES_PER_LANE: f64 = 1.5;

/// DRAM fetch granularity for sub-line random misses (the L1 sector size on
/// Ampere/Ada: 32 B, not the full 128 B line).
const L1_SECTOR_BYTES: usize = 32;

/// L2 catch rate for repeated streaming of the same quantized indices
/// (GeMM re-reads its weight indices once per output row-strip).
const L2_REREAD_HIT: f64 = 0.8;

/// Fraction of duplicated codebook staging served by L2 rather than DRAM.
const CODEBOOK_L2_HIT: f64 = 0.5;

/// Issue-pipeline cycles per warp lookup for the dependent
/// decode-index → compute-address → load → accumulate chain (the reason
/// real fused kernels cannot reach ideal bandwidth even when every entry
/// is cached).
const DEQUANT_ISSUE_CYCLES: f64 = 6.0;

/// Estimates the latency and counters of `plan` on `gpu` using `profile`
/// as the codebook access distribution.
pub fn estimate(gpu: &GpuSpec, plan: &KernelPlan, profile: &AccessProfile) -> KernelOutput {
    let counters = assemble_counters(gpu, plan, profile);
    let launch = plan.launch_config();
    let mut latency = TimingModel::new(gpu.clone()).latency(&launch, &counters);
    // The explicit global reduction of the codebook-centric dataflow is a
    // second kernel launch.
    if plan.opt_level >= OptLevel::O3 && plan.dataflow.needs_global_reduce {
        latency.total_us += gpu.launch_overhead_us;
    }
    KernelOutput {
        counters,
        latency,
        launch,
    }
}

/// Plans every rung of the optimization ladder and returns the fastest —
/// the paper's adaptive framework ("best perform version", Fig. 13): each
/// technique is applied only where its heuristics predict a win (e.g. the
/// codebook-centric dataflow is skipped for GeMM's large outputs, §VII-C).
pub fn best_plan(
    gpu: &GpuSpec,
    vq: &vqllm_vq::VqConfig,
    op: &ComputeOp,
    profile: &AccessProfile,
) -> Result<(KernelPlan, KernelOutput)> {
    let planner = vqllm_core::KernelPlanner::new(gpu.clone());
    let summary = vqllm_core::ProfileSummary::default_for(vq);
    let mut best: Option<(KernelPlan, KernelOutput)> = None;
    for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::O4] {
        let Ok(plan) = planner.plan_at(vq, op, level, &summary) else {
            continue;
        };
        let out = estimate(gpu, &plan, profile);
        let better = best.as_ref().is_none_or(|(_, cur)| out.us() < cur.us());
        if better {
            best = Some((plan, out));
        }
    }
    best.ok_or(KernelError::InvalidInput {
        what: "no launchable plan at any optimization level",
    })
}

/// Dequantization lookups the whole kernel performs (sub-vector lookups ×
/// residual rounds, times any re-dequantization passes the dataflow forces).
pub fn total_lookups(plan: &KernelPlan) -> f64 {
    let vq = &plan.vq;
    let base = match plan.op {
        // Each 128-row strip of A re-dequantizes the whole weight tile
        // (the paper: compute-bound kernels "suffer more from the extra
        // operation (dequantization)").
        ComputeOp::Gemm { m, n, k } => (n * k / vq.vector_size) as f64 * m.div_ceil(128) as f64,
        // Weights are dequantized once and reused across the batch — the
        // reason GeMV speedups are batch-insensitive (§VII-B).
        ComputeOp::Gemv { n, k, .. } => (n * k / vq.vector_size) as f64,
        // Every batch element owns distinct KV data.
        ComputeOp::AttentionDecode {
            batch,
            heads,
            head_dim,
            seq,
        } => (2 * batch * heads * seq * head_dim / vq.vector_size) as f64,
    };
    base * vq.residuals as f64
}

fn assemble_counters(gpu: &GpuSpec, plan: &KernelPlan, profile: &AccessProfile) -> PerfCounters {
    let vq = &plan.vq;
    let op = &plan.op;
    let mut c = PerfCounters::default();

    let lookups = total_lookups(plan);
    let warp_lookups = lookups / WARP_SIZE as f64;
    let e_cache = entry_cache_bytes(vq);
    let e_value = entry_bytes(vq);

    // --- Codebook access path (placement-dependent) ---
    let access = model_codebook_access(profile, &plan.placement, e_cache, gpu, 256, 0x5eed);

    // Shared-memory lookups: bank cycles (with conflicts) + traffic, plus
    // the issue serialization of the dequantization dependency chain.
    c.smem_cycles += warp_lookups * (access.smem_cycles_per_warp + DEQUANT_ISSUE_CYCLES);
    c.bank_conflict_cycles += warp_lookups * access.conflict_cycles_per_warp;
    c.shared_to_reg_bytes += lookups * access.frac_shared * e_value as f64;

    // Global lookups (GC, or the cold tail above `n_shared`): sub-line
    // sectors from DRAM on miss, LSU replays either way. Only the *cold
    // slice* of each book competes for L1 once the hot/medium entries are
    // cached elsewhere. Per-tensor books are stable in L1 and enjoy
    // within-tile temporal reuse; CQ/GPTVQ books churn as blocks sweep
    // channels/tiles (the paper's 12.45 % L1 operating point).
    let stable = matches!(vq.scope, vqllm_vq::config::CodebookScope::PerTensor);
    let (thrash, reuse) = if stable { (2.0, 0.4) } else { (6.0, 0.7) };
    let cold_entries = vq.stored_entries().saturating_sub(plan.placement.n_shared);
    let ws = cold_entries * e_cache * plan.books_per_block;
    let hit = l1_hit_rate_with(ws, gpu, thrash);
    let global_lookups = lookups * access.frac_global;
    let sectors_per_entry = e_cache.div_ceil(L1_SECTOR_BYTES).max(1);
    c.dram_read_bytes +=
        global_lookups * (1.0 - hit) * reuse * (sectors_per_entry * L1_SECTOR_BYTES) as f64;
    c.smem_cycles += global_lookups * GLOBAL_LOOKUP_CYCLES_PER_LANE;
    c.gmem_transactions += warp_lookups * access.gmem_lines_per_warp;

    // Codebook staging Global→Shared (the duplicated traffic of Fig. 5).
    // The dataflow plan carries the predicted staging volume for full
    // books — `baseline / split` once O3 re-orients the partitioning —
    // scaled by the fraction of each book the placement actually caches.
    let full_books = (plan.books_per_block * kernel_codebook_bytes(vq)).max(1);
    let staged_frac = (plan.smem_codebook_bytes as f64 / full_books as f64).min(1.0);
    let g2s_codebook = plan.dataflow.codebook_traffic_bytes * staged_frac;
    c.global_to_shared_bytes += g2s_codebook;
    c.dram_read_bytes += g2s_codebook * (1.0 - CODEBOOK_L2_HIT);

    // --- Index stream ---
    let idx_bits = vq.index_bits() as f64 * vq.residuals as f64;
    let idx_bytes = op.quantized_elems() as f64 / vq.vector_size as f64 * idx_bits / 8.0;
    let idx_passes = match plan.op {
        ComputeOp::Gemm { m, .. } => m.div_ceil(128) as f64,
        _ => 1.0,
    };
    c.dram_read_bytes += idx_bytes * (1.0 + (idx_passes - 1.0) * (1.0 - L2_REREAD_HIT));
    // Quantized indices stage through shared memory (cp.async) on their
    // way to the decoders.
    c.global_to_shared_bytes += idx_bytes * idx_passes;

    // Index decode: shift/mask per lookup; AQLM's unaligned 12-bit format
    // pays extra unpack ops (§VII-B), lattice ids pay sign-apply bit ops.
    let mut decode_ops = 3.0;
    if !vq.index_bits().is_multiple_of(8) {
        decode_ops += 6.0;
    }
    if vq.lattice {
        decode_ops += 4.0;
    }
    c.int_ops += lookups * decode_ops;
    // Residual accumulation into the fragment.
    c.flops += lookups * vq.vector_size as f64;

    // --- Fusion (layout hand-off) ---
    // K-cache rows align with dequantization; everything else (V cache, mma
    // fragments, GeMV columns) must be rearranged (Fig. 6).
    let mismatched_frac = match op {
        ComputeOp::AttentionDecode { .. } => 0.5,
        _ => {
            if vq.vector_size > op.required_layout() {
                1.0
            } else {
                0.0
            }
        }
    };
    let mismatched_lookups = lookups * mismatched_frac;
    match plan.fusion {
        FusionLevel::Shared => {
            let bytes = mismatched_lookups * e_value as f64;
            c.reg_to_shared_bytes += bytes;
            c.shared_to_reg_bytes += bytes;
            // Store in dequant layout (strided: ~2-way conflicted) + load in
            // compute layout — the ≈5× cost the shuffle path avoids.
            c.smem_cycles += 3.0 * bytes / gpu.smem_bytes_per_cycle as f64;
        }
        FusionLevel::Register { shuffles } => {
            c.shuffles += mismatched_lookups / WARP_SIZE as f64 * shuffles as f64;
        }
    }

    // --- Computation + non-quantized operands ---
    let redundant = plan.dataflow.redundant_compute_factor;
    match *op {
        ComputeOp::Gemm { m, n, k } => {
            let a_bytes = (m * k * 2) as f64;
            c.dram_read_bytes += a_bytes * 1.15;
            c.dram_write_bytes += (m * n * 2) as f64;
            let a_staged = a_bytes * (n.div_ceil(128)) as f64;
            c.global_to_shared_bytes += a_staged;
            c.shared_to_reg_bytes += a_staged;
            c.smem_cycles += 2.0 * a_staged / gpu.smem_bytes_per_cycle as f64;
            c.tensor_flops += op.flops() * redundant;
        }
        ComputeOp::Gemv { n, k, batch } => {
            c.dram_read_bytes += (k * batch * 2) as f64;
            c.dram_write_bytes += (n * batch * 2) as f64;
            // Batched GeMV (m ≥ 8) runs as a skinny tensor-core GeMM.
            if batch >= 8 {
                c.tensor_flops += op.flops() * redundant;
            } else {
                c.flops += op.flops() * redundant;
            }
            let x_staged = (k * batch * 2) as f64 * plan.grid_blocks() as f64 / gpu.num_sms as f64;
            c.global_to_shared_bytes += x_staged;
            c.smem_cycles += x_staged / gpu.smem_bytes_per_cycle as f64;
        }
        ComputeOp::AttentionDecode {
            batch,
            heads,
            head_dim,
            ..
        } => {
            c.dram_read_bytes += (batch * heads * head_dim * 2) as f64; // Q
            c.dram_write_bytes += (batch * heads * head_dim * 2) as f64;
            c.flops += op.flops() * redundant;
        }
    }

    // --- Partial-result reduction ---
    if plan.opt_level >= OptLevel::O3 && plan.dataflow.needs_global_reduce {
        // Partials written by every split slice, then read back by the
        // reduction pass.
        c.dram_write_bytes += plan.dataflow.reduce_traffic_bytes;
        c.dram_read_bytes += plan.dataflow.reduce_traffic_bytes;
    } else if matches!(op, ComputeOp::AttentionDecode { .. }) {
        // Baseline FlashDecoding already reduces its token-chunk partials.
        let partials = (op.output_elems() * 2 * 2) as f64 * plan.tiling.reduce_chunks as f64;
        c.dram_write_bytes += partials;
        c.dram_read_bytes += partials;
    }

    c
}

/// Builds per-(residual, scope) codebook caches for a quantized tensor
/// under a plan's placement, profiling access frequency from the tensor
/// itself (tensor-level reordering, §V-B).
fn build_caches(plan: &KernelPlan, q: &QuantizedTensor) -> Vec<Vec<CodebookCache>> {
    (0..q.config().residuals)
        .map(|r| {
            let hist = AccessHistogram::profile(q, r);
            (0..q.codebooks().scopes())
                .map(|s| CodebookCache::load(q.codebooks().book(r, s), &hist, plan.placement))
                .collect()
        })
        .collect()
}

/// Dequantizes the whole tensor through the codebook caches, returning the
/// tensor and the fraction of lookups served per level (sanity statistics
/// for tests).
fn dequantize_via_cache(plan: &KernelPlan, q: &QuantizedTensor) -> (Tensor2D, [f64; 3]) {
    let caches = build_caches(plan, q);
    let (rows, cols) = q.shape();
    let vs = q.config().vector_size;
    let groups = q.col_groups();
    let mut t = Tensor2D::zeros(rows, cols);
    let mut entry = vec![0.0f32; vs];
    let mut level_counts = [0u64; 3];
    for row in 0..rows {
        for g in 0..groups {
            let mut acc = vec![0.0f32; vs];
            for (r, cache_row) in caches.iter().enumerate().take(q.config().residuals) {
                let s = q.codebooks().scope_index(row, g * vs);
                let lvl = cache_row[s].access(q.index_at(r, row, g), &mut entry);
                level_counts[match lvl {
                    CacheLevel::Register => 0,
                    CacheLevel::Shared => 1,
                    CacheLevel::Global => 2,
                }] += 1;
                for (a, &e) in acc.iter_mut().zip(&entry) {
                    *a += e;
                }
            }
            t.row_mut(row)[g * vs..(g + 1) * vs].copy_from_slice(&acc);
        }
    }
    let total: u64 = level_counts.iter().sum();
    let fracs = level_counts.map(|c| c as f64 / total.max(1) as f64);
    (t, fracs)
}

/// Functionally executes a fused VQ GeMM: `C = A × dequant(Wq)`, with the
/// dequantization flowing through the plan's codebook cache.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if `a.cols() != wq.rows`.
pub fn run_gemm(
    gpu: &GpuSpec,
    plan: &KernelPlan,
    a: &Tensor2D,
    wq: &QuantizedTensor,
) -> Result<(Tensor2D, KernelOutput)> {
    if a.cols() != wq.shape().0 {
        return Err(KernelError::ShapeMismatch {
            what: "A.cols must equal quantized weight rows",
        });
    }
    let (w, _) = dequantize_via_cache(plan, wq);
    let out = linalg::matmul(a, &w).map_err(|_| KernelError::ShapeMismatch {
        what: "matmul shapes",
    })?;
    let profile = AccessProfile::from_histogram(&AccessHistogram::profile(wq, 0));
    Ok((out, estimate(gpu, plan, &profile)))
}

/// Functionally executes a fused VQ GeMV: `y = xᵀ × dequant(Wq)`.
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] if `x.len() != wq.rows`.
pub fn run_gemv(
    gpu: &GpuSpec,
    plan: &KernelPlan,
    x: &[f32],
    wq: &QuantizedTensor,
) -> Result<(Vec<f32>, KernelOutput)> {
    if x.len() != wq.shape().0 {
        return Err(KernelError::ShapeMismatch {
            what: "x length must equal quantized weight rows",
        });
    }
    let (w, _) = dequantize_via_cache(plan, wq);
    let y = linalg::gemv(&w.transposed(), x).map_err(|_| KernelError::ShapeMismatch {
        what: "gemv shapes",
    })?;
    let profile = AccessProfile::from_histogram(&AccessHistogram::profile(wq, 0));
    Ok((y, estimate(gpu, plan, &profile)))
}

/// Functionally executes one head of fused VQ attention decode with
/// quantized K/V caches (`seq × head_dim` each).
///
/// # Errors
///
/// Returns [`KernelError::ShapeMismatch`] on inconsistent shapes.
pub fn run_attention_head(
    gpu: &GpuSpec,
    plan: &KernelPlan,
    q: &[f32],
    kq: &QuantizedTensor,
    vq: &QuantizedTensor,
) -> Result<(Vec<f32>, KernelOutput)> {
    if kq.shape() != vq.shape() || q.len() != kq.shape().1 {
        return Err(KernelError::ShapeMismatch {
            what: "q/K/V shapes disagree",
        });
    }
    let (k, _) = dequantize_via_cache(plan, kq);
    let (v, _) = dequantize_via_cache(plan, vq);
    let scale = 1.0 / (q.len() as f32).sqrt();
    let out =
        linalg::attention_decode_ref(q, &k, &v, scale).map_err(|_| KernelError::ShapeMismatch {
            what: "attention shapes",
        })?;
    let profile = AccessProfile::from_histogram(&AccessHistogram::profile(kq, 0));
    Ok((out, estimate(gpu, plan, &profile)))
}

/// Cache-level statistics of a functional dequantization (exposed for
/// tests and the figure harnesses).
pub fn cache_level_fractions(plan: &KernelPlan, q: &QuantizedTensor) -> [f64; 3] {
    dequantize_via_cache(plan, q).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqllm_core::{KernelPlanner, ProfileSummary};
    use vqllm_tensor::{metrics, synth};
    use vqllm_vq::config::CodebookScope;
    use vqllm_vq::{VqAlgorithm, VqQuantizer};

    fn gpu() -> GpuSpec {
        GpuSpec::rtx4090()
    }

    fn planner() -> KernelPlanner {
        KernelPlanner::new(gpu())
    }

    fn plan(algo: VqAlgorithm, op: ComputeOp, level: OptLevel) -> KernelPlan {
        let vq = algo.config();
        planner()
            .plan_at(&vq, &op, level, &ProfileSummary::default_for(&vq))
            .unwrap()
    }

    fn attn_op() -> ComputeOp {
        ComputeOp::attention_decode(32, 128, 1024, 1)
    }

    #[test]
    fn fused_gemm_matches_dequantize_then_matmul() {
        let vq = vqllm_vq::VqConfig::new(4, 64, 1, CodebookScope::PerTensor).unwrap();
        let w = synth::correlated_channels(64, 48, 4, 0.9, 3);
        let wq = VqQuantizer::new(vq).quantize(&w, 1).unwrap();
        let a = synth::gaussian(8, 64, 1.0, 5);
        let op = ComputeOp::Gemm { m: 8, n: 48, k: 64 };
        let p = planner()
            .plan_at(&vq, &op, OptLevel::O4, &ProfileSummary::default_for(&vq))
            .unwrap();

        let (fused, out) = run_gemm(&gpu(), &p, &a, &wq).unwrap();
        let reference = linalg::matmul(&a, &wq.dequantize().unwrap()).unwrap();
        assert!(metrics::allclose(
            fused.as_slice(),
            reference.as_slice(),
            1e-4,
            1e-4
        ));
        assert!(out.us().is_finite() && out.us() > 0.0);
    }

    #[test]
    fn fused_attention_matches_reference() {
        let vq = VqAlgorithm::Cq2.config();
        let k = synth::kv_stream(256, 64, 0.8, 7);
        let v = synth::kv_stream(256, 64, 0.8, 8);
        let kq = VqQuantizer::new(vq).quantize(&k, 1).unwrap();
        let vq_t = VqQuantizer::new(vq).quantize(&v, 2).unwrap();
        let q: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        let op = ComputeOp::attention_decode(1, 64, 256, 1);
        let p = plan(VqAlgorithm::Cq2, op, OptLevel::O4);

        let (fused, _) = run_attention_head(&gpu(), &p, &q, &kq, &vq_t).unwrap();
        let kd = kq.dequantize().unwrap();
        let vd = vq_t.dequantize().unwrap();
        let reference = linalg::attention_decode_ref(&q, &kd, &vd, 1.0 / 8.0).unwrap();
        assert!(metrics::allclose(&fused, &reference, 1e-4, 1e-4));
    }

    #[test]
    fn sc_beats_gc_for_attention() {
        // Fig. 4: shared-memory codebooks outperform global-memory ones.
        let profile = AccessProfile::default_for(&VqAlgorithm::Cq2.config());
        let gc = estimate(
            &gpu(),
            &plan(VqAlgorithm::Cq2, attn_op(), OptLevel::Gc),
            &profile,
        );
        let sc = estimate(
            &gpu(),
            &plan(VqAlgorithm::Cq2, attn_op(), OptLevel::Sc),
            &profile,
        );
        assert!(sc.us() < gc.us(), "SC {} !< GC {}", sc.us(), gc.us());
    }

    #[test]
    fn vq_attention_gc_underperforms_fp16() {
        // Fig. 4 (left): both naive VQ versions lose to FP16-attn despite
        // the 8× memory reduction.
        let profile = AccessProfile::default_for(&VqAlgorithm::Cq2.config());
        let gc = estimate(
            &gpu(),
            &plan(VqAlgorithm::Cq2, attn_op(), OptLevel::Gc),
            &profile,
        );
        let fp16 = crate::fp16::attention(
            &gpu(),
            crate::fp16::AttnBaseline::FlashDecoding,
            1,
            32,
            128,
            1024,
        );
        assert!(gc.us() > fp16.us(), "GC {} !> FP16 {}", gc.us(), fp16.us());
    }

    #[test]
    fn optimized_attention_beats_gc_substantially() {
        let profile = AccessProfile::default_for(&VqAlgorithm::Cq2.config());
        let gc = estimate(
            &gpu(),
            &plan(VqAlgorithm::Cq2, attn_op(), OptLevel::Gc),
            &profile,
        );
        let o4 = estimate(
            &gpu(),
            &plan(VqAlgorithm::Cq2, attn_op(), OptLevel::O4),
            &profile,
        );
        let reduction = 1.0 - o4.us() / gc.us();
        assert!(
            reduction > 0.35,
            "O4 should cut latency well past a third: {reduction} (GC {} O4 {})",
            gc.us(),
            o4.us()
        );
    }

    #[test]
    fn o3_cuts_global_to_shared_traffic() {
        // The dataflow's whole point (Fig. 5 → Fig. 11).
        let profile = AccessProfile::default_for(&VqAlgorithm::Cq2.config());
        let o2 = estimate(
            &gpu(),
            &plan(VqAlgorithm::Cq2, attn_op(), OptLevel::O2),
            &profile,
        );
        let o3 = estimate(
            &gpu(),
            &plan(VqAlgorithm::Cq2, attn_op(), OptLevel::O3),
            &profile,
        );
        assert!(
            o3.counters.global_to_shared_bytes < o2.counters.global_to_shared_bytes,
            "O3 {} !< O2 {}",
            o3.counters.global_to_shared_bytes,
            o2.counters.global_to_shared_bytes
        );
    }

    #[test]
    fn o4_replaces_roundtrip_with_shuffles() {
        let profile = AccessProfile::default_for(&VqAlgorithm::Cq2.config());
        let o3 = estimate(
            &gpu(),
            &plan(VqAlgorithm::Cq2, attn_op(), OptLevel::O3),
            &profile,
        );
        let o4 = estimate(
            &gpu(),
            &plan(VqAlgorithm::Cq2, attn_op(), OptLevel::O4),
            &profile,
        );
        assert_eq!(o3.counters.shuffles, 0.0);
        assert!(o4.counters.shuffles > 0.0);
        assert!(o4.counters.reg_to_shared_bytes < o3.counters.reg_to_shared_bytes);
    }

    #[test]
    fn gemv_lookups_are_batch_invariant() {
        let vq = VqAlgorithm::Aqlm3.config();
        let p1 = plan(
            VqAlgorithm::Aqlm3,
            ComputeOp::Gemv {
                n: 4096,
                k: 4096,
                batch: 1,
            },
            OptLevel::O4,
        );
        let p16 = plan(
            VqAlgorithm::Aqlm3,
            ComputeOp::Gemv {
                n: 4096,
                k: 4096,
                batch: 16,
            },
            OptLevel::O4,
        );
        assert_eq!(total_lookups(&p1), total_lookups(&p16));
        let _ = vq;
    }

    #[test]
    fn gemm_redequantizes_per_row_strip() {
        let p_small = plan(
            VqAlgorithm::Gptvq2,
            ComputeOp::Gemm {
                m: 128,
                n: 4096,
                k: 4096,
            },
            OptLevel::O4,
        );
        let p_big = plan(
            VqAlgorithm::Gptvq2,
            ComputeOp::Gemm {
                m: 2048,
                n: 4096,
                k: 4096,
            },
            OptLevel::O4,
        );
        assert_eq!(total_lookups(&p_big), 16.0 * total_lookups(&p_small));
    }

    #[test]
    fn cache_levels_follow_placement() {
        let vq = vqllm_vq::VqConfig::new(4, 64, 1, CodebookScope::PerTensor).unwrap();
        let w = synth::gaussian_with_outliers(64, 64, 1.0, 0.05, 6.0, 11);
        let wq = VqQuantizer::new(vq).quantize(&w, 3).unwrap();
        let op = ComputeOp::Gemm { m: 8, n: 64, k: 64 };

        let p_gc = planner()
            .plan_at(&vq, &op, OptLevel::Gc, &ProfileSummary::default_for(&vq))
            .unwrap();
        let fr_gc = cache_level_fractions(&p_gc, &wq);
        assert_eq!(fr_gc[2], 1.0, "GC serves everything from global");

        let p_o2 = planner()
            .plan_at(&vq, &op, OptLevel::O2, &ProfileSummary { num_hot: 4 })
            .unwrap();
        let fr_o2 = cache_level_fractions(&p_o2, &wq);
        if p_o2.placement.n_reg > 0 {
            assert!(fr_o2[0] > 0.0, "hot entries must be served from registers");
        }
        assert!(fr_o2[2] < 0.7, "most mass should be cached: {fr_o2:?}");
    }
}
