//! FP16 baseline kernels.
//!
//! The comparison anchors of the evaluation: a cutlass-style tensor-core
//! GeMM, a streaming GeMV, and the four attention dataflows of Fig. 18.
//! Each estimator assembles whole-grid [`PerfCounters`] from the kernel's
//! dataflow and asks the timing model for a latency.

use crate::KernelOutput;
use vqllm_gpu::occupancy::BlockResources;
use vqllm_gpu::{GpuSpec, LaunchConfig, PerfCounters, TimingModel};

/// Attention dataflow variants (paper Fig. 18's baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttnBaseline {
    /// FlashDecoding: token-chunk parallelism + global softmax reduction.
    FlashDecoding,
    /// FlashDecoding over paged KV storage (page-table indirection).
    PagedFlashDecoding,
    /// FlashAttention (decode): one block per (batch, head) — no token
    /// split, so small batches under-fill the device.
    FlashAttention,
    /// FlashAttention over paged KV storage.
    PagedFlashAttention,
}

impl AttnBaseline {
    /// All variants in Fig. 18's order.
    pub const ALL: [AttnBaseline; 4] = [
        AttnBaseline::FlashDecoding,
        AttnBaseline::PagedFlashDecoding,
        AttnBaseline::FlashAttention,
        AttnBaseline::PagedFlashAttention,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AttnBaseline::FlashDecoding => "Flash Decoding",
            AttnBaseline::PagedFlashDecoding => "Paged Flash Decoding",
            AttnBaseline::FlashAttention => "Flash Attention",
            AttnBaseline::PagedFlashAttention => "Paged Flash Attention",
        }
    }

    fn paged(self) -> bool {
        matches!(
            self,
            AttnBaseline::PagedFlashDecoding | AttnBaseline::PagedFlashAttention
        )
    }

    fn token_split(self) -> bool {
        matches!(
            self,
            AttnBaseline::FlashDecoding | AttnBaseline::PagedFlashDecoding
        )
    }
}

/// cutlass-style FP16 GeMM: `C[m,n] = A[m,k] × W[k,n]` on tensor cores.
pub fn gemm(gpu: &GpuSpec, m: usize, n: usize, k: usize) -> KernelOutput {
    let (tile_m, tile_n) = (128, 128);
    let grid = m.div_ceil(tile_m) * n.div_ceil(tile_n);
    let block = BlockResources::new(256, 64, 32 * 1024);
    let launch = LaunchConfig::new(grid, block);

    let a_bytes = (m * k * 2) as f64;
    let w_bytes = (k * n * 2) as f64;
    let c_bytes = (m * n * 2) as f64;
    // Staging: every block re-reads its A row-strip and W column-strip.
    let g2s = a_bytes * (n.div_ceil(tile_n) as f64) + w_bytes * (m.div_ceil(tile_m) as f64);
    let counters = PerfCounters {
        // L2 catches most of the tile re-reads; DRAM sees each operand once
        // plus a residency-miss factor.
        dram_read_bytes: (a_bytes + w_bytes) * 1.15,
        dram_write_bytes: c_bytes,
        global_to_shared_bytes: g2s,
        shared_to_reg_bytes: g2s,
        smem_cycles: 2.0 * g2s / gpu.smem_bytes_per_cycle as f64,
        tensor_flops: 2.0 * m as f64 * n as f64 * k as f64,
        ..Default::default()
    };
    let latency = TimingModel::new(gpu.clone()).latency(&launch, &counters);
    KernelOutput {
        counters,
        latency,
        launch,
    }
}

/// Streaming FP16 GeMV: `y[b,n] = W[k,n]ᵀ… ` decode-phase linear layer;
/// weights stream straight to registers, activations stage in shared
/// memory and are reused across the batch.
pub fn gemv(gpu: &GpuSpec, n: usize, k: usize, batch: usize) -> KernelOutput {
    let cols_per_block = 32;
    // Split the contraction so the grid fills the device (cuBLAS-style
    // split-k for decode-phase GeMV).
    let grid = n.div_ceil(cols_per_block) * k.div_ceil(2048).max(1);
    let block = BlockResources::new(256, 48, 2 * 1024);
    let launch = LaunchConfig::new(grid, block);

    let w_bytes = (k * n * 2) as f64;
    let x_bytes = (k * batch * 2) as f64;
    let y_bytes = (n * batch * 2) as f64;
    let x_staged = x_bytes * grid as f64 / gpu.num_sms as f64; // L2-served
    let flops = 2.0 * n as f64 * k as f64 * batch as f64;
    let counters = PerfCounters {
        dram_read_bytes: w_bytes + x_bytes,
        dram_write_bytes: y_bytes,
        global_to_shared_bytes: x_staged,
        shared_to_reg_bytes: x_staged * batch.max(1) as f64,
        smem_cycles: x_staged * (1.0 + batch as f64) / gpu.smem_bytes_per_cycle as f64,
        // Batched GeMV (m ≥ 8) runs as a skinny tensor-core GeMM.
        flops: if batch >= 8 { 0.0 } else { flops },
        tensor_flops: if batch >= 8 { flops } else { 0.0 },
        ..Default::default()
    };
    let latency = TimingModel::new(gpu.clone()).latency(&launch, &counters);
    KernelOutput {
        counters,
        latency,
        launch,
    }
}

/// FP16 attention decode under any of the four baseline dataflows.
pub fn attention(
    gpu: &GpuSpec,
    baseline: AttnBaseline,
    batch: usize,
    heads: usize,
    head_dim: usize,
    seq: usize,
) -> KernelOutput {
    let token_chunk = 128;
    let chunks = if baseline.token_split() {
        seq.div_ceil(token_chunk).max(1)
    } else {
        1
    };
    let grid = batch * heads * chunks;
    let block = BlockResources::new(128, 48, 16 * 1024);
    let launch = LaunchConfig::new(grid, block);

    let kv_bytes = (2 * batch * heads * seq * head_dim * 2) as f64;
    let q_bytes = (batch * heads * head_dim * 2) as f64;
    // Partial outputs + log-sum-exp per chunk, written then re-read by the
    // reduction pass.
    let partial_bytes = (batch * heads * head_dim * 2 * 2) as f64 * chunks as f64;
    // Paged storage adds a page-table walk per chunk of tokens and slightly
    // poorer coalescing at page boundaries.
    let page_overhead = if baseline.paged() { 1.06 } else { 1.0 };
    let page_int_ops = if baseline.paged() {
        (batch * heads * seq) as f64 / 16.0
    } else {
        0.0
    };

    let counters = PerfCounters {
        dram_read_bytes: kv_bytes * page_overhead + q_bytes + partial_bytes,
        dram_write_bytes: partial_bytes + (batch * heads * head_dim * 2) as f64,
        global_to_shared_bytes: kv_bytes,
        shared_to_reg_bytes: kv_bytes,
        smem_cycles: 2.0 * kv_bytes / gpu.smem_bytes_per_cycle as f64,
        flops: (batch * heads) as f64 * (4.0 * seq as f64 * head_dim as f64 + 5.0 * seq as f64),
        int_ops: page_int_ops,
        ..Default::default()
    };
    let latency = TimingModel::new(gpu.clone()).latency(&launch, &counters);
    KernelOutput {
        counters,
        latency,
        launch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuSpec {
        GpuSpec::rtx4090()
    }

    #[test]
    fn gemm_4096_cubed_lands_near_cutlass() {
        // Real cutlass FP16 on a 4090 runs 4096³ in roughly 0.4-0.6 ms.
        let out = gemm(&gpu(), 4096, 4096, 4096);
        assert!(
            out.us() > 250.0 && out.us() < 900.0,
            "latency {} us",
            out.us()
        );
        assert_eq!(out.latency.bound, vqllm_gpu::timing::Bound::Compute);
    }

    #[test]
    fn gemv_is_weight_bandwidth_bound() {
        // Llama-7B 4096×4096 layer: 33.5 MB of weights ≈ 33 µs at peak BW.
        let out = gemv(&gpu(), 4096, 4096, 1);
        assert_eq!(out.latency.bound, vqllm_gpu::timing::Bound::Dram);
        assert!(
            out.us() > 30.0 && out.us() < 120.0,
            "latency {} us",
            out.us()
        );
    }

    #[test]
    fn gemv_batch_barely_changes_latency() {
        let b1 = gemv(&gpu(), 4096, 4096, 1);
        let b16 = gemv(&gpu(), 4096, 4096, 16);
        assert!(b16.us() < b1.us() * 1.5, "{} vs {}", b16.us(), b1.us());
    }

    #[test]
    fn flash_decoding_is_kv_bandwidth_bound() {
        // 32 heads × 1k × 128 × 2 (K+V) × 2 B = 16.8 MB.
        let out = attention(&gpu(), AttnBaseline::FlashDecoding, 1, 32, 128, 1024);
        assert!(
            out.us() > 10.0 && out.us() < 120.0,
            "latency {} us",
            out.us()
        );
    }

    #[test]
    fn flash_attention_underfills_at_small_batch() {
        // Fig. 18: no token split → 32 blocks on 128 SMs at batch 1.
        let fd = attention(&gpu(), AttnBaseline::FlashDecoding, 1, 32, 128, 4096);
        let fa = attention(&gpu(), AttnBaseline::FlashAttention, 1, 32, 128, 4096);
        assert!(fa.us() > 1.5 * fd.us(), "FA {} vs FD {}", fa.us(), fd.us());
        // At batch 8 the gap shrinks.
        let fd8 = attention(&gpu(), AttnBaseline::FlashDecoding, 8, 32, 128, 4096);
        let fa8 = attention(&gpu(), AttnBaseline::FlashAttention, 8, 32, 128, 4096);
        assert!(
            fa8.us() < 1.5 * fd8.us(),
            "FA8 {} vs FD8 {}",
            fa8.us(),
            fd8.us()
        );
    }

    #[test]
    fn paged_variants_cost_slightly_more() {
        let fd = attention(&gpu(), AttnBaseline::FlashDecoding, 8, 32, 128, 4096);
        let pfd = attention(&gpu(), AttnBaseline::PagedFlashDecoding, 8, 32, 128, 4096);
        assert!(pfd.us() > fd.us());
        assert!(pfd.us() < fd.us() * 1.3, "paging is a modest tax");
    }

    #[test]
    fn latency_scales_with_sequence() {
        let s1k = attention(&gpu(), AttnBaseline::FlashDecoding, 8, 32, 128, 1024);
        let s4k = attention(&gpu(), AttnBaseline::FlashDecoding, 8, 32, 128, 4096);
        let ratio = s4k.us() / s1k.us();
        assert!(ratio > 2.5 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn a40_is_slower_than_4090() {
        let fast = attention(
            &GpuSpec::rtx4090(),
            AttnBaseline::FlashDecoding,
            8,
            32,
            128,
            2048,
        );
        let slow = attention(
            &GpuSpec::a40(),
            AttnBaseline::FlashDecoding,
            8,
            32,
            128,
            2048,
        );
        let ratio = slow.us() / fast.us();
        assert!(ratio > 1.2 && ratio < 2.2, "bw ratio should show: {ratio}");
    }
}
