//! Llama-shaped inference substrate for end-to-end evaluation.
//!
//! The paper's E2E experiments (Fig. 17) run Llama-7B with batch 16,
//! sequence 1024, generating 256 tokens, under FP16 / qServe (AWQ-4 +
//! QoQ-4) / VQ-LLM (QuiP#-4 weights + CQ-4 KV, or 2-bit variants). This
//! crate walks the per-token operator list of a Llama decoder and sums the
//! kernel latencies from `vqllm-kernels`, including the RMSNorm / SiLU /
//! RoPE operators the paper reports at ~10 % (FP16) to ~20 % (4-bit) of
//! total latency, plus the on-the-fly KV-quantization overhead it bounds
//! at <1 µs per decode step.
//!
//! Accuracy is evaluated through a documented *proxy* (DESIGN.md §5): the
//! reconstruction error of each quantization scheme on synthetic
//! correlated tensors drives a monotone task-accuracy model calibrated to
//! the paper's arc-challenge numbers.

pub mod accuracy;
pub mod kv;
pub mod model;
pub mod pipeline;

pub use accuracy::AccuracyProxy;
pub use kv::KvCache;
pub use model::LlamaConfig;
pub use pipeline::{DecodeBreakdown, E2eReport, Pipeline, QuantScheme};

/// Error type for pipeline configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlmError {
    /// A configuration value was invalid.
    InvalidConfig {
        /// Description of the problem.
        what: &'static str,
    },
}

impl std::fmt::Display for LlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmError::InvalidConfig { what } => write!(f, "invalid LLM config: {what}"),
        }
    }
}

impl std::error::Error for LlmError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LlmError>;
