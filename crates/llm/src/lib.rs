//! Llama-shaped inference substrate for end-to-end evaluation.
//!
//! The paper's E2E experiments (Fig. 17) run Llama-7B with batch 16,
//! sequence 1024, generating 256 tokens, under FP16 / qServe (AWQ-4 +
//! QoQ-4) / VQ-LLM (QuiP#-4 weights + CQ-4 KV, or 2-bit variants). This
//! crate walks the per-token operator list of a Llama decoder and sums the
//! kernel latencies from `vqllm-kernels`, including the RMSNorm / SiLU /
//! RoPE operators the paper reports at ~10 % (FP16) to ~20 % (4-bit) of
//! total latency, plus the on-the-fly KV-quantization overhead it bounds
//! at <1 µs per decode step.
//!
//! Accuracy is evaluated through a documented *proxy* (DESIGN.md §5): the
//! reconstruction error of each quantization scheme on synthetic
//! correlated tensors drives a monotone task-accuracy model calibrated to
//! the paper's arc-challenge numbers.

pub mod accuracy;
pub mod kv;
pub mod model;
pub mod pipeline;
pub mod serve;

pub use accuracy::AccuracyProxy;
pub use kv::KvCache;
pub use model::LlamaConfig;
pub use pipeline::{DecodeBreakdown, E2eReport, Pipeline, QuantScheme};
pub use serve::{
    ContextHandle, ContextStats, DecodeRequest, FairQueue, KvQuantMode, MultiServer, ProfileConfig,
    RejectReason, RequestHandle, RequestId, RequestOutput, RequestStatus, ServeConfig, Server,
    ServerStats, SharedContext, SloEstimator, StepReport, TenantKv,
};

/// Error type for pipeline configuration and the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum LlmError {
    /// A configuration value was invalid.
    InvalidConfig {
        /// Description of the problem.
        what: &'static str,
    },
    /// KV-cache growth or geometry violated the configured model's limits
    /// (e.g. an `append_token` past the context window).
    KvCapacity {
        /// What was out of range.
        what: &'static str,
        /// The offending value.
        value: usize,
        /// The model's limit for it.
        limit: usize,
    },
    /// A serving request was refused at admission because the queue is at
    /// its configured `max_queue` limit. The request was **not** enqueued.
    QueueFull {
        /// The configured admission limit.
        max_queue: usize,
    },
    /// A serving request was rejected at admission as malformed or
    /// unservable (wrong query width, zero tokens, context overflow).
    InvalidRequest {
        /// Description of the problem.
        what: &'static str,
    },
    /// A request named a [`ContextHandle`](serve::ContextHandle) that this
    /// engine never issued.
    UnknownContext {
        /// The unrecognized handle id.
        id: u64,
    },
    /// The request was cancelled after admission
    /// ([`MultiServer::cancel`](serve::MultiServer::cancel)).
    Cancelled,
    /// SLO-aware admission projected the request cannot meet its deadline
    /// ([`SloEstimator`](serve::SloEstimator)); retry after the computed
    /// backoff, or ask for a longer deadline.
    DeadlineUnmeetable {
        /// Milliseconds after which the same deadline could be met if the
        /// queue ahead has drained (always at least 1).
        retry_after_ms: u64,
    },
    /// The tenant exhausted its token budget for the current rate-limit
    /// window; retry once the window slides past the oldest charge.
    RateLimited {
        /// Milliseconds until enough of the window has slid for the same
        /// request to fit the budget (always at least 1).
        retry_after_ms: u64,
    },
    /// The server is draining for shutdown: in-flight requests finish,
    /// but no new work is admitted. Retry against another replica, or
    /// after the suggested backoff if the drain is a rolling restart.
    Draining {
        /// Estimated milliseconds until the drain completes.
        retry_after_ms: u64,
    },
    /// The request was quarantined by the fault-containment layer (a
    /// contained kernel panic, a forced mid-decode failure, or a watchdog
    /// shed); its partial state is gone and it must be resubmitted.
    Internal {
        /// What faulted.
        what: &'static str,
    },
    /// The driver thread died and was rebuilt by the supervisor; requests
    /// alive across the restart resolve with this error and can be
    /// retried after the backoff.
    DriverRestarted {
        /// Computed backoff until the restarted driver is warm (always at
        /// least 1).
        retry_after_ms: u64,
    },
    /// A kernel failed underneath the serving decode loop.
    Kernel(vqllm_kernels::KernelError),
}

impl std::fmt::Display for LlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmError::InvalidConfig { what } => write!(f, "invalid LLM config: {what}"),
            LlmError::KvCapacity { what, value, limit } => {
                write!(f, "kv capacity: {what} ({value} > limit {limit})")
            }
            LlmError::QueueFull { max_queue } => {
                write!(f, "serving queue full (max_queue = {max_queue})")
            }
            LlmError::InvalidRequest { what } => write!(f, "invalid request: {what}"),
            LlmError::UnknownContext { id } => {
                write!(f, "unknown context handle {id} (not issued by this engine)")
            }
            LlmError::Cancelled => write!(f, "request cancelled"),
            LlmError::DeadlineUnmeetable { retry_after_ms } => {
                write!(
                    f,
                    "deadline unmeetable under current load (retry after {retry_after_ms} ms)"
                )
            }
            LlmError::RateLimited { retry_after_ms } => {
                write!(
                    f,
                    "tenant rate limit exhausted (retry after {retry_after_ms} ms)"
                )
            }
            LlmError::Draining { retry_after_ms } => {
                write!(
                    f,
                    "server draining, not admitting (retry after {retry_after_ms} ms)"
                )
            }
            LlmError::Internal { what } => {
                write!(f, "internal fault, request quarantined: {what}")
            }
            LlmError::DriverRestarted { retry_after_ms } => {
                write!(
                    f,
                    "driver restarted, request dropped (retry after {retry_after_ms} ms)"
                )
            }
            LlmError::Kernel(e) => write!(f, "kernel: {e}"),
        }
    }
}

impl std::error::Error for LlmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LlmError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vqllm_kernels::KernelError> for LlmError {
    fn from(e: vqllm_kernels::KernelError) -> Self {
        LlmError::Kernel(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LlmError>;
