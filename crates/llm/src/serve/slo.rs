//! Deadline/SLO-aware admission math: the retry-after estimate behind the
//! network front end's typed rejections.
//!
//! The serving queue rejects with a *computed* `retry_after_ms` instead of
//! a bare refusal: callers (and load balancers) can tell "come back in
//! 40 ms" apart from "this request can never meet its deadline here". The
//! estimator is deliberately first-order — it projects from the measured
//! per-step latency and the decode-slot width, the two quantities the
//! scheduler actually controls:
//!
//! * a request entering behind `tokens_ahead` tokens of queued + in-flight
//!   work waits roughly `tokens_ahead / max_batch` steps for its slot
//!   (every non-idle step retires one token per occupied slot);
//! * once running, it needs exactly `gen_tokens` steps of its own.
//!
//! Both phases are priced at the measured step latency, so the estimate
//! tightens as the metrics warm up. All math is pure and deterministic —
//! the caller supplies the clock-derived inputs — which keeps the
//! admission decision unit-testable.

/// First-order completion-time model over the serving scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloEstimator {
    /// Measured (or prior) wall time of one decode step, microseconds.
    pub step_latency_us: f64,
    /// Decode slots per step (`ServeConfig::max_batch`).
    pub max_batch: usize,
}

impl SloEstimator {
    /// An estimator; `max_batch` is clamped to at least 1.
    pub fn new(step_latency_us: f64, max_batch: usize) -> SloEstimator {
        SloEstimator {
            step_latency_us: step_latency_us.max(0.0),
            max_batch: max_batch.max(1),
        }
    }

    /// Estimated milliseconds until `tokens_ahead` tokens of queued +
    /// in-flight work stop blocking a new arrival's slot.
    pub fn queue_drain_ms(&self, tokens_ahead: u64) -> f64 {
        let steps = tokens_ahead.div_ceil(self.max_batch as u64);
        steps as f64 * self.step_latency_us / 1000.0
    }

    /// Estimated milliseconds from admission to last decoded token for a
    /// request of `gen_tokens` entering behind `tokens_ahead` tokens.
    pub fn completion_ms(&self, tokens_ahead: u64, gen_tokens: usize) -> f64 {
        self.queue_drain_ms(tokens_ahead) + gen_tokens as f64 * self.step_latency_us / 1000.0
    }

    /// Deadline admission: `Ok` when the projected completion fits inside
    /// `deadline_ms`, otherwise `Err(retry_after_ms)` — the (at least
    /// 1 ms) backoff after which the same deadline *could* be met if the
    /// queue ahead has drained. A deadline shorter than the request's own
    /// service time is unmeetable at any load; the retry-after then simply
    /// reports how far off it is, so the caller can tell "retry later"
    /// from "ask for less".
    pub fn admit(&self, tokens_ahead: u64, gen_tokens: usize, deadline_ms: u64) -> Result<(), u64> {
        let projected = self.completion_ms(tokens_ahead, gen_tokens);
        if projected <= deadline_ms as f64 {
            Ok(())
        } else {
            Err(((projected - deadline_ms as f64).ceil() as u64).max(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_prices_service_time_only() {
        let est = SloEstimator::new(1000.0, 8);
        assert_eq!(est.queue_drain_ms(0), 0.0);
        let ms = est.completion_ms(0, 16);
        assert!((ms - 16.0).abs() < 1e-9, "16 steps x 1ms = 16ms, got {ms}");
    }

    #[test]
    fn queue_ahead_drains_at_batch_width() {
        let est = SloEstimator::new(500.0, 4);
        // 10 tokens ahead at 4/step = 3 steps = 1.5 ms.
        assert!((est.queue_drain_ms(10) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn impossible_deadline_rejects_with_positive_retry_after() {
        let est = SloEstimator::new(200.0, 8);
        // Even with an empty queue, 8 tokens cost 1.6 ms > 0 ms deadline.
        let retry = est.admit(0, 8, 0).unwrap_err();
        assert!(retry >= 1, "retry_after_ms must be positive, got {retry}");
        // A generous deadline admits.
        assert!(est.admit(0, 8, 1000).is_ok());
    }

    #[test]
    fn retry_after_tracks_the_queue_backlog() {
        let est = SloEstimator::new(1000.0, 1);
        // 50 queued tokens at 1 ms each + 5 service = 55 ms vs 10 ms
        // deadline -> 45 ms short.
        let retry = est.admit(50, 5, 10).unwrap_err();
        assert_eq!(retry, 45);
    }

    #[test]
    fn zero_latency_prior_admits_everything() {
        let est = SloEstimator::new(0.0, 8);
        assert!(est.admit(u64::MAX / 2, 1_000_000, 0).is_ok());
    }
}
