//! The single-context request scheduler: a thin compatibility facade over
//! the multi-context [`MultiServer`].
//!
//! [`Server`] is what `Session::serve` hands out — one shared
//! [`SharedContext`], bounded-queue admission, continuous batch
//! re-formation. Since the engine redesign all of that machinery lives in
//! [`MultiServer`] (requests tagged with a [`ContextHandle`], per-context
//! batch groups); a `Server` is a `MultiServer` with exactly one
//! registered context and profile feedback disabled, so its behaviour —
//! plan-cache keys included — is unchanged from the pre-engine scheduler.
//!
//! [`MultiServer`]: crate::serve::MultiServer
//! [`ContextHandle`]: crate::serve::ContextHandle

use crate::pipeline::Pipeline;
use crate::serve::multi::{ContextHandle, MultiServer, ProfileConfig};
use crate::serve::request::{DecodeRequest, RequestHandle, RequestOutput, RequestStatus};
use crate::serve::{ServeConfig, SharedContext};
use crate::Result;
use std::sync::Arc;
use vqllm_core::KernelPlan;

pub use crate::serve::multi::{ServerStats, StepReport};

/// A batched request scheduler over one [`Pipeline`] and one
/// [`SharedContext`].
///
/// Construction plans two **canonical, batch-independent** kernel plans
/// through the pipeline's shared plan cache — one attention-decode shape
/// and one linear shape — and every step reuses them at whatever batch is
/// live. The host kernels read only cache-blocking hints from a plan, and
/// a fixed plan means a fixed f32 summation order: decode output is
/// bitwise identical whether a request runs alone or co-scheduled
/// (`tests/serving.rs` pins this).
///
/// Drive it with [`Server::step`] (one batched decode step, deterministic)
/// or [`Server::run_until_drained`].
#[derive(Debug)]
pub struct Server {
    inner: MultiServer,
    handle: ContextHandle,
}

impl Server {
    /// Builds a server: validates the config and plans the canonical
    /// decode shapes once through the shared warm-up helper (both plans
    /// are memoized in the pipeline's shared `PlanCache`, so sibling
    /// servers — and the `Session`/`Engine` facades — reuse them: a
    /// second construction over the same context is a pure cache hit).
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] on a degenerate config or when
    /// no launchable plan exists for the serving shapes.
    ///
    /// [`LlmError::InvalidConfig`]: crate::LlmError::InvalidConfig
    pub fn new(pipeline: Pipeline, ctx: SharedContext, config: ServeConfig) -> Result<Server> {
        // Profile feedback stays disabled on the compatibility facade:
        // plans come from the algorithm's synthetic default profiles,
        // exactly as before the engine redesign.
        let mut inner = MultiServer::new(pipeline, config, ProfileConfig::disabled())?;
        let handle = inner.register_context(ctx)?;
        Ok(Server { inner, handle })
    }

    // --- accessors ---

    /// The admission/batching limits.
    pub fn config(&self) -> ServeConfig {
        self.inner.config()
    }

    /// The handle of this server's single registered context (valid for
    /// the underlying [`MultiServer`] API).
    pub fn context_handle(&self) -> ContextHandle {
        self.handle
    }

    /// The shared quantized context.
    pub fn context(&self) -> &SharedContext {
        self.inner
            .context(self.handle)
            .expect("server always has its context registered")
    }

    /// The canonical attention plan every step executes (the parity
    /// harness runs its batch-of-one references through the same plan).
    pub fn attention_plan(&self) -> &Arc<KernelPlan> {
        self.inner
            .attention_plan(self.handle)
            .expect("server always has its context registered")
    }

    /// The canonical linear plan every step executes.
    pub fn linear_plan(&self) -> &Arc<KernelPlan> {
        self.inner
            .linear_plan(self.handle)
            .expect("server always has its context registered")
    }

    /// Requests waiting for a slot.
    pub fn queued(&self) -> usize {
        self.inner.queued()
    }

    /// Requests currently holding a decode slot.
    pub fn running(&self) -> usize {
        self.inner.running()
    }

    /// Whether no request is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.inner.is_idle()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ServerStats {
        self.inner.stats()
    }

    /// Where a submitted request currently is.
    pub fn status(&self, handle: &RequestHandle) -> RequestStatus {
        self.inner.poll(handle)
    }

    /// The output of a finished request, if ready.
    pub fn output(&self, handle: &RequestHandle) -> Option<&RequestOutput> {
        self.inner.output(handle)
    }

    /// Removes and returns the output of a finished request.
    pub fn take_output(&mut self, handle: &RequestHandle) -> Option<RequestOutput> {
        self.inner.take_output(handle)
    }

    /// The rows a live request has decoded so far (see
    /// [`MultiServer::partial_output`]).
    pub fn partial_output(&self, handle: &RequestHandle) -> Option<&[Vec<f32>]> {
        self.inner.partial_output(handle)
    }

    /// Cancels a live request, freeing its slot or queue entry (see
    /// [`MultiServer::cancel`]).
    pub fn cancel(&mut self, handle: &RequestHandle) -> bool {
        self.inner.cancel(handle)
    }

    // --- admission ---

    /// Admits a request into the bounded queue.
    ///
    /// Admission validates everything growth-related up front, so a
    /// request that enters the queue is guaranteed to complete: the query
    /// width must match the context, and the final attended length must
    /// fit both the shared context and the model's window.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidRequest`] or [`LlmError::KvCapacity`]
    /// for malformed/unservable requests and [`LlmError::QueueFull`] when
    /// the queue is at [`ServeConfig::max_queue`]. Every error counts as
    /// an explicit rejection in [`ServerStats::rejected`]; nothing is
    /// dropped silently.
    ///
    /// [`LlmError::InvalidRequest`]: crate::LlmError::InvalidRequest
    /// [`LlmError::KvCapacity`]: crate::LlmError::KvCapacity
    /// [`LlmError::QueueFull`]: crate::LlmError::QueueFull
    pub fn submit(&mut self, req: DecodeRequest) -> Result<RequestHandle> {
        self.inner.try_submit(self.handle, req)
    }

    // --- the decode loop ---

    /// One scheduler step: re-form the batch (finished requests already
    /// left their slots; queued requests take free ones), then run one
    /// batched ragged-attention decode and one batched linear projection
    /// for every live request.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::Kernel`] if a kernel rejects its inputs (the
    /// admission invariants make this unreachable under normal use).
    ///
    /// [`LlmError::Kernel`]: crate::LlmError::Kernel
    pub fn step(&mut self) -> Result<StepReport> {
        self.inner.step()
    }

    /// Steps until every submitted request has completed, returning the
    /// per-step reports.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Server::step`] error.
    pub fn run_until_drained(&mut self) -> Result<Vec<StepReport>> {
        self.inner.run_until_drained()
    }
}
