//! The batched request scheduler: admission, continuous batch formation,
//! and the synchronous decode-step driver.

use crate::kv::KvCache;
use crate::pipeline::{Pipeline, QuantScheme};
use crate::serve::request::{
    DecodeRequest, RequestHandle, RequestId, RequestOutput, RequestStatus,
};
use crate::serve::{ServeConfig, SharedContext};
use crate::{LlmError, Result};
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use vqllm_core::{ComputeOp, KernelPlan, OptLevel};
use vqllm_kernels::AccessProfile;
use vqllm_tensor::Tensor2D;

/// One request's live scheduler state.
#[derive(Debug)]
struct Active {
    id: RequestId,
    tenant: u64,
    /// Current query/hidden state (`head_dim` wide); rewritten each step
    /// from the projected decode output, so the stream is data-dependent.
    h: Vec<f32>,
    /// Per-tenant cache descriptor: `seq` is the prefix of the shared
    /// context this tenant attends, and growth is validated against the
    /// model's window.
    kv: KvCache,
    remaining: usize,
    steps: Vec<Vec<f32>>,
    kv_quant_us: f64,
    submitted_step: u64,
}

/// What one [`Server::step`] did.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StepReport {
    /// Scheduler step index (monotonic, counts non-idle steps and idle
    /// polls alike).
    pub step: u64,
    /// Requests decoded this step (0 = the server was idle).
    pub batch: usize,
    /// Requests admitted from the queue into the batch this step.
    pub admitted: Vec<RequestId>,
    /// Requests that decoded their last token this step.
    pub finished: Vec<RequestId>,
    /// Requests still waiting after this step.
    pub queued: usize,
    /// KV-quantization overhead charged across the batch this step,
    /// microseconds.
    pub kv_quant_us: f64,
}

/// Cumulative scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ServerStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests refused at admission (queue full or invalid).
    pub rejected: u64,
    /// Requests fully decoded.
    pub completed: u64,
    /// Decode steps executed (non-idle).
    pub steps: u64,
    /// Tokens decoded across all requests.
    pub decoded_tokens: u64,
}

impl ServerStats {
    /// Mean decode-batch occupancy across non-idle steps.
    pub fn mean_batch(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.decoded_tokens as f64 / self.steps as f64
        }
    }
}

/// A batched request scheduler over one [`Pipeline`] and one
/// [`SharedContext`].
///
/// Construction plans two **canonical, batch-independent** kernel plans
/// through the pipeline's shared plan cache — one attention-decode shape
/// and one linear shape — and every step reuses them at whatever batch is
/// live. The host kernels read only cache-blocking hints from a plan, and
/// a fixed plan means a fixed f32 summation order: decode output is
/// bitwise identical whether a request runs alone or co-scheduled
/// (`tests/serving.rs` pins this).
///
/// Drive it with [`Server::step`] (one batched decode step, deterministic)
/// or [`Server::run_until_drained`].
#[derive(Debug)]
pub struct Server {
    pipeline: Pipeline,
    ctx: SharedContext,
    config: ServeConfig,
    attn_plan: Arc<KernelPlan>,
    linear_plan: Arc<KernelPlan>,
    queue: VecDeque<Active>,
    running: Vec<Active>,
    finished: HashMap<RequestId, RequestOutput>,
    next_id: RequestId,
    step: u64,
    stats: ServerStats,
}

impl Server {
    /// Builds a server: validates the config and plans the canonical
    /// decode shapes once (both plans are memoized in the pipeline's
    /// shared `PlanCache`, so sibling servers — and the `Session` facade —
    /// reuse them).
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] on a degenerate config or when
    /// no launchable plan exists for the serving shapes.
    pub fn new(pipeline: Pipeline, ctx: SharedContext, config: ServeConfig) -> Result<Server> {
        config.validate()?;
        let (seq, head_dim) = (ctx.seq(), ctx.head_dim());
        let opt = match pipeline.scheme() {
            QuantScheme::VqLlm { opt, .. } => *opt,
            _ => OptLevel::O4,
        };
        // Canonical batch-independent plan keys: the host kernels only
        // read blocking hints, and keying on batch=1 keeps the summation
        // order — and the plan-cache entry — identical at every live
        // batch size.
        let kv_cfg = *ctx.kq().config();
        let attn_op = ComputeOp::attention_decode(1, head_dim, seq, 1);
        let attn_plan = pipeline
            .vq_plan(&kv_cfg, &attn_op, opt, &AccessProfile::default_for(&kv_cfg))
            .ok_or(LlmError::InvalidConfig {
                what: "no launchable plan for the serving attention shape",
            })?;
        let w_cfg = *ctx.wq().config();
        let linear_op = ComputeOp::Gemv {
            n: head_dim,
            k: head_dim,
            batch: 1,
        };
        let linear_plan = pipeline
            .vq_plan(&w_cfg, &linear_op, opt, &AccessProfile::default_for(&w_cfg))
            .ok_or(LlmError::InvalidConfig {
                what: "no launchable plan for the serving linear shape",
            })?;
        Ok(Server {
            pipeline,
            ctx,
            config,
            attn_plan,
            linear_plan,
            queue: VecDeque::new(),
            running: Vec::new(),
            finished: HashMap::new(),
            next_id: 1,
            step: 0,
            stats: ServerStats::default(),
        })
    }

    // --- accessors ---

    /// The admission/batching limits.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// The shared quantized context.
    pub fn context(&self) -> &SharedContext {
        &self.ctx
    }

    /// The canonical attention plan every step executes (the parity
    /// harness runs its batch-of-one references through the same plan).
    pub fn attention_plan(&self) -> &Arc<KernelPlan> {
        &self.attn_plan
    }

    /// The canonical linear plan every step executes.
    pub fn linear_plan(&self) -> &Arc<KernelPlan> {
        &self.linear_plan
    }

    /// Requests waiting for a slot.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently holding a decode slot.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// Whether no request is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.running.is_empty()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Where a submitted request currently is.
    pub fn status(&self, handle: &RequestHandle) -> RequestStatus {
        if self.running.iter().any(|r| r.id == handle.id) {
            RequestStatus::Running
        } else if self.queue.iter().any(|r| r.id == handle.id) {
            RequestStatus::Queued
        } else if self.finished.contains_key(&handle.id) {
            RequestStatus::Completed
        } else {
            RequestStatus::Unknown
        }
    }

    /// The output of a completed request, if ready.
    pub fn output(&self, handle: &RequestHandle) -> Option<&RequestOutput> {
        self.finished.get(&handle.id)
    }

    /// Removes and returns the output of a completed request.
    pub fn take_output(&mut self, handle: &RequestHandle) -> Option<RequestOutput> {
        self.finished.remove(&handle.id)
    }

    // --- admission ---

    /// Admits a request into the bounded queue.
    ///
    /// Admission validates everything growth-related up front, so a
    /// request that enters the queue is guaranteed to complete: the query
    /// width must match the context, and the final attended length must
    /// fit both the shared context and the model's window.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidRequest`] or [`LlmError::KvCapacity`]
    /// for malformed/unservable requests and [`LlmError::QueueFull`] when
    /// the queue is at [`ServeConfig::max_queue`]. Every error counts as
    /// an explicit rejection in [`ServerStats::rejected`]; nothing is
    /// dropped silently.
    pub fn submit(&mut self, req: DecodeRequest) -> Result<RequestHandle> {
        match self.admit(req) {
            Ok(handle) => {
                self.stats.submitted += 1;
                Ok(handle)
            }
            Err(e) => {
                self.stats.rejected += 1;
                Err(e)
            }
        }
    }

    fn admit(&mut self, req: DecodeRequest) -> Result<RequestHandle> {
        if req.query.len() != self.ctx.head_dim() {
            return Err(LlmError::InvalidRequest {
                what: "query width must equal the context's head_dim",
            });
        }
        if req.gen_tokens == 0 {
            return Err(LlmError::InvalidRequest {
                what: "gen_tokens must be at least 1",
            });
        }
        if req.context_len == 0 {
            return Err(LlmError::InvalidRequest {
                what: "context_len must be at least 1",
            });
        }
        // Checked: an absurd gen_tokens must reject, not wrap past the
        // admission bounds (gen_tokens >= 1 was verified above).
        let final_len = match req.context_len.checked_add(req.gen_tokens - 1) {
            Some(len) if len <= self.ctx.seq() => len,
            _ => {
                return Err(LlmError::InvalidRequest {
                    what: "request would decode past the shared context",
                });
            }
        };
        // Per-tenant cache descriptor; `try_new` + the final-length check
        // make every later `append_token` infallible by construction.
        let model = self.pipeline.model();
        if final_len > model.max_seq {
            return Err(LlmError::KvCapacity {
                what: "request would decode past the model's context window",
                value: final_len,
                limit: model.max_seq,
            });
        }
        let kv = KvCache::try_new(
            model,
            req.context_len,
            1,
            self.pipeline.scheme().kv_storage(),
        )?;
        if self.queue.len() >= self.config.max_queue {
            return Err(LlmError::QueueFull {
                max_queue: self.config.max_queue,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(Active {
            id,
            tenant: req.tenant,
            h: req.query,
            kv,
            remaining: req.gen_tokens,
            steps: Vec::with_capacity(req.gen_tokens),
            kv_quant_us: 0.0,
            submitted_step: self.step,
        });
        Ok(RequestHandle { id })
    }

    // --- the decode loop ---

    /// One scheduler step: re-form the batch (finished requests already
    /// left their slots; queued requests take free ones), then run one
    /// batched ragged-attention decode and one batched linear projection
    /// for every live request.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::Kernel`] if a kernel rejects its inputs (the
    /// admission invariants make this unreachable under normal use).
    pub fn step(&mut self) -> Result<StepReport> {
        let step = self.step;
        self.step += 1;

        // Batch formation: fill free slots FIFO from the queue.
        let mut admitted = Vec::new();
        while self.running.len() < self.config.max_batch {
            let Some(r) = self.queue.pop_front() else {
                break;
            };
            admitted.push(r.id);
            self.running.push(r);
        }
        let batch = self.running.len();
        if batch == 0 {
            return Ok(StepReport {
                step,
                batch: 0,
                admitted,
                finished: Vec::new(),
                queued: self.queue.len(),
                kv_quant_us: 0.0,
            });
        }

        // One shared K-decode for the whole batch, ragged over each
        // tenant's attended prefix, then one panel-blocked GeMM through
        // the projection weight.
        let head_dim = self.ctx.head_dim();
        let qs = Tensor2D::from_fn(batch, head_dim, |i, d| self.running[i].h[d]);
        let lens: Vec<usize> = self.running.iter().map(|r| r.kv.seq).collect();
        let backend = self.pipeline.backend();
        let gpu = self.pipeline.gpu();
        let (attn, _) = backend.run_attention_ragged(
            gpu,
            &self.attn_plan,
            &qs,
            &lens,
            self.ctx.kq(),
            self.ctx.vq(),
        )?;
        let (ys, _) = backend.run_gemm(gpu, &self.linear_plan, &attn, self.ctx.wq())?;

        // Per-request bookkeeping: record the step, advance the hidden
        // state, grow the tenant's cache (validated), retire finished
        // requests.
        let mut kv_quant_us = 0.0;
        for (i, r) in self.running.iter_mut().enumerate() {
            r.steps.push(ys.row(i).to_vec());
            r.h.copy_from_slice(ys.row(i));
            r.remaining -= 1;
            if r.remaining > 0 {
                let us = r.kv.append_token()?;
                r.kv_quant_us += us;
                kv_quant_us += us;
            }
        }
        self.stats.steps += 1;
        self.stats.decoded_tokens += batch as u64;

        let mut finished = Vec::new();
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].remaining == 0 {
                let r = self.running.remove(i);
                finished.push(r.id);
                self.stats.completed += 1;
                self.finished.insert(
                    r.id,
                    RequestOutput {
                        id: r.id,
                        tenant: r.tenant,
                        steps: r.steps,
                        kv_quant_us: r.kv_quant_us,
                        submitted_step: r.submitted_step,
                        finished_step: step,
                    },
                );
            } else {
                i += 1;
            }
        }

        Ok(StepReport {
            step,
            batch,
            admitted,
            finished,
            queued: self.queue.len(),
            kv_quant_us,
        })
    }

    /// Steps until every submitted request has completed, returning the
    /// per-step reports. Terminates because each non-idle step decodes one
    /// token of every live request and admission bounds total work.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Server::step`] error.
    pub fn run_until_drained(&mut self) -> Result<Vec<StepReport>> {
        let mut reports = Vec::new();
        while !self.is_idle() {
            let report = self.step()?;
            if report.batch == 0 && !self.is_idle() {
                // max_batch >= 1 makes this unreachable; guard against a
                // scheduling bug turning into an infinite loop.
                return Err(LlmError::InvalidConfig {
                    what: "scheduler made no progress with work pending",
                });
            }
            reports.push(report);
        }
        Ok(reports)
    }
}
