//! Request vocabulary of the serving layer: what a tenant submits, the
//! handle it gets back, and the output it can collect.

/// Server-assigned request identifier (unique per [`Server`] instance).
///
/// [`Server`]: crate::serve::Server
pub type RequestId = u64;

/// Opaque handle returned by [`Server::submit`]; pass it back to query
/// [`Server::status`] or collect [`Server::take_output`].
///
/// [`Server::submit`]: crate::serve::Server::submit
/// [`Server::status`]: crate::serve::Server::status
/// [`Server::take_output`]: crate::serve::Server::take_output
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestHandle {
    pub(crate) id: RequestId,
}

impl RequestHandle {
    /// The server-assigned id.
    pub fn id(&self) -> RequestId {
        self.id
    }
}

/// One tenant's decode request against the server's [`SharedContext`].
///
/// The request enters the shared context at `context_len` cached tokens
/// and asks for `gen_tokens` decode steps; each step attends one more
/// token of the context (teacher-forced decode over the pre-quantized
/// cache), so admission requires `context_len + gen_tokens - 1` to fit
/// both the shared context and the model's window.
///
/// [`SharedContext`]: crate::serve::SharedContext
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeRequest {
    /// Caller-supplied tenant tag (reported back in the output).
    pub tenant: u64,
    /// Initial query/hidden state, `head_dim` wide.
    pub query: Vec<f32>,
    /// Tokens of the shared context attended at the first step (≥ 1).
    pub context_len: usize,
    /// Decode steps requested (≥ 1).
    pub gen_tokens: usize,
}

impl DecodeRequest {
    /// Builds a request.
    pub fn new(tenant: u64, query: Vec<f32>, context_len: usize, gen_tokens: usize) -> Self {
        DecodeRequest {
            tenant,
            query,
            context_len,
            gen_tokens,
        }
    }
}

/// Why a request was refused at admission. Every rejection is explicit
/// and typed — [`MultiServer::submit`] hands back a handle whose
/// [`RequestStatus::Rejected`] carries the reason, and
/// [`Server::submit`] surfaces the same information as an [`LlmError`].
///
/// [`MultiServer::submit`]: crate::serve::MultiServer::submit
/// [`Server::submit`]: crate::serve::Server::submit
/// [`LlmError`]: crate::LlmError
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue is at its configured `max_queue` limit.
    QueueFull {
        /// The configured admission limit.
        max_queue: usize,
    },
    /// The request was malformed or unservable against its context
    /// (wrong query width, zero tokens, decode past the shared context).
    Invalid {
        /// Description of the problem.
        what: &'static str,
    },
    /// The request would grow its KV cache past the model's limits.
    KvCapacity {
        /// What was out of range.
        what: &'static str,
        /// The offending value.
        value: usize,
        /// The model's limit for it.
        limit: usize,
    },
    /// The request named a context handle this engine never issued.
    UnknownContext {
        /// The unrecognized handle id.
        id: u64,
    },
    /// The request was cancelled after admission
    /// ([`MultiServer::cancel`](crate::serve::MultiServer::cancel) or the
    /// protocol's `cancel` verb); its slot or queue entry was freed.
    Cancelled,
    /// SLO-aware admission projected the request cannot meet its deadline
    /// under the current load.
    Deadline {
        /// Milliseconds after which the same deadline could be met if the
        /// queue ahead has drained (always at least 1).
        retry_after_ms: u64,
    },
    /// The tenant exhausted its token budget for the current rate-limit
    /// window (a budget layered on top of the fair-queue weights).
    RateLimited {
        /// Milliseconds until enough of the sliding window has passed for
        /// the same request to fit the budget (always at least 1).
        retry_after_ms: u64,
    },
    /// The server is draining for shutdown: in-flight requests finish,
    /// but nothing new is admitted.
    Draining {
        /// Estimated milliseconds until the drain completes.
        retry_after_ms: u64,
    },
    /// The request was quarantined by the fault-containment layer: a
    /// contained panic, a forced KV/allocation failure mid-decode, or a
    /// watchdog shed. The request itself may have been healthy (collateral
    /// of sharing a batch group with the faulty one), but its partial
    /// state is gone, so it is rejected rather than silently restarted.
    Internal {
        /// What faulted (kernel site or watchdog description).
        what: &'static str,
    },
    /// The driver thread died and was rebuilt by the supervisor; every
    /// ticket alive across the restart resolves with this reason. The
    /// request can be retried after `retry_after_ms` against the warm
    /// engine.
    DriverRestarted {
        /// Computed backoff until the restarted driver is warm (always at
        /// least 1).
        retry_after_ms: u64,
    },
}

impl RejectReason {
    /// Classifies an admission error (panics on non-admission errors,
    /// which `admit` never returns).
    pub(crate) fn from_llm(e: &crate::LlmError) -> RejectReason {
        match *e {
            crate::LlmError::QueueFull { max_queue } => RejectReason::QueueFull { max_queue },
            crate::LlmError::InvalidRequest { what } => RejectReason::Invalid { what },
            crate::LlmError::KvCapacity { what, value, limit } => {
                RejectReason::KvCapacity { what, value, limit }
            }
            crate::LlmError::UnknownContext { id } => RejectReason::UnknownContext { id },
            crate::LlmError::Cancelled => RejectReason::Cancelled,
            crate::LlmError::DeadlineUnmeetable { retry_after_ms } => {
                RejectReason::Deadline { retry_after_ms }
            }
            crate::LlmError::RateLimited { retry_after_ms } => {
                RejectReason::RateLimited { retry_after_ms }
            }
            crate::LlmError::Draining { retry_after_ms } => {
                RejectReason::Draining { retry_after_ms }
            }
            crate::LlmError::Internal { what } => RejectReason::Internal { what },
            crate::LlmError::DriverRestarted { retry_after_ms } => {
                RejectReason::DriverRestarted { retry_after_ms }
            }
            ref other => {
                // Only admission-shaped errors reach this conversion;
                // surface a stray one as a typed internal rejection
                // instead of a panic.
                debug_assert!(false, "admission produced a non-admission error: {other}");
                RejectReason::Internal {
                    what: "non-admission error",
                }
            }
        }
    }

    /// The equivalent [`LlmError`](crate::LlmError), for callers using the
    /// `Result`-shaped admission path.
    pub fn into_error(self) -> crate::LlmError {
        match self {
            RejectReason::QueueFull { max_queue } => crate::LlmError::QueueFull { max_queue },
            RejectReason::Invalid { what } => crate::LlmError::InvalidRequest { what },
            RejectReason::KvCapacity { what, value, limit } => {
                crate::LlmError::KvCapacity { what, value, limit }
            }
            RejectReason::UnknownContext { id } => crate::LlmError::UnknownContext { id },
            RejectReason::Cancelled => crate::LlmError::Cancelled,
            RejectReason::Deadline { retry_after_ms } => {
                crate::LlmError::DeadlineUnmeetable { retry_after_ms }
            }
            RejectReason::RateLimited { retry_after_ms } => {
                crate::LlmError::RateLimited { retry_after_ms }
            }
            RejectReason::Draining { retry_after_ms } => {
                crate::LlmError::Draining { retry_after_ms }
            }
            RejectReason::Internal { what } => crate::LlmError::Internal { what },
            RejectReason::DriverRestarted { retry_after_ms } => {
                crate::LlmError::DriverRestarted { retry_after_ms }
            }
        }
    }

    /// The computed backoff this rejection carries, if retrying later
    /// could help (`None` for rejections where a retry cannot succeed:
    /// invalid requests, cancellations, unknown contexts).
    ///
    /// `KvCapacity` carries a minimum 1 ms hint: after a quarantine or a
    /// shed frees cache memory, the same request can succeed, so the
    /// wire-visible `retry_after_ms` must never be the "do not retry"
    /// zero.
    pub fn retry_hint_ms(&self) -> Option<u64> {
        match *self {
            RejectReason::Deadline { retry_after_ms }
            | RejectReason::RateLimited { retry_after_ms }
            | RejectReason::Draining { retry_after_ms }
            | RejectReason::DriverRestarted { retry_after_ms } => Some(retry_after_ms.max(1)),
            RejectReason::KvCapacity { .. } => Some(1),
            _ => None,
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.into_error())
    }
}

/// Where a submitted request currently is in its typed lifecycle:
/// `Queued → Running → Finished`, or `Rejected` straight from admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStatus {
    /// Waiting for a batch slot.
    Queued,
    /// Occupying a decode slot.
    Running,
    /// All steps decoded; the output (`tokens` hidden-state rows) is ready
    /// to collect via `take_output`.
    Finished {
        /// Decoded tokens waiting in the output.
        tokens: usize,
    },
    /// Refused at admission; the request never entered the queue.
    Rejected {
        /// Why admission refused it.
        reason: RejectReason,
    },
    /// Not known to this scheduler (never submitted, or already
    /// collected).
    Unknown,
}

/// The collected result of a completed request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutput {
    /// Server-assigned id.
    pub id: RequestId,
    /// The tenant tag from the [`DecodeRequest`].
    pub tenant: u64,
    /// One decoded hidden-state row (`head_dim` wide) per step, in step
    /// order.
    pub steps: Vec<Vec<f32>>,
    /// Total on-the-fly KV-quantization overhead charged to this tenant's
    /// cache growth, microseconds.
    pub kv_quant_us: f64,
    /// Scheduler step at which the request was submitted.
    pub submitted_step: u64,
    /// Scheduler step at which the last token was decoded.
    pub finished_step: u64,
    /// Fold-time reconstruction nMSE of this request's live KV cache
    /// (0.0 when live KV is off or nothing was folded) — feed to
    /// [`accuracy::project_kv_accuracy`](crate::accuracy::project_kv_accuracy).
    pub kv_nmse: f64,
    /// Final compressed footprint of the live KV cache in bytes (packed
    /// codes + outliers + f32 tail; 0 when live KV is off).
    pub kv_bytes: usize,
}
