//! Request vocabulary of the serving layer: what a tenant submits, the
//! handle it gets back, and the output it can collect.

/// Server-assigned request identifier (unique per [`Server`] instance).
///
/// [`Server`]: crate::serve::Server
pub type RequestId = u64;

/// Opaque handle returned by [`Server::submit`]; pass it back to query
/// [`Server::status`] or collect [`Server::take_output`].
///
/// [`Server::submit`]: crate::serve::Server::submit
/// [`Server::status`]: crate::serve::Server::status
/// [`Server::take_output`]: crate::serve::Server::take_output
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestHandle {
    pub(crate) id: RequestId,
}

impl RequestHandle {
    /// The server-assigned id.
    pub fn id(&self) -> RequestId {
        self.id
    }
}

/// One tenant's decode request against the server's [`SharedContext`].
///
/// The request enters the shared context at `context_len` cached tokens
/// and asks for `gen_tokens` decode steps; each step attends one more
/// token of the context (teacher-forced decode over the pre-quantized
/// cache), so admission requires `context_len + gen_tokens - 1` to fit
/// both the shared context and the model's window.
///
/// [`SharedContext`]: crate::serve::SharedContext
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeRequest {
    /// Caller-supplied tenant tag (reported back in the output).
    pub tenant: u64,
    /// Initial query/hidden state, `head_dim` wide.
    pub query: Vec<f32>,
    /// Tokens of the shared context attended at the first step (≥ 1).
    pub context_len: usize,
    /// Decode steps requested (≥ 1).
    pub gen_tokens: usize,
}

impl DecodeRequest {
    /// Builds a request.
    pub fn new(tenant: u64, query: Vec<f32>, context_len: usize, gen_tokens: usize) -> Self {
        DecodeRequest {
            tenant,
            query,
            context_len,
            gen_tokens,
        }
    }
}

/// Where a submitted request currently is in the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStatus {
    /// Waiting for a batch slot.
    Queued,
    /// Occupying a decode slot.
    Running,
    /// All steps decoded; output is ready to collect.
    Completed,
    /// Not known to this server (never submitted, or already collected).
    Unknown,
}

/// The collected result of a completed request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutput {
    /// Server-assigned id.
    pub id: RequestId,
    /// The tenant tag from the [`DecodeRequest`].
    pub tenant: u64,
    /// One decoded hidden-state row (`head_dim` wide) per step, in step
    /// order.
    pub steps: Vec<Vec<f32>>,
    /// Total on-the-fly KV-quantization overhead charged to this tenant's
    /// cache growth, microseconds.
    pub kv_quant_us: f64,
    /// Scheduler step at which the request was submitted.
    pub submitted_step: u64,
    /// Scheduler step at which the last token was decoded.
    pub finished_step: u64,
}
