//! Per-tenant live KV cache with online vector quantization.
//!
//! The serving layer's historical shape is teacher-forced decode over a
//! shared pre-quantized context; [`TenantKv`] is what a request owns once
//! [`KvQuantMode`] turns live KV on: every decoded output row is appended
//! as the request's next private K/V row, kept f32 inside a hot tail
//! window and **folded** into packed VQ codes once it ages out of it.
//!
//! Folding re-encodes against the *shared context's* codebooks
//! ([`SharedContext::kq`]/[`SharedContext::vq`]) — the paper's amortized
//! codebook reuse: no per-token re-clustering, and the attention kernel
//! ([`attention_decode_ragged_tailed`]) decodes extension rows from
//! tables it already holds for the context. Groups the codebooks
//! reconstruct too poorly keep their exact f32 residual in a sparse
//! outlier channel, so one pathological token cannot poison a tenant's
//! whole cache.
//!
//! The struct is also the accounting surface: it tracks the fold-time
//! reconstruction error (for [`accuracy::project_kv_accuracy`]) and
//! prices its own **compressed** footprint (packed codes + outliers +
//! tail) so admission and the byte-denominated KV budget can reason in
//! real memory instead of token counts.
//!
//! [`attention_decode_ragged_tailed`]: vqllm_kernels::host_exec::attention_decode_ragged_tailed
//! [`accuracy::project_kv_accuracy`]: crate::accuracy::project_kv_accuracy

use crate::serve::{KvQuantMode, SharedContext};
use crate::{LlmError, Result};
use vqllm_kernels::host_exec::{OutlierResidual, RaggedExt};
use vqllm_vq::{CodebookScope, CodebookSet};

/// Bytes charged per outlier beyond its `vector_size` f32 payload: the
/// `(row, group)` coordinates at `u32` each.
const OUTLIER_COORD_BYTES: usize = 8;

/// One request's private, growing KV cache: an f32 tail window of the
/// newest appended rows, with older rows folded into packed codes against
/// the shared context's codebooks plus sparse exact-residual outliers.
///
/// Constructed per admitted request when [`ServeConfig::kv_quant`] is a
/// live mode; [`TenantKv::ext`] borrows the state in the exact shape the
/// tailed attention kernel consumes.
///
/// [`ServeConfig::kv_quant`]: crate::serve::ServeConfig::kv_quant
#[derive(Debug, Clone)]
pub struct TenantKv {
    ctx: SharedContext,
    /// Rows kept f32 at the hot end (`usize::MAX` for `F32Tail`: never
    /// fold).
    tail_window: usize,
    /// Outlier threshold as a fraction of the group norm.
    outlier_keep: f32,
    /// Packed-code streams, `[residual][row * groups + g]`.
    k_codes: Vec<Vec<u32>>,
    v_codes: Vec<Vec<u32>>,
    folded_rows: usize,
    k_outliers: Vec<OutlierResidual>,
    v_outliers: Vec<OutlierResidual>,
    /// Unquantized newest rows, oldest first.
    k_tail: Vec<Vec<f32>>,
    v_tail: Vec<Vec<f32>>,
    /// Fold-time squared reconstruction error (outlier-kept groups are
    /// exact and contribute zero).
    err_sq: f64,
    /// Squared norm of everything folded (the nMSE denominator).
    data_sq: f64,
    outlier_groups: usize,
}

impl TenantKv {
    /// Creates an empty live cache for one request against `ctx`.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] when `mode` is
    /// [`KvQuantMode::Off`] (callers must not build live state for the
    /// teacher-forced path), when the context's K and V caches were
    /// quantized under different configurations (folding encodes one row
    /// against each and the kernel assumes one geometry), or when the
    /// scope is row-dependent ([`CodebookScope::PerTile`]) — appended
    /// rows sit past the trained tile grid, so there is no principled
    /// codebook to fold them against.
    pub fn new(ctx: &SharedContext, mode: KvQuantMode) -> Result<TenantKv> {
        let (tail_window, outlier_keep) = match mode {
            KvQuantMode::Off => {
                return Err(LlmError::InvalidConfig {
                    what: "TenantKv requires a live KV mode (F32Tail or Quantized)",
                });
            }
            KvQuantMode::F32Tail => (usize::MAX, 0.0),
            KvQuantMode::Quantized {
                tail_window,
                outlier_keep_milli,
            } => (tail_window, outlier_keep_milli as f32 / 1000.0),
        };
        if ctx.kq().config() != ctx.vq().config() {
            return Err(LlmError::InvalidConfig {
                what: "live KV requires the context's K and V caches to share one VQ config",
            });
        }
        if matches!(ctx.kq().config().scope, CodebookScope::PerTile { .. }) {
            return Err(LlmError::InvalidConfig {
                what: "live KV requires a row-invariant codebook scope \
                       (PerTensor or PerChannelGroup), not PerTile",
            });
        }
        let residuals = ctx.kq().config().residuals;
        Ok(TenantKv {
            ctx: ctx.clone(),
            tail_window,
            outlier_keep,
            k_codes: vec![Vec::new(); residuals],
            v_codes: vec![Vec::new(); residuals],
            folded_rows: 0,
            k_outliers: Vec::new(),
            v_outliers: Vec::new(),
            k_tail: Vec::new(),
            v_tail: Vec::new(),
            err_sq: 0.0,
            data_sq: 0.0,
            outlier_groups: 0,
        })
    }

    /// Appends one decoded token's K and V rows, folding the oldest tail
    /// rows into packed codes once the tail exceeds its window.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidRequest`] when a row is not `head_dim`
    /// wide.
    pub fn append(&mut self, k_row: &[f32], v_row: &[f32]) -> Result<()> {
        let d = self.ctx.head_dim();
        if k_row.len() != d || v_row.len() != d {
            return Err(LlmError::InvalidRequest {
                what: "appended KV rows must be head_dim wide",
            });
        }
        self.k_tail.push(k_row.to_vec());
        self.v_tail.push(v_row.to_vec());
        while self.k_tail.len() > self.tail_window {
            self.fold_oldest();
        }
        Ok(())
    }

    /// Folds the oldest tail row pair into codes + outliers.
    fn fold_oldest(&mut self) {
        let k_row = self.k_tail.remove(0);
        let v_row = self.v_tail.remove(0);
        let row = self.folded_rows;
        for (vals, books, codes, outliers) in [
            (
                &k_row,
                self.ctx.kq().codebooks(),
                &mut self.k_codes,
                &mut self.k_outliers,
            ),
            (
                &v_row,
                self.ctx.vq().codebooks(),
                &mut self.v_codes,
                &mut self.v_outliers,
            ),
        ] {
            let (err, data, outs) = fold_side(vals, books, codes, outliers, row, self.outlier_keep);
            self.err_sq += err;
            self.data_sq += data;
            self.outlier_groups += outs;
        }
        self.folded_rows += 1;
    }

    /// Borrows the state as the extension the tailed attention kernel
    /// consumes.
    pub fn ext(&self) -> RaggedExt<'_> {
        RaggedExt {
            rows: self.folded_rows,
            k_codes: &self.k_codes,
            v_codes: &self.v_codes,
            k_outliers: &self.k_outliers,
            v_outliers: &self.v_outliers,
            k_tail: &self.k_tail,
            v_tail: &self.v_tail,
        }
    }

    /// Total appended tokens (folded + tail).
    pub fn len(&self) -> usize {
        self.folded_rows + self.k_tail.len()
    }

    /// Whether nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tokens folded into packed codes so far.
    pub fn folded_tokens(&self) -> usize {
        self.folded_rows
    }

    /// Tokens still f32 in the tail window.
    pub fn tail_len(&self) -> usize {
        self.k_tail.len()
    }

    /// Groups that kept their exact residual in the outlier channel
    /// (K and V combined).
    pub fn outlier_groups(&self) -> usize {
        self.outlier_groups
    }

    /// Normalized fold-time reconstruction MSE — squared error of the
    /// packed codes against the rows they replaced, over the folded
    /// rows' energy. Outlier-kept groups reconstruct exactly and push
    /// this **down**; an all-f32 cache (nothing folded) is 0. Feed to
    /// [`accuracy::project_kv_accuracy`].
    ///
    /// [`accuracy::project_kv_accuracy`]: crate::accuracy::project_kv_accuracy
    pub fn kv_nmse(&self) -> f64 {
        if self.data_sq <= 0.0 {
            0.0
        } else {
            self.err_sq / self.data_sq
        }
    }

    /// Raw `(err_sq, data_sq)` fold-error sums, for engine-wide
    /// aggregation across requests (summing nMSEs would weight tenants
    /// wrongly; summing the numerators and denominators does not).
    pub fn fold_error(&self) -> (f64, f64) {
        (self.err_sq, self.data_sq)
    }

    /// Current compressed footprint in bytes: packed index streams (K and
    /// V, all residual rounds, at [`VqConfig::index_bits`] per code),
    /// outlier residuals (f32 payload + coordinates), and the f32 tail.
    ///
    /// Codes are priced at their packed storage width — the format a
    /// device cache holds, mirroring how [`QuantizedTensor`] accounts its
    /// own indices; this reference substrate stages them as `u32` for
    /// decode simplicity.
    ///
    /// [`VqConfig::index_bits`]: vqllm_vq::VqConfig::index_bits
    /// [`QuantizedTensor`]: vqllm_vq::QuantizedTensor
    pub fn compressed_bytes(&self) -> usize {
        let cfg = self.ctx.kq().config();
        let bits = cfg.index_bits() as usize;
        let code_bytes: usize = self
            .k_codes
            .iter()
            .chain(&self.v_codes)
            .map(|s| (s.len() * bits).div_ceil(8))
            .sum();
        let outlier_bytes = (self.k_outliers.len() + self.v_outliers.len())
            * (cfg.vector_size * 4 + OUTLIER_COORD_BYTES);
        let tail_bytes = (self.k_tail.len() + self.v_tail.len()) * self.ctx.head_dim() * 4;
        code_bytes + outlier_bytes + tail_bytes
    }

    /// Bytes the same cache would cost fully unquantized (K and V rows at
    /// f32) — the baseline the compression gate divides by.
    pub fn f32_bytes(&self) -> usize {
        2 * self.len() * self.ctx.head_dim() * 4
    }

    /// Projected compressed footprint after `appends` total tokens,
    /// assuming no outliers fire — the admission-time lower bound priced
    /// against [`ServeConfig::kv_budget_bytes`]. The runtime budget check
    /// on the *measured* [`TenantKv::compressed_bytes`] catches requests
    /// whose outlier channel grows past the projection.
    ///
    /// [`ServeConfig::kv_budget_bytes`]: crate::serve::ServeConfig::kv_budget_bytes
    pub fn projected_bytes(&self, appends: usize) -> usize {
        let cfg = self.ctx.kq().config();
        let folded = if self.tail_window == usize::MAX {
            0
        } else {
            appends.saturating_sub(self.tail_window)
        };
        let tail = appends - folded;
        let groups = self.ctx.kq().col_groups();
        let per_stream = (folded * groups * cfg.index_bits() as usize).div_ceil(8);
        2 * cfg.residuals * per_stream + 2 * tail * self.ctx.head_dim() * 4
    }
}

/// Folds one row of one side (K or V): encodes every column group through
/// all residual rounds against `books`, pushing codes and (when the
/// leftover error norm exceeds `keep` of the group norm) an exact outlier
/// residual. Returns `(err_sq, data_sq, outlier_groups)` for the fold's
/// accounting.
fn fold_side(
    vals: &[f32],
    books: &CodebookSet,
    codes: &mut [Vec<u32>],
    outliers: &mut Vec<OutlierResidual>,
    row: usize,
    keep: f32,
) -> (f64, f64, usize) {
    let cfg = books.config();
    let vs = cfg.vector_size;
    let groups = vals.len() / vs;
    let mut recon = vec![0.0f32; vs];
    let mut err_sq = 0.0f64;
    let mut data_sq = 0.0f64;
    let mut outlier_count = 0usize;
    for g in 0..groups {
        let orig = &vals[g * vs..(g + 1) * vs];
        let mut resid = orig.to_vec();
        for (r, stream) in codes.iter_mut().enumerate() {
            let book = books.book(r, books.scope_index(0, g * vs));
            let code = book.encode(&resid);
            stream.push(code);
            book.lookup(code, &mut recon);
            for (x, &e) in resid.iter_mut().zip(&recon) {
                *x -= e;
            }
        }
        let orig_sq: f64 = orig.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
        let resid_sq: f64 = resid.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
        data_sq += orig_sq;
        if resid_sq > f64::from(keep) * f64::from(keep) * orig_sq {
            outliers.push(OutlierResidual {
                row,
                group: g,
                values: resid,
            });
            outlier_count += 1;
        } else {
            err_sq += resid_sq;
        }
    }
    (err_sq, data_sq, outlier_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqllm_tensor::synth;
    use vqllm_vq::{VqConfig, VqQuantizer};

    const SEQ: usize = 48;
    const DIM: usize = 64;

    /// A small shared context cheap enough for unit tests: PerTensor
    /// scope trains on `rows × col_groups` points, so 48×16 ≥ 64 entries.
    fn ctx() -> SharedContext {
        let cfg = VqConfig::new(4, 64, 2, CodebookScope::PerTensor).unwrap();
        let quant = |rows: usize, seed: u64| {
            let w = synth::correlated_channels(rows, DIM, 4, 0.9, seed);
            VqQuantizer::new(cfg).quantize(&w, seed).unwrap()
        };
        SharedContext::new(quant(SEQ, 11), quant(SEQ, 12), quant(DIM, 13)).unwrap()
    }

    fn row(phase: f32) -> Vec<f32> {
        (0..DIM).map(|i| (i as f32 * phase).sin()).collect()
    }

    /// Decodes folded extension row `r` of one side back to f32.
    fn decode_row(
        codes: &[Vec<u32>],
        outliers: &[OutlierResidual],
        books: &CodebookSet,
        r: usize,
    ) -> Vec<f32> {
        let vs = books.config().vector_size;
        let groups = DIM / vs;
        let mut out = vec![0.0f32; DIM];
        for (ri, stream) in codes.iter().enumerate() {
            for g in 0..groups {
                books
                    .book(ri, books.scope_index(0, g * vs))
                    .accumulate(stream[r * groups + g], &mut out[g * vs..(g + 1) * vs]);
            }
        }
        for o in outliers.iter().filter(|o| o.row == r) {
            for (j, &v) in o.values.iter().enumerate() {
                out[o.group * vs + j] += v;
            }
        }
        out
    }

    #[test]
    fn exact_outliers_reconstruct_folded_rows_exactly() {
        let ctx = ctx();
        // keep = 0: every imperfect group holds its exact residual, so
        // folded rows must reconstruct to the appended bytes.
        let mut kv = TenantKv::new(
            &ctx,
            KvQuantMode::Quantized {
                tail_window: 2,
                outlier_keep_milli: 0,
            },
        )
        .unwrap();
        let rows: Vec<(Vec<f32>, Vec<f32>)> = (0..5)
            .map(|i| (row(0.3 + i as f32 * 0.11), row(0.7 + i as f32 * 0.13)))
            .collect();
        for (k, v) in &rows {
            kv.append(k, v).unwrap();
        }
        assert_eq!(kv.folded_tokens(), 3);
        assert_eq!(kv.tail_len(), 2);
        assert_eq!(kv.len(), 5);
        assert_eq!(kv.kv_nmse(), 0.0, "exact outliers leave zero error");
        assert!(kv.outlier_groups() > 0);
        let ext = kv.ext();
        for (r, (krow, vrow)) in rows.iter().enumerate().take(3) {
            let kdec = decode_row(ext.k_codes, ext.k_outliers, ctx.kq().codebooks(), r);
            let vdec = decode_row(ext.v_codes, ext.v_outliers, ctx.vq().codebooks(), r);
            for (got, want) in kdec.iter().zip(krow).chain(vdec.iter().zip(vrow)) {
                assert!((got - want).abs() < 1e-5, "row {r}: {got} vs {want}");
            }
        }
        // The tail is the two newest rows, bitwise.
        assert_eq!(ext.k_tail[0], rows[3].0);
        assert_eq!(ext.v_tail[1], rows[4].1);
    }

    #[test]
    fn tail_window_controls_folding() {
        let ctx = ctx();
        let mut f32_only = TenantKv::new(&ctx, KvQuantMode::F32Tail).unwrap();
        let mut eager = TenantKv::new(
            &ctx,
            KvQuantMode::Quantized {
                tail_window: 0,
                outlier_keep_milli: u32::MAX,
            },
        )
        .unwrap();
        for i in 0..10 {
            let (k, v) = (row(0.2 + i as f32 * 0.1), row(0.5 + i as f32 * 0.1));
            f32_only.append(&k, &v).unwrap();
            eager.append(&k, &v).unwrap();
        }
        assert_eq!(f32_only.folded_tokens(), 0);
        assert_eq!(f32_only.tail_len(), 10);
        assert_eq!(f32_only.kv_nmse(), 0.0);
        assert_eq!(eager.folded_tokens(), 10);
        assert_eq!(eager.tail_len(), 0);
        // keep = MAX: no outliers, so folding leaves measurable error.
        assert_eq!(eager.outlier_groups(), 0);
        assert!(eager.kv_nmse() > 0.0);
        // ... and still compresses: well under the 0.5×f32 gate without a
        // tail or outliers (2 rounds × 6 bits / 4 elems = 3 bits/elem).
        assert!(
            (eager.compressed_bytes() as f64) < 0.5 * eager.f32_bytes() as f64,
            "{} vs {}",
            eager.compressed_bytes(),
            eager.f32_bytes()
        );
        // With no outliers the admission projection is exact.
        assert_eq!(eager.projected_bytes(10), eager.compressed_bytes());
        // The f32-only cache projects at full f32 cost.
        assert_eq!(f32_only.projected_bytes(10), f32_only.f32_bytes());
    }

    #[test]
    fn rejects_invalid_modes_and_rows() {
        let ctx = ctx();
        assert!(matches!(
            TenantKv::new(&ctx, KvQuantMode::Off),
            Err(LlmError::InvalidConfig { .. })
        ));
        let mut kv = TenantKv::new(&ctx, KvQuantMode::F32Tail).unwrap();
        assert!(matches!(
            kv.append(&[0.0; DIM - 1], &[0.0; DIM]),
            Err(LlmError::InvalidRequest { .. })
        ));
        assert!(kv.is_empty(), "failed append must not mutate");

        // PerTile scope is row-dependent: no codebook covers appended rows.
        let tile_cfg =
            VqConfig::new(4, 32, 1, CodebookScope::PerTile { rows: 16, cols: 16 }).unwrap();
        let quant = |rows: usize, seed: u64| {
            let w = synth::correlated_channels(rows, 32, 4, 0.9, seed);
            VqQuantizer::new(tile_cfg).quantize(&w, seed).unwrap()
        };
        let tiled = SharedContext::new(quant(32, 3), quant(32, 4), quant(32, 5)).unwrap();
        assert!(matches!(
            TenantKv::new(&tiled, KvQuantMode::F32Tail),
            Err(LlmError::InvalidConfig { .. })
        ));
    }
}
