//! The multi-context scheduler: one engine-wide queue and slot pool over a
//! registry of quantized contexts, with per-context canonical plans and
//! measured-profile feedback.
//!
//! This is the generalization the single-context [`Server`] grew out of
//! (and now delegates to): requests are tagged with a [`ContextHandle`] at
//! submission, and every [`MultiServer::step`] re-forms the decode batch
//! **per context group** — the running set is partitioned by context, and
//! each live group runs one shared-K-decode ragged attention pass plus one
//! batched linear through that context's own canonical plans. Slots
//! (`max_batch`) and the bounded queue (`max_queue`) are shared across all
//! contexts, so one engine serves EVA/VecInfer-style traffic fanning out
//! over several quantized caches at once without per-context servers.
//!
//! **Profile feedback** closes the `ProfileSummary::default_for`
//! placeholder: a context registered under an enabled [`ProfileConfig`] is
//! planned from its **measured** access histogram (profiled once off its
//! packed K codes at registration), and executed steps accumulate the
//! attended-prefix histogram back into the context. When the observed
//! distribution drifts past [`ProfileConfig::replan_divergence`] (KS
//! distance, or a changed hot-entry count), the context's cached canonical
//! attention plan is invalidated in the shared `PlanCache` and replanned
//! under the observed profile. Replanning is **numerically invisible**:
//! the host kernels read only cache-blocking hints from a plan
//! (`tests/host_backend.rs` pins bitwise blocking-independence), so a
//! replan never changes decoded bytes — only the modelled placement the
//! estimates and a future GPU backend would use.
//!
//! [`Server`]: crate::serve::Server

use crate::kv::KvCache;
use crate::pipeline::{Pipeline, QuantScheme};
use crate::serve::request::{
    DecodeRequest, RejectReason, RequestHandle, RequestId, RequestOutput, RequestStatus,
};
use crate::serve::tenant_kv::TenantKv;
use crate::serve::{KvQuantMode, ServeConfig, SharedContext};
use crate::{LlmError, Result};
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use vqllm_core::failpoint;
use vqllm_core::plan_cache::PlanKey;
use vqllm_core::{ComputeOp, KernelPlan, OptLevel, ProfileSummary};
use vqllm_kernels::AccessProfile;
use vqllm_tensor::Tensor2D;
use vqllm_vq::stats::AccessHistogram;
use vqllm_vq::QuantizedTensor;

/// Typed handle to a registered quantized context. Handles are only
/// meaningful to the [`MultiServer`] (or engine) that issued them: each
/// carries the issuing scheduler's process-unique nonce, so a handle from
/// a *different* engine — even one whose registry index happens to be in
/// range — is rejected as [`RejectReason::UnknownContext`] instead of
/// silently decoding against the wrong context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContextHandle {
    /// Nonce of the issuing scheduler.
    pub(crate) engine: u32,
    /// Registry index within that scheduler.
    pub(crate) id: u32,
}

impl ContextHandle {
    /// The engine-assigned id.
    pub fn id(&self) -> u64 {
        self.id as u64
    }

    /// A handle no live scheduler will ever accept (the nonce matches no
    /// engine) — for tests of layers that carry handles without resolving
    /// them.
    #[doc(hidden)]
    pub fn detached(id: u32) -> ContextHandle {
        ContextHandle {
            engine: u32::MAX,
            id,
        }
    }
}

/// Per-context profile-feedback policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileConfig {
    /// Decode steps a context participates in between profile checks
    /// (`0` disables feedback entirely: contexts are planned from the
    /// algorithm's default synthetic profile and never replanned — the
    /// compatibility behaviour of the single-context [`Server`]).
    ///
    /// [`Server`]: crate::serve::Server
    pub check_every: u64,
    /// Kolmogorov–Smirnov distance between the observed and the active
    /// access profile above which the context's canonical attention plan
    /// is invalidated and replanned.
    pub replan_divergence: f64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            check_every: 16,
            replan_divergence: 0.05,
        }
    }
}

impl ProfileConfig {
    /// No measurement, no replanning: plan from synthetic defaults.
    pub fn disabled() -> Self {
        ProfileConfig {
            check_every: 0,
            replan_divergence: f64::INFINITY,
        }
    }

    /// Whether feedback is active.
    pub fn is_enabled(&self) -> bool {
        self.check_every > 0
    }
}

/// Per-context feedback counters, cheap to copy out for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ContextStats {
    /// Requests admitted against this context.
    pub submitted: u64,
    /// Requests fully decoded against this context.
    pub completed: u64,
    /// Requests cancelled after admission against this context.
    pub cancelled: u64,
    /// Decode steps this context's group participated in.
    pub steps: u64,
    /// Attended-prefix tokens folded into the observed histogram.
    pub profiled_tokens: u64,
    /// Times the canonical attention plan was invalidated and replanned
    /// under a shifted profile.
    pub replans: u64,
    /// Hot-entry count (µ+3σ) of the profile the active plans were made
    /// under.
    pub num_hot: usize,
    /// Requests quarantined mid-decode against this context by the
    /// fault-containment layer (contained panics, forced KV failures).
    pub quarantined: u64,
}

/// The canonical, batch-independent kernel plans of one context. The
/// attention plan carries the exact cache key it is memoized under, so a
/// profile shift can invalidate precisely that entry (the linear plan is
/// keyed off the static weight profile and is never invalidated).
#[derive(Debug, Clone)]
pub(crate) struct CanonicalPlans {
    pub(crate) attn_key: PlanKey,
    pub(crate) attn: Arc<KernelPlan>,
    pub(crate) linear: Arc<KernelPlan>,
}

/// Plans the two canonical serving shapes of `ctx` — attention decode at
/// batch 1 over the full cached sequence, and the `head_dim × head_dim`
/// projection GeMV — through the pipeline's shared `PlanCache` under the
/// given KV/weight profiles. One warm-up helper for every front end
/// (single-context `Server`, multi-context `MultiServer`/engine): sibling
/// constructions over the same context are pure cache hits.
pub(crate) fn warm_canonical_plans(
    pipeline: &Pipeline,
    ctx: &SharedContext,
    opt: OptLevel,
    kv_profile: &AccessProfile,
    kv_summary: &ProfileSummary,
    w_profile: &AccessProfile,
    w_summary: &ProfileSummary,
) -> Result<CanonicalPlans> {
    let (seq, head_dim) = (ctx.seq(), ctx.head_dim());
    let kv_cfg = *ctx.kq().config();
    let attn_op = ComputeOp::attention_decode(1, head_dim, seq, 1);
    let (attn_key, attn) = pipeline
        .vq_plan_profiled(&kv_cfg, &attn_op, opt, kv_profile, kv_summary)
        .ok_or(LlmError::InvalidConfig {
            what: "no launchable plan for the serving attention shape",
        })?;
    let w_cfg = *ctx.wq().config();
    let linear_op = ComputeOp::Gemv {
        n: head_dim,
        k: head_dim,
        batch: 1,
    };
    let (_, linear) = pipeline
        .vq_plan_profiled(&w_cfg, &linear_op, opt, w_profile, w_summary)
        .ok_or(LlmError::InvalidConfig {
            what: "no launchable plan for the serving linear shape",
        })?;
    Ok(CanonicalPlans {
        attn_key,
        attn,
        linear,
    })
}

/// The optimization level a scheme's serving plans are made at.
pub(crate) fn serve_opt_level(scheme: &QuantScheme) -> OptLevel {
    match scheme {
        QuantScheme::VqLlm { opt, .. } => *opt,
        _ => OptLevel::O4,
    }
}

/// Measured registration profile of a quantized tensor: histogram of
/// residual round 0 over the whole tensor (the paper's tensor-level
/// reordering choice, Fig. 9).
fn measured(q: &QuantizedTensor) -> (AccessProfile, ProfileSummary) {
    let hist = AccessHistogram::profile(q, 0);
    (
        AccessProfile::from_histogram(&hist),
        ProfileSummary::from_histogram(&hist),
    )
}

/// One registered context's live state.
#[derive(Debug)]
struct ContextState {
    ctx: SharedContext,
    plans: CanonicalPlans,
    /// The access profile/summary the active plans were made under.
    profile: AccessProfile,
    summary: ProfileSummary,
    /// Accumulated observed access counts (per stored KV-codebook entry).
    observed: Vec<u64>,
    /// Steps since the last profile check.
    steps_since_check: u64,
    /// Deepest attended prefix seen since the last check.
    max_len_seen: usize,
    stats: ContextStats,
}

/// One request's live scheduler state.
#[derive(Debug)]
struct Active {
    id: RequestId,
    ctx: ContextHandle,
    tenant: u64,
    /// Current query/hidden state (`head_dim` wide); rewritten each step
    /// from the projected decode output, so the stream is data-dependent.
    h: Vec<f32>,
    /// Per-tenant cache descriptor: `seq` counts this tenant's attended
    /// tokens, and growth is validated against the model's window.
    kv: KvCache,
    /// The fixed shared-context prefix this tenant attends. With live KV
    /// off, the attended prefix is `kv.seq` (teacher-forced growth over
    /// the shared context); with it on, the prefix stays pinned here and
    /// appended tokens live in `live`.
    prefix_len: usize,
    /// The private live KV cache (`None` when [`KvQuantMode::Off`]).
    live: Option<TenantKv>,
    remaining: usize,
    steps: Vec<Vec<f32>>,
    kv_quant_us: f64,
    submitted_step: u64,
}

/// What one [`MultiServer::step`] did.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StepReport {
    /// Scheduler step index (monotonic, counts non-idle steps and idle
    /// polls alike).
    pub step: u64,
    /// Requests decoded this step (0 = the server was idle).
    pub batch: usize,
    /// Live context groups the batch was partitioned into this step
    /// (one ragged-attention + one GeMM kernel pass each).
    pub groups: usize,
    /// Requests admitted from the queue into the batch this step.
    pub admitted: Vec<RequestId>,
    /// Requests that decoded their last token this step.
    pub finished: Vec<RequestId>,
    /// Requests still waiting after this step.
    pub queued: usize,
    /// KV-quantization overhead charged across the batch this step,
    /// microseconds.
    pub kv_quant_us: f64,
    /// Requests quarantined this step by the fault-containment layer:
    /// their group panicked or their KV append failed, they left the
    /// running set, and they poll as `Rejected` with a typed reason.
    pub quarantined: Vec<RequestId>,
}

/// Cumulative scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ServerStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests refused at admission (sum of the per-reason counters
    /// below).
    pub rejected: u64,
    /// Admission refusals because the bounded queue was at `max_queue`.
    pub rejected_queue_full: u64,
    /// Admission refusals for malformed/unservable requests.
    pub rejected_invalid: u64,
    /// Admission refusals that would outgrow the model's KV window.
    pub rejected_kv_capacity: u64,
    /// Admission refusals naming a handle this engine never issued.
    pub rejected_unknown_context: u64,
    /// Requests cancelled *after* admission ([`MultiServer::cancel`]) —
    /// counted separately from `rejected`, which is admission-time only.
    pub cancelled: u64,
    /// Requests fully decoded.
    pub completed: u64,
    /// Decode steps executed (non-idle).
    pub steps: u64,
    /// Tokens decoded across all requests.
    pub decoded_tokens: u64,
    /// Requests quarantined mid-decode by the fault-containment layer —
    /// counted separately from `rejected` (admission-time) and
    /// `cancelled` (caller-initiated).
    pub quarantined: u64,
    /// Live-KV tokens folded into packed codes across retired requests.
    pub kv_folded_tokens: u64,
    /// Column groups that kept their exact residual in the live-KV
    /// outlier channel across retired requests (K and V combined).
    pub kv_outlier_groups: u64,
    /// Accumulated squared fold error across retired requests' live KV
    /// (numerator of [`ServerStats::kv_nmse`]).
    pub kv_err_sq: f64,
    /// Accumulated squared norm of everything those requests folded
    /// (denominator of [`ServerStats::kv_nmse`]).
    pub kv_data_sq: f64,
}

impl ServerStats {
    /// Mean decode-batch occupancy across non-idle steps.
    pub fn mean_batch(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.decoded_tokens as f64 / self.steps as f64
        }
    }

    /// Engine-wide normalized live-KV fold error across retired requests
    /// (0.0 with live KV off or nothing folded) — feed to
    /// [`accuracy::project_kv_accuracy`](crate::accuracy::project_kv_accuracy).
    pub fn kv_nmse(&self) -> f64 {
        if self.kv_data_sq <= 0.0 {
            0.0
        } else {
            self.kv_err_sq / self.kv_data_sq
        }
    }
}

/// A batched request scheduler over one [`Pipeline`] and **many**
/// registered [`SharedContext`]s.
///
/// Each context registers once ([`MultiServer::register_context`]) and
/// gets canonical, batch-independent kernel plans through the pipeline's
/// shared `PlanCache`; every step reuses them at whatever per-context
/// group is live. The host kernels read only cache-blocking hints from a
/// plan and are lane-stable across batch widths, so decode output is
/// bitwise identical whether a request runs alone on a single-context
/// server or co-scheduled in a mixed-context batch (`tests/serving.rs`
/// pins this).
///
/// Drive it with [`MultiServer::step`] (one batched decode step,
/// deterministic) or [`MultiServer::run_until_drained`].
#[derive(Debug)]
pub struct MultiServer {
    pipeline: Pipeline,
    config: ServeConfig,
    profile_cfg: ProfileConfig,
    opt: OptLevel,
    /// Process-unique identity stamped into every issued
    /// [`ContextHandle`] and verified on use.
    nonce: u32,
    contexts: Vec<ContextState>,
    queue: VecDeque<Active>,
    running: Vec<Active>,
    finished: HashMap<RequestId, RequestOutput>,
    /// Rejection tombstones so refused handles poll as `Rejected` with
    /// their reason. **Bounded** ([`REJECTED_TOMBSTONE_CAP`], FIFO
    /// eviction via `rejected_order`): a long-lived engine under
    /// sustained queue pressure must not grow without limit, so the
    /// oldest records age out and poll as `Unknown` thereafter.
    rejected: HashMap<RequestId, RejectReason>,
    rejected_order: VecDeque<RequestId>,
    next_id: RequestId,
    step: u64,
    stats: ServerStats,
}

/// Most rejection tombstones retained for [`MultiServer::poll`]; the
/// cumulative count stays in [`ServerStats::rejected`] forever.
pub const REJECTED_TOMBSTONE_CAP: usize = 1024;

impl MultiServer {
    /// Builds an empty multi-context scheduler (no contexts registered
    /// yet).
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] on a degenerate config.
    pub fn new(
        pipeline: Pipeline,
        config: ServeConfig,
        profile_cfg: ProfileConfig,
    ) -> Result<MultiServer> {
        config.validate()?;
        let opt = serve_opt_level(pipeline.scheme());
        static NONCE: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(1);
        Ok(MultiServer {
            pipeline,
            config,
            profile_cfg,
            opt,
            nonce: NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            contexts: Vec::new(),
            queue: VecDeque::new(),
            running: Vec::new(),
            finished: HashMap::new(),
            rejected: HashMap::new(),
            rejected_order: VecDeque::new(),
            next_id: 1,
            step: 0,
            stats: ServerStats::default(),
        })
    }

    /// Registers a quantized context and warms its canonical plans in the
    /// shared `PlanCache`. Under an enabled [`ProfileConfig`] the plans
    /// are made from the context's **measured** access histograms
    /// (profiled off its packed K codes and projection weight); disabled
    /// feedback falls back to the algorithm's synthetic default profile.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] when no launchable plan exists
    /// for the context's serving shapes.
    pub fn register_context(&mut self, ctx: SharedContext) -> Result<ContextHandle> {
        let kv_cfg = *ctx.kq().config();
        let w_cfg = *ctx.wq().config();
        let (kv_profile, kv_summary, w_profile, w_summary) = if self.profile_cfg.is_enabled() {
            let (kp, ks) = measured(ctx.kq());
            let (wp, ws) = measured(ctx.wq());
            (kp, ks, wp, ws)
        } else {
            (
                AccessProfile::default_for(&kv_cfg),
                ProfileSummary::default_for(&kv_cfg),
                AccessProfile::default_for(&w_cfg),
                ProfileSummary::default_for(&w_cfg),
            )
        };
        let plans = warm_canonical_plans(
            &self.pipeline,
            &ctx,
            self.opt,
            &kv_profile,
            &kv_summary,
            &w_profile,
            &w_summary,
        )?;
        let engine = self.nonce;
        let id = u32::try_from(self.contexts.len()).map_err(|_| LlmError::InvalidConfig {
            what: "context registry overflow",
        })?;
        let observed = vec![0u64; kv_cfg.stored_entries()];
        self.contexts.push(ContextState {
            ctx,
            plans,
            stats: ContextStats {
                num_hot: kv_summary.num_hot,
                ..ContextStats::default()
            },
            profile: kv_profile,
            summary: kv_summary,
            observed,
            steps_since_check: 0,
            max_len_seen: 0,
        });
        Ok(ContextHandle { engine, id })
    }

    /// Resolves a handle, verifying it was issued by this scheduler (the
    /// nonce check catches cross-engine handles whose index happens to be
    /// in range).
    fn state(&self, handle: ContextHandle) -> Option<&ContextState> {
        if handle.engine != self.nonce {
            return None;
        }
        self.contexts.get(handle.id as usize)
    }

    // --- accessors ---

    /// The admission/batching limits.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// The profile-feedback policy.
    pub fn profile_config(&self) -> ProfileConfig {
        self.profile_cfg
    }

    /// Registered contexts.
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// The shared quantized context behind a handle.
    pub fn context(&self, handle: ContextHandle) -> Option<&SharedContext> {
        self.state(handle).map(|s| &s.ctx)
    }

    /// Profile-feedback counters of a context.
    pub fn context_stats(&self, handle: ContextHandle) -> Option<ContextStats> {
        self.state(handle).map(|s| s.stats)
    }

    /// The canonical attention plan a context's groups execute (the parity
    /// harness runs its batch-of-one references through the same plan).
    pub fn attention_plan(&self, handle: ContextHandle) -> Option<&Arc<KernelPlan>> {
        self.state(handle).map(|s| &s.plans.attn)
    }

    /// The canonical linear plan a context's groups execute.
    pub fn linear_plan(&self, handle: ContextHandle) -> Option<&Arc<KernelPlan>> {
        self.state(handle).map(|s| &s.plans.linear)
    }

    /// Requests waiting for a slot.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently holding a decode slot.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// Whether no request is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.running.is_empty()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Where a submitted request currently is in its typed lifecycle.
    pub fn poll(&self, handle: &RequestHandle) -> RequestStatus {
        if self.running.iter().any(|r| r.id == handle.id) {
            RequestStatus::Running
        } else if self.queue.iter().any(|r| r.id == handle.id) {
            RequestStatus::Queued
        } else if let Some(out) = self.finished.get(&handle.id) {
            RequestStatus::Finished {
                tokens: out.steps.len(),
            }
        } else if let Some(&reason) = self.rejected.get(&handle.id) {
            RequestStatus::Rejected { reason }
        } else {
            RequestStatus::Unknown
        }
    }

    /// The output of a finished request, if ready.
    pub fn output(&self, handle: &RequestHandle) -> Option<&RequestOutput> {
        self.finished.get(&handle.id)
    }

    /// Removes and returns the output of a finished request.
    pub fn take_output(&mut self, handle: &RequestHandle) -> Option<RequestOutput> {
        self.finished.remove(&handle.id)
    }

    /// The hidden-state rows a live request has decoded *so far* — the
    /// streaming seam: a driver can diff the length after each step and
    /// forward the new rows as they decode. `Some(&[])` for a request
    /// still waiting in the queue, `None` once it is no longer live
    /// (finished, rejected, cancelled, or unknown — terminal rows live in
    /// [`MultiServer::output`]).
    pub fn partial_output(&self, handle: &RequestHandle) -> Option<&[Vec<f32>]> {
        if let Some(r) = self.running.iter().find(|r| r.id == handle.id) {
            Some(&r.steps)
        } else if self.queue.iter().any(|r| r.id == handle.id) {
            Some(&[])
        } else {
            None
        }
    }

    /// Cancels a live request: frees its decode slot or queue entry and
    /// resolves the handle to [`RequestStatus::Rejected`] with
    /// [`RejectReason::Cancelled`] (a bounded tombstone, like admission
    /// rejections). Returns `false` — and changes nothing — when the
    /// request is not live: already finished (its output stays
    /// collectable), already rejected, or never submitted. A freed slot is
    /// re-filled from the queue at the next [`MultiServer::step`].
    pub fn cancel(&mut self, handle: &RequestHandle) -> bool {
        let id = handle.id;
        let removed = if let Some(pos) = self.running.iter().position(|r| r.id == id) {
            Some(self.running.remove(pos))
        } else if let Some(pos) = self.queue.iter().position(|r| r.id == id) {
            self.queue.remove(pos)
        } else {
            None
        };
        let Some(r) = removed else {
            return false;
        };
        self.stats.cancelled += 1;
        self.contexts[r.ctx.id as usize].stats.cancelled += 1;
        self.absorb_live(&r);
        self.tombstone(id, RejectReason::Cancelled);
        true
    }

    /// Cancels every live request — queued or holding a slot — in one
    /// sweep (the deadline-escalation path of a graceful drain). Returns
    /// how many requests were cancelled; already-finished outputs stay
    /// collectable.
    pub fn cancel_all(&mut self) -> usize {
        let ids: Vec<u64> = self
            .running
            .iter()
            .map(|r| r.id)
            .chain(self.queue.iter().map(|r| r.id))
            .collect();
        for &id in &ids {
            self.cancel(&RequestHandle { id });
        }
        ids.len()
    }

    // --- admission ---

    /// Admits a request against a registered context into the engine-wide
    /// bounded queue. **Never fails**: a refused request gets a handle
    /// whose [`MultiServer::poll`] reports
    /// [`RequestStatus::Rejected`] with the typed reason — the
    /// `Result`-shaped twin is [`MultiServer::try_submit`]. Tombstones
    /// for the [`REJECTED_TOMBSTONE_CAP`] most recent rejections are
    /// retained; older ones age out and poll as
    /// [`RequestStatus::Unknown`].
    pub fn submit(&mut self, ctx: ContextHandle, req: DecodeRequest) -> RequestHandle {
        match self.try_submit(ctx, req) {
            Ok(handle) => handle,
            Err(e) => {
                let id = self.next_id;
                self.next_id += 1;
                self.tombstone(id, RejectReason::from_llm(&e));
                RequestHandle { id }
            }
        }
    }

    /// Records a bounded rejection tombstone so `id` polls as `Rejected`
    /// with its reason (the oldest age out past
    /// [`REJECTED_TOMBSTONE_CAP`]).
    fn tombstone(&mut self, id: RequestId, reason: RejectReason) {
        while self.rejected.len() >= REJECTED_TOMBSTONE_CAP {
            let Some(old) = self.rejected_order.pop_front() else {
                break;
            };
            self.rejected.remove(&old);
        }
        self.rejected.insert(id, reason);
        self.rejected_order.push_back(id);
    }

    /// Admits a request, erroring on refusal (the rejection still counts
    /// in [`ServerStats::rejected`]; nothing is dropped silently).
    ///
    /// Admission validates everything growth-related up front, so a
    /// request that enters the queue is guaranteed to complete: the query
    /// width must match its context, and the final attended length must
    /// fit both the shared context and the model's window.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::UnknownContext`], [`LlmError::InvalidRequest`],
    /// [`LlmError::KvCapacity`], or [`LlmError::QueueFull`].
    pub fn try_submit(&mut self, ctx: ContextHandle, req: DecodeRequest) -> Result<RequestHandle> {
        match self.admit(ctx, req) {
            Ok(handle) => {
                self.stats.submitted += 1;
                Ok(handle)
            }
            Err(e) => {
                self.stats.rejected += 1;
                match e {
                    LlmError::QueueFull { .. } => self.stats.rejected_queue_full += 1,
                    LlmError::InvalidRequest { .. } => self.stats.rejected_invalid += 1,
                    LlmError::KvCapacity { .. } => self.stats.rejected_kv_capacity += 1,
                    LlmError::UnknownContext { .. } => self.stats.rejected_unknown_context += 1,
                    _ => {}
                }
                Err(e)
            }
        }
    }

    fn admit(&mut self, ctx: ContextHandle, req: DecodeRequest) -> Result<RequestHandle> {
        let Some(state) = self.state(ctx) else {
            return Err(LlmError::UnknownContext { id: ctx.id() });
        };
        if req.query.len() != state.ctx.head_dim() {
            return Err(LlmError::InvalidRequest {
                what: "query width must equal the context's head_dim",
            });
        }
        if req.gen_tokens == 0 {
            return Err(LlmError::InvalidRequest {
                what: "gen_tokens must be at least 1",
            });
        }
        if req.context_len == 0 {
            return Err(LlmError::InvalidRequest {
                what: "context_len must be at least 1",
            });
        }
        // Checked: an absurd gen_tokens must reject, not wrap past the
        // admission bounds (gen_tokens >= 1 was verified above).
        let Some(final_len) = req.context_len.checked_add(req.gen_tokens - 1) else {
            return Err(LlmError::InvalidRequest {
                what: "request would decode past the shared context",
            });
        };
        let live_kv = self.config.kv_quant != KvQuantMode::Off;
        if live_kv {
            // Live mode: appended tokens go to the tenant's private
            // cache, so only the *fixed prefix* must fit the shared
            // context.
            if req.context_len > state.ctx.seq() {
                return Err(LlmError::InvalidRequest {
                    what: "context_len exceeds the shared context",
                });
            }
        } else if final_len > state.ctx.seq() {
            // Teacher-forced decode walks the shared context itself.
            return Err(LlmError::InvalidRequest {
                what: "request would decode past the shared context",
            });
        }
        // Per-tenant cache descriptor; `try_new` + the final-length check
        // make every later `append_token` infallible by construction.
        let model = self.pipeline.model();
        if final_len > model.max_seq {
            return Err(LlmError::KvCapacity {
                what: "request would decode past the model's context window",
                value: final_len,
                limit: model.max_seq,
            });
        }
        let kv = KvCache::try_new(
            model,
            req.context_len,
            1,
            self.pipeline.scheme().kv_storage(),
        )?;
        // Live-KV admission: build the tenant's private cache and price
        // its projected *compressed* footprint against the byte budget —
        // capacity denominated in real memory, not token counts.
        let live = if live_kv {
            let live = TenantKv::new(&state.ctx, self.config.kv_quant).map_err(|_| {
                LlmError::InvalidRequest {
                    what: "live KV is unsupported for this context's VQ config",
                }
            })?;
            if let Some(budget) = self.config.kv_budget_bytes {
                let projected = live.projected_bytes(req.gen_tokens - 1);
                if projected > budget {
                    return Err(LlmError::KvCapacity {
                        what: "projected compressed live-KV bytes exceed the per-request budget",
                        value: projected,
                        limit: budget,
                    });
                }
            }
            Some(live)
        } else {
            None
        };
        if self.queue.len() >= self.config.max_queue {
            return Err(LlmError::QueueFull {
                max_queue: self.config.max_queue,
            });
        }
        self.contexts[ctx.id as usize].stats.submitted += 1;
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(Active {
            id,
            ctx,
            tenant: req.tenant,
            h: req.query,
            kv,
            prefix_len: req.context_len,
            live,
            remaining: req.gen_tokens,
            steps: Vec::with_capacity(req.gen_tokens),
            kv_quant_us: 0.0,
            submitted_step: self.step,
        });
        Ok(RequestHandle { id })
    }

    // --- the decode loop ---

    /// One scheduler step: re-form the batch (finished requests already
    /// left their slots; queued requests take free ones, regardless of
    /// context), partition the running set into per-context groups, and
    /// run one batched ragged-attention decode plus one batched linear
    /// projection per live group.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::Kernel`] if a kernel rejects its inputs (the
    /// admission invariants make this unreachable under normal use).
    pub fn step(&mut self) -> Result<StepReport> {
        let step = self.step;
        self.step += 1;
        // Failpoint: force a whole-step failure (the driver's supervisor
        // path); a `panic` action here dies on the calling thread.
        if failpoint::fire("llm.step").is_some() {
            return Err(LlmError::Internal {
                what: "forced step failure (failpoint llm.step)",
            });
        }

        // Batch formation: fill free slots FIFO from the engine-wide
        // queue — context-blind, so a burst on one context cannot starve
        // another's queued requests beyond its own arrival order.
        let mut admitted = Vec::new();
        while self.running.len() < self.config.max_batch {
            let Some(r) = self.queue.pop_front() else {
                break;
            };
            admitted.push(r.id);
            self.running.push(r);
        }
        let batch = self.running.len();
        if batch == 0 {
            return Ok(StepReport {
                step,
                batch: 0,
                groups: 0,
                admitted,
                finished: Vec::new(),
                queued: self.queue.len(),
                kv_quant_us: 0.0,
                quarantined: Vec::new(),
            });
        }

        // Partition the running set by context, preserving slot order
        // within each group (first-seen context order, deterministic).
        let mut groups: Vec<(u32, Vec<usize>)> = Vec::new();
        for (i, r) in self.running.iter().enumerate() {
            match groups.iter_mut().find(|(c, _)| *c == r.ctx.id) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((r.ctx.id, vec![i])),
            }
        }

        // One shared K-decode per group, ragged over each tenant's
        // attended prefix, then one panel-blocked GeMM through that
        // context's projection weight.
        //
        // Each group's kernel work runs under `catch_unwind`: a panic (or
        // kernel error) poisons only that group — its requests are
        // quarantined with a typed reason and shed *after* the loop (so
        // later groups' `idxs` stay valid), while the other groups' decode
        // proceeds untouched. A mid-decode KV append failure quarantines
        // only the one request it belongs to.
        let backend = Arc::clone(self.pipeline.backend());
        let gpu = self.pipeline.gpu().clone();
        let mut kv_quant_us = 0.0;
        let mut quarantine: Vec<(RequestId, RejectReason)> = Vec::new();
        for (ctx_id, idxs) in &groups {
            let (ctx, attn_plan, linear_plan) = {
                let state = &self.contexts[*ctx_id as usize];
                (
                    state.ctx.clone(),
                    Arc::clone(&state.plans.attn),
                    Arc::clone(&state.plans.linear),
                )
            };
            let head_dim = ctx.head_dim();
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| -> Result<()> {
                // Failpoint: fault exactly this group (panic/delay/error).
                if failpoint::fire("llm.step.group").is_some() {
                    return Err(LlmError::Internal {
                        what: "forced group fault (failpoint llm.step.group)",
                    });
                }
                let qs = {
                    let running = &self.running;
                    Tensor2D::from_fn(idxs.len(), head_dim, |i, d| running[idxs[i]].h[d])
                };
                // Teacher-forced decode attends a growing prefix of the
                // shared context (`kv.seq`); live-KV decode pins the
                // shared prefix and splices each tenant's private
                // extension (folded codes + outliers + f32 tail) in.
                let live_kv = self.config.kv_quant != KvQuantMode::Off;
                let lens: Vec<usize> = idxs
                    .iter()
                    .map(|&i| {
                        let r = &self.running[i];
                        if live_kv {
                            r.prefix_len
                        } else {
                            r.kv.seq
                        }
                    })
                    .collect();
                let attn = if live_kv {
                    let exts: Vec<_> = idxs
                        .iter()
                        .map(|&i| {
                            self.running[i]
                                .live
                                .as_ref()
                                .map(TenantKv::ext)
                                .unwrap_or_default()
                        })
                        .collect();
                    backend
                        .run_attention_ragged_tailed(
                            &gpu,
                            &attn_plan,
                            &qs,
                            &lens,
                            &exts,
                            ctx.kq(),
                            ctx.vq(),
                        )?
                        .0
                } else {
                    backend
                        .run_attention_ragged(&gpu, &attn_plan, &qs, &lens, ctx.kq(), ctx.vq())?
                        .0
                };
                let ys = backend.run_gemm(&gpu, &linear_plan, &attn, ctx.wq())?.0;
                let budget = self.config.kv_budget_bytes;

                // Per-request bookkeeping: grow the tenant's cache
                // *first*, then record the step and advance the hidden
                // state. A failed append (capacity fault, byte-budget
                // overrun) quarantines that one request **before** its
                // token is recorded — the typed reject fires one token
                // early instead of after a partial write — and keeps its
                // batch-mates running.
                for (j, &i) in idxs.iter().enumerate() {
                    let r = &mut self.running[i];
                    if r.remaining > 1 {
                        let forced =
                            failpoint::fire("llm.step.append").map(|_| LlmError::KvCapacity {
                                what: "forced kv exhaustion (failpoint llm.step.append)",
                                value: r.kv.seq,
                                limit: r.kv.seq,
                            });
                        let appended = match forced {
                            Some(e) => Err(e),
                            None => r.kv.append_token(),
                        };
                        let appended = appended.and_then(|us| {
                            if let Some(live) = r.live.as_mut() {
                                // The decoded output row is this step's
                                // appended K and V row.
                                live.append(ys.row(j), ys.row(j))?;
                                if let Some(limit) = budget {
                                    let bytes = live.compressed_bytes();
                                    if bytes > limit {
                                        return Err(LlmError::KvCapacity {
                                            what: "compressed live-KV bytes exceeded \
                                                   the per-request budget",
                                            value: bytes,
                                            limit,
                                        });
                                    }
                                }
                            }
                            Ok(us)
                        });
                        match appended {
                            Ok(us) => {
                                r.kv_quant_us += us;
                                kv_quant_us += us;
                            }
                            Err(e) => {
                                quarantine.push((r.id, Self::quarantine_reason(&e)));
                                continue;
                            }
                        }
                    }
                    r.steps.push(ys.row(j).to_vec());
                    r.h.copy_from_slice(ys.row(j));
                    r.remaining -= 1;
                }

                // Profile feedback: the shared K-decode touched rows
                // [0, max_len) of this context's packed codes this step.
                let max_len = lens.iter().copied().max().unwrap_or(0);
                let state = &mut self.contexts[*ctx_id as usize];
                state.stats.steps += 1;
                state.max_len_seen = state.max_len_seen.max(max_len);
                state.steps_since_check += 1;
                Ok(())
            }));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    let reason = Self::quarantine_reason(&e);
                    for &i in idxs {
                        quarantine.push((self.running[i].id, reason));
                    }
                }
                Err(_payload) => {
                    // The panic payload message already surfaced through
                    // the pool's structured error path when the panic
                    // happened on a worker; a panic on this thread is
                    // contained here with a static tag.
                    let reason = RejectReason::Internal {
                        what: "contained panic in decode group",
                    };
                    for &i in idxs {
                        quarantine.push((self.running[i].id, reason));
                    }
                }
            }
        }
        self.stats.steps += 1;
        self.stats.decoded_tokens += batch as u64;

        // Shed quarantined requests: remove them from the running set and
        // tombstone them so they poll as `Rejected` with their typed
        // reason. Duplicates (a request quarantined by both its own KV
        // failure and a group fault) collapse on the first removal.
        let mut quarantined = Vec::new();
        for (id, reason) in quarantine {
            let Some(pos) = self.running.iter().position(|r| r.id == id) else {
                continue;
            };
            let r = self.running.remove(pos);
            self.stats.quarantined += 1;
            self.contexts[r.ctx.id as usize].stats.quarantined += 1;
            self.absorb_live(&r);
            self.tombstone(id, reason);
            quarantined.push(id);
        }

        // Retire finished requests (their slots are free next step).
        // This runs *before* the profile checks so the scheduler state is
        // fully consistent the moment decoding is done — nothing after
        // this point can leave a decoded-to-zero request in `running`.
        let mut finished = Vec::new();
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].remaining == 0 {
                let r = self.running.remove(i);
                finished.push(r.id);
                self.stats.completed += 1;
                self.contexts[r.ctx.id as usize].stats.completed += 1;
                self.absorb_live(&r);
                let (kv_nmse, kv_bytes) = r
                    .live
                    .as_ref()
                    .map(|l| (l.kv_nmse(), l.compressed_bytes()))
                    .unwrap_or((0.0, 0));
                self.finished.insert(
                    r.id,
                    RequestOutput {
                        id: r.id,
                        tenant: r.tenant,
                        steps: r.steps,
                        kv_quant_us: r.kv_quant_us,
                        submitted_step: r.submitted_step,
                        finished_step: step,
                        kv_nmse,
                        kv_bytes,
                    },
                );
            } else {
                i += 1;
            }
        }

        // Profile feedback last, and infallible: a context whose replan
        // cannot be satisfied keeps its current plan.
        if self.profile_cfg.is_enabled() {
            for (ctx_id, _) in &groups {
                self.check_profile(*ctx_id);
            }
        }

        Ok(StepReport {
            step,
            batch,
            groups: groups.len(),
            admitted,
            finished,
            queued: self.queue.len(),
            kv_quant_us,
            quarantined,
        })
    }

    /// Folds a retiring request's live-KV accounting (fold error,
    /// compression counters) into the engine-wide stats. A no-op for
    /// teacher-forced requests.
    fn absorb_live(&mut self, r: &Active) {
        if let Some(live) = &r.live {
            let (err, data) = live.fold_error();
            self.stats.kv_err_sq += err;
            self.stats.kv_data_sq += data;
            self.stats.kv_folded_tokens += live.folded_tokens() as u64;
            self.stats.kv_outlier_groups += live.outlier_groups() as u64;
        }
    }

    /// The typed rejection a mid-decode fault quarantines a request with:
    /// KV-capacity faults keep their structured context, everything else
    /// (kernel failures, contained worker panics) becomes `Internal`.
    fn quarantine_reason(e: &LlmError) -> RejectReason {
        match *e {
            LlmError::KvCapacity { what, value, limit } => {
                RejectReason::KvCapacity { what, value, limit }
            }
            LlmError::Internal { what } => RejectReason::Internal { what },
            LlmError::Kernel(vqllm_kernels::KernelError::Panicked { site, .. }) => {
                RejectReason::Internal { what: site }
            }
            _ => RejectReason::Internal {
                what: "kernel failure in decode group",
            },
        }
    }

    /// Folds the attended-prefix access histogram into the context's
    /// observed distribution every `check_every` steps, and replans the
    /// canonical attention plan when the observation has drifted from the
    /// profile the plan was made under.
    ///
    /// Infallible by design: replanning is an optimization, so a failed
    /// replan (no launchable plan under the observed profile — the
    /// registration plan's existence makes this near-impossible, since
    /// planning depends on the profile only through placement sizing)
    /// keeps the current plan rather than poisoning the decode step with
    /// an error after requests have already been advanced.
    fn check_profile(&mut self, ctx_id: u32) {
        let state = &mut self.contexts[ctx_id as usize];
        if state.steps_since_check < self.profile_cfg.check_every {
            return;
        }
        state.steps_since_check = 0;
        let max_len = std::mem::take(&mut state.max_len_seen);
        if max_len == 0 {
            return;
        }
        let hist = AccessHistogram::profile_rows(state.ctx.kq(), 0, 0, max_len);
        for (o, &c) in state.observed.iter_mut().zip(hist.counts()) {
            *o += c;
        }
        state.stats.profiled_tokens += max_len as u64;
        let observed_hist = AccessHistogram::from_counts(state.observed.clone());
        let observed_profile = AccessProfile::from_histogram(&observed_hist);
        let observed_summary = ProfileSummary::from_histogram(&observed_hist);
        let shifted = observed_summary.num_hot != state.summary.num_hot
            || observed_profile.divergence(&state.profile) > self.profile_cfg.replan_divergence;
        if !shifted {
            return;
        }
        // Replan under the observed distribution first; only a successful
        // replan invalidates the old cached entry and swaps the context's
        // plan. The linear plan is keyed off the projection weight's
        // profile, which does not drift with attended depth, so it stays.
        let kv_cfg = *state.ctx.kq().config();
        let attn_op = ComputeOp::attention_decode(1, state.ctx.head_dim(), state.ctx.seq(), 1);
        let Some((attn_key, attn)) = self.pipeline.vq_plan_profiled(
            &kv_cfg,
            &attn_op,
            self.opt,
            &observed_profile,
            &observed_summary,
        ) else {
            return;
        };
        let old_key = {
            let state = &mut self.contexts[ctx_id as usize];
            std::mem::replace(&mut state.plans.attn_key, attn_key)
        };
        if old_key != self.contexts[ctx_id as usize].plans.attn_key {
            self.pipeline.plan_cache().invalidate(&old_key);
        }
        let state = &mut self.contexts[ctx_id as usize];
        state.plans.attn = attn;
        state.profile = observed_profile;
        state.summary = observed_summary;
        state.stats.replans += 1;
        state.stats.num_hot = observed_summary.num_hot;
    }

    /// Steps until every submitted request has finished, returning the
    /// per-step reports. Terminates because each non-idle step decodes one
    /// token of every live request and admission bounds total work.
    ///
    /// # Errors
    ///
    /// Propagates the first [`MultiServer::step`] error.
    pub fn run_until_drained(&mut self) -> Result<Vec<StepReport>> {
        let mut reports = Vec::new();
        while !self.is_idle() {
            let report = self.step()?;
            if report.batch == 0 && !self.is_idle() {
                // max_batch >= 1 makes this unreachable; guard against a
                // scheduling bug turning into an infinite loop.
                return Err(LlmError::InvalidConfig {
                    what: "scheduler made no progress with work pending",
                });
            }
            reports.push(report);
        }
        Ok(reports)
    }
}
