//! Weighted fair queueing with priority classes: the front-end admission
//! order the network driver puts in front of the engine's FIFO.
//!
//! The engine-wide queue in [`MultiServer`] is strict FIFO — correct for a
//! single trusted caller, but under multi-tenant traffic one chatty tenant
//! can monopolize every slot grant. [`FairQueue`] replaces arrival order
//! with **stride scheduling** (a deterministic, O(tenants) weighted fair
//! queueing discipline): each tenant lane carries a `pass` value advanced
//! by `STRIDE_ONE / weight` per grant, and the next grant always goes to
//! the non-empty lane with the smallest pass. A tenant with weight 2
//! therefore receives two grants for every one a weight-1 tenant gets,
//! without ever starving anyone (every lane's pass grows on service, so
//! every backlogged lane is reached in bounded time).
//!
//! **Priority classes** sit above fairness: grants always come from the
//! highest non-empty priority class, and each class keeps its own stride
//! state, so fairness is enforced *within* a class while classes preempt
//! strictly. An idle tenant cannot hoard credit: when a lane goes from
//! empty to non-empty its pass is bumped to the class's virtual time, the
//! standard stride-scheduling fix for sleeping clients.
//!
//! Everything here is pure data structure — deterministic, no clocks, no
//! threads — so the fairness contract is unit-testable in isolation and
//! the network driver stays a thin shell around it.
//!
//! [`MultiServer`]: crate::serve::MultiServer

use std::collections::VecDeque;

/// One unit of service in pass-value space; a tenant of weight `w`
/// advances `STRIDE_ONE / w` per grant.
const STRIDE_ONE: u64 = 1 << 20;

/// Largest accepted weight (keeps strides non-zero).
pub const MAX_WEIGHT: u32 = STRIDE_ONE as u32;

/// One tenant's backlog within a priority class.
#[derive(Debug)]
struct Lane<T> {
    tenant: u64,
    stride: u64,
    /// Service tag of the *next* grant from this lane.
    pass: u64,
    q: VecDeque<T>,
}

/// One priority class: its own lanes and virtual time.
#[derive(Debug)]
struct Class<T> {
    priority: u8,
    /// Pass value of the most recent grant — newly-backlogged lanes start
    /// here so an idle tenant cannot accumulate credit.
    virtual_time: u64,
    lanes: Vec<Lane<T>>,
}

impl<T> Class<T> {
    /// Index of the non-empty lane with the smallest pass (ties broken by
    /// lane creation order, which is first-seen tenant order).
    fn next_lane(&self) -> Option<usize> {
        self.lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.q.is_empty())
            .min_by_key(|(i, l)| (l.pass, *i))
            .map(|(i, _)| i)
    }
}

/// A deterministic weighted-fair queue with strict priority classes.
///
/// Items are pushed with a `(tenant, priority)` tag and popped in
/// scheduling order: highest priority class first, then stride-scheduled
/// weighted fairness across tenants within the class, then FIFO within a
/// tenant.
#[derive(Debug)]
pub struct FairQueue<T> {
    default_weight: u32,
    /// Explicit per-tenant weights (small, linear scan).
    weights: Vec<(u64, u32)>,
    /// Sorted by priority descending.
    classes: Vec<Class<T>>,
    len: usize,
}

impl<T> FairQueue<T> {
    /// An empty queue; tenants without an explicit weight get
    /// `default_weight` (clamped to `1..=MAX_WEIGHT`).
    pub fn new(default_weight: u32) -> FairQueue<T> {
        FairQueue {
            default_weight: default_weight.clamp(1, MAX_WEIGHT),
            weights: Vec::new(),
            classes: Vec::new(),
            len: 0,
        }
    }

    /// Sets a tenant's weight (grants per scheduling round relative to a
    /// weight-1 tenant). Applies to existing backlogs too: the lane's
    /// stride changes for future grants. A backlogged lane's `pass` is
    /// re-anchored to the class's virtual time so that changing the
    /// stride never converts queued history into an instant service
    /// credit — the new weight shapes *future* grants only.
    pub fn set_weight(&mut self, tenant: u64, weight: u32) {
        let weight = weight.clamp(1, MAX_WEIGHT);
        match self.weights.iter_mut().find(|(t, _)| *t == tenant) {
            Some((_, w)) => *w = weight,
            None => self.weights.push((tenant, weight)),
        }
        for class in &mut self.classes {
            let vt = class.virtual_time;
            for lane in class.lanes.iter_mut().filter(|l| l.tenant == tenant) {
                lane.stride = STRIDE_ONE / weight as u64;
                if !lane.q.is_empty() {
                    lane.pass = lane.pass.max(vt);
                }
            }
        }
    }

    /// The weight a tenant is scheduled at.
    pub fn weight(&self, tenant: u64) -> u32 {
        self.weights
            .iter()
            .find(|(t, _)| *t == tenant)
            .map_or(self.default_weight, |(_, w)| *w)
    }

    /// Queued items across all tenants and classes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues an item for `tenant` at `priority` (higher = served
    /// first).
    pub fn push(&mut self, tenant: u64, priority: u8, item: T) {
        let weight = self.weight(tenant);
        let class = match self.classes.iter().position(|c| c.priority == priority) {
            Some(i) => &mut self.classes[i],
            None => {
                let at = self
                    .classes
                    .iter()
                    .position(|c| c.priority < priority)
                    .unwrap_or(self.classes.len());
                self.classes.insert(
                    at,
                    Class {
                        priority,
                        virtual_time: 0,
                        lanes: Vec::new(),
                    },
                );
                &mut self.classes[at]
            }
        };
        let vt = class.virtual_time;
        let lane = match class.lanes.iter().position(|l| l.tenant == tenant) {
            Some(i) => &mut class.lanes[i],
            None => {
                class.lanes.push(Lane {
                    tenant,
                    stride: STRIDE_ONE / weight as u64,
                    pass: 0,
                    q: VecDeque::new(),
                });
                let i = class.lanes.len() - 1;
                &mut class.lanes[i]
            }
        };
        if lane.q.is_empty() {
            // A lane waking from idle joins at the class's virtual time:
            // no credit for the time it spent with nothing queued.
            lane.pass = lane.pass.max(vt);
        }
        lane.q.push_back(item);
        self.len += 1;
    }

    /// Dequeues the next item in scheduling order.
    pub fn pop(&mut self) -> Option<T> {
        let class = self.classes.iter_mut().find(|c| c.next_lane().is_some())?;
        let li = class.next_lane()?;
        let lane = &mut class.lanes[li];
        let item = lane.q.pop_front()?;
        class.virtual_time = class.virtual_time.max(lane.pass);
        lane.pass += lane.stride;
        self.len -= 1;
        Some(item)
    }

    /// The `(tenant, priority)` tag the next [`FairQueue::pop`] would
    /// serve, without dequeuing.
    pub fn peek_tag(&self) -> Option<(u64, u8)> {
        let class = self.classes.iter().find(|c| c.next_lane().is_some())?;
        let li = class.next_lane()?;
        Some((class.lanes[li].tenant, class.priority))
    }

    /// Removes and returns the first queued item (in per-lane FIFO order)
    /// matching `pred` — the cancellation path.
    pub fn remove_where(&mut self, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        for class in &mut self.classes {
            for lane in &mut class.lanes {
                if let Some(i) = lane.q.iter().position(&mut pred) {
                    self.len -= 1;
                    return lane.q.remove(i);
                }
            }
        }
        None
    }

    /// Visits every queued item (scheduling order is *not* implied).
    pub fn for_each(&self, mut f: impl FnMut(&T)) {
        for class in &self.classes {
            for lane in &class.lanes {
                for item in &lane.q {
                    f(item);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_tags(q: &mut FairQueue<u64>, n: usize) -> Vec<u64> {
        (0..n).map(|_| q.pop().expect("queued")).collect()
    }

    #[test]
    fn weighted_two_to_one_ratio() {
        let mut q = FairQueue::new(1);
        q.set_weight(1, 2);
        for _ in 0..30 {
            q.push(1, 0, 1);
            q.push(2, 0, 2);
        }
        // Every prefix of the grant order respects the 2:1 weighting
        // within one grant of the ideal share.
        let grants = drain_tags(&mut q, 45);
        let mut a = 0usize;
        for (i, &t) in grants.iter().enumerate() {
            if t == 1 {
                a += 1;
            }
            let ideal = 2.0 * (i + 1) as f64 / 3.0;
            assert!(
                (a as f64 - ideal).abs() <= 2.0,
                "prefix {}: tenant-1 got {a} grants, ideal {ideal:.1}",
                i + 1
            );
        }
        let a_total = grants.iter().filter(|&&t| t == 1).count();
        assert_eq!(a_total, 30, "30 of 45 grants go to the weight-2 tenant");
    }

    #[test]
    fn higher_priority_preempts_strictly() {
        let mut q = FairQueue::new(1);
        q.push(1, 0, 10);
        q.push(1, 0, 11);
        q.push(2, 5, 20);
        assert_eq!(q.pop(), Some(20), "priority 5 drains before priority 0");
        q.push(2, 5, 21);
        assert_eq!(q.pop(), Some(21));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn idle_tenant_cannot_hoard_credit() {
        let mut q = FairQueue::new(1);
        // Tenant 1 works alone for a while...
        for i in 0..8 {
            q.push(1, 0, i);
        }
        for _ in 0..8 {
            q.pop();
        }
        // ...then tenant 2 (same weight) arrives with a burst. It must
        // not get 8 back-to-back grants just because it was idle.
        for i in 0..4 {
            q.push(1, 0, 100 + i);
            q.push(2, 0, 200 + i);
        }
        let grants = drain_tags(&mut q, 8);
        let first_two = &grants[..2];
        assert!(
            first_two.contains(&100) || first_two.iter().any(|&g| g < 200),
            "tenant 1 is served within the first two grants, got {grants:?}"
        );
        let ones = grants.iter().filter(|&&g| g < 200).count();
        assert_eq!(ones, 4, "equal weights alternate, got {grants:?}");
    }

    #[test]
    fn remove_where_cancels_a_queued_item() {
        let mut q = FairQueue::new(1);
        q.push(1, 0, 1);
        q.push(1, 0, 2);
        q.push(2, 0, 3);
        assert_eq!(q.remove_where(|&x| x == 2), Some(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.remove_where(|&x| x == 2), None);
        let mut rest = drain_tags(&mut q, 2);
        rest.sort_unstable();
        assert_eq!(rest, vec![1, 3]);
    }

    #[test]
    fn weight_change_grants_no_instant_credit() {
        // Fairness bound: after ANY weight change, a backlogged lane may
        // lead its rival by at most its weight share — never by a burst
        // funded by pass values left behind the class virtual time.
        let mut q = FairQueue::new(1);
        q.set_weight(1, 8);
        for _ in 0..64 {
            q.push(1, 0, 1);
            q.push(2, 0, 2);
        }
        // Serve a while at 8:1 so lane 1's stride history is tiny and its
        // pass sits well behind where a weight-1 lane's would be.
        for _ in 0..18 {
            q.pop();
        }
        // Downgrade to the same weight as the rival. From here on, grants
        // must be ~1:1 — the old 8:1 history must not carry over as an
        // instant catch-up burst for tenant 1.
        q.set_weight(1, 1);
        let grants = drain_tags(&mut q, 40);
        let mut ones = 0usize;
        for (i, &t) in grants.iter().enumerate() {
            if t == 1 {
                ones += 1;
            }
            let ideal = (i + 1) as f64 / 2.0;
            assert!(
                (ones as f64 - ideal).abs() <= 2.0,
                "post-change prefix {}: tenant-1 got {ones} grants, ideal {ideal:.1} \
                 (weight change granted instant credit), order {grants:?}",
                i + 1
            );
        }

        // And the mirror direction: an upgrade mid-drain also respects the
        // *new* ratio from the change onward, bounded per prefix.
        let mut q = FairQueue::new(1);
        for _ in 0..40 {
            q.push(1, 0, 1);
            q.push(2, 0, 2);
        }
        for _ in 0..10 {
            q.pop();
        }
        q.set_weight(2, 3);
        let grants = drain_tags(&mut q, 40);
        let mut twos = 0usize;
        for (i, &t) in grants.iter().enumerate() {
            if t == 2 {
                twos += 1;
            }
            let ideal = 3.0 * (i + 1) as f64 / 4.0;
            assert!(
                (twos as f64 - ideal).abs() <= 3.0,
                "post-upgrade prefix {}: tenant-2 got {twos} grants, ideal {ideal:.1}",
                i + 1
            );
        }
    }

    #[test]
    fn set_weight_applies_to_existing_backlog() {
        let mut q = FairQueue::new(1);
        for _ in 0..12 {
            q.push(1, 0, 1);
            q.push(2, 0, 2);
        }
        q.set_weight(1, 3);
        let grants = drain_tags(&mut q, 12);
        let ones = grants.iter().filter(|&&t| t == 1).count();
        assert!(
            (8..=10).contains(&ones),
            "weight-3 tenant should take ~3/4 of grants, got {ones}/12"
        );
    }
}
