//! Batched request serving on top of the decode pipeline.
//!
//! The kernel substrate already speaks the serving shapes — one shared
//! K-decode feeds a whole batch of queries
//! ([`Backend::run_attention_ragged`]), and a multi-row linear rides the
//! panel-blocked GeMM ([`Backend::run_gemm`]) — so what this module adds
//! is the machinery that *keeps those batches full under traffic*
//! (EVA's decode-centric interface, PAPERS.md):
//!
//! * **admission** — [`Server::submit`] accepts a [`DecodeRequest`] into a
//!   bounded FIFO queue ([`ServeConfig::max_queue`]) or rejects it
//!   explicitly; nothing is ever dropped silently;
//! * **continuous batch formation** — every [`Server::step`] re-forms the
//!   decode batch: finished requests leave their slot, queued ones take
//!   it, up to [`ServeConfig::max_batch`] in flight;
//! * **per-tenant KV ownership** — each request owns a [`KvCache`]
//!   descriptor (its position in the shared context, validated growth),
//!   while all tenants share one quantized context ([`SharedContext`]),
//!   one `PlanCache`, and one backend through the [`Pipeline`];
//! * **a deterministic driver** — [`Server::step`] is synchronous and
//!   side-effect-free beyond its own state, so tests can single-step the
//!   scheduler and a bench can meter tokens/second; an async/tokio driver
//!   can wrap it later without touching the scheduling logic;
//! * **multi-context batches** — the [`multi`] module generalizes all of
//!   the above to a registry of contexts ([`MultiServer`], what
//!   `vq_llm::Engine` wraps): requests are tagged with a
//!   [`ContextHandle`], slots and the queue are shared engine-wide, and
//!   each step runs one ragged-attention + one GeMM pass **per live
//!   context group**, with measured-profile feedback replanning a
//!   context's canonical plans when its access distribution shifts.
//!   [`Server`] itself is now a thin single-context view over it.
//!
//! Numerically the scheduler is *invisible*: each step runs one canonical
//! ragged-attention plan and one canonical linear plan at whatever batch
//! happens to be live, and both kernels are bitwise lane-stable across
//! batch widths — a request decoded in a full batch produces exactly the
//! bytes it would produce running alone (`tests/serving.rs` pins this).
//!
//! [`Backend::run_attention_ragged`]: vqllm_kernels::backend::Backend::run_attention_ragged
//! [`Backend::run_gemm`]: vqllm_kernels::backend::Backend::run_gemm
//! [`KvCache`]: crate::KvCache
//! [`Pipeline`]: crate::Pipeline

pub mod fair;
pub mod multi;
pub mod request;
pub mod scheduler;
pub mod slo;

pub use fair::FairQueue;
pub use multi::{ContextHandle, ContextStats, MultiServer, ProfileConfig, REJECTED_TOMBSTONE_CAP};
pub use request::{
    DecodeRequest, RejectReason, RequestHandle, RequestId, RequestOutput, RequestStatus,
};
pub use scheduler::{Server, ServerStats, StepReport};
pub use slo::SloEstimator;

use crate::{LlmError, Result};
use std::sync::Arc;
use vqllm_vq::QuantizedTensor;

/// Admission and batching limits of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Largest decode batch formed per step (in-flight request slots).
    pub max_batch: usize,
    /// Largest number of requests waiting for a slot; a `submit` beyond
    /// this is rejected with [`LlmError::QueueFull`].
    pub max_queue: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_queue: 64,
        }
    }
}

impl ServeConfig {
    /// Config with explicit limits.
    pub fn new(max_batch: usize, max_queue: usize) -> Self {
        ServeConfig {
            max_batch,
            max_queue,
        }
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.max_batch == 0 {
            return Err(LlmError::InvalidConfig {
                what: "serve max_batch must be at least 1",
            });
        }
        Ok(())
    }
}

/// The quantized state every request of a [`Server`] decodes against: one
/// K cache, one V cache (`seq × head_dim` each), and one output-projection
/// weight (`head_dim × head_dim`).
///
/// This is the EVA/VecInfer serving scenario: tenants fan out over a
/// shared pre-quantized context (a shared prompt, a system prefix, a
/// beam), each attending its own prefix of it, so one K-decode per step
/// serves the whole batch. Tensors are `Arc`-shared — cloning the context
/// is cheap and servers can hand it to reporting threads.
#[derive(Debug, Clone)]
pub struct SharedContext {
    kq: Arc<QuantizedTensor>,
    vq: Arc<QuantizedTensor>,
    wq: Arc<QuantizedTensor>,
}

impl SharedContext {
    /// Validates and wraps the shared tensors.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::InvalidConfig`] when K and V disagree in shape
    /// or the projection weight is not `head_dim × head_dim`.
    pub fn new(
        kq: QuantizedTensor,
        vq: QuantizedTensor,
        wq: QuantizedTensor,
    ) -> Result<SharedContext> {
        if kq.shape() != vq.shape() {
            return Err(LlmError::InvalidConfig {
                what: "shared K and V caches must have identical shapes",
            });
        }
        let head_dim = kq.shape().1;
        if wq.shape() != (head_dim, head_dim) {
            return Err(LlmError::InvalidConfig {
                what: "projection weight must be head_dim x head_dim",
            });
        }
        if kq.shape().0 == 0 || head_dim == 0 {
            return Err(LlmError::InvalidConfig {
                what: "shared context must be non-empty",
            });
        }
        Ok(SharedContext {
            kq: Arc::new(kq),
            vq: Arc::new(vq),
            wq: Arc::new(wq),
        })
    }

    /// Cached tokens in the shared context.
    pub fn seq(&self) -> usize {
        self.kq.shape().0
    }

    /// Channels per head.
    pub fn head_dim(&self) -> usize {
        self.kq.shape().1
    }

    /// The quantized K cache.
    pub fn kq(&self) -> &QuantizedTensor {
        &self.kq
    }

    /// The quantized V cache.
    pub fn vq(&self) -> &QuantizedTensor {
        &self.vq
    }

    /// The quantized output-projection weight.
    pub fn wq(&self) -> &QuantizedTensor {
        &self.wq
    }
}
